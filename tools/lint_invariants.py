#!/usr/bin/env python3
"""Repo-invariant linter for xsum (DESIGN.md §9.5).

Three invariants that clang-tidy and the thread-safety analysis cannot
express are enforced textually here:

  naked-sync    Raw standard-library synchronization primitives
                (std::mutex, std::lock_guard, std::unique_lock, ...) are
                banned everywhere under src/ except src/util/sync.h.
                Concurrency goes through the annotated capability types
                in util/sync.h, or the thread-safety analysis silently
                sees nothing.

  wall-clock    std::chrono::system_clock is banned under src/ and
                bench/. Latency measurement and deadlines use
                steady_clock (util/timer.h); wall time jumps under NTP
                slew and corrupts EWMAs, hedging delays, and benchmark
                numbers.

  env-catalog   Every "XSUM_*" environment-variable string literal in
                src/, bench/, and examples/ must name an entry in
                EnvVarCatalog() (src/util/env.cpp), the single source of
                truth the operator docs are generated from. An
                uncataloged getenv is an undocumented knob.

Modes:
  lint_invariants.py [--root DIR]
      Scan the repository; print every violation as
      "path:line: [rule] message" and exit 1 if any fired.

  lint_invariants.py --expect RULE FILE [FILE...]
      Fixture mode (tests/tools/): lint only the given files and exit 0
      iff RULE fired at least once and no *other* rule fired. Proves
      each rule actually bites without polluting the real tree.

Comments are stripped before the naked-sync and wall-clock checks, so
prose *about* std::mutex (for instance in util/sync.h's own docs, or
the system_clock audit note in util/timer.h) is not a violation.

Stdlib only; no third-party dependencies.
"""

import argparse
import os
import re
import sys

NAKED_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
WALL_CLOCK_RE = re.compile(r"\bsystem_clock\b")
ENV_LITERAL_RE = re.compile(r'"(XSUM_[A-Z0-9_]+)')
CATALOG_ENTRY_RE = re.compile(r'\{\s*"(XSUM_[A-Z0-9_]+)"')

SYNC_HEADER = os.path.join("src", "util", "sync.h")
ENV_CATALOG_SOURCE = os.path.join("src", "util", "env.cpp")
SOURCE_EXTENSIONS = (".h", ".cpp", ".cc")


def strip_comments(text):
    """Replace comment bodies with spaces, preserving newlines and
    string literals (so line numbers and in-string text survive)."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append(c)
                if i + 1 < n:
                    out.append(text[i + 1])
                    i += 2
                    continue
            elif c == '"':
                state = "code"
            out.append(c)
        elif state == "char":
            if c == "\\":
                out.append(c)
                if i + 1 < n:
                    out.append(text[i + 1])
                    i += 2
                    continue
            elif c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def load_catalog_names(root):
    path = os.path.join(root, ENV_CATALOG_SOURCE)
    try:
        with open(path, encoding="utf-8") as f:
            return set(CATALOG_ENTRY_RE.findall(f.read()))
    except OSError:
        return None


def relpath(path, root):
    try:
        return os.path.relpath(path, root)
    except ValueError:
        return path


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def lint_file(path, display_path, catalog, *, check_sync, check_clock,
              check_env):
    violations = []
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError as e:
        violations.append(Violation("io", display_path, 0, str(e)))
        return violations
    stripped = strip_comments(raw)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if check_sync:
            m = NAKED_SYNC_RE.search(line)
            if m:
                violations.append(Violation(
                    "naked-sync", display_path, lineno,
                    "%s outside util/sync.h; use the annotated xsum::sync "
                    "types so the thread-safety analysis sees the lock"
                    % m.group(0)))
        if check_clock:
            if WALL_CLOCK_RE.search(line):
                violations.append(Violation(
                    "wall-clock", display_path, lineno,
                    "system_clock in a latency path; use steady_clock "
                    "(util/timer.h)"))
        if check_env and catalog is not None:
            for name in ENV_LITERAL_RE.findall(line):
                if name not in catalog:
                    violations.append(Violation(
                        "env-catalog", display_path, lineno,
                        '"%s" is not in EnvVarCatalog() (src/util/env.cpp); '
                        "every env knob must be cataloged so the operator "
                        "docs stay complete" % name))
    return violations


def iter_sources(root, subdir):
    top = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(top):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                yield os.path.join(dirpath, name)


def lint_tree(root):
    violations = []
    catalog = load_catalog_names(root)
    if catalog is None:
        violations.append(Violation(
            "env-catalog", ENV_CATALOG_SOURCE, 0,
            "cannot read the env catalog source"))
        catalog = set()
    for path in iter_sources(root, "src"):
        rel = relpath(path, root)
        is_sync_header = rel == SYNC_HEADER
        violations.extend(lint_file(
            path, rel, catalog,
            check_sync=not is_sync_header,
            check_clock=True,
            check_env=True))
    for path in iter_sources(root, "bench"):
        rel = relpath(path, root)
        violations.extend(lint_file(
            path, rel, catalog,
            check_sync=False, check_clock=True, check_env=True))
    for path in iter_sources(root, "examples"):
        rel = relpath(path, root)
        violations.extend(lint_file(
            path, rel, catalog,
            check_sync=False, check_clock=False, check_env=True))
    return violations


def lint_fixtures(root, files, expected_rule):
    catalog = load_catalog_names(root)
    if catalog is None:
        catalog = set()
    violations = []
    for path in files:
        violations.extend(lint_file(
            path, relpath(path, root), catalog,
            check_sync=True, check_clock=True, check_env=True))
    fired = {v.rule for v in violations}
    for v in violations:
        print(v)
    if expected_rule not in fired:
        print("FIXTURE FAIL: expected rule '%s' did not fire"
              % expected_rule, file=sys.stderr)
        return 1
    unexpected = fired - {expected_rule}
    if unexpected:
        print("FIXTURE FAIL: unexpected rule(s) fired: %s"
              % ", ".join(sorted(unexpected)), file=sys.stderr)
        return 1
    print("fixture ok: rule '%s' fired as expected" % expected_rule)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the linter's grandparent dir)")
    parser.add_argument(
        "--expect", metavar="RULE",
        help="fixture mode: require exactly this rule to fire on FILES")
    parser.add_argument("files", nargs="*",
                        help="files to lint in fixture mode")
    args = parser.parse_args()

    if args.expect is not None:
        if not args.files:
            parser.error("--expect requires at least one file")
        return lint_fixtures(args.root, args.files, args.expect)

    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print("%d invariant violation(s)" % len(violations), file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
