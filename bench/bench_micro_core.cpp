/// \file bench_micro_core.cpp
/// \brief Google-benchmark micro-benchmarks of the core primitives the
/// summarizers are built from: Dijkstra, multi-source Dijkstra, the two ST
/// constructions, the PCST growth, and the Eq. (1) weight adjustment.
/// Complements the paper-shaped tables of bench_fig09/10/11 with per-op
/// timings.
///
/// Each search primitive comes in flavours:
///  - the plain name is the single-shot path (a fresh O(|V|) workspace and
///    a throwaway cost view per query — what a cold caller pays),
///  - the `SeedRef` suffix is a verbatim transcription of the *seed*
///    algorithm (commit "v0": per-call allocation, binary heap with
///    duplicate entries, unordered containers, per-relaxation cost
///    gathers), and
///  - the `CostView` suffix runs the same queries against one persistent
///    `SearchWorkspace` and a prebuilt shared `graph::CostView` (the
///    steady state of `core::BatchSummarizer` / the summary service).
/// Comparing SeedRef vs CostView rows reports the old-vs-new throughput of
/// repeated queries; the `BM_PcstGrowthFrontier` family additionally splits
/// the indexed-heap, Dial-bucket, delta-stepping, and auto-selected
/// frontiers of the PCST growth (DESIGN.md §4, §8).
///
/// The cross-request batching rows benchmark the multi-query kernel
/// (DESIGN.md §8): `SteinerKmbSequentialBatch` vs `SteinerKmbWave` run B
/// KMB tasks drawing terminals from a shared hot pool sequentially vs as
/// one `SteinerTreeWave`, and `MultiQueryKernel` vs
/// `DijkstraSequentialBatch` isolate the raw lockstep kernel from the
/// wave layer's source dedup. After the google-benchmark rows, main()
/// prints a direct wall-clock wave-speedup gate (target >= 1.5x for
/// B >= 8). The SeedRef/CostView/Frontier/wave rows emit `XSUM_JSON` perf
/// records for cross-commit trend tracking.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"
#include "core/batch.h"
#include "core/cost_transform.h"
#include "core/pcst.h"
#include "core/steiner.h"
#include "core/weight_adjust.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "graph/cost_view.h"
#include "graph/dijkstra.h"
#include "graph/mst.h"
#include "graph/multi_query.h"
#include "graph/search_workspace.h"
#include "graph/subgraph.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace xsum;

/// \brief Verbatim transcriptions of the *seed* single-shot algorithms
/// (commit "v0" of this repo), kept here as the "old" side of the
/// old-vs-new rows: per-call O(|V|) array allocation + assign-fill, a
/// binary heap with duplicate entries, unordered_map/set in the inner
/// loops, and metric-closure rows that target the full terminal list
/// (recomputing each symmetric distance twice, self-row included). The
/// library path has since moved to epoch-stamped reusable workspaces.
namespace seed_ref {

struct HeapEntry {
  double dist;
  graph::NodeId node;
  bool operator>(const HeapEntry& other) const { return dist > other.dist; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

struct ShortestPathTree {
  std::vector<double> dist;
  std::vector<graph::NodeId> parent_node;
  std::vector<graph::EdgeId> parent_edge;
};

ShortestPathTree Dijkstra(const graph::KnowledgeGraph& g,
                          const std::vector<double>& costs,
                          graph::NodeId source,
                          const std::vector<graph::NodeId>& targets) {
  const size_t n = g.num_nodes();
  ShortestPathTree tree;
  tree.dist.assign(n, graph::kInfDistance);
  tree.parent_node.assign(n, graph::kInvalidNode);
  tree.parent_edge.assign(n, graph::kInvalidEdge);
  std::vector<char> settled(n, 0);
  std::vector<char> is_target(targets.empty() ? 0 : n, 0);
  for (graph::NodeId t : targets) is_target[t] = 1;
  size_t targets_remaining = targets.size();

  MinHeap heap;
  tree.dist[source] = 0.0;
  heap.push(HeapEntry{0.0, source});
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const graph::NodeId u = top.node;
    if (settled[u]) continue;
    settled[u] = 1;
    if (targets_remaining > 0 && is_target[u]) {
      if (--targets_remaining == 0) break;
    }
    const double du = tree.dist[u];
    for (const graph::AdjEntry& a : g.Neighbors(u)) {
      if (settled[a.neighbor]) continue;
      const double nd = du + costs[a.edge];
      if (nd < tree.dist[a.neighbor]) {
        tree.dist[a.neighbor] = nd;
        tree.parent_node[a.neighbor] = u;
        tree.parent_edge[a.neighbor] = a.edge;
        heap.push(HeapEntry{nd, a.neighbor});
      }
    }
  }
  return tree;
}

/// Seed KMB: |T| full-target closure rows, expansion via per-source
/// Dijkstras grouped through an unordered_map, unordered_map node index in
/// the cleanup MST.
graph::Subgraph SteinerKmb(const graph::KnowledgeGraph& g,
                           const std::vector<double>& costs,
                           const std::vector<graph::NodeId>& terminals) {
  const size_t t = terminals.size();
  std::vector<double> closure(t * t, graph::kInfDistance);
  for (size_t i = 0; i < t; ++i) {
    const ShortestPathTree tree =
        seed_ref::Dijkstra(g, costs, terminals[i], terminals);
    for (size_t j = 0; j < t; ++j) {
      closure[i * t + j] = tree.dist[terminals[j]];
    }
  }
  std::vector<graph::MstEdge> closure_edges;
  for (size_t i = 0; i < t; ++i) {
    for (size_t j = i + 1; j < t; ++j) {
      if (closure[i * t + j] < graph::kInfDistance) {
        closure_edges.push_back(graph::MstEdge{i, j, closure[i * t + j], 0});
      }
    }
  }
  const std::vector<size_t> selected = graph::KruskalMst(t, closure_edges);
  std::unordered_map<size_t, std::vector<size_t>> by_source;
  for (size_t idx : selected) {
    by_source[closure_edges[idx].a].push_back(closure_edges[idx].b);
  }
  std::vector<graph::EdgeId> expansion;
  for (const auto& [src_idx, dst_indices] : by_source) {
    std::vector<graph::NodeId> targets;
    for (size_t j : dst_indices) targets.push_back(terminals[j]);
    const ShortestPathTree tree =
        seed_ref::Dijkstra(g, costs, terminals[src_idx], targets);
    for (graph::NodeId target : targets) {
      graph::NodeId v = target;
      if (tree.dist[v] == graph::kInfDistance) continue;
      while (tree.parent_edge[v] != graph::kInvalidEdge) {
        expansion.push_back(tree.parent_edge[v]);
        v = tree.parent_node[v];
      }
    }
  }
  graph::Subgraph expanded =
      graph::Subgraph::FromEdges(g, std::move(expansion), terminals);
  std::unordered_map<graph::NodeId, size_t> index;
  for (size_t i = 0; i < expanded.nodes().size(); ++i) {
    index[expanded.nodes()[i]] = i;
  }
  std::vector<graph::MstEdge> mst_edges;
  for (graph::EdgeId e : expanded.edges()) {
    const graph::EdgeRecord& r = g.edge(e);
    mst_edges.push_back(
        graph::MstEdge{index.at(r.src), index.at(r.dst), costs[e], e});
  }
  const std::vector<size_t> mst_selected =
      graph::KruskalMst(expanded.num_nodes(), mst_edges);
  std::vector<graph::EdgeId> tree_edges;
  for (size_t idx : mst_selected) {
    tree_edges.push_back(static_cast<graph::EdgeId>(mst_edges[idx].tag));
  }
  graph::Subgraph tree =
      graph::Subgraph::FromEdges(g, std::move(tree_edges), terminals);
  tree.PruneLeavesNotIn(g, terminals);
  return tree;
}

/// Seed PCST growth: unit prizes/costs, unordered_map union-find,
/// unordered_set terminal lookups, duplicate heap entries.
class SparseUnionFind {
 public:
  graph::NodeId Find(graph::NodeId x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    graph::NodeId root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      graph::NodeId next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }
  bool Union(graph::NodeId a, graph::NodeId b) {
    graph::NodeId ra = Find(a);
    graph::NodeId rb = Find(b);
    if (ra == rb) return false;
    if (ra > rb) std::swap(ra, rb);
    parent_[rb] = ra;
    return true;
  }

 private:
  std::unordered_map<graph::NodeId, graph::NodeId> parent_;
};

struct PcstHeapEntry {
  double key;
  graph::NodeId node;
  graph::NodeId parent;
  graph::EdgeId via;
  bool operator>(const PcstHeapEntry& other) const { return key > other.key; }
};

graph::Subgraph PcstGrowth(const graph::KnowledgeGraph& g,
                           const std::vector<graph::NodeId>& seeds) {
  const size_t n = g.num_nodes();
  std::unordered_set<graph::NodeId> terminal_set(seeds.begin(), seeds.end());
  auto prize = [&](graph::NodeId v) {
    return terminal_set.count(v) > 0 ? 1.0 : 0.0;
  };
  std::vector<char> in_tree(n, 0);
  std::vector<double> best_key(n, graph::kInfDistance);
  SparseUnionFind components;
  std::priority_queue<PcstHeapEntry, std::vector<PcstHeapEntry>,
                      std::greater<>>
      heap;
  size_t terminal_components = seeds.size();
  std::unordered_map<graph::NodeId, size_t> root_terminal_count;
  std::vector<graph::EdgeId> adopted_edges;
  auto merge = [&](graph::NodeId a, graph::NodeId b, graph::EdgeId via) {
    const graph::NodeId ra = components.Find(a);
    const graph::NodeId rb = components.Find(b);
    if (ra == rb) return;
    const size_t ta = root_terminal_count[ra];
    const size_t tb = root_terminal_count[rb];
    components.Union(ra, rb);
    root_terminal_count[components.Find(ra)] = ta + tb;
    if (ta > 0 && tb > 0) --terminal_components;
    adopted_edges.push_back(via);
  };
  for (graph::NodeId s : seeds) {
    in_tree[s] = 1;
    best_key[s] = -prize(s);
    root_terminal_count[components.Find(s)] = 1;
  }
  for (graph::NodeId s : seeds) {
    for (const graph::AdjEntry& a : g.Neighbors(s)) {
      if (in_tree[a.neighbor]) {
        merge(s, a.neighbor, a.edge);
        continue;
      }
      const double key = 1.0 - prize(a.neighbor);
      if (key < best_key[a.neighbor]) {
        best_key[a.neighbor] = key;
        heap.push(PcstHeapEntry{key, a.neighbor, s, a.edge});
      }
    }
  }
  while (!heap.empty() && terminal_components > 1) {
    const PcstHeapEntry top = heap.top();
    heap.pop();
    const graph::NodeId u = top.node;
    if (in_tree[u]) {
      merge(top.parent, u, top.via);
      continue;
    }
    if (top.key > best_key[u]) continue;
    in_tree[u] = 1;
    merge(top.parent, u, top.via);
    for (const graph::AdjEntry& a : g.Neighbors(u)) {
      if (in_tree[a.neighbor]) {
        merge(u, a.neighbor, a.edge);
        continue;
      }
      const double key = 1.0 - prize(a.neighbor);
      if (key < best_key[a.neighbor]) {
        best_key[a.neighbor] = key;
        heap.push(PcstHeapEntry{key, a.neighbor, u, a.edge});
      }
    }
  }
  return graph::Subgraph::FromEdges(g, std::move(adopted_edges), seeds);
}

}  // namespace seed_ref

/// Shared fixture graph (built once; scale via XSUM_SCALE).
const data::RecGraph& FixtureGraph() {
  static const data::RecGraph* rg = [] {
    const double scale = GetEnvDouble("XSUM_SCALE", 0.08);
    const auto ds =
        data::MakeSyntheticDataset(data::Ml1mConfig(scale, /*seed=*/42));
    auto built = data::BuildRecGraph(ds);
    return new data::RecGraph(std::move(built).ValueOrDie());
  }();
  return *rg;
}

/// Shared prebuilt cost views over the fixture graph (the steady state the
/// batch engine and service serve from).
const graph::CostView& FixtureCostView() {
  static const graph::CostView* view = [] {
    auto* v = new graph::CostView();
    v->Assign(FixtureGraph().graph(),
              core::WeightsToCosts(FixtureGraph().base_weights()));
    return v;
  }();
  return *view;
}

const graph::CostView& FixtureUnitView() {
  static const graph::CostView* view = [] {
    auto* v = new graph::CostView();
    v->AssignUnit(FixtureGraph().graph());
    return v;
  }();
  return *view;
}

/// Appends one XSUM_JSON record for a finished google-benchmark run (mean
/// wall per iteration over the whole timing loop). No-op when XSUM_JSON is
/// unset; repeated runs of one row are averaged by bench/compare_perf.py.
void EmitMicroPerf(const benchmark::State& state, const std::string& method,
                   size_t t, double loop_ms) {
  // google-benchmark invokes each row several times while calibrating the
  // iteration count (starting at 1 iteration); for fast rows those cold,
  // short runs would skew the equal-weight per-key mean compare_perf.py
  // computes, so they are dropped. Slow rows legitimately run few
  // iterations — a run that spent real wall time is kept regardless.
  if (state.iterations() < 32 && loop_ms < 10.0) return;
  bench::PerfRecord record;
  record.bench = "micro_core";
  record.method = method;
  record.n = FixtureGraph().graph().num_nodes();
  record.t = t;
  record.wall_ms = loop_ms / static_cast<double>(state.iterations());
  bench::EmitPerfJson(record);
}

std::vector<graph::NodeId> PickTerminals(const data::RecGraph& rg, size_t t,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::NodeId> terminals;
  terminals.push_back(
      rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users()))));
  while (terminals.size() < t) {
    terminals.push_back(
        rg.ItemNode(static_cast<uint32_t>(rng.Uniform(rg.num_items()))));
  }
  return terminals;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  Rng rng(7);
  for (auto _ : state) {
    const auto src =
        rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users())));
    benchmark::DoNotOptimize(graph::Dijkstra(rg.graph(), costs, src));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rg.graph().num_edges()));
}
BENCHMARK(BM_Dijkstra);

void BM_DijkstraSeedRef(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  Rng rng(7);
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    const auto src =
        rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users())));
    benchmark::DoNotOptimize(seed_ref::Dijkstra(rg.graph(), costs, src, {}));
  }
  EmitMicroPerf(state, "DijkstraSeedRef", 0, timer.ElapsedMillis());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rg.graph().num_edges()));
}
BENCHMARK(BM_DijkstraSeedRef);

void BM_DijkstraCostView(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const graph::CostView& view = FixtureCostView();
  Rng rng(7);
  graph::SearchWorkspace ws;
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    const auto src =
        rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users())));
    graph::DijkstraInto(view, src, {}, ws);
    benchmark::DoNotOptimize(ws);
  }
  EmitMicroPerf(state, "DijkstraCostView", 0, timer.ElapsedMillis());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rg.graph().num_edges()));
}
BENCHMARK(BM_DijkstraCostView);

void BM_MultiSourceDijkstra(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::MultiSourceDijkstra(rg.graph(), costs, terminals));
  }
}
BENCHMARK(BM_MultiSourceDijkstra)->Arg(11)->Arg(101);

void BM_SteinerKmb(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 13);
  core::SteinerOptions options;
  options.variant = core::SteinerOptions::Variant::kKmb;
  for (auto _ : state) {
    auto result = core::SteinerTree(rg.graph(), costs, terminals, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SteinerKmb)->Arg(11)->Arg(51);

void BM_SteinerKmbSeedRef(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 13);
  for (auto _ : state) {
    auto tree = seed_ref::SteinerKmb(rg.graph(), costs, terminals);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_SteinerKmbSeedRef)->Arg(11)->Arg(51);

void BM_SteinerKmbCostView(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const graph::CostView& view = FixtureCostView();
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 13);
  core::SteinerOptions options;
  options.variant = core::SteinerOptions::Variant::kKmb;
  graph::SearchWorkspace ws;
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    auto result = core::SteinerTree(view, terminals, options, &ws);
    benchmark::DoNotOptimize(result);
  }
  EmitMicroPerf(state, "SteinerKmbCostView", terminals.size(),
                timer.ElapsedMillis());
}
BENCHMARK(BM_SteinerKmbCostView)->Arg(11)->Arg(51);

/// B KMB tasks over a small shared terminal pool — the shape a Zipf
/// request mix hands the service's micro-batching window (hot users/items
/// recur across concurrent tasks). The wave pair below prices exactly the
/// cross-request sharing: the sequential arm searches every task's
/// terminals from scratch, the wave arm runs one multi-query kernel sweep
/// with sources deduplicated across the batch (target-set union).
std::vector<std::vector<graph::NodeId>> WaveTerminalSets(size_t b) {
  const auto& rg = FixtureGraph();
  const auto pool = PickTerminals(rg, 12, 23);
  Rng rng(31);
  std::vector<std::vector<graph::NodeId>> sets(b);
  for (auto& set : sets) {
    while (set.size() < 6) {
      const graph::NodeId v = pool[rng.Uniform(pool.size())];
      if (std::find(set.begin(), set.end(), v) == set.end()) {
        set.push_back(v);
      }
    }
  }
  return sets;
}

void BM_SteinerKmbSequentialBatch(benchmark::State& state) {
  const graph::CostView& view = FixtureCostView();
  const auto sets = WaveTerminalSets(static_cast<size_t>(state.range(0)));
  core::SteinerOptions options;
  graph::SearchWorkspace ws;
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    for (const auto& terminals : sets) {
      auto result = core::SteinerTree(view, terminals, options, &ws);
      benchmark::DoNotOptimize(result);
    }
  }
  EmitMicroPerf(state, "SteinerKmbSequentialBatch", sets.size(),
                timer.ElapsedMillis());
}
BENCHMARK(BM_SteinerKmbSequentialBatch)
    ->Arg(1)->Arg(8)->Arg(16)->ArgName("B");

void BM_SteinerKmbWave(benchmark::State& state) {
  const graph::CostView& view = FixtureCostView();
  const auto sets = WaveTerminalSets(static_cast<size_t>(state.range(0)));
  core::SteinerOptions options;
  graph::SearchWorkspace ws;
  graph::MultiQueryWorkspace mq;
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    auto results = core::SteinerTreeWave(view, sets, options, &ws, &mq);
    benchmark::DoNotOptimize(results);
  }
  EmitMicroPerf(state, "SteinerKmbWave", sets.size(), timer.ElapsedMillis());
}
BENCHMARK(BM_SteinerKmbWave)->Arg(1)->Arg(8)->Arg(16)->ArgName("B");

/// Raw kernel pair: B full-sweep searches from distinct sources through
/// one `MultiQueryDijkstra` call vs B sequential `DijkstraInto` runs.
/// Isolates the lockstep kernel itself (lane-major state, shared CSR)
/// from the wave layer's source dedup priced by the pair above.
void BM_MultiQueryKernel(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const graph::CostView& view = FixtureCostView();
  const size_t b = static_cast<size_t>(state.range(0));
  const bool wave = state.range(1) != 0;
  Rng rng(37);
  std::vector<graph::NodeId> sources;
  for (size_t q = 0; q < b; ++q) {
    sources.push_back(
        rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users()))));
  }
  std::vector<graph::MultiQuery> queries(b);
  for (size_t q = 0; q < b; ++q) queries[q].source = sources[q];
  graph::SearchWorkspace ws;
  graph::MultiQueryWorkspace mq;
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    if (wave) {
      graph::MultiQueryDijkstra(view, queries, mq);
      benchmark::DoNotOptimize(mq);
    } else {
      for (const graph::NodeId src : sources) {
        graph::DijkstraInto(view, src, {}, ws);
        benchmark::DoNotOptimize(ws);
      }
    }
  }
  EmitMicroPerf(state, wave ? "MultiQueryKernel" : "DijkstraSequentialBatch",
                b, timer.ElapsedMillis());
}
BENCHMARK(BM_MultiQueryKernel)
    ->ArgsProduct({{8, 16}, {0, 1}})
    ->ArgNames({"B", "wave"});

void BM_SteinerMehlhorn(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 13);
  core::SteinerOptions options;
  options.variant = core::SteinerOptions::Variant::kMehlhorn;
  for (auto _ : state) {
    auto result = core::SteinerTree(rg.graph(), costs, terminals, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SteinerMehlhorn)->Arg(11)->Arg(51)->Arg(201);

void BM_SteinerMehlhornCostView(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const graph::CostView& view = FixtureCostView();
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 13);
  core::SteinerOptions options;
  options.variant = core::SteinerOptions::Variant::kMehlhorn;
  graph::SearchWorkspace ws;
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    auto result = core::SteinerTree(view, terminals, options, &ws);
    benchmark::DoNotOptimize(result);
  }
  EmitMicroPerf(state, "SteinerMehlhornCostView", terminals.size(),
                timer.ElapsedMillis());
}
BENCHMARK(BM_SteinerMehlhornCostView)->Arg(11)->Arg(51)->Arg(201);

void BM_PcstGrowth(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 17);
  for (auto _ : state) {
    auto result =
        core::PcstSummary(rg.graph(), rg.base_weights(), terminals, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PcstGrowth)->Arg(11)->Arg(51)->Arg(201);

void BM_PcstGrowthSeedRef(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 17);
  // Dedup as PcstSummary does before growing.
  std::vector<graph::NodeId> seeds = terminals;
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    auto tree = seed_ref::PcstGrowth(rg.graph(), seeds);
    benchmark::DoNotOptimize(tree);
  }
  EmitMicroPerf(state, "PcstGrowthSeedRef", seeds.size(),
                timer.ElapsedMillis());
}
BENCHMARK(BM_PcstGrowthSeedRef)->Arg(11)->Arg(51)->Arg(201);

void BM_PcstGrowthCostView(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const graph::CostView& view = FixtureUnitView();
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 17);
  graph::SearchWorkspace ws;
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    auto result =
        core::PcstSummary(view, rg.base_weights(), terminals, {}, &ws);
    benchmark::DoNotOptimize(result);
  }
  EmitMicroPerf(state, "PcstGrowthCostView", terminals.size(),
                timer.ElapsedMillis());
}
BENCHMARK(BM_PcstGrowthCostView)->Arg(11)->Arg(51)->Arg(201);

/// Heap vs Dial-bucket vs delta-stepping frontier under the
/// moat-discretization slack (the tie-free regime where the automatic
/// selection admits the bucketed queues; the forced rows isolate each
/// queue, the kAuto row is the calibration regression guard — its wall
/// time must track whichever forced row the heuristic picks at this
/// scale). Results are bit-identical across all four
/// (tests/core/cost_view_equivalence_test).
void BM_PcstGrowthFrontier(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const graph::CostView& view = FixtureUnitView();
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 17);
  core::PcstOptions options;
  options.growth_slack = 0.5;
  static constexpr core::PcstOptions::Frontier kFrontiers[] = {
      core::PcstOptions::Frontier::kHeap, core::PcstOptions::Frontier::kBucket,
      core::PcstOptions::Frontier::kDelta, core::PcstOptions::Frontier::kAuto};
  static constexpr const char* kNames[] = {
      "PcstGrowthHeapFrontier", "PcstGrowthBucketFrontier",
      "PcstGrowthDeltaFrontier", "PcstGrowthAutoFrontier"};
  const auto which = static_cast<size_t>(state.range(1));
  options.frontier = kFrontiers[which];
  graph::SearchWorkspace ws;
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    auto result =
        core::PcstSummary(view, rg.base_weights(), terminals, options, &ws);
    benchmark::DoNotOptimize(result);
  }
  EmitMicroPerf(state, kNames[which], terminals.size(), timer.ElapsedMillis());
}
BENCHMARK(BM_PcstGrowthFrontier)
    ->ArgsProduct({{11, 51, 201}, {0, 1, 2, 3}})
    ->ArgNames({"t", "frontier"});

/// Builds a bare summarization task over random terminals (no input paths:
/// Eq. (1) degenerates to the base weights, isolating engine overhead).
core::SummaryTask EngineTask(const data::RecGraph& rg, size_t t,
                             uint64_t seed) {
  core::SummaryTask task;
  task.terminals = PickTerminals(rg, t, seed);
  std::sort(task.terminals.begin(), task.terminals.end());
  task.terminals.erase(
      std::unique(task.terminals.begin(), task.terminals.end()),
      task.terminals.end());
  task.s_size = task.terminals.size();
  return task;
}

/// Full-engine comparison: `Summarize` (fresh context per call — the seed
/// single-shot path) vs `BatchSummarizer::Run` (persistent context).
void BM_EngineSingleShot(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto task = EngineTask(rg, static_cast<size_t>(state.range(0)), 29);
  core::SummarizerOptions options;
  options.method = state.range(1) == 0 ? core::SummaryMethod::kSteiner
                                       : core::SummaryMethod::kPcst;
  options.steiner.variant = core::SteinerOptions::Variant::kKmb;
  for (auto _ : state) {
    auto result = core::Summarize(rg, task, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EngineSingleShot)
    ->ArgsProduct({{11, 51}, {0, 1}})
    ->ArgNames({"t", "pcst"});

void BM_EngineBatch(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto task = EngineTask(rg, static_cast<size_t>(state.range(0)), 29);
  core::SummarizerOptions options;
  options.method = state.range(1) == 0 ? core::SummaryMethod::kSteiner
                                       : core::SummaryMethod::kPcst;
  options.steiner.variant = core::SteinerOptions::Variant::kKmb;
  core::BatchSummarizer batch(rg, /*num_workers=*/1);
  for (auto _ : state) {
    auto result = batch.Run(task, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EngineBatch)
    ->ArgsProduct({{11, 51}, {0, 1}})
    ->ArgNames({"t", "pcst"});

/// Fixture task chains for the k-sweep pair: synthetic ranked top-10
/// recommendations (random-walk explanation paths, k-prefix property) for
/// a handful of users — the user-centric panel unit shape the paper puts
/// on every k axis.
const std::vector<core::UserRecs>& SweepUnits() {
  static const std::vector<core::UserRecs>* units = [] {
    const auto& rg = FixtureGraph();
    Rng rng(41);
    auto* v = new std::vector<core::UserRecs>();
    for (int u = 0; u < 4; ++u) {
      core::UserRecs recs;
      recs.user = static_cast<uint32_t>(rng.Uniform(rg.num_users()));
      for (int r = 0; r < 10; ++r) {
        rec::Recommendation rec;
        rec.item = static_cast<uint32_t>(rng.Uniform(rg.num_items()));
        rec.score = 1.0 - 0.01 * static_cast<double>(r);
        graph::NodeId node = rg.UserNode(recs.user);
        rec.path.nodes.push_back(node);
        for (int hop = 0; hop < 3; ++hop) {
          const auto nbrs = rg.graph().Neighbors(node);
          if (nbrs.empty()) break;
          const auto& a = nbrs[rng.Uniform(nbrs.size())];
          rec.path.nodes.push_back(a.neighbor);
          rec.path.edges.push_back(a.edge);
          node = a.neighbor;
        }
        recs.recs.push_back(std::move(rec));
      }
      v->push_back(std::move(recs));
    }
    return v;
  }();
  return *units;
}

/// The sweep rows run ST/KMB at λ = 0 — the cost-stable regime (Eq. (1)
/// multiplies every touched edge by exactly 1), which is where the
/// chained engine's closure reuse engages. Results are bit-identical
/// between the two rows (tests/core/incremental_test).
core::SummarizerOptions SweepOptions() {
  core::SummarizerOptions options;
  options.method = core::SummaryMethod::kSteiner;
  options.lambda = 0.0;
  options.steiner.variant = core::SteinerOptions::Variant::kKmb;
  return options;
}

/// One iteration = the full k = 1..10 user-centric sweep over all fixture
/// units, each (unit, k) summarized independently through the batch engine
/// (persistent context + shared views — the pre-chaining steady state).
void BM_SweepFromScratch(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto& units = SweepUnits();
  const auto options = SweepOptions();
  core::BatchSummarizer engine(rg, /*num_workers=*/1);
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    for (const core::UserRecs& recs : units) {
      for (int k = 1; k <= 10; ++k) {
        auto result =
            engine.Run(core::MakeUserCentricTask(rg, recs, k), options);
        benchmark::DoNotOptimize(result);
      }
    }
  }
  EmitMicroPerf(state, "SweepFromScratch", 10, timer.ElapsedMillis());
}
BENCHMARK(BM_SweepFromScratch);

/// Same work through `RunSweep`: one summarization chain per unit walks
/// the ks ascending, so each k reuses the previous k's metric-closure rows
/// (core/incremental.h).
void BM_SweepIncremental(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto& units = SweepUnits();
  const auto options = SweepOptions();
  core::BatchSummarizer engine(rg, /*num_workers=*/1);
  const std::vector<int> ks = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  WallTimer timer;
  timer.Start();
  for (auto _ : state) {
    for (const core::UserRecs& recs : units) {
      auto results = engine.RunSweep(
          0, [&](int k) { return core::MakeUserCentricTask(rg, recs, k); },
          ks, options);
      benchmark::DoNotOptimize(results);
    }
  }
  EmitMicroPerf(state, "SweepIncremental", 10, timer.ElapsedMillis());
}
BENCHMARK(BM_SweepIncremental);

void BM_WeightAdjust(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  // Synthetic path set: 10 three-hop paths.
  Rng rng(23);
  std::vector<graph::Path> paths;
  for (int p = 0; p < 10; ++p) {
    graph::Path path;
    graph::NodeId v =
        rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users())));
    path.nodes.push_back(v);
    for (int hop = 0; hop < 3; ++hop) {
      const auto nbrs = rg.graph().Neighbors(v);
      if (nbrs.empty()) break;
      const auto& a = nbrs[rng.Uniform(nbrs.size())];
      path.nodes.push_back(a.neighbor);
      path.edges.push_back(a.edge);
      v = a.neighbor;
    }
    paths.push_back(std::move(path));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AdjustWeights(
        rg.graph(), rg.base_weights(), paths, /*lambda=*/1.0, /*s_size=*/10));
  }
}
BENCHMARK(BM_WeightAdjust);

/// Direct wave-vs-sequential throughput gate, printed after the benchmark
/// table: B batched KMB tasks through one `SteinerTreeWave` call against
/// the same tasks run back-to-back through `SteinerTree`. Independent of
/// google-benchmark's calibration so the ratio is a single apples-to-apples
/// wall-clock measurement (target: >= 1.5x for B >= 8).
void ReportWaveGate() {
  const graph::CostView& view = FixtureCostView();
  core::SteinerOptions options;
  graph::SearchWorkspace ws;
  graph::MultiQueryWorkspace mq;
  std::printf("\ncross-request wave speedup (shared-pool KMB batch, "
              "target >= 1.5x for B >= 8):\n");
  for (const size_t b : {size_t{8}, size_t{16}}) {
    const auto sets = WaveTerminalSets(b);
    constexpr int kReps = 12;
    // Warm both paths once so neither pays first-touch page faults.
    for (const auto& terminals : sets) {
      benchmark::DoNotOptimize(
          core::SteinerTree(view, terminals, options, &ws));
    }
    benchmark::DoNotOptimize(
        core::SteinerTreeWave(view, sets, options, &ws, &mq));
    WallTimer timer;
    timer.Start();
    for (int rep = 0; rep < kReps; ++rep) {
      for (const auto& terminals : sets) {
        benchmark::DoNotOptimize(
            core::SteinerTree(view, terminals, options, &ws));
      }
    }
    const double sequential_ms = timer.ElapsedMillis();
    timer.Start();
    for (int rep = 0; rep < kReps; ++rep) {
      benchmark::DoNotOptimize(
          core::SteinerTreeWave(view, sets, options, &ws, &mq));
    }
    const double wave_ms = timer.ElapsedMillis();
    const double speedup = wave_ms > 0.0 ? sequential_ms / wave_ms : 0.0;
    std::printf("  B=%-2zu  sequential %8.2f ms  wave %8.2f ms  "
                "speedup %.2fx\n",
                b, sequential_ms, wave_ms, speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ReportWaveGate();
  return 0;
}
