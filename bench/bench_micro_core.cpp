/// \file bench_micro_core.cpp
/// \brief Google-benchmark micro-benchmarks of the core primitives the
/// summarizers are built from: Dijkstra, multi-source Dijkstra, the two ST
/// constructions, the PCST growth, and the Eq. (1) weight adjustment.
/// Complements the paper-shaped tables of bench_fig09/10/11 with per-op
/// timings.

#include <benchmark/benchmark.h>

#include "core/cost_transform.h"
#include "core/pcst.h"
#include "core/steiner.h"
#include "core/weight_adjust.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "graph/dijkstra.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

using namespace xsum;

/// Shared fixture graph (built once; scale via XSUM_SCALE).
const data::RecGraph& FixtureGraph() {
  static const data::RecGraph* rg = [] {
    const double scale = GetEnvDouble("XSUM_SCALE", 0.08);
    const auto ds =
        data::MakeSyntheticDataset(data::Ml1mConfig(scale, /*seed=*/42));
    auto built = data::BuildRecGraph(ds);
    return new data::RecGraph(std::move(built).ValueOrDie());
  }();
  return *rg;
}

std::vector<graph::NodeId> PickTerminals(const data::RecGraph& rg, size_t t,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::NodeId> terminals;
  terminals.push_back(
      rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users()))));
  while (terminals.size() < t) {
    terminals.push_back(
        rg.ItemNode(static_cast<uint32_t>(rng.Uniform(rg.num_items()))));
  }
  return terminals;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  Rng rng(7);
  for (auto _ : state) {
    const auto src =
        rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users())));
    benchmark::DoNotOptimize(graph::Dijkstra(rg.graph(), costs, src));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rg.graph().num_edges()));
}
BENCHMARK(BM_Dijkstra);

void BM_MultiSourceDijkstra(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::MultiSourceDijkstra(rg.graph(), costs, terminals));
  }
}
BENCHMARK(BM_MultiSourceDijkstra)->Arg(11)->Arg(101);

void BM_SteinerKmb(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 13);
  core::SteinerOptions options;
  options.variant = core::SteinerOptions::Variant::kKmb;
  for (auto _ : state) {
    auto result = core::SteinerTree(rg.graph(), costs, terminals, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SteinerKmb)->Arg(11)->Arg(51);

void BM_SteinerMehlhorn(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto costs = core::WeightsToCosts(rg.base_weights());
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 13);
  core::SteinerOptions options;
  options.variant = core::SteinerOptions::Variant::kMehlhorn;
  for (auto _ : state) {
    auto result = core::SteinerTree(rg.graph(), costs, terminals, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SteinerMehlhorn)->Arg(11)->Arg(51)->Arg(201);

void BM_PcstGrowth(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  const auto terminals =
      PickTerminals(rg, static_cast<size_t>(state.range(0)), 17);
  for (auto _ : state) {
    auto result =
        core::PcstSummary(rg.graph(), rg.base_weights(), terminals, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PcstGrowth)->Arg(11)->Arg(51)->Arg(201);

void BM_WeightAdjust(benchmark::State& state) {
  const auto& rg = FixtureGraph();
  // Synthetic path set: 10 three-hop paths.
  Rng rng(23);
  std::vector<graph::Path> paths;
  for (int p = 0; p < 10; ++p) {
    graph::Path path;
    graph::NodeId v =
        rg.UserNode(static_cast<uint32_t>(rng.Uniform(rg.num_users())));
    path.nodes.push_back(v);
    for (int hop = 0; hop < 3; ++hop) {
      const auto nbrs = rg.graph().Neighbors(v);
      if (nbrs.empty()) break;
      const auto& a = nbrs[rng.Uniform(nbrs.size())];
      path.nodes.push_back(a.neighbor);
      path.edges.push_back(a.edge);
      v = a.neighbor;
    }
    paths.push_back(std::move(path));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AdjustWeights(
        rg.graph(), rg.base_weights(), paths, /*lambda=*/1.0, /*s_size=*/10));
  }
}
BENCHMARK(BM_WeightAdjust);

}  // namespace

BENCHMARK_MAIN();
