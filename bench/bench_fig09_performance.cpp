/// \file bench_fig09_performance.cpp
/// \brief Reproduces paper Figure 9: execution time and working memory of
/// the summarization call vs k, for all four scenarios × {PGPR, CAFE}.
///
/// Expected shape: ST cost grows with k (its complexity carries a |T|
/// factor — this bench uses the paper's Algorithm 1 / KMB construction);
/// PCST stays nearly flat (single priority-queue sweep independent of
/// |T|), with the gap widening as k increases.
///
/// The panels run through the batch summarization engine (the runner fans
/// units across XSUM_WORKERS threads with reusable search workspaces); an
/// epilogue reports old-vs-new throughput over repeated user-centric
/// queries — the fresh-context single-shot path (a new workspace + weight
/// buffers per call) against the steady-state batch engine — and emits
/// the JSON perf records (XSUM_JSON). For the comparison against the
/// *seed* algorithms themselves, see the `*SeedRef` rows of
/// bench_micro_core.

#include <vector>

#include "bench_common.h"
#include "core/batch.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace xsum;

/// Times `calls` summarization calls over \p tasks; returns mean ms/call.
template <typename RunFn>
double TimeCalls(const std::vector<core::SummaryTask>& tasks, int repeats,
                 const RunFn& run) {
  WallTimer timer;
  timer.Start();
  for (int r = 0; r < repeats; ++r) {
    for (const core::SummaryTask& task : tasks) {
      const auto summary = run(task);
      bench::CheckOk(summary.status(), "summarize");
    }
  }
  return timer.ElapsedMillis() /
         (static_cast<double>(repeats) * static_cast<double>(tasks.size()));
}

void ReportOldVsNew(const eval::ExperimentRunner& runner) {
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");
  std::vector<core::SummaryTask> tasks;
  size_t terminal_sum = 0;
  for (const core::UserRecs& ur : data.users) {
    tasks.push_back(core::MakeUserCentricTask(runner.rec_graph(), ur, 10));
    terminal_sum += tasks.back().terminals.size();
  }
  if (tasks.empty()) return;
  const size_t mean_t = terminal_sum / tasks.size();
  const size_t n = runner.rec_graph().graph().num_nodes();
  constexpr int kRepeats = 3;

  std::cout << "Old-vs-new throughput (repeated user-centric queries, "
            << tasks.size() << " tasks x " << kRepeats << " repeats)\n";
  for (const auto& [label, options] :
       {std::pair{std::string("ST-KMB"),
                  [] {
                    core::SummarizerOptions o;
                    o.method = core::SummaryMethod::kSteiner;
                    o.steiner.variant = core::SteinerOptions::Variant::kKmb;
                    return o;
                  }()},
        std::pair{std::string("PCST"), [] {
                    core::SummarizerOptions o;
                    o.method = core::SummaryMethod::kPcst;
                    return o;
                  }()}}) {
    const double old_ms = TimeCalls(tasks, kRepeats, [&](const auto& task) {
      return core::Summarize(runner.rec_graph(), task, options);
    });
    core::BatchSummarizer batch(runner.rec_graph(), /*num_workers=*/1);
    // One warmup pass grows the workspace to capacity; the measured passes
    // are the engine's steady state.
    for (const auto& task : tasks) {
      bench::CheckOk(batch.Run(task, options).status(), "warmup");
    }
    const double new_ms = TimeCalls(tasks, kRepeats, [&](const auto& task) {
      return batch.Run(task, options);
    });
    std::cout << "  " << label << ": single-shot " << FormatDouble(old_ms, 3)
              << " ms/call (" << FormatDouble(1000.0 / old_ms, 1)
              << "/s), batch " << FormatDouble(new_ms, 3) << " ms/call ("
              << FormatDouble(1000.0 / new_ms, 1) << "/s) — speedup "
              << FormatDouble(old_ms / new_ms, 2) << "x\n";
    bench::EmitPerfJson({"fig09.user_centric", label + ".single", n, mean_t,
                         old_ms, 0});
    bench::EmitPerfJson({"fig09.user_centric", label + ".batch", n, mean_t,
                         new_ms, batch.peak_workspace_bytes()});
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace xsum;
  eval::ExperimentConfig defaults;
  // KMB exhibits the |T|-scaling the paper reports; trim the sample sizes
  // to keep the 16 panels affordable.
  defaults.steiner_variant = core::SteinerOptions::Variant::kKmb;
  defaults.users_per_gender = 8;
  defaults.items_popular = 8;
  defaults.items_unpopular = 8;
  defaults.user_group_size = 8;
  defaults.item_group_size = 6;
  auto runner = bench::MakeRunner(defaults);

  const std::vector<core::Scenario> scenarios = {
      core::Scenario::kUserCentric, core::Scenario::kItemCentric,
      core::Scenario::kUserGroup, core::Scenario::kItemGroup};
  const std::vector<rec::RecommenderKind> baselines = {
      rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe};

  bench::CheckOk(eval::RunQualityFigure(runner, baselines, scenarios,
                                        eval::MetricKind::kTimeMs,
                                        "Figure 9 (time): execution time",
                                        std::cout),
                 "figure 9 time");
  bench::CheckOk(eval::RunQualityFigure(runner, baselines, scenarios,
                                        eval::MetricKind::kMemoryMb,
                                        "Figure 9 (memory): working memory",
                                        std::cout),
                 "figure 9 memory");
  ReportOldVsNew(runner);
  return 0;
}
