/// \file bench_fig09_performance.cpp
/// \brief Reproduces paper Figure 9: execution time and working memory of
/// the summarization call vs k, for all four scenarios × {PGPR, CAFE}.
///
/// Expected shape: ST cost grows with k (its complexity carries a |T|
/// factor — this bench uses the paper's Algorithm 1 / KMB construction);
/// PCST stays nearly flat (single priority-queue sweep independent of
/// |T|), with the gap widening as k increases.

#include "bench_common.h"

int main() {
  using namespace xsum;
  eval::ExperimentConfig defaults;
  // KMB exhibits the |T|-scaling the paper reports; trim the sample sizes
  // to keep the 16 panels affordable.
  defaults.steiner_variant = core::SteinerOptions::Variant::kKmb;
  defaults.users_per_gender = 8;
  defaults.items_popular = 8;
  defaults.items_unpopular = 8;
  defaults.user_group_size = 8;
  defaults.item_group_size = 6;
  auto runner = bench::MakeRunner(defaults);

  const std::vector<core::Scenario> scenarios = {
      core::Scenario::kUserCentric, core::Scenario::kItemCentric,
      core::Scenario::kUserGroup, core::Scenario::kItemGroup};
  const std::vector<rec::RecommenderKind> baselines = {
      rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe};

  bench::CheckOk(eval::RunQualityFigure(runner, baselines, scenarios,
                                        eval::MetricKind::kTimeMs,
                                        "Figure 9 (time): execution time",
                                        std::cout),
                 "figure 9 time");
  bench::CheckOk(eval::RunQualityFigure(runner, baselines, scenarios,
                                        eval::MetricKind::kMemoryMb,
                                        "Figure 9 (memory): working memory",
                                        std::cout),
                 "figure 9 memory");
  return 0;
}
