/// \file bench_ablation_lambda.cpp
/// \brief Ablation (DESIGN.md §1.4-1): sensitivity of the ST summaries to
/// the Eq. (1) scaling factor λ. λ = 0 nullifies the input explanation
/// paths — the summarizer invents a brand-new explanation; large λ pins
/// the summary to the input paths. Reported: comprehensibility, relevance,
/// actionability, and the fraction of summary edges that come from the
/// input paths (faithfulness to the explanations being summarized).

#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");
  const std::vector<double> lambdas = {0.0, 0.01, 0.1, 1.0, 10.0, 100.0};
  constexpr int kK = 10;

  std::cout << "Ablation: lambda sensitivity (ST, user-centric, k=10)\n"
            << "config: " << runner.config().Describe() << "\n\n";

  std::vector<std::string> headers = {"metric"};
  for (double l : lambdas) headers.push_back(StrCat("l=", l));
  TextTable table(std::move(headers));

  std::vector<double> comp, rel, act, overlap;
  for (double lambda : lambdas) {
    core::SummarizerOptions options;
    options.method = core::SummaryMethod::kSteiner;
    options.lambda = lambda;
    options.steiner.variant = runner.config().steiner_variant;

    StatAccumulator a_comp, a_rel, a_act, a_overlap;
    for (const core::UserRecs& ur : data.users) {
      const auto task = core::MakeUserCentricTask(runner.rec_graph(), ur, kK);
      const auto summary = bench::ValueOrDie(
          core::Summarize(runner.rec_graph(), task, options), "summarize");
      const auto view = metrics::MakeView(runner.rec_graph().graph(), summary);
      a_comp.Add(metrics::Comprehensibility(view));
      a_rel.Add(metrics::Relevance(view, runner.rec_graph().base_weights()));
      a_act.Add(metrics::Actionability(runner.rec_graph().graph(), view));
      // Faithfulness: fraction of summary edges present in input paths.
      std::unordered_set<graph::EdgeId> path_edges;
      for (const auto& p : task.paths) {
        for (graph::EdgeId e : p.edges) {
          if (e != graph::kInvalidEdge) path_edges.insert(e);
        }
      }
      size_t hits = 0;
      for (graph::EdgeId e : summary.subgraph.edges()) {
        if (path_edges.count(e) > 0) ++hits;
      }
      a_overlap.Add(summary.subgraph.num_edges() == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(
                                  summary.subgraph.num_edges()));
    }
    comp.push_back(a_comp.Mean());
    rel.push_back(a_rel.Mean());
    act.push_back(a_act.Mean());
    overlap.push_back(a_overlap.Mean());
  }
  table.AddDoubleRow("comprehensibility", comp, 4);
  table.AddDoubleRow("relevance", rel, 2);
  table.AddDoubleRow("actionability", act, 4);
  table.AddDoubleRow("input-path edge overlap", overlap, 4);
  std::cout << table.ToString();
  return 0;
}
