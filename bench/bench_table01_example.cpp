/// \file bench_table01_example.cpp
/// \brief Reproduces paper Table I on generated data: for a handful of
/// sampled users, prints the individual PGPR explanation paths, the ST
/// summary, and the size reduction (the paper's example compresses 13
/// edges to 6).

#include "bench_common.h"
#include "core/baseline.h"
#include "core/renderer.h"

int main() {
  using namespace xsum;
  eval::ExperimentConfig defaults;
  defaults.users_per_gender = 3;
  auto runner = bench::MakeRunner(defaults);
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");

  std::cout << "Table I analogue: individual paths vs ST summary (k=3)\n"
            << "config: " << runner.config().Describe() << "\n\n";

  core::SummarizerOptions options;
  options.method = core::SummaryMethod::kSteiner;
  options.lambda = 1.0;
  options.steiner.variant = core::SteinerOptions::Variant::kKmb;

  int shown = 0;
  for (const core::UserRecs& ur : data.users) {
    if (ur.recs.size() < 3 || shown >= 3) continue;
    ++shown;
    std::cout << "--- user u" << ur.user << " ---\n";
    const auto task = core::MakeUserCentricTask(runner.rec_graph(), ur, 3);
    for (const auto& path : task.paths) {
      std::cout << "  " << core::RenderPath(runner.rec_graph(), path) << "\n";
    }
    const size_t before = core::TotalPathEdges(task.paths);
    const auto summary = bench::ValueOrDie(
        core::Summarize(runner.rec_graph(), task, options), "summarize");
    std::cout << "  Summary: "
              << core::RenderSummary(runner.rec_graph(), summary) << "\n";
    std::cout << "  size: " << before << " path edges -> "
              << summary.subgraph.num_edges() << " summary edges\n\n";
  }
  return 0;
}
