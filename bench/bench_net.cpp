/// \file bench_net.cpp
/// \brief Cost of the network front (DESIGN.md §6): the same Zipf-skewed
/// summary request stream replayed through three transports —
///
///   inproc        handler called directly (no sockets; the §3 service
///                 steady state and the floor for the other arms)
///   http_loopback one `net::HttpServer` over loopback TCP (adds JSON
///                 parse/render + HTTP framing + one socket hop)
///   routed2       client -> router server -> one of 2 shard servers
///                 (adds consistent-hash placement + a second hop; the
///                 minimal multi-process serving topology)
///
/// Each arm reports total wall time, QPS, and client-side p50/p99, and a
/// sample of responses is verified *byte-identical* across all three arms
/// — the routing invariant that makes the shard layer safe to deploy.
///
/// A fourth arm replays a *generated scenario* (replay::GenerateScenario
/// hot-key storm) through the loopback HTTP front at 1x and 4x of its
/// recorded inter-arrival gaps via the open-loop replayer
/// (replay::Replay), with every response verified against in-process
/// reference fingerprints — the serving workloads are no longer a single
/// hard-coded Zipf loop, and the storm arm prices what a correlated
/// burst onto one hot key costs the single-flight/cache path.
///
/// With XSUM_FAULT=1 a fifth arm runs the same stream against a
/// 4-shard x 2-replica fleet and kills the busiest shard a quarter of
/// the way in, rejoining it at the halfway mark: per-phase latency
/// (steady / outage / recovered) quantifies what replica failover,
/// ejection, and probe-reinstatement cost, and the run fails unless the
/// outage p99 stays within 2x the steady p99 and every response stays
/// byte-identical to the in-process reference.
///
/// Env knobs (on top of the standard XSUM_* set):
///   XSUM_REQUESTS     requests per arm       (default 300)
///   XSUM_CLIENTS      client threads         (default 2)
///   XSUM_ZIPF         task-mix skew          (default 1.1)
///   XSUM_NET_WORKERS  server worker threads  (default 4)
///   XSUM_FAULT        fault-injection arm    (default 0)
///
/// XSUM_JSON emits one record per arm/phase into the *gated* perf
/// artifact, so `bench/compare_perf.py` tracks transport overhead across
/// commits.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/scenario.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/replay.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replay/replayer.h"
#include "replay/scenario.h"
#include "replay/trace.h"
#include "service/handler.h"
#include "service/service.h"
#include "service/shard_router.h"
#include "service/snapshot_registry.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

using namespace xsum;

namespace {

struct ArmResult {
  std::string name;
  net::ReplayStats replay;
};

/// Replays \p stream across client threads; \p issue answers one request.
ArmResult RunArm(
    const std::string& name,
    const std::vector<service::SummaryRequest>& stream, size_t num_clients,
    const std::function<net::HttpResponse(size_t client,
                                          const service::SummaryRequest&)>&
        issue) {
  ArmResult result;
  result.name = name;
  result.replay = net::ReplayConcurrent(
      stream.size(), num_clients,
      [&](size_t c, size_t i) { return issue(c, stream[i]); });
  if (!result.replay.ok) {
    std::fprintf(stderr, "[%s] request failed: HTTP %d %s\n", name.c_str(),
                 result.replay.error_status,
                 result.replay.error_body.c_str());
    std::exit(1);
  }
  return result;
}

}  // namespace

int main() {
  eval::ExperimentConfig defaults;
  defaults.scale = 0.05;
  defaults.users_per_gender = 8;
  defaults.items_popular = 6;
  defaults.items_unpopular = 6;
  eval::ExperimentRunner runner = bench::MakeRunner(defaults);
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");

  const size_t num_requests = static_cast<size_t>(
      GetEnvNonNegativeInt("XSUM_REQUESTS", 300));
  const size_t num_clients = static_cast<size_t>(
      std::max<int64_t>(1, GetEnvNonNegativeInt("XSUM_CLIENTS", 2)));
  const double skew = GetEnvDouble("XSUM_ZIPF", 1.1);
  const size_t net_workers = static_cast<size_t>(
      std::max<int64_t>(1, GetEnvNonNegativeInt("XSUM_NET_WORKERS", 4)));

  // Shared task catalog: user-centric k-prefixes for every baseline user.
  service::TaskCatalog catalog;
  for (const core::UserRecs& ur : data.users) {
    catalog.AddUserCentric(runner.rec_graph(), ur, 10);
  }
  if (catalog.size() == 0) {
    std::fprintf(stderr, "no serveable tasks at this scale\n");
    return 1;
  }

  // Request universe: catalog entries under ST λ=1 and PCST.
  std::vector<service::SummaryRequest> universe;
  for (const auto& entry : catalog.entries()) {
    service::SummaryRequest st;
    st.scenario = entry.scenario;
    st.unit = entry.unit;
    st.k = entry.k;
    universe.push_back(st);
    service::SummaryRequest pcst = st;
    pcst.method = core::SummaryMethod::kPcst;
    universe.push_back(pcst);
  }
  const ZipfTable zipf(universe.size(), skew);
  Rng rng(runner.config().seed + 7);
  std::vector<service::SummaryRequest> stream;
  std::vector<size_t> stream_universe;  // universe index of each element
  stream.reserve(num_requests);
  stream_universe.reserve(num_requests);
  for (size_t r = 0; r < num_requests; ++r) {
    const size_t pick = zipf.Sample(&rng);
    stream.push_back(universe[pick]);
    stream_universe.push_back(pick);
  }

  // One registry (the runner's graph) behind every arm; each arm gets its
  // own service so cache state starts cold everywhere.
  service::GraphSnapshotRegistry registry;
  registry.Publish(service::GraphSnapshotRegistry::Alias(runner.rec_graph()));
  service::ServiceOptions service_options;
  service_options.num_workers = num_clients;

  std::printf("bench_net: Zipf(s=%.2f) stream of %zu requests over %zu "
              "distinct requests, %zu clients, %zu server workers\n",
              skew, stream.size(), universe.size(), num_clients,
              net_workers);
  std::printf("config: %s\n\n", runner.config().Describe().c_str());

  // --- arm 1: in-process ---------------------------------------------------
  service::SummaryService inproc_service(&registry, service_options);
  service::SummaryHandler inproc(&inproc_service, &catalog);
  const ArmResult arm_inproc =
      RunArm("inproc", stream, num_clients,
             [&](size_t, const service::SummaryRequest& request) {
               return inproc.Summarize(request);
             });

  // --- arm 2: loopback HTTP ------------------------------------------------
  service::SummaryService http_service(&registry, service_options);
  service::SummaryHandler http_handler(&http_service, &catalog);
  net::HttpServer::Options server_options;
  server_options.num_workers = net_workers;
  net::HttpServer http_server(
      [&](const net::HttpRequest& request) {
        return http_handler.Handle(request);
      },
      server_options);
  bench::CheckOk(http_server.Start(), "loopback server start");
  {
    std::vector<std::unique_ptr<net::HttpClient>> clients;
    for (size_t c = 0; c < num_clients; ++c) {
      clients.push_back(std::make_unique<net::HttpClient>(
          "127.0.0.1", http_server.port()));
    }
    const ArmResult arm_http =
        RunArm("http_loopback", stream, num_clients,
               [&](size_t c, const service::SummaryRequest& request) {
                 const auto response = clients[c]->Post(
                     "/summarize",
                     service::SummaryRequestToJson(request).Dump());
                 if (!response.ok()) {
                   net::HttpResponse error;
                   error.status = 599;
                   error.body = response.status().ToString();
                   return error;
                 }
                 return *response;
               });

    // --- arm 3: routed through 2 shard servers -----------------------------
    service::SummaryService shard_a_service(&registry, service_options);
    service::SummaryHandler shard_a(&shard_a_service, &catalog);
    service::SummaryService shard_b_service(&registry, service_options);
    service::SummaryHandler shard_b(&shard_b_service, &catalog);
    net::HttpServer server_a(
        [&](const net::HttpRequest& request) { return shard_a.Handle(request); },
        server_options);
    net::HttpServer server_b(
        [&](const net::HttpRequest& request) { return shard_b.Handle(request); },
        server_options);
    bench::CheckOk(server_a.Start(), "shard A start");
    bench::CheckOk(server_b.Start(), "shard B start");
    service::ShardRouter::Options router_options;
    router_options.endpoints = {
        "127.0.0.1:" + std::to_string(server_a.port()),
        "127.0.0.1:" + std::to_string(server_b.port())};
    router_options.local_fallback = false;
    service::ShardRouter router(nullptr, router_options);
    net::HttpServer router_server(
        [&](const net::HttpRequest& request) { return router.Handle(request); },
        server_options);
    bench::CheckOk(router_server.Start(), "router start");
    std::vector<std::unique_ptr<net::HttpClient>> router_clients;
    for (size_t c = 0; c < num_clients; ++c) {
      router_clients.push_back(std::make_unique<net::HttpClient>(
          "127.0.0.1", router_server.port()));
    }
    const ArmResult arm_routed =
        RunArm("routed2", stream, num_clients,
               [&](size_t c, const service::SummaryRequest& request) {
                 const auto response = router_clients[c]->Post(
                     "/summarize",
                     service::SummaryRequestToJson(request).Dump());
                 if (!response.ok()) {
                   net::HttpResponse error;
                   error.status = 599;
                   error.body = response.status().ToString();
                   return error;
                 }
                 return *response;
               });

    // Server-side accounting of the routed arm, read the way an operator
    // would: the router's fleet-merged registry (its own counters plus
    // every shard's scraped /metrics.json). Captured before the
    // verification pass below adds extra traffic.
    const obs::MetricsSnapshot fleet = router.FleetMetrics();

    // One traced request proves the X-Xsum-Trace contract end to end
    // through the HTTP front: the caller's ID must come back on the
    // response, not a re-minted one.
    const uint64_t trace_id = obs::NewTraceId();
    const auto traced = router_clients[0]->Post(
        "/summarize", service::SummaryRequestToJson(universe[0]).Dump(),
        /*retry_stale=*/true,
        {{obs::kTraceHeader, obs::TraceIdToHex(trace_id)}});
    bench::CheckOk(traced.status(), "traced request");
    const std::string* echoed = traced->FindHeader("x-xsum-trace");
    if (echoed == nullptr || *echoed != obs::TraceIdToHex(trace_id)) {
      std::fprintf(stderr,
                   "FATAL: trace ID was not adopted and echoed by the "
                   "router front\n");
      return 1;
    }

    // Byte-identity across all three transports.
    size_t verified = 0;
    for (size_t i = 0; i < universe.size() && verified < 60; i += 5) {
      const service::SummaryRequest& request = universe[i];
      const std::string local = inproc.Summarize(request).body;
      const auto http = clients[0]->Post(
          "/summarize", service::SummaryRequestToJson(request).Dump());
      const auto routed = router_clients[0]->Post(
          "/summarize", service::SummaryRequestToJson(request).Dump());
      bench::CheckOk(http.status(), "verify http");
      bench::CheckOk(routed.status(), "verify routed");
      if (http->body != local || routed->body != local) {
        std::fprintf(stderr,
                     "FATAL: transport changed the response bytes\n"
                     "  inproc: %s\n  http:   %s\n  routed: %s\n",
                     local.c_str(), http->body.c_str(),
                     routed->body.c_str());
        return 1;
      }
      ++verified;
    }

    const service::RouterStats rs = router.stats();
    TextTable table({"arm", "requests", "wall ms", "QPS", "p50 ms",
                     "p99 ms"});
    const auto add_row = [&](const ArmResult& arm) {
      const double wall_ms = arm.replay.wall_ms;
      const double qps = wall_ms > 0.0
                             ? 1000.0 * static_cast<double>(stream.size()) /
                                   wall_ms
                             : 0.0;
      table.AddRow({arm.name,
                    FormatCount(static_cast<int64_t>(stream.size())),
                    FormatDouble(wall_ms, 1), FormatDouble(qps, 0),
                    FormatDouble(arm.replay.latencies_ms.Percentile(50.0), 4),
                    FormatDouble(arm.replay.latencies_ms.Percentile(99.0),
                                 4)});
    };
    add_row(arm_inproc);
    add_row(arm_http);
    add_row(arm_routed);
    table.Print(std::cout);
    std::printf(
        "\n%zu responses verified byte-identical across all transports; "
        "shard split %llu/%llu, failovers %llu\n",
        verified, static_cast<unsigned long long>(rs.per_endpoint[0]),
        static_cast<unsigned long long>(rs.per_endpoint[1]),
        static_cast<unsigned long long>(rs.failovers));

    const auto fleet_latency = fleet.histograms.find("service_latency_ms");
    const auto fleet_requests = fleet.counters.find("service_requests");
    std::printf(
        "fleet view (router-merged /metrics): %llu shard requests, "
        "server-side p50 %.4f ms / p99 %.4f ms; trace %s adopted and "
        "echoed end to end\n",
        static_cast<unsigned long long>(
            fleet_requests != fleet.counters.end() ? fleet_requests->second
                                                   : 0),
        fleet_latency != fleet.histograms.end()
            ? fleet_latency->second.PercentileMs(50.0)
            : 0.0,
        fleet_latency != fleet.histograms.end()
            ? fleet_latency->second.PercentileMs(99.0)
            : 0.0,
        obs::TraceIdToHex(trace_id).c_str());

    const size_t n = runner.rec_graph().graph().num_nodes();
    const auto per_request = [&](const ArmResult& arm) {
      return arm.replay.wall_ms / static_cast<double>(stream.size());
    };
    bench::EmitPerfJson(
        {"net.zipf", "inproc", n, 0, per_request(arm_inproc), 0});
    bench::EmitPerfJson(
        {"net.zipf", "http_loopback", n, 0, per_request(arm_http), 0});
    bench::EmitPerfJson(
        {"net.zipf", "routed2", n, 0, per_request(arm_routed), 0});

    router_server.Stop();
    server_a.Stop();
    server_b.Stop();
  }
  http_server.Stop();

  // --- replayed-scenario arm: hot-key storm at 1x and 4x -------------------
  // The workload is *generated* (seeded hot-key storm over the same
  // request universe), pinned by an in-process reference pass into the
  // standard replay::Trace format, then replayed open-loop through a
  // loopback HTTP front at two speed multiples with every response
  // verified against the recorded fingerprint — the exact machinery the
  // serving fleet's record/replay evaluation uses.
  {
    replay::ScenarioOptions scenario;
    scenario.count = num_requests;
    scenario.seed = runner.config().seed + 21;
    scenario.mean_gap_us = 500.0;
    scenario.zipf_skew = skew;
    scenario.clients = static_cast<uint32_t>(num_clients);
    const std::vector<replay::ArrivalEvent> events =
        replay::GenerateScenario(replay::ScenarioKind::kHotKey,
                                 universe.size(), scenario);

    service::SummaryService reference_service(&registry, service_options);
    service::SummaryHandler reference(&reference_service, &catalog);
    replay::Trace trace;
    trace.records.reserve(events.size());
    for (const replay::ArrivalEvent& event : events) {
      const service::SummaryRequest& request = universe[event.pick];
      const net::HttpResponse response = reference.Summarize(request);
      if (response.status != 200) {
        std::fprintf(stderr, "storm reference pass failed: HTTP %d %s\n",
                     response.status, response.body.c_str());
        return 1;
      }
      replay::TraceRecord record;
      record.seq = trace.records.size();
      record.offset_us = event.offset_us;
      record.client = "c" + std::to_string(event.client);
      record.request = service::SummaryRequestToJson(request);
      record.status = response.status;
      record.fingerprint =
          replay::ResponseFingerprint(response.status, response.body);
      trace.records.push_back(std::move(record));
    }

    TextTable storm_table({"speed", "requests", "wall ms", "QPS", "p50 ms",
                           "p99 ms", "max lag ms"});
    std::vector<std::pair<const char*, double>> speeds = {
        {"storm_1x", 1.0}, {"storm_4x", 4.0}};
    std::vector<double> per_request_ms;
    for (const auto& [label, speed] : speeds) {
      // Fresh service per speed: both passes start cache-cold, so the
      // speeds are comparable.
      service::SummaryService storm_service(&registry, service_options);
      service::SummaryHandler storm_handler(&storm_service, &catalog);
      net::HttpServer storm_server(
          [&](const net::HttpRequest& request) {
            return storm_handler.Handle(request);
          },
          server_options);
      bench::CheckOk(storm_server.Start(), "storm server start");
      std::vector<std::unique_ptr<net::HttpClient>> storm_clients;
      for (size_t c = 0; c < num_clients; ++c) {
        storm_clients.push_back(std::make_unique<net::HttpClient>(
            "127.0.0.1", storm_server.port()));
      }
      replay::ReplayOptions replay_options;
      replay_options.speed = speed;
      replay_options.num_clients = num_clients;
      const replay::ReplayReport report = replay::Replay(
          trace, replay_options,
          [&](size_t c, const replay::TraceRecord& record) {
            const auto response =
                storm_clients[c]->Post("/summarize", record.RequestBody());
            if (!response.ok()) {
              net::HttpResponse error;
              error.status = 599;
              error.body = response.status().ToString();
              return error;
            }
            return *response;
          });
      if (!report.ok) {
        std::fprintf(stderr, "FATAL: storm replay at %s diverged from the "
                             "recorded fingerprints: %s\n",
                     label, report.first_divergence_detail.c_str());
        return 1;
      }
      const double qps =
          report.wall_ms > 0.0
              ? 1000.0 * static_cast<double>(report.issued) / report.wall_ms
              : 0.0;
      storm_table.AddRow(
          {label, FormatCount(static_cast<int64_t>(report.issued)),
           FormatDouble(report.wall_ms, 1), FormatDouble(qps, 0),
           FormatDouble(report.latencies_ms.Percentile(50.0), 4),
           FormatDouble(report.latencies_ms.Percentile(99.0), 4),
           FormatDouble(report.max_lag_ms, 1)});
      per_request_ms.push_back(
          report.wall_ms / static_cast<double>(trace.size()));
      storm_server.Stop();
    }
    std::printf("\nhot-key storm replay (%zu events, storm window "
                "[%.0f%%, %.0f%%), hot share %.0f%%):\n",
                trace.size(), 100.0 * scenario.storm_begin_frac,
                100.0 * scenario.storm_end_frac,
                100.0 * scenario.storm_hot_frac);
    storm_table.Print(std::cout);
    std::printf("all replayed responses byte-identical to the recorded "
                "fingerprints at both speeds\n");
    const size_t n = runner.rec_graph().graph().num_nodes();
    for (size_t s = 0; s < speeds.size(); ++s) {
      bench::EmitPerfJson(
          {"net.replay", speeds[s].first, n, 0, per_request_ms[s], 0});
    }
  }

  // --- fault-injection arm (XSUM_FAULT=1) ----------------------------------
  // A 4-shard x 2-replica fleet replays the same stream in three phases:
  // steady (all shards up), outage (the busiest shard killed at N/4 —
  // requests fail over, the breaker ejects it), recovered (the shard
  // rejoins on its old port at N/2 and is probe-reinstated). Every
  // response is checked byte-identical to the in-process reference, and
  // the run fails when the outage p99 exceeds 2x the steady p99 — the
  // bound that makes replica failover an operational non-event.
  if (GetEnvNonNegativeInt("XSUM_FAULT", 0) != 0) {
    service::SummaryService reference_service(&registry, service_options);
    service::SummaryHandler reference(&reference_service, &catalog);
    std::vector<std::string> expected(universe.size());
    for (size_t i = 0; i < universe.size(); ++i) {
      expected[i] = reference.Summarize(universe[i]).body;
    }

    constexpr size_t kShards = 4;
    std::vector<std::unique_ptr<service::SummaryService>> fleet_services;
    std::vector<std::unique_ptr<service::SummaryHandler>> fleet_handlers;
    std::vector<std::unique_ptr<net::HttpServer>> fleet;
    net::HttpServer::Options shard_options;
    shard_options.num_workers = net_workers;
    for (size_t s = 0; s < kShards; ++s) {
      fleet_services.push_back(
          std::make_unique<service::SummaryService>(&registry,
                                                    service_options));
      fleet_handlers.push_back(std::make_unique<service::SummaryHandler>(
          fleet_services.back().get(), &catalog));
      service::SummaryHandler* handler = fleet_handlers.back().get();
      fleet.push_back(std::make_unique<net::HttpServer>(
          [handler](const net::HttpRequest& request) {
            return handler->Handle(request);
          },
          shard_options));
      bench::CheckOk(fleet.back()->Start(), "fleet shard start");
    }

    service::ShardRouter::Options fleet_options;
    for (const auto& shard : fleet) {
      fleet_options.endpoints.push_back("127.0.0.1:" +
                                        std::to_string(shard->port()));
    }
    fleet_options.replicas = 2;
    fleet_options.local_fallback = false;
    fleet_options.timeout_ms = 2000;
    // Fast ejection/reinstatement so both transitions land inside the
    // bench window.
    fleet_options.health.failure_threshold = 2;
    fleet_options.health.base_backoff_ms = 100;
    fleet_options.health.max_backoff_ms = 1000;
    fleet_options.probe_interval_ms = 25;
    service::ShardRouter fleet_router(nullptr, fleet_options);

    const size_t kill_at = stream.size() / 4;
    const size_t rejoin_at = stream.size() / 2;
    // Kill the shard the outage window leans on hardest, so the phase
    // actually exercises failover instead of missing the victim.
    std::vector<size_t> homed(kShards, 0);
    for (size_t i = kill_at; i < rejoin_at; ++i) {
      ++homed[fleet_router.EndpointFor(stream[i])];
    }
    const size_t victim = static_cast<size_t>(
        std::max_element(homed.begin(), homed.end()) - homed.begin());

    const auto replay_phase = [&](const char* phase, size_t begin,
                                  size_t end) {
      const net::ReplayStats replay = net::ReplayConcurrent(
          end - begin, num_clients, [&](size_t, size_t i) {
            net::HttpResponse response =
                fleet_router.Summarize(stream[begin + i]);
            if (response.status == 200 &&
                response.body != expected[stream_universe[begin + i]]) {
              response.status = 598;
              response.body = "response bytes diverged from the in-process "
                              "reference";
            }
            return response;
          });
      if (!replay.ok) {
        std::fprintf(stderr, "[fault.%s] request failed: HTTP %d %s\n",
                     phase, replay.error_status, replay.error_body.c_str());
        std::exit(1);
      }
      return replay;
    };

    const net::ReplayStats steady = replay_phase("steady", 0, kill_at);
    const uint16_t victim_port = fleet[victim]->port();
    fleet[victim]->Stop();
    const net::ReplayStats outage =
        replay_phase("outage", kill_at, rejoin_at);
    const service::RouterStats mid = fleet_router.stats();
    if (mid.ejections == 0) {
      std::fprintf(stderr,
                   "FATAL: outage phase never ejected the killed shard\n");
      return 1;
    }

    // Rejoin on the old address; the probe loop must reinstate it before
    // the recovered phase starts (the rejoin wait is operational, not
    // request latency, so it is timed separately).
    shard_options.port = victim_port;
    service::SummaryHandler* victim_handler = fleet_handlers[victim].get();
    auto rejoined = std::make_unique<net::HttpServer>(
        [victim_handler](const net::HttpRequest& request) {
          return victim_handler->Handle(request);
        },
        shard_options);
    bench::CheckOk(rejoined->Start(), "victim rejoin");
    fleet[victim] = std::move(rejoined);
    WallTimer rejoin_timer;
    rejoin_timer.Start();
    while (fleet_router.endpoint_state(victim) !=
           service::EndpointHealth::State::kHealthy) {
      if (rejoin_timer.ElapsedMillis() > 15000.0) {
        std::fprintf(stderr,
                     "FATAL: rejoined shard was never reinstated\n");
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const double rejoin_ms = rejoin_timer.ElapsedMillis();
    const net::ReplayStats recovered =
        replay_phase("recovered", rejoin_at, stream.size());

    const service::RouterStats fs = fleet_router.stats();
    TextTable fault_table(
        {"phase", "requests", "wall ms", "p50 ms", "p99 ms"});
    const auto fault_row = [&](const char* phase,
                               const net::ReplayStats& replay,
                               size_t requests) {
      fault_table.AddRow(
          {phase, FormatCount(static_cast<int64_t>(requests)),
           FormatDouble(replay.wall_ms, 1),
           FormatDouble(replay.latencies_ms.Percentile(50.0), 4),
           FormatDouble(replay.latencies_ms.Percentile(99.0), 4)});
    };
    std::printf("\nfault injection: %zu shards, %zu replicas, shard %zu "
                "killed at request %zu, rejoined at %zu (reinstated in "
                "%.0f ms)\n",
                kShards, fleet_options.replicas, victim, kill_at,
                rejoin_at, rejoin_ms);
    fault_row("steady", steady, kill_at);
    fault_row("outage", outage, rejoin_at - kill_at);
    fault_row("recovered", recovered, stream.size() - rejoin_at);
    fault_table.Print(std::cout);
    std::printf("every response byte-identical to the in-process "
                "reference; ejections %llu, probes %llu, reinstatements "
                "%llu, failovers %llu, hedges %llu\n",
                static_cast<unsigned long long>(fs.ejections),
                static_cast<unsigned long long>(fs.probes),
                static_cast<unsigned long long>(fs.reinstatements),
                static_cast<unsigned long long>(fs.failovers),
                static_cast<unsigned long long>(fs.hedges));

    const double steady_p99 = steady.latencies_ms.Percentile(99.0);
    const double outage_p99 = outage.latencies_ms.Percentile(99.0);
    // 2x steady, with a small absolute floor so sub-millisecond baselines
    // do not turn scheduler noise into a failure.
    const double bound = std::max(2.0 * steady_p99, steady_p99 + 2.0);
    if (outage_p99 > bound) {
      std::fprintf(stderr,
                   "FATAL: outage p99 %.4f ms exceeds the failover bound "
                   "%.4f ms (steady p99 %.4f ms)\n",
                   outage_p99, bound, steady_p99);
      return 1;
    }
    std::printf("outage p99 %.4f ms within bound %.4f ms "
                "(steady p99 %.4f ms)\n\n",
                outage_p99, bound, steady_p99);

    const size_t n = runner.rec_graph().graph().num_nodes();
    const auto phase_mean = [](const net::ReplayStats& replay,
                               size_t requests) {
      return requests > 0 ? replay.wall_ms / static_cast<double>(requests)
                          : 0.0;
    };
    bench::EmitPerfJson(
        {"net.fault", "steady", n, 0, phase_mean(steady, kill_at), 0});
    bench::EmitPerfJson({"net.fault", "outage", n, 0,
                         phase_mean(outage, rejoin_at - kill_at), 0});
    bench::EmitPerfJson({"net.fault", "recovered", n, 0,
                         phase_mean(recovered, stream.size() - rejoin_at),
                         0});
    for (const auto& shard : fleet) shard->Stop();
  }
  return 0;
}
