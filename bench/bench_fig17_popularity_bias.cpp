/// \file bench_fig17_popularity_bias.cpp
/// \brief Reproduces paper Figure 17: explanation-fairness probe —
/// item-centric comprehensibility for catalogue-popular vs unpopular
/// items, CAFE baseline.
///
/// Expected shape: the baseline's comprehensibility is notably worse
/// (smaller) for unpopular items, while the ST/PCST summaries stay far
/// more even across the two item groups.

#include "bench_common.h"
#include "data/dataset.h"
#include "eval/fairness.h"
#include "util/string_util.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kCafe), "baseline");

  std::cout << "Figure 17: comprehensibility for popular vs unpopular items"
            << " (item-centric, CAFE)\n"
            << "config: " << runner.config().Describe() << "\n\n";

  const char* titles[2] = {"(a) popular items", "(b) unpopular items"};
  for (int popular = 1; popular >= 0; --popular) {
    eval::PanelSpec spec;
    spec.scenario = core::Scenario::kItemCentric;
    spec.metric = eval::MetricKind::kComprehensibility;
    spec.ks = runner.config().ks;
    spec.methods =
        eval::StandardMethods(data.label, runner.config().steiner_variant);
    spec.item_popularity_filter = popular;
    const auto series =
        bench::ValueOrDie(runner.RunPanel(data, spec), "panel");
    eval::PrintPanel(std::cout, titles[1 - popular], spec.ks, series);
  }

  // Companion fairness report (§VII future work): user-centric quality
  // gaps between users whose recommendations skew popular vs unpopular.
  const auto popularity = runner.dataset().ItemPopularity();
  eval::FairnessGroup popular_skew{"popular-skew users", {}};
  eval::FairnessGroup unpopular_skew{"unpopular-skew users", {}};
  for (const core::UserRecs& ur : data.users) {
    double mean_pop = 0.0;
    for (const auto& r : ur.recs) mean_pop += popularity[r.item];
    mean_pop /= static_cast<double>(ur.recs.size());
    (mean_pop >= static_cast<double>(popularity[data.items.front().item]) / 2
         ? popular_skew
         : unpopular_skew)
        .units.push_back(ur);
  }
  if (!popular_skew.units.empty() && !unpopular_skew.units.empty()) {
    for (const auto& method :
         eval::StandardMethods(data.label, runner.config().steiner_variant)) {
      const auto report = eval::AnalyzeUserGroupFairness(
          runner.rec_graph(), {popular_skew, unpopular_skew}, method.options,
          /*k=*/10,
          {eval::MetricKind::kComprehensibility,
           eval::MetricKind::kDiversity, eval::MetricKind::kPrivacy});
      if (!report.ok()) continue;
      std::cout << report->ToString(
                       StrCat("fairness report - ", method.label))
                << "\n";
    }
  }
  return 0;
}
