/// \file bench_fig13_plm_diversity.cpp
/// \brief Reproduces paper Figure 13: diversity against the PLM / PEARLM
/// baselines (user-centric and user-group).
///
/// Expected shape: PLM/PEARLM are more diverse than PGPR/CAFE (generative
/// decoding spreads paths wider); PCST still enhances diversity further,
/// ST offers moderate diversity.

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPlm, rec::RecommenderKind::kPearlm},
          {core::Scenario::kUserCentric, core::Scenario::kUserGroup},
          eval::MetricKind::kDiversity,
          "Figure 13: Diversity (PLM / PEARLM baselines)", std::cout),
      "figure 13");
  return 0;
}
