/// \file bench_fig05_redundancy.cpp
/// \brief Reproduces paper Figure 5: Redundancy R(S) = duplicate node share; baselines repeat nodes across paths, ST/PCST subgraphs deduplicate.

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kItemCentric,
           core::Scenario::kUserGroup, core::Scenario::kItemGroup},
          eval::MetricKind::kRedundancy, "Figure 5: Redundancy", std::cout),
      "figure 5");
  return 0;
}
