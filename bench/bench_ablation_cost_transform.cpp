/// \file bench_ablation_cost_transform.cpp
/// \brief Ablation (DESIGN.md §1.4-3/4): the ST design choices this
/// reproduction had to make — the max-weight→min-cost transform (the
/// paper's literal "multiply by −1" breaks Dijkstra) vs pure unit costs,
/// the KMB vs Mehlhorn construction, and the final cleanup pass.

#include <vector>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");
  constexpr int kK = 10;

  struct Variant {
    std::string label;
    core::SummarizerOptions options;
  };
  std::vector<Variant> variants;
  auto base = [] {
    core::SummarizerOptions o;
    o.method = core::SummaryMethod::kSteiner;
    o.lambda = 1.0;
    o.steiner.variant = core::SteinerOptions::Variant::kKmb;
    return o;
  };
  {
    Variant v{"KMB + log weight-aware costs (default)", base()};
    variants.push_back(v);
  }
  {
    Variant v{"KMB + linear weight-aware costs", base()};
    v.options.cost_mode = core::CostMode::kWeightAware;
    variants.push_back(v);
  }
  {
    Variant v{"KMB + unit costs", base()};
    v.options.cost_mode = core::CostMode::kUnit;
    variants.push_back(v);
  }
  {
    Variant v{"Mehlhorn + weight-aware costs", base()};
    v.options.steiner.variant = core::SteinerOptions::Variant::kMehlhorn;
    variants.push_back(v);
  }
  {
    Variant v{"KMB without cleanup pass", base()};
    v.options.steiner.cleanup = false;
    variants.push_back(v);
  }

  std::cout << "Ablation: ST cost transform / construction variants"
            << " (user-centric, k=10)\n"
            << "config: " << runner.config().Describe() << "\n\n";

  TextTable table({"variant", "edges", "comprehensibility", "relevance",
                   "privacy", "time(ms)"});
  for (const Variant& variant : variants) {
    StatAccumulator edges, comp, rel, priv, time_ms;
    for (const core::UserRecs& ur : data.users) {
      const auto task = core::MakeUserCentricTask(runner.rec_graph(), ur, kK);
      const auto summary = bench::ValueOrDie(
          core::Summarize(runner.rec_graph(), task, variant.options),
          "summarize");
      const auto view = metrics::MakeView(runner.rec_graph().graph(), summary);
      edges.Add(static_cast<double>(summary.subgraph.num_edges()));
      comp.Add(metrics::Comprehensibility(view));
      rel.Add(metrics::Relevance(view, runner.rec_graph().base_weights()));
      priv.Add(metrics::Privacy(runner.rec_graph().graph(), view));
      time_ms.Add(summary.elapsed_ms);
    }
    table.AddRow({variant.label, FormatDouble(edges.Mean(), 1),
                  FormatDouble(comp.Mean(), 4), FormatDouble(rel.Mean(), 2),
                  FormatDouble(priv.Mean(), 4),
                  FormatDouble(time_ms.Mean(), 2)});
  }
  std::cout << table.ToString();
  return 0;
}
