/// \file bench_fig03_actionability.cpp
/// \brief Reproduces paper Figure 3: Actionability A(S) = item nodes / |V_S|; ST λ=100 highest, PCST lowest (not optimized for item inclusion).

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kItemCentric,
           core::Scenario::kUserGroup, core::Scenario::kItemGroup},
          eval::MetricKind::kActionability, "Figure 3: Actionability", std::cout),
      "figure 3");
  return 0;
}
