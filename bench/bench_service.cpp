/// \file bench_service.cpp
/// \brief Throughput of the summary service on a Zipf-skewed repeated-task
/// request stream: warm-cache vs cache-disabled, plus the cold (filling)
/// pass. Production recommendation traffic is heavily repeated — a few hot
/// users/groups dominate — which is exactly what the service's sharded
/// result cache exploits.
///
/// The bench also proves the cache is *safe*: for a sample of distinct
/// requests it compares the cached response bit-for-bit against a fresh
/// single-shot `Summarize` call and aborts on any mismatch.
///
/// A fourth warm arm runs with histogram recording disabled
/// (`ServiceOptions::enable_metrics = false`) — the control that prices
/// the observability layer on the hottest path (gate: <2% overhead).
///
/// A final pair of arms replays a burst of *distinct* KMB requests from
/// concurrent client threads — all cache misses — with the micro-batching
/// window off and then on, and checks the batched responses bit-for-bit
/// against fresh `Summarize` calls. This is the regression row for the
/// cross-request wave kernel at the service layer.
///
/// Env knobs (on top of the standard XSUM_* set):
///   XSUM_REQUESTS         requests per arm                    (default 2000)
///   XSUM_ZIPF             task-mix skew s                     (default 1.1)
///   XSUM_CLIENTS          threads in the concurrent-miss arms (default 6)
///   XSUM_BATCH_WINDOW_US  batched arm's window                (default 1000)
///   XSUM_BATCH_MAX        batched arm's wave-size cap         (default 8)
///
/// XSUM_JSON emits one record per arm; `bench/compare_perf.py` diffs these
/// across commits.

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/scenario.h"
#include "service/service.h"
#include "service/snapshot_registry.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

using namespace xsum;

namespace {

/// One request of the synthetic stream.
struct Request {
  const core::SummaryTask* task;
  const core::SummarizerOptions* options;
};

void CheckIdentical(const core::Summary& fresh, const core::Summary& cached) {
  bool same = fresh.subgraph.nodes() == cached.subgraph.nodes() &&
              fresh.subgraph.edges() == cached.subgraph.edges() &&
              fresh.unreached_terminals == cached.unreached_terminals &&
              fresh.terminals == cached.terminals &&
              fresh.anchors == cached.anchors &&
              fresh.method == cached.method &&
              fresh.scenario == cached.scenario &&
              fresh.memory_bytes == cached.memory_bytes &&
              fresh.input_paths.size() == cached.input_paths.size();
  for (size_t p = 0; same && p < fresh.input_paths.size(); ++p) {
    same = fresh.input_paths[p].nodes == cached.input_paths[p].nodes &&
           fresh.input_paths[p].edges == cached.input_paths[p].edges;
  }
  if (!same) {
    std::fprintf(stderr,
                 "FATAL: cached summary differs from fresh Summarize call\n");
    std::exit(1);
  }
}

}  // namespace

int main() {
  eval::ExperimentConfig defaults;
  defaults.scale = 0.05;
  defaults.users_per_gender = 8;
  defaults.items_popular = 6;
  defaults.items_unpopular = 6;
  eval::ExperimentRunner runner = bench::MakeRunner(defaults);
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");

  // Distinct task universe: every user unit and user group at every
  // k-prefix — the request shapes panel evaluation and serving repeat.
  std::vector<core::SummaryTask> tasks;
  for (const core::UserRecs& ur : data.users) {
    for (int k = 1; k <= 10; ++k) {
      tasks.push_back(core::MakeUserCentricTask(runner.rec_graph(), ur, k));
    }
  }
  for (const auto& group : data.user_groups) {
    for (int k = 1; k <= 10; ++k) {
      tasks.push_back(core::MakeUserGroupTask(runner.rec_graph(), group, k));
    }
  }
  std::vector<core::SummarizerOptions> methods(2);
  methods[0].method = core::SummaryMethod::kSteiner;
  methods[0].lambda = 1.0;
  methods[1].method = core::SummaryMethod::kPcst;

  // Zipf-skewed stream over (task, method) pairs.
  const size_t num_requests = static_cast<size_t>(
      GetEnvNonNegativeInt("XSUM_REQUESTS", 2000));
  const double skew = GetEnvDouble("XSUM_ZIPF", 1.1);
  const size_t universe = tasks.size() * methods.size();
  ZipfTable zipf(universe, skew);
  Rng rng(runner.config().seed + 99);
  std::vector<Request> stream;
  stream.reserve(num_requests);
  for (size_t r = 0; r < num_requests; ++r) {
    const uint64_t pick = zipf.Sample(&rng);
    stream.push_back({&tasks[pick % tasks.size()],
                      &methods[pick / tasks.size()]});
  }

  std::printf("bench_service: Zipf(s=%.2f) stream of %zu requests over %zu "
              "distinct (task, method) pairs\n",
              skew, stream.size(), universe);
  std::printf("config: %s\n\n", runner.config().Describe().c_str());

  service::GraphSnapshotRegistry registry;
  registry.Publish(
      service::GraphSnapshotRegistry::Alias(runner.rec_graph()));

  const auto replay = [&](service::SummaryService& service) {
    WallTimer timer;
    timer.Start();
    for (const Request& request : stream) {
      const auto result = service.Summarize(*request.task, *request.options);
      bench::CheckOk(result.status(), "service request");
    }
    return timer.ElapsedMillis();
  };

  // Arm 1: cache disabled — every request runs the engine.
  service::ServiceOptions uncached_options;
  uncached_options.enable_cache = false;
  service::SummaryService uncached(&registry, uncached_options);
  const double uncached_ms = replay(uncached);

  // Arm 2: cache enabled — a cold filling pass, then the warm pass the
  // serving steady state looks like.
  service::SummaryService cached(&registry, service::ServiceOptions());
  const double cold_ms = replay(cached);
  const double warm_ms = replay(cached);
  const service::ServiceStats stats = cached.Stats();

  // Arm 3: warm cache with histogram recording off — the control that
  // prices the observability layer. The gate is <2% overhead on the warm
  // path; counters stay on in both arms (they are not optional).
  service::ServiceOptions nometrics_options;
  nometrics_options.enable_metrics = false;
  service::SummaryService nometrics(&registry, nometrics_options);
  replay(nometrics);  // fill
  const double nometrics_warm_ms = replay(nometrics);

  // Safety: cached responses are bit-identical to fresh computation.
  size_t checked = 0;
  for (size_t i = 0; i < tasks.size() && checked < 100; i += 7) {
    for (const core::SummarizerOptions& options : methods) {
      const auto hit = cached.Summarize(tasks[i], options);
      bench::CheckOk(hit.status(), "verify request");
      const auto fresh = core::Summarize(runner.rec_graph(), tasks[i], options);
      bench::CheckOk(fresh.status(), "verify fresh");
      CheckIdentical(*fresh, **hit);
      ++checked;
    }
  }

  const size_t n = runner.rec_graph().graph().num_nodes();
  size_t terminal_sum = 0;
  for (const core::SummaryTask& task : tasks) {
    terminal_sum += task.terminals.size();
  }
  const size_t mean_t = tasks.empty() ? 0 : terminal_sum / tasks.size();

  TextTable table({"arm", "requests", "wall ms", "QPS", "hit rate",
                   "p50 ms", "p99 ms"});
  const auto qps = [&](double ms) {
    return ms > 0.0 ? 1000.0 * static_cast<double>(stream.size()) / ms : 0.0;
  };
  table.AddRow({"cache off", FormatCount(static_cast<int64_t>(stream.size())),
                FormatDouble(uncached_ms, 1), FormatDouble(qps(uncached_ms), 0),
                "-", "-", "-"});
  table.AddRow({"cache cold", FormatCount(static_cast<int64_t>(stream.size())),
                FormatDouble(cold_ms, 1), FormatDouble(qps(cold_ms), 0), "-",
                "-", "-"});
  table.AddRow({"cache warm", FormatCount(static_cast<int64_t>(stream.size())),
                FormatDouble(warm_ms, 1), FormatDouble(qps(warm_ms), 0),
                FormatDouble(100.0 * stats.cache.HitRate(), 1) + "%",
                FormatDouble(stats.p50_ms, 4), FormatDouble(stats.p99_ms, 4)});
  table.AddRow({"warm, metrics off",
                FormatCount(static_cast<int64_t>(stream.size())),
                FormatDouble(nometrics_warm_ms, 1),
                FormatDouble(qps(nometrics_warm_ms), 0), "-", "-", "-"});
  table.Print(std::cout);

  const double metrics_overhead_pct =
      nometrics_warm_ms > 0.0
          ? 100.0 * (warm_ms - nometrics_warm_ms) / nometrics_warm_ms
          : 0.0;
  std::printf("\nmetrics-on overhead vs metrics-off (warm cache): %+.2f%% "
              "(gate < 2%%)\n",
              metrics_overhead_pct);

  const double speedup = warm_ms > 0.0 ? uncached_ms / warm_ms : 0.0;
  std::printf(
      "\nwarm-cache speedup vs cache-off: %.1fx (target >= 5x); "
      "%zu cached responses verified bit-identical to fresh Summarize\n",
      speedup, checked);
  std::printf(
      "cache: %zu entries, %s of %s budget, %llu evictions, "
      "%llu single-flight coalesced\n",
      stats.cache.entries, FormatBytes(stats.cache.bytes).c_str(),
      FormatBytes(stats.cache.max_bytes).c_str(),
      static_cast<unsigned long long>(stats.cache.evictions),
      static_cast<unsigned long long>(stats.coalesced));

  const double per_request_uncached =
      uncached_ms / static_cast<double>(stream.size());
  const double per_request_warm =
      warm_ms / static_cast<double>(stream.size());
  bench::EmitPerfJson({"service.zipf", "ST+PCST.uncached", n, mean_t,
                       per_request_uncached, 0});
  bench::EmitPerfJson({"service.zipf", "ST+PCST.cached_warm", n, mean_t,
                       per_request_warm, stats.cache.bytes});
  bench::EmitPerfJson({"service.zipf", "ST+PCST.cached_warm_nometrics", n,
                       mean_t,
                       nometrics_warm_ms / static_cast<double>(stream.size()),
                       0});

  // Arm 5/6: concurrent cold-miss burst — the micro-batching window's
  // target shape. Client threads race *distinct* KMB requests at a cold
  // cache (every one a miss, nothing to coalesce key-wise); λ = 0 keeps
  // the Eq. (1) overlay a no-op so the misses are wave-eligible. The pair
  // replays the identical stream with the window off, then on
  // (XSUM_BATCH_WINDOW_US / XSUM_BATCH_MAX), and compares wall clock and
  // the service-recorded p99.
  core::SummarizerOptions kmb_eligible;
  kmb_eligible.method = core::SummaryMethod::kSteiner;
  kmb_eligible.lambda = 0.0;
  const size_t clients = static_cast<size_t>(
      std::max<int64_t>(2, GetEnvNonNegativeInt("XSUM_CLIENTS", 6)));
  const auto concurrent_replay = [&](service::SummaryService& service) {
    std::atomic<size_t> next{0};
    WallTimer timer;
    timer.Start();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) return;
          const auto result = service.Summarize(tasks[i], kmb_eligible);
          bench::CheckOk(result.status(), "concurrent miss request");
        }
      });
    }
    for (std::thread& t : threads) t.join();
    return timer.ElapsedMillis();
  };

  service::SummaryService miss_unbatched(&registry,
                                         service::ServiceOptions());
  const double miss_unbatched_ms = concurrent_replay(miss_unbatched);
  const service::ServiceStats unbatched_stats = miss_unbatched.Stats();

  service::ServiceOptions window_options;
  window_options.batch_window_us =
      GetEnvNonNegativeInt("XSUM_BATCH_WINDOW_US", 1000);
  window_options.batch_max = static_cast<size_t>(
      std::max<int64_t>(2, GetEnvNonNegativeInt("XSUM_BATCH_MAX", 8)));
  service::SummaryService miss_batched(&registry, window_options);
  const double miss_batched_ms = concurrent_replay(miss_batched);
  const service::ServiceStats batched_stats = miss_batched.Stats();

  std::printf(
      "\nconcurrent-miss burst (%zu clients, %zu distinct KMB requests):\n"
      "  window off: %8.1f ms  p50 %7.3f ms  p99 %7.3f ms\n"
      "  window on:  %8.1f ms  p50 %7.3f ms  p99 %7.3f ms "
      "(%llu waves, %llu wave requests)\n",
      clients, tasks.size(), miss_unbatched_ms, unbatched_stats.p50_ms,
      unbatched_stats.p99_ms, miss_batched_ms, batched_stats.p50_ms,
      batched_stats.p99_ms,
      static_cast<unsigned long long>(batched_stats.batch_waves),
      static_cast<unsigned long long>(batched_stats.batch_requests));

  // Safety: the batched service's responses (served from its now-warm
  // cache) stay bit-identical to fresh computation — including the
  // memory_bytes accounting the wave layer mirrors.
  size_t wave_checked = 0;
  for (size_t i = 0; i < tasks.size() && wave_checked < 50; i += 11) {
    const auto hit = miss_batched.Summarize(tasks[i], kmb_eligible);
    bench::CheckOk(hit.status(), "batched verify request");
    const auto fresh =
        core::Summarize(runner.rec_graph(), tasks[i], kmb_eligible);
    bench::CheckOk(fresh.status(), "batched verify fresh");
    CheckIdentical(*fresh, **hit);
    ++wave_checked;
  }
  std::printf("%zu batched responses verified bit-identical to fresh "
              "Summarize\n",
              wave_checked);

  bench::EmitPerfJson({"service.batch", "KMB.concurrent_miss.unbatched", n,
                       mean_t,
                       miss_unbatched_ms / static_cast<double>(tasks.size()),
                       0});
  bench::EmitPerfJson({"service.batch", "KMB.concurrent_miss.batched", n,
                       mean_t,
                       miss_batched_ms / static_cast<double>(tasks.size()),
                       0});
  return 0;
}
