/// \file bench_fig07_relevance.cpp
/// \brief Reproduces paper Figure 7: Relevance = total wM weight; baselines lead user-centric, ST grows with lambda, PCST aggregates weight via size.

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kItemCentric,
           core::Scenario::kUserGroup, core::Scenario::kItemGroup},
          eval::MetricKind::kRelevance, "Figure 7: Relevance", std::cout),
      "figure 7");
  return 0;
}
