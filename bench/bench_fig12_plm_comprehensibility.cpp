/// \file bench_fig12_plm_comprehensibility.cpp
/// \brief Reproduces paper Figure 12: comprehensibility against the
/// language-model baselines PLM and PEARLM (user-centric and user-group).
///
/// Expected shape: consistent with Figure 2 — ST improves on both LM
/// baselines; PCST slightly better at higher k in user-group.

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPlm, rec::RecommenderKind::kPearlm},
          {core::Scenario::kUserCentric, core::Scenario::kUserGroup},
          eval::MetricKind::kComprehensibility,
          "Figure 12: Comprehensibility (PLM / PEARLM baselines)", std::cout),
      "figure 12");
  return 0;
}
