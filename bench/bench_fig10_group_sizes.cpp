/// \file bench_fig10_group_sizes.cpp
/// \brief Reproduces paper Figure 10: summarization time vs group size for
/// the user-group and item-group scenarios (ST vs PCST, k = 10).
///
/// Expected shape: ST's complexity depends on the number of terminals |T|,
/// so execution time rises rapidly with group size; PCST's single sweep is
/// independent of |T| and grows only gently.

#include <vector>

#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace xsum;

core::SummarizerOptions StOptions() {
  core::SummarizerOptions options;
  options.method = core::SummaryMethod::kSteiner;
  options.lambda = 1.0;
  options.steiner.variant = core::SteinerOptions::Variant::kKmb;
  return options;
}

core::SummarizerOptions PcstOptions() {
  core::SummarizerOptions options;
  options.method = core::SummaryMethod::kPcst;
  return options;
}

}  // namespace

int main() {
  eval::ExperimentConfig defaults;
  defaults.users_per_gender = 32;  // enough users to form the largest group
  auto runner = bench::MakeRunner(defaults);
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");
  constexpr int kK = 10;

  std::cout << "Figure 10: summarization time vs group size (k=10)\n"
            << "config: " << runner.config().Describe() << "\n\n";

  for (const bool user_side : {true, false}) {
    const std::vector<size_t> group_sizes =
        user_side ? std::vector<size_t>{4, 8, 16, 32, 64}
                  : std::vector<size_t>{2, 4, 8, 12, 24};
    std::vector<std::string> headers = {"method"};
    for (size_t size : group_sizes) headers.push_back(StrCat("size=", size));
    TextTable table(std::move(headers));
    for (const auto& [label, options] :
         {std::pair{std::string("ST l=1"), StOptions()},
          std::pair{std::string("PCST"), PcstOptions()}}) {
      std::vector<double> row;
      for (size_t size : group_sizes) {
        StatAccumulator acc;
        if (user_side) {
          // Chunk the sampled users into groups of `size`.
          for (size_t begin = 0; begin + size <= data.users.size();
               begin += size) {
            std::vector<core::UserRecs> group(
                data.users.begin() + static_cast<ptrdiff_t>(begin),
                data.users.begin() + static_cast<ptrdiff_t>(begin + size));
            const auto task =
                core::MakeUserGroupTask(runner.rec_graph(), group, kK);
            const auto summary = bench::ValueOrDie(
                core::Summarize(runner.rec_graph(), task, options),
                "summarize");
            acc.Add(summary.elapsed_ms);
          }
        } else {
          for (size_t begin = 0; begin + size <= data.items.size();
               begin += size) {
            std::vector<core::ItemAudience> group(
                data.items.begin() + static_cast<ptrdiff_t>(begin),
                data.items.begin() + static_cast<ptrdiff_t>(begin + size));
            const auto task =
                core::MakeItemGroupTask(runner.rec_graph(), group, kK);
            const auto summary = bench::ValueOrDie(
                core::Summarize(runner.rec_graph(), task, options),
                "summarize");
            acc.Add(summary.elapsed_ms);
          }
        }
        row.push_back(acc.empty() ? 0.0 : acc.Mean());
      }
      table.AddDoubleRow(label, row, 2);
    }
    std::cout << (user_side ? "(a/b) user-group time (ms)"
                            : "(c/d) item-group time (ms)")
              << "\n"
              << table.ToString() << "\n";
  }
  return 0;
}
