/// \file bench_fig10_group_sizes.cpp
/// \brief Reproduces paper Figure 10: summarization time vs group size for
/// the user-group and item-group scenarios (ST vs PCST, k = 10).
///
/// Expected shape: ST's complexity depends on the number of terminals |T|,
/// so execution time rises rapidly with group size; PCST's single sweep is
/// independent of |T| and grows only gently.
///
/// Queries run through the batch summarization engine (one persistent
/// workspace, epoch-reset between groups); each cell also lands as a JSON
/// perf record when XSUM_JSON is set.

#include <vector>

#include "bench_common.h"
#include "core/batch.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace xsum;

core::SummarizerOptions StOptions() {
  core::SummarizerOptions options;
  options.method = core::SummaryMethod::kSteiner;
  options.lambda = 1.0;
  options.steiner.variant = core::SteinerOptions::Variant::kKmb;
  return options;
}

core::SummarizerOptions PcstOptions() {
  core::SummarizerOptions options;
  options.method = core::SummaryMethod::kPcst;
  return options;
}

}  // namespace

int main() {
  eval::ExperimentConfig defaults;
  defaults.users_per_gender = 32;  // enough users to form the largest group
  auto runner = bench::MakeRunner(defaults);
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");
  constexpr int kK = 10;
  core::BatchSummarizer batch(runner.rec_graph(), /*num_workers=*/1);
  const size_t num_nodes = runner.rec_graph().graph().num_nodes();

  std::cout << "Figure 10: summarization time vs group size (k=10)\n"
            << "config: " << runner.config().Describe() << "\n\n";

  for (const bool user_side : {true, false}) {
    const std::vector<size_t> group_sizes =
        user_side ? std::vector<size_t>{4, 8, 16, 32, 64}
                  : std::vector<size_t>{2, 4, 8, 12, 24};
    std::vector<std::string> headers = {"method"};
    for (size_t size : group_sizes) headers.push_back(StrCat("size=", size));
    TextTable table(std::move(headers));
    for (const auto& [label, options] :
         {std::pair{std::string("ST l=1"), StOptions()},
          std::pair{std::string("PCST"), PcstOptions()}}) {
      std::vector<double> row;
      for (size_t size : group_sizes) {
        StatAccumulator acc;
        size_t terminal_sum = 0;
        size_t task_count = 0;
        if (user_side) {
          // Chunk the sampled users into groups of `size`.
          for (size_t begin = 0; begin + size <= data.users.size();
               begin += size) {
            std::vector<core::UserRecs> group(
                data.users.begin() + static_cast<ptrdiff_t>(begin),
                data.users.begin() + static_cast<ptrdiff_t>(begin + size));
            const auto task =
                core::MakeUserGroupTask(runner.rec_graph(), group, kK);
            const auto summary =
                bench::ValueOrDie(batch.Run(task, options), "summarize");
            acc.Add(summary.elapsed_ms);
            terminal_sum += task.terminals.size();
            ++task_count;
          }
        } else {
          for (size_t begin = 0; begin + size <= data.items.size();
               begin += size) {
            std::vector<core::ItemAudience> group(
                data.items.begin() + static_cast<ptrdiff_t>(begin),
                data.items.begin() + static_cast<ptrdiff_t>(begin + size));
            const auto task =
                core::MakeItemGroupTask(runner.rec_graph(), group, kK);
            const auto summary =
                bench::ValueOrDie(batch.Run(task, options), "summarize");
            acc.Add(summary.elapsed_ms);
            terminal_sum += task.terminals.size();
            ++task_count;
          }
        }
        row.push_back(acc.empty() ? 0.0 : acc.Mean());
        if (task_count > 0) {
          bench::EmitPerfJson(
              {user_side ? "fig10.user_group" : "fig10.item_group",
               StrCat(label, ".size=", size), num_nodes,
               terminal_sum / task_count, acc.Mean(),
               batch.peak_workspace_bytes()});
        }
      }
      table.AddDoubleRow(label, row, 2);
    }
    std::cout << (user_side ? "(a/b) user-group time (ms)"
                            : "(c/d) item-group time (ms)")
              << "\n"
              << table.ToString() << "\n";
  }
  return 0;
}
