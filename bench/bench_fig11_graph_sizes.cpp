/// \file bench_fig11_graph_sizes.cpp
/// \brief Reproduces paper Figure 11 (with Table III's synthetic graphs):
/// summarization time and memory vs graph size for the user-centric and
/// user-group scenarios, k = 10 and user groups as in §V-B-8.
///
/// The paper tests five random graphs of 10k-30k nodes with ML1M-like
/// type ratios and ~56 edges per node, using synthetic random 3-hop
/// user→item paths as input explanations. Defaults here are a quarter of
/// Table III's node counts (XSUM_SCALE scales them; 4.0 = paper size).
///
/// Expected shape: both algorithms slow with graph size; ST rises much
/// faster (|T| Dijkstra runs over a growing graph) — especially user-group
/// — while PCST grows gently.
///
/// All queries share one batch-engine context whose workspace grows to the
/// largest graph and is epoch-reused across sizes — the cross-graph reuse
/// path of `core::SummarizeContext`. Cells land as JSON perf records when
/// XSUM_JSON is set.

#include <vector>

#include "bench_common.h"
#include "core/batch.h"
#include "data/synthetic.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace xsum;

/// Builds a random ≤3-hop explanation path u -> i1 -> x -> i2 ending at a
/// random item, mimicking the paper's synthetic baseline paths.
graph::Path RandomPath(const data::RecGraph& rg, uint32_t user, Rng* rng) {
  const graph::KnowledgeGraph& g = rg.graph();
  graph::Path path;
  const graph::NodeId u = rg.UserNode(user);
  path.nodes.push_back(u);
  graph::NodeId current = u;
  for (int hop = 0; hop < 3; ++hop) {
    const auto nbrs = g.Neighbors(current);
    if (nbrs.empty()) break;
    // On the last hop insist on an item endpoint if one is adjacent.
    graph::AdjEntry chosen = nbrs[rng->Uniform(nbrs.size())];
    if (hop == 2) {
      for (int attempt = 0; attempt < 8 && !g.IsItem(chosen.neighbor);
           ++attempt) {
        chosen = nbrs[rng->Uniform(nbrs.size())];
      }
    }
    path.nodes.push_back(chosen.neighbor);
    path.edges.push_back(chosen.edge);
    current = chosen.neighbor;
  }
  return path;
}

}  // namespace

int main() {
  const double scale = GetEnvDouble("XSUM_SCALE", 0.25);
  const std::vector<size_t> paper_nodes = {10000, 15000, 20000, 25000, 30000};
  constexpr int kK = 10;
  constexpr size_t kGroupSize = 25;  // paper: two groups of 100 users
  constexpr size_t kNumGroups = 2;
  constexpr size_t kUserCentricSamples = 20;

  std::cout << "Figure 11: performance vs synthetic graph size "
            << "(Table III graphs at scale " << FormatDouble(scale, 2)
            << "; XSUM_SCALE=4.0 would exceed Table III)\n\n";

  std::vector<std::string> headers = {"method"};
  for (size_t i = 0; i < paper_nodes.size(); ++i) {
    headers.push_back(StrCat(
        "G", i + 1, "=",
        static_cast<size_t>(static_cast<double>(paper_nodes[i]) * scale)));
  }
  TextTable time_uc(headers), time_ug(headers), mem_uc(headers),
      mem_ug(headers);

  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;
  st.steiner.variant = core::SteinerOptions::Variant::kKmb;
  core::SummarizerOptions pcst;
  pcst.method = core::SummaryMethod::kPcst;

  core::SummarizeContext ctx;  // shared across methods and graph sizes
  for (const auto& [label, options] :
       {std::pair{std::string("ST l=1"), st},
        std::pair{std::string("PCST"), pcst}}) {
    std::vector<double> tuc, tug, muc, mug;
    for (size_t paper_n : paper_nodes) {
      const size_t total_nodes =
          std::max<size_t>(static_cast<size_t>(paper_n * scale), 64);
      auto synth = data::ScalingConfig(total_nodes, /*seed=*/44);
      const data::Dataset ds = data::MakeSyntheticDataset(synth);
      const auto rg = bench::ValueOrDie(data::BuildRecGraph(ds), "graph");
      Rng rng(91);

      StatAccumulator t_uc, t_ug, m_uc, m_ug;
      // User-centric: random users with k random paths each.
      for (size_t s = 0; s < kUserCentricSamples; ++s) {
        core::UserRecs recs;
        recs.user = static_cast<uint32_t>(rng.Uniform(ds.num_users));
        for (int r = 0; r < kK; ++r) {
          graph::Path p = RandomPath(rg, recs.user, &rng);
          if (p.nodes.size() < 2 || !rg.graph().IsItem(p.nodes.back())) {
            continue;
          }
          recs.recs.push_back(
              {rg.NodeToItem(p.nodes.back()), 1.0, std::move(p)});
        }
        if (recs.recs.empty()) continue;
        const auto task = core::MakeUserCentricTask(rg, recs, kK);
        const auto summary = bench::ValueOrDie(
            core::SummarizeWith(rg, task, options, ctx), "sum");
        t_uc.Add(summary.elapsed_ms);
        m_uc.Add(static_cast<double>(summary.memory_bytes) / (1024.0 * 1024.0));
      }
      // User-group: two groups of kGroupSize users.
      size_t group_tasks = 0;
      size_t group_terminals = 0;
      for (size_t gidx = 0; gidx < kNumGroups; ++gidx) {
        std::vector<core::UserRecs> group;
        for (size_t member = 0; member < kGroupSize; ++member) {
          core::UserRecs recs;
          recs.user = static_cast<uint32_t>(rng.Uniform(ds.num_users));
          for (int r = 0; r < kK; ++r) {
            graph::Path p = RandomPath(rg, recs.user, &rng);
            if (p.nodes.size() < 2 || !rg.graph().IsItem(p.nodes.back())) {
              continue;
            }
            recs.recs.push_back(
                {rg.NodeToItem(p.nodes.back()), 1.0, std::move(p)});
          }
          if (!recs.recs.empty()) group.push_back(std::move(recs));
        }
        if (group.empty()) continue;
        const auto task = core::MakeUserGroupTask(rg, group, kK);
        const auto summary = bench::ValueOrDie(
            core::SummarizeWith(rg, task, options, ctx), "sum");
        t_ug.Add(summary.elapsed_ms);
        m_ug.Add(static_cast<double>(summary.memory_bytes) / (1024.0 * 1024.0));
        ++group_tasks;
        group_terminals += task.terminals.size();
      }
      tuc.push_back(t_uc.Mean());
      tug.push_back(t_ug.Mean());
      muc.push_back(m_uc.Mean());
      mug.push_back(m_ug.Mean());
      bench::EmitPerfJson({"fig11.user_centric", label,
                           rg.graph().num_nodes(), kK + 1, t_uc.Mean(),
                           ctx.MemoryFootprintBytes()});
      if (group_tasks > 0) {
        bench::EmitPerfJson({"fig11.user_group", label, rg.graph().num_nodes(),
                             group_terminals / group_tasks, t_ug.Mean(),
                             ctx.MemoryFootprintBytes()});
      }
    }
    time_uc.AddDoubleRow(label, tuc, 2);
    time_ug.AddDoubleRow(label, tug, 2);
    mem_uc.AddDoubleRow(label, muc, 3);
    mem_ug.AddDoubleRow(label, mug, 3);
  }

  std::cout << "(a) user-centric time (ms)\n" << time_uc.ToString() << "\n";
  std::cout << "(b) user-group time (ms)\n" << time_ug.ToString() << "\n";
  std::cout << "(c) user-centric memory (MiB)\n" << mem_uc.ToString() << "\n";
  std::cout << "(d) user-group memory (MiB)\n" << mem_ug.ToString() << "\n";
  return 0;
}
