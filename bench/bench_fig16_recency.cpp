/// \file bench_fig16_recency.cpp
/// \brief Reproduces paper Figure 16: effect of the rating/recency balance
/// (β1, β2) on ST summaries — comprehensibility and diversity at k = 10,
/// user-centric and user-group, PGPR paths.
///
/// Expected shape: rating-dominant weights (β1 high) maximize
/// comprehensibility (popular items → smaller summaries); recency-dominant
/// weights (β2 high) maximize diversity (fresher, less common items).

#include <vector>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace xsum;
  const std::vector<std::pair<double, double>> betas = {
      {1.0, 0.0}, {0.75, 0.25}, {0.5, 0.5}, {0.25, 0.75}, {0.0, 1.0}};

  std::cout << "Figure 16: comprehensibility & diversity vs (b1, b2), ST,"
            << " k=10, PGPR paths\n\n";

  for (const core::Scenario scenario :
       {core::Scenario::kUserCentric, core::Scenario::kUserGroup}) {
    std::vector<std::string> headers = {"metric"};
    for (const auto& [b1, b2] : betas) {
      headers.push_back(
          StrCat("b1=", FormatDouble(b1, 2), " b2=", FormatDouble(b2, 2)));
    }
    TextTable table(std::move(headers));
    std::vector<double> comp_row;
    std::vector<double> div_row;

    for (const auto& [b1, b2] : betas) {
      eval::ExperimentConfig defaults;
      defaults.weight_params.beta1 = b1;
      defaults.weight_params.beta2 = b2;
      // Recency only matters if the decay window is visible within the
      // dataset's timestamp span.
      defaults.weight_params.gamma = 4.0e-8;
      defaults.ks = {10};
      auto runner = bench::MakeRunner(defaults);
      const auto data = bench::ValueOrDie(
          runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");

      eval::PanelSpec spec;
      spec.scenario = scenario;
      spec.ks = {10};
      eval::MethodSpec st;
      st.options.method = core::SummaryMethod::kSteiner;
      st.options.lambda = 1.0;
      st.options.steiner.variant = runner.config().steiner_variant;
      st.label = "ST l=1";
      spec.methods = {st};

      spec.metric = eval::MetricKind::kComprehensibility;
      auto comp = bench::ValueOrDie(runner.RunPanel(data, spec), "comp");
      comp_row.push_back(comp[0].values[0]);

      spec.metric = eval::MetricKind::kDiversity;
      auto div = bench::ValueOrDie(runner.RunPanel(data, spec), "div");
      div_row.push_back(div[0].values[0]);
    }
    table.AddDoubleRow("comprehensibility", comp_row, 4);
    table.AddDoubleRow("diversity", div_row, 4);
    std::cout << "(" << core::ScenarioToString(scenario) << ")\n"
              << table.ToString() << "\n";
  }
  return 0;
}
