/// \file bench_ablation_pcst_prizes.cpp
/// \brief Ablation (DESIGN.md §1.4-2): PCST configuration choices the
/// paper discusses in §IV-B / §V-A — prize policy (unit vs α/β), edge
/// weights on vs ignored, and strong pruning. The paper reports that
/// weighted edges made summaries "excessively large", motivating the final
/// unit-prize/unit-cost setup.

#include <vector>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  const auto data = bench::ValueOrDie(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr), "baseline");
  constexpr int kK = 10;

  struct Variant {
    std::string label;
    core::PcstOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.label = "paper default (p=1/0, unit cost, grown region)";
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "strong pruning (tight tree)";
    v.options.strong_prune = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "alpha/beta prizes";
    v.options.prize_policy = core::PcstOptions::PrizePolicy::kAlphaBeta;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "weighted edge costs (abandoned in paper)";
    v.options.use_edge_weights = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "degree-centrality prizes (paper SVII future work)";
    v.options.prize_policy =
        core::PcstOptions::PrizePolicy::kDegreeCentrality;
    variants.push_back(v);
  }

  std::cout << "Ablation: PCST prize/cost/pruning policies (user-centric,"
            << " k=10)\n"
            << "config: " << runner.config().Describe() << "\n\n";

  TextTable table({"variant", "edges", "comprehensibility", "diversity",
                   "privacy", "time(ms)"});
  for (const Variant& variant : variants) {
    core::SummarizerOptions options;
    options.method = core::SummaryMethod::kPcst;
    options.pcst = variant.options;

    StatAccumulator edges, comp, div, priv, time_ms;
    for (const core::UserRecs& ur : data.users) {
      const auto task = core::MakeUserCentricTask(runner.rec_graph(), ur, kK);
      const auto summary = bench::ValueOrDie(
          core::Summarize(runner.rec_graph(), task, options), "summarize");
      const auto view = metrics::MakeView(runner.rec_graph().graph(), summary);
      edges.Add(static_cast<double>(summary.subgraph.num_edges()));
      comp.Add(metrics::Comprehensibility(view));
      div.Add(metrics::Diversity(view));
      priv.Add(metrics::Privacy(runner.rec_graph().graph(), view));
      time_ms.Add(summary.elapsed_ms);
    }
    table.AddRow({variant.label, FormatDouble(edges.Mean(), 1),
                  FormatDouble(comp.Mean(), 4), FormatDouble(div.Mean(), 4),
                  FormatDouble(priv.Mean(), 4),
                  FormatDouble(time_ms.Mean(), 2)});
  }
  std::cout << table.ToString();
  return 0;
}
