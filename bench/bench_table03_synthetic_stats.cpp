/// \file bench_table03_synthetic_stats.cpp
/// \brief Reproduces paper Table III: statistics of the five synthetic
/// scaling graphs (10k-30k nodes at scale 1.0, ML1M-like type ratios,
/// ~56 edges per node). Defaults generate quarter-scale graphs;
/// XSUM_SCALE=1.0 reproduces the published sizes.

#include <vector>

#include "bench_common.h"
#include "data/graph_stats.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace xsum;
  const double scale = GetEnvDouble("XSUM_SCALE", 0.25);
  const std::vector<size_t> paper_nodes = {10000, 15000, 20000, 25000, 30000};

  std::cout << "Table III analogue: synthetic scaling graph statistics"
            << " (scale=" << FormatDouble(scale, 2)
            << "; XSUM_SCALE=1.0 = paper sizes)\n\n";
  TextTable table({"Property", "Graph 1", "Graph 2", "Graph 3", "Graph 4",
                   "Graph 5"});
  std::vector<std::string> users = {"Number of users"};
  std::vector<std::string> items = {"Number of items"};
  std::vector<std::string> entities = {"Number of external entities"};
  std::vector<std::string> nodes = {"Total number of nodes"};
  std::vector<std::string> edges = {"Total edges"};

  for (size_t paper_n : paper_nodes) {
    const size_t total =
        std::max<size_t>(static_cast<size_t>(paper_n * scale), 64);
    const auto ds = data::MakeSyntheticDataset(data::ScalingConfig(total));
    const auto rg = bench::ValueOrDie(data::BuildRecGraph(ds), "graph");
    const auto stats = data::ComputeGraphStats(
        rg, data::GraphStatsOptions{/*path_length_samples=*/4,
                                    /*diameter_sweeps=*/2, /*seed=*/7});
    users.push_back(FormatCount(static_cast<int64_t>(stats.num_users)));
    items.push_back(FormatCount(static_cast<int64_t>(stats.num_items)));
    entities.push_back(FormatCount(static_cast<int64_t>(stats.num_entities)));
    nodes.push_back(FormatCount(static_cast<int64_t>(stats.num_nodes)));
    edges.push_back(FormatCount(static_cast<int64_t>(stats.num_edges)));
  }
  table.AddRow(users);
  table.AddRow(items);
  table.AddRow(entities);
  table.AddRow(nodes);
  table.AddRow(edges);
  std::cout << table.ToString()
            << "\npaper (scale 1.0): 10k/15k/20k/25k/30k nodes with"
               " 559,734 ... 1,679,202 edges\n";
  return 0;
}
