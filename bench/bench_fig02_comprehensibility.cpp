/// \file bench_fig02_comprehensibility.cpp
/// \brief Reproduces paper Figure 2: comprehensibility C(S) = 1/|E_S| for
/// the four scenarios × {PGPR, CAFE} baselines, k = 1..10.
///
/// Expected shape (paper §V-B-1): ST variants score highest (single
/// compact tree vs one 3-hop path per recommendation); PCST beats the
/// baselines only in the group scenarios.

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kItemCentric,
           core::Scenario::kUserGroup, core::Scenario::kItemGroup},
          eval::MetricKind::kComprehensibility,
          "Figure 2: Comprehensibility", std::cout),
      "figure 2");
  return 0;
}
