/// \file bench_fig14_lfm1m_comprehensibility.cpp
/// \brief Reproduces paper Figure 14: comprehensibility on the LFM1M
/// (LastFM) dataset, user-centric and user-group, PGPR and CAFE baselines.
///
/// Expected shape: aligned with the ML1M findings of Figure 2.

#include "bench_common.h"

int main() {
  using namespace xsum;
  eval::ExperimentConfig defaults;
  defaults.dataset = eval::DatasetKind::kLfm1m;
  auto runner = bench::MakeRunner(defaults);
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kUserGroup},
          eval::MetricKind::kComprehensibility,
          "Figure 14: Comprehensibility (LFM1M)", std::cout),
      "figure 14");
  return 0;
}
