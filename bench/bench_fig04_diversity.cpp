/// \file bench_fig04_diversity.cpp
/// \brief Reproduces paper Figure 4: Diversity D(S) = mean (1 - edge-pair Jaccard); baselines lowest (fixed 3-hop paths), PCST highest (largest summaries).

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kItemCentric,
           core::Scenario::kUserGroup, core::Scenario::kItemGroup},
          eval::MetricKind::kDiversity, "Figure 4: Diversity", std::cout),
      "figure 4");
  return 0;
}
