/// \file bench_common.h
/// \brief Shared plumbing of the bench binaries: config-from-env, error
/// aborts, and the standard header block every bench prints.

#ifndef XSUM_BENCH_BENCH_COMMON_H_
#define XSUM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "eval/experiment.h"
#include "eval/figure.h"
#include "eval/runner.h"
#include "util/status.h"

namespace xsum::bench {

/// Aborts the bench with a diagnostic if \p status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

/// Unwraps a Result or aborts.
template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "[%s] failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

/// Builds and initializes a runner from env-overridden defaults.
inline eval::ExperimentRunner MakeRunner(eval::ExperimentConfig defaults) {
  eval::ExperimentRunner runner(
      eval::ExperimentConfig::FromEnv(std::move(defaults)));
  CheckOk(runner.Init(), "runner init");
  return runner;
}

}  // namespace xsum::bench

#endif  // XSUM_BENCH_BENCH_COMMON_H_
