/// \file bench_common.h
/// \brief Shared plumbing of the bench binaries: config-from-env, error
/// aborts, the standard header block every bench prints, and the
/// machine-readable JSON perf records the perf-tracking tooling consumes.

#ifndef XSUM_BENCH_BENCH_COMMON_H_
#define XSUM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "eval/experiment.h"
#include "eval/figure.h"
#include "eval/runner.h"
#include "util/env.h"
#include "util/status.h"

namespace xsum::bench {

/// Aborts the bench with a diagnostic if \p status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[%s] failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

/// Unwraps a Result or aborts.
template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "[%s] failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

/// Builds and initializes a runner from env-overridden defaults.
inline eval::ExperimentRunner MakeRunner(eval::ExperimentConfig defaults) {
  eval::ExperimentRunner runner(
      eval::ExperimentConfig::FromEnv(std::move(defaults)));
  CheckOk(runner.Init(), "runner init");
  return runner;
}

/// \brief One machine-readable performance observation. Future PRs track
/// the perf trajectory by diffing these records across commits.
struct PerfRecord {
  std::string bench;    ///< bench binary / section, e.g. "fig10.user_group"
  std::string method;   ///< method label, e.g. "ST-KMB.batch"
  size_t n = 0;         ///< graph nodes
  size_t t = 0;         ///< terminals per task (mean, rounded)
  double wall_ms = 0.0; ///< mean wall time per summarization call
  size_t peak_workspace_bytes = 0;
};

/// \brief Appends \p record as one JSON line to the file named by the
/// `XSUM_JSON` env var ("-" = stdout); no-op when the var is unset.
/// Failures are logged, not fatal (benches should not die on export).
inline void EmitPerfJson(const PerfRecord& record) {
  const std::string dest = GetEnvString("XSUM_JSON", "");
  if (dest.empty()) return;
  std::FILE* out = dest == "-" ? stdout : std::fopen(dest.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "[perf json] cannot open %s\n", dest.c_str());
    return;
  }
  std::fprintf(out,
               "{\"bench\":\"%s\",\"method\":\"%s\",\"n\":%zu,\"t\":%zu,"
               "\"wall_ms\":%.6f,\"peak_workspace_bytes\":%zu}\n",
               record.bench.c_str(), record.method.c_str(), record.n, record.t,
               record.wall_ms, record.peak_workspace_bytes);
  if (out != stdout) std::fclose(out);
}

}  // namespace xsum::bench

#endif  // XSUM_BENCH_BENCH_COMMON_H_
