/// \file bench_table02_ml1m_stats.cpp
/// \brief Reproduces paper Table II: statistics of the ML1M
/// knowledge-based graph. At XSUM_SCALE=1.0 the generated graph matches
/// the published node counts (6,040 users / 3,883 items / ~9.9k external)
/// and edge volumes (932k rated + 178k triples); the paper reports
/// avg degree 113.45, density 0.0057, avg path length 3.20, diameter 6.

#include "bench_common.h"
#include "data/graph_stats.h"
#include "util/string_util.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  const auto stats = data::ComputeGraphStats(runner.rec_graph());
  std::cout << stats.ToString(StrCat(
                   "Table II analogue: ML1M knowledge-based graph statistics"
                   " (scale=",
                   FormatDouble(runner.config().scale, 3),
                   "; XSUM_SCALE=1.0 = paper size)"))
            << "\npaper (scale 1.0): 6,040 users / 3,883 items / ~9.9k"
               " external; 932,293 + 178,461 edges; avg degree 113.45;"
               " density 0.0057; avg path length 3.20; diameter 6\n";
  return 0;
}
