#!/usr/bin/env python3
"""Compare two XSUM_JSON perf-record files and flag throughput regressions.

The bench binaries append one JSON object per line when XSUM_JSON is set:

    {"bench": "service.zipf", "method": "ST+PCST.cached_warm",
     "n": 594, "t": 8, "wall_ms": 0.000656, "peak_workspace_bytes": 186412}

This script joins two such files on (bench, method, n, t) — duplicate
keys are averaged — and compares mean wall_ms per key. A key whose new
wall time exceeds the old by more than --threshold (default 20%) is a
regression; any regression makes the exit code 1, so the script can gate
CI. Keys present in only one file are reported but never fatal (benches
come and go across commits).

Usage:
    compare_perf.py OLD.jsonl NEW.jsonl [--threshold 0.20]

Typical CI flow: download the perf-records artifact of the base commit,
run the bench on the candidate with XSUM_JSON, then diff the two files.
"""

import argparse
import json
import math
import sys
from collections import defaultdict


def load_records(path):
    """Returns {(bench, method, n, t): mean wall_ms}."""
    sums = defaultdict(float)
    counts = defaultdict(int)
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = (record["bench"], record["method"],
                       int(record.get("n", 0)), int(record.get("t", 0)))
                wall_ms = float(record["wall_ms"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as e:
                print(f"{path}:{line_no}: skipping malformed record ({e})",
                      file=sys.stderr)
                continue
            if not math.isfinite(wall_ms):
                # A NaN/inf sample would poison the per-key mean and make
                # every comparison of that key vacuously "ok".
                print(f"{path}:{line_no}: skipping non-finite wall_ms "
                      f"({record['wall_ms']!r})", file=sys.stderr)
                continue
            sums[key] += wall_ms
            counts[key] += 1
    return {key: sums[key] / counts[key] for key in sums}


def main():
    parser = argparse.ArgumentParser(
        description="Flag wall-time regressions between two XSUM_JSON files.")
    parser.add_argument("old", help="baseline record file (JSON lines)")
    parser.add_argument("new", help="candidate record file (JSON lines)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.20 = +20%%)")
    args = parser.parse_args()

    old = load_records(args.old)
    new = load_records(args.new)
    if not old or not new:
        print("error: no parseable records in "
              f"{args.old if not old else args.new}", file=sys.stderr)
        return 2

    overlap = set(old) & set(new)
    if not overlap:
        # Tolerated (bench suites can be renamed wholesale), but called out
        # loudly: a gate with no common rows verifies nothing.
        print("warning: no overlapping keys between the two files — "
              "every row is one-sided and the gate is vacuous",
              file=sys.stderr)

    regressions = []
    skipped = 0
    width = max(len("/".join(k[:2])) for k in (set(old) | set(new)))
    for key in sorted(set(old) | set(new)):
        name = "/".join(key[:2])
        if key not in old:
            print(f"  {name:<{width}}  NEW (no baseline)")
            continue
        if key not in new:
            print(f"  {name:<{width}}  GONE (baseline only)")
            continue
        if old[key] <= 0.0 or new[key] <= 0.0:
            # Smoke-scale runs can legitimately report ~0 wall time; a
            # ratio against zero is meaningless, so the row degrades to a
            # warning instead of a spurious regression (or a crash).
            print(f"  {name:<{width}}  {old[key]:.6f} -> {new[key]:.6f} ms "
                  "SKIPPED (zero wall time — not comparable)")
            skipped += 1
            continue
        ratio = new[key] / old[key]
        delta = 100.0 * (ratio - 1.0)
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            regressions.append((name, delta))
        elif ratio < 1.0 - args.threshold:
            verdict = "improved"
        print(f"  {name:<{width}}  {old[key]:.6f} -> {new[key]:.6f} ms "
              f"({delta:+.1f}%)  {verdict}")

    if skipped:
        print(f"warning: {skipped} key(s) skipped for zero wall time — "
              "those rows verified nothing", file=sys.stderr)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"+{100.0 * args.threshold:.0f}%:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
