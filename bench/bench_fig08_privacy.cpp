/// \file bench_fig08_privacy.cpp
/// \brief Reproduces paper Figure 8: Privacy = 1 - user-node share; PCST highest, ST below baselines (routes through weighted user-item edges).

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kItemCentric,
           core::Scenario::kUserGroup, core::Scenario::kItemGroup},
          eval::MetricKind::kPrivacy, "Figure 8: Privacy", std::cout),
      "figure 8");
  return 0;
}
