/// \file bench_fig06_consistency.cpp
/// \brief Reproduces paper Figure 6: Consistency = mean Jaccard of consecutive-k node sets; baselines most stable user-centric, ST/PCST high elsewhere.

#include "bench_common.h"

int main() {
  using namespace xsum;
  auto runner = bench::MakeRunner(eval::ExperimentConfig{});
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kItemCentric,
           core::Scenario::kUserGroup, core::Scenario::kItemGroup},
          eval::MetricKind::kConsistency, "Figure 6: Consistency", std::cout),
      "figure 6");
  return 0;
}
