/// \file bench_fig15_lfm1m_diversity.cpp
/// \brief Reproduces paper Figure 15: diversity on the LFM1M dataset,
/// user-centric and user-group, PGPR and CAFE baselines.
///
/// Expected shape: aligned with the ML1M findings of Figure 4.

#include "bench_common.h"

int main() {
  using namespace xsum;
  eval::ExperimentConfig defaults;
  defaults.dataset = eval::DatasetKind::kLfm1m;
  auto runner = bench::MakeRunner(defaults);
  bench::CheckOk(
      eval::RunQualityFigure(
          runner, {rec::RecommenderKind::kPgpr, rec::RecommenderKind::kCafe},
          {core::Scenario::kUserCentric, core::Scenario::kUserGroup},
          eval::MetricKind::kDiversity, "Figure 15: Diversity (LFM1M)",
          std::cout),
      "figure 15");
  return 0;
}
