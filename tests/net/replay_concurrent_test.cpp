/// Regression tests for the concurrent replay harness (net/replay.h):
/// the latency accumulator must fold exactly the slots the clients
/// actually completed. A client that fails mid-range used to leave its
/// remaining zero-initialized slots in the fold, silently dragging every
/// percentile toward 0 — the bug these tests pin down.

#include "net/replay.h"

#include <gtest/gtest.h>

#include <atomic>

namespace xsum::net {
namespace {

HttpResponse Ok() {
  HttpResponse response;
  response.status = 200;
  response.body = "ok";
  return response;
}

HttpResponse ServerError() {
  HttpResponse response;
  response.status = 500;
  response.body = "boom";
  return response;
}

TEST(ReplayConcurrentTest, AllSuccessFoldsEverySlotExactlyOnce) {
  std::atomic<size_t> issued{0};
  const ReplayStats stats = ReplayConcurrent(
      17, 4, [&](size_t, size_t) {
        issued.fetch_add(1);
        return Ok();
      });
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(issued.load(), 17u);
  EXPECT_EQ(stats.latencies_ms.count(), 17u)
      << "every completed request folds exactly once";
  EXPECT_GT(stats.wall_ms, 0.0);
}

TEST(ReplayConcurrentTest, FailedClientFoldsOnlyItsCompletedSlots) {
  // 8 requests, 2 clients, 4 each: client 1 succeeds at its first index
  // (4) and fails at its second (5). Only 4 (client 0) + 1 (client 1)
  // latencies may fold — the failing request's slot and the never-issued
  // slots 6..7 must stay out, or the zero-valued entries would skew
  // every percentile toward 0.
  const ReplayStats stats = ReplayConcurrent(
      8, 2, [](size_t c, size_t i) {
        if (c == 1 && i == 5) return ServerError();
        return Ok();
      });
  EXPECT_FALSE(stats.ok);
  EXPECT_EQ(stats.error_status, 500);
  EXPECT_EQ(stats.error_body, "boom");
  EXPECT_EQ(stats.latencies_ms.count(), 5u)
      << "folded unwritten or failed slots into the percentiles";
  // Real latencies are all positive; a zero minimum is the bug's
  // signature.
  EXPECT_GT(stats.latencies_ms.Min(), 0.0);
}

TEST(ReplayConcurrentTest, ImmediateFailureFoldsNothingForThatClient) {
  // Client 1 fails its very first request: zero completed slots on that
  // client, and the surviving client still contributes its full share.
  const ReplayStats stats = ReplayConcurrent(
      10, 2, [](size_t c, size_t) {
        if (c == 1) return ServerError();
        return Ok();
      });
  EXPECT_FALSE(stats.ok);
  EXPECT_EQ(stats.latencies_ms.count(), 5u);
}

TEST(ReplayConcurrentTest, ZeroClientsDegradesToOneAndRemainderLands) {
  // num_clients 0 is coerced to 1; a count that does not divide the
  // client count still issues every index exactly once (the last client
  // takes the remainder).
  std::atomic<uint64_t> mask{0};
  const ReplayStats stats = ReplayConcurrent(
      7, 0, [&](size_t, size_t i) {
        mask.fetch_or(uint64_t{1} << i);
        return Ok();
      });
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(mask.load(), (uint64_t{1} << 7) - 1);
  EXPECT_EQ(stats.latencies_ms.count(), 7u);
}

}  // namespace
}  // namespace xsum::net
