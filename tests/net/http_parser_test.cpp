/// Property tests of the HTTP request/response parsers: arbitrary read
/// boundaries never change the parse, truncated/oversized/garbage inputs
/// never crash and always map to the documented 4xx/5xx statuses, and
/// pipelined keep-alive messages survive `Reset`.

#include "net/http.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace xsum::net {
namespace {

HttpRequestParser::State FeedWhole(HttpRequestParser* parser,
                                   const std::string& wire) {
  return parser->Consume(wire);
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /summarize HTTP/1.1\r\n"
      "Host: localhost:8080\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"user\":7}x";
  ASSERT_EQ(FeedWhole(&parser, wire), HttpRequestParser::State::kDone);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/summarize");
  EXPECT_EQ(request.version_minor, 1);
  EXPECT_EQ(request.body, "{\"user\":7}x");
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*request.FindHeader("content-type"), "application/json");
  EXPECT_EQ(request.FindHeader("absent"), nullptr);
}

TEST(HttpParserTest, KeepAliveSemanticsFollowVersionAndHeader) {
  {
    HttpRequestParser parser;
    ASSERT_EQ(FeedWhole(&parser, "GET / HTTP/1.1\r\n\r\n"),
              HttpRequestParser::State::kDone);
    EXPECT_TRUE(parser.request().keep_alive);
  }
  {
    HttpRequestParser parser;
    ASSERT_EQ(FeedWhole(&parser,
                        "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
              HttpRequestParser::State::kDone);
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpRequestParser parser;
    ASSERT_EQ(FeedWhole(&parser, "GET / HTTP/1.0\r\n\r\n"),
              HttpRequestParser::State::kDone);
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpRequestParser parser;
    ASSERT_EQ(FeedWhole(&parser,
                        "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
              HttpRequestParser::State::kDone);
    EXPECT_TRUE(parser.request().keep_alive);
  }
}

TEST(HttpParserTest, ByteAtATimeEqualsWholeBuffer) {
  const std::string wire =
      "POST /summarize HTTP/1.1\r\n"
      "Content-Length: 5\r\n"
      "X-Extra: v\r\n"
      "\r\n"
      "hello";
  HttpRequestParser whole;
  ASSERT_EQ(FeedWhole(&whole, wire), HttpRequestParser::State::kDone);

  HttpRequestParser dribble;
  HttpRequestParser::State state = HttpRequestParser::State::kNeedMore;
  for (size_t i = 0; i < wire.size(); ++i) {
    state = dribble.Consume(std::string_view(&wire[i], 1));
    if (i + 1 < wire.size()) {
      ASSERT_EQ(state, HttpRequestParser::State::kNeedMore)
          << "completed early at byte " << i;
    }
  }
  ASSERT_EQ(state, HttpRequestParser::State::kDone);
  EXPECT_EQ(dribble.request().method, whole.request().method);
  EXPECT_EQ(dribble.request().target, whole.request().target);
  EXPECT_EQ(dribble.request().body, whole.request().body);
  EXPECT_EQ(dribble.request().headers, whole.request().headers);
}

TEST(HttpParserTest, EveryPrefixNeedsMoreNeverCrashes) {
  const std::string wire =
      "GET /stats HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabc";
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpRequestParser parser;
    const auto state = parser.Consume(std::string_view(wire).substr(0, cut));
    EXPECT_EQ(state, HttpRequestParser::State::kNeedMore)
        << "prefix of length " << cut;
  }
}

TEST(HttpParserTest, MalformedInputsMapToDocumentedStatuses) {
  const std::vector<std::pair<std::string, int>> cases = {
      {"GARBAGE\r\n\r\n", 400},                       // no spaces
      {"GET /\r\n\r\n", 400},                         // missing version
      {"GET / HTTP/1.1 extra\r\n\r\n", 400},          // 4 tokens
      {"GET noslash HTTP/1.1\r\n\r\n", 400},          // not origin-form
      {"G@T / HTTP/1.1\r\n\r\n", 400},                // bad method token
      {"GET / HTTP/2.0\r\n\r\n", 505},                // unsupported version
      {"GET / XYZZY/1.1\r\n\r\n", 400},               // not HTTP at all
      {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n", 400},  // space in name
      {"GET / HTTP/1.1\r\n: empty\r\n\r\n", 400},      // empty name
      {"GET / HTTP/1.1\r\nA: 1\r\n continued\r\n\r\n", 400},  // obs-fold
      {"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",
       400},
      // Value-identical duplicates are equally rejected (smuggling
      // posture documented in DESIGN.md §6.2).
      {"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n",
       400},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
  };
  for (const auto& [wire, expected_status] : cases) {
    HttpRequestParser parser;
    ASSERT_EQ(parser.Consume(wire), HttpRequestParser::State::kError)
        << wire;
    EXPECT_EQ(parser.error_status(), expected_status) << wire;
    EXPECT_FALSE(parser.error_detail().empty());
  }
}

TEST(HttpParserTest, OversizedHeadersAre431) {
  HttpLimits limits;
  limits.max_header_bytes = 256;
  // Terminated but oversized header section.
  {
    HttpRequestParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\nX-Pad: ";
    wire.append(300, 'a');
    wire.append("\r\n\r\n");
    ASSERT_EQ(parser.Consume(wire), HttpRequestParser::State::kError);
    EXPECT_EQ(parser.error_status(), 431);
  }
  // Unterminated flood: must reject as soon as the budget is crossed,
  // not buffer forever.
  {
    HttpRequestParser parser(limits);
    HttpRequestParser::State state = HttpRequestParser::State::kNeedMore;
    std::string flood(64, 'x');
    size_t fed = 0;
    while (state == HttpRequestParser::State::kNeedMore && fed < 10000) {
      state = parser.Consume(flood);
      fed += flood.size();
    }
    ASSERT_EQ(state, HttpRequestParser::State::kError);
    EXPECT_EQ(parser.error_status(), 431);
    EXPECT_LE(fed, 512u);
  }
}

TEST(HttpParserTest, OversizedDeclaredBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 100;
  HttpRequestParser parser(limits);
  ASSERT_EQ(
      parser.Consume("POST / HTTP/1.1\r\nContent-Length: 101\r\n\r\n"),
      HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, PipelinedMessagesSurviveReset) {
  HttpRequestParser parser;
  const std::string two =
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
      "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parser.Consume(two), HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_EQ(parser.request().body, "abc");
  parser.Reset();
  ASSERT_EQ(parser.Consume(std::string_view()),
            HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, RandomGarbageNeverCrashesOrOverReads) {
  Rng rng(77);
  HttpLimits limits;
  limits.max_header_bytes = 1024;
  limits.max_body_bytes = 1024;
  for (int trial = 0; trial < 1000; ++trial) {
    HttpRequestParser parser(limits);
    std::string garbage;
    const size_t length = rng.Uniform(300);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    const auto state = parser.Consume(garbage);
    if (state == HttpRequestParser::State::kError) {
      const int status = parser.error_status();
      EXPECT_TRUE(status == 400 || status == 413 || status == 431 ||
                  status == 501 || status == 505)
          << status;
    }
  }
  // Mutations of a valid request: single byte flips.
  const std::string valid =
      "POST /summarize HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"k\": 12}";
  for (int trial = 0; trial < 2000; ++trial) {
    HttpRequestParser parser(limits);
    std::string mutated = valid;
    mutated[rng.Uniform(mutated.size())] =
        static_cast<char>(rng.Uniform(256));
    (void)parser.Consume(mutated);  // must terminate without crashing
  }
}

TEST(HttpResponseParserTest, RoundTripsSerializedResponses) {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"error\":\"nope\"}";
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);
  HttpResponseParser parser;
  ASSERT_EQ(parser.Consume(wire), HttpResponseParser::State::kDone);
  EXPECT_EQ(parser.status(), 404);
  EXPECT_EQ(parser.body(), response.body);
  EXPECT_TRUE(parser.keep_alive());

  parser.Reset();
  const std::string closed = SerializeResponse(response, /*keep_alive=*/false);
  ASSERT_EQ(parser.Consume(closed), HttpResponseParser::State::kDone);
  EXPECT_FALSE(parser.keep_alive());
}

TEST(HttpResponseParserTest, RejectsUnframedResponses) {
  HttpResponseParser parser;
  ASSERT_EQ(parser.Consume("HTTP/1.1 200 OK\r\n\r\n"),
            HttpResponseParser::State::kError);  // no Content-Length
  HttpResponseParser parser2;
  ASSERT_EQ(parser2.Consume("NONSENSE\r\n\r\n"),
            HttpResponseParser::State::kError);
  HttpResponseParser parser3;
  ASSERT_EQ(parser3.Consume("HTTP/1.1 2xx OK\r\nContent-Length: 0\r\n\r\n"),
            HttpResponseParser::State::kError);
}

TEST(HttpSerializationTest, RequestsRoundTripThroughRequestParser) {
  const std::string wire = SerializeRequest(
      "POST", "/summarize", "127.0.0.1:8080", "{\"user\":1,\"k\":2}");
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume(wire), HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().target, "/summarize");
  EXPECT_EQ(parser.request().body, "{\"user\":1,\"k\":2}");
  ASSERT_NE(parser.request().FindHeader("host"), nullptr);
  EXPECT_EQ(*parser.request().FindHeader("host"), "127.0.0.1:8080");
}

}  // namespace
}  // namespace xsum::net
