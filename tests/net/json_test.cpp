/// Tests of the minimal JSON layer: parse/dump round trips, deterministic
/// serialization (insertion-ordered keys, shortest-round-trip doubles),
/// escape handling, and strict rejection of malformed documents.

#include "net/json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace xsum::net {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_EQ(ParseJson("42")->AsInt(), 42);
  EXPECT_EQ(ParseJson("-7")->AsInt(), -7);
  EXPECT_TRUE(ParseJson("42")->is_int());
  EXPECT_FALSE(ParseJson("42.5")->is_int());
  EXPECT_DOUBLE_EQ(ParseJson("42.5")->AsDouble(), 42.5);
  EXPECT_DOUBLE_EQ(ParseJson("-1e3")->AsDouble(), -1000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParsesNestedDocuments) {
  const auto doc = ParseJson(
      R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}, "e": -3})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(a->items()[1].AsDouble(), 2.5);
  EXPECT_EQ(a->items()[2].AsString(), "x");
  const JsonValue* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->Find("c")->AsBool());
  EXPECT_TRUE(b->Find("d")->is_null());
  EXPECT_EQ(doc->Find("e")->AsInt(), -3);
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonTest, DumpIsDeterministicAndInsertionOrdered) {
  JsonValue object = JsonValue::Object();
  object.Set("zeta", 1);
  object.Set("alpha", JsonValue::Array());
  object.Set("mid", "s");
  // Re-setting a key keeps its original position.
  object.Set("zeta", 2);
  EXPECT_EQ(object.Dump(), R"({"zeta":2,"alpha":[],"mid":"s"})");
  EXPECT_EQ(object.Dump(), object.Dump());
}

TEST(JsonTest, DumpEscapesControlCharacters) {
  JsonValue value(std::string("a\"b\\c\nd\te\x01" "f"));
  EXPECT_EQ(value.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
  // Round trip.
  const auto parsed = ParseJson(value.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\nd\te\x01" "f");
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(ParseJson("\"\\u0041\"")->AsString(), "A");
  EXPECT_EQ(ParseJson("\"\\u00e9\"")->AsString(), "\xC3\xA9");
  EXPECT_EQ(ParseJson("\"\\u20ac\"")->AsString(), "\xE2\x82\xAC");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(ParseJson("\"\\ud83d\\ude00\"")->AsString(),
            "\xF0\x9F\x98\x80");
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());    // unpaired high
  EXPECT_FALSE(ParseJson("\"\\ude00\"").ok());    // unpaired low
  EXPECT_FALSE(ParseJson("\"\\u12g4\"").ok());    // bad hex
}

TEST(JsonTest, RoundTripPreservesDoublesExactly) {
  for (const double d : {0.1, 1.0 / 3.0, 1e-300, 6.02e23, 2.5}) {
    const std::string dumped = JsonValue(d).Dump();
    const auto parsed = ParseJson(dumped);
    ASSERT_TRUE(parsed.ok()) << dumped;
    EXPECT_EQ(parsed->AsDouble(), d) << dumped;
    // Deterministic: dumping the reparsed value gives the same bytes.
    EXPECT_EQ(JsonValue(parsed->AsDouble()).Dump(), dumped);
  }
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const std::vector<std::string> bad = {
      "",        "{",         "}",         "[1,",       "{\"a\":}",
      "{a:1}",   "tru",       "nul",       "01x",       "1.",
      "1e",      "\"abc",     "[1 2]",     "{\"a\" 1}", "1 2",
      "{}extra", "\"\\q\"",   "+1",        "--1",       "[,]",
      "{\"a\":1,}",
  };
  for (const std::string& text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonTest, DepthLimitStopsHostileNesting) {
  std::string deep(2000, '[');
  deep.append(2000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  // A compliant document within the limit parses.
  EXPECT_TRUE(ParseJson("[[[[1]]]]", 8).ok());
  EXPECT_FALSE(ParseJson("[[[[1]]]]", 2).ok());
}

TEST(JsonTest, RandomGarbageNeverCrashes) {
  Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string garbage;
    const size_t length = rng.Uniform(64);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    // Must return, never crash; validity is input-dependent.
    (void)ParseJson(garbage).ok();
  }
  // Mutated valid documents: flip bytes of a real document.
  const std::string valid =
      R"({"scenario":"user-centric","user":7,"k":3,"lambda":0.5})";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    mutated[rng.Uniform(mutated.size())] =
        static_cast<char>(rng.Uniform(256));
    (void)ParseJson(mutated).ok();
  }
}

}  // namespace
}  // namespace xsum::net
