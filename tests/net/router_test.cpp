/// Tests of the shard-routing layer over real loopback servers: the
/// routing invariant (routed responses byte-identical to direct in-process
/// calls across methods × λ × k-chains), k-stickiness of the consistent
/// hash, failover to surviving shards, local fallback, and placement
/// stability when the endpoint list grows.

#include "service/shard_router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "eval/runner.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/handler.h"
#include "service/snapshot_registry.h"

namespace xsum::service {
namespace {

eval::ExperimentConfig TinyConfig() {
  eval::ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 3;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.ks = {1, 3, 5};
  return config;
}

/// One in-process shard: its own service + handler + HTTP server, over
/// the shared registry and catalog (exactly the multi-process topology,
/// minus the fork).
struct Shard {
  std::unique_ptr<SummaryService> service;
  std::unique_ptr<SummaryHandler> handler;
  std::unique_ptr<net::HttpServer> server;

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

class RouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new eval::ExperimentRunner(TinyConfig());
    ASSERT_TRUE(runner_->Init().ok());
    auto data = runner_->ComputeBaseline(rec::RecommenderKind::kPgpr);
    ASSERT_TRUE(data.ok()) << data.status();
    ASSERT_GE(data->users.size(), 2u);
    catalog_ = new TaskCatalog();
    for (const core::UserRecs& ur : data->users) {
      catalog_->AddUserCentric(runner_->rec_graph(), ur, 5);
    }
    registry_ = new GraphSnapshotRegistry();
    registry_->Publish(GraphSnapshotRegistry::Alias(runner_->rec_graph()));
  }

  static void TearDownTestSuite() {
    delete catalog_;
    delete registry_;
    delete runner_;
    catalog_ = nullptr;
    registry_ = nullptr;
    runner_ = nullptr;
  }

  /// \p port 0 = ephemeral; a fixed port restarts a "rejoining" shard on
  /// its old address (the ejection-recovery test).
  static std::unique_ptr<Shard> StartShard(uint16_t port = 0) {
    auto shard = std::make_unique<Shard>();
    shard->service = std::make_unique<SummaryService>(registry_);
    shard->handler =
        std::make_unique<SummaryHandler>(shard->service.get(), catalog_);
    net::HttpServer::Options options;
    options.num_workers = 2;
    options.port = port;
    SummaryHandler* handler = shard->handler.get();
    shard->server = std::make_unique<net::HttpServer>(
        [handler](const net::HttpRequest& request) {
          return handler->Handle(request);
        },
        options);
    EXPECT_TRUE(shard->server->Start().ok());
    return shard;
  }

  /// Every (unit, k, method-config) triple of the identity sweep.
  static std::vector<SummaryRequest> IdentitySweep() {
    std::vector<SummaryRequest> requests;
    std::vector<uint32_t> units;
    for (const auto& entry : catalog_->entries()) {
      if (units.empty() || units.back() != entry.unit) {
        units.push_back(entry.unit);
      }
    }
    units.resize(std::min<size_t>(units.size(), 3));
    struct MethodConfig {
      core::SummaryMethod method;
      double lambda;
      core::SteinerOptions::Variant variant;
    };
    const std::vector<MethodConfig> methods = {
        {core::SummaryMethod::kBaseline, 1.0,
         core::SteinerOptions::Variant::kMehlhorn},
        {core::SummaryMethod::kSteiner, 0.0,
         core::SteinerOptions::Variant::kKmb},
        {core::SummaryMethod::kSteiner, 0.01,
         core::SteinerOptions::Variant::kMehlhorn},
        {core::SummaryMethod::kSteiner, 1.0,
         core::SteinerOptions::Variant::kKmb},
        {core::SummaryMethod::kPcst, 1.0,
         core::SteinerOptions::Variant::kMehlhorn},
    };
    for (const uint32_t unit : units) {
      for (const MethodConfig& config : methods) {
        for (int k = 1; k <= 5; ++k) {
          SummaryRequest request;
          request.unit = unit;
          request.k = k;
          request.prev_k = k > 1 ? k - 1 : 0;  // chained sweep with hints
          request.method = config.method;
          request.lambda = config.lambda;
          request.variant = config.variant;
          requests.push_back(request);
        }
      }
    }
    return requests;
  }

  static eval::ExperimentRunner* runner_;
  static TaskCatalog* catalog_;
  static GraphSnapshotRegistry* registry_;
};

eval::ExperimentRunner* RouterTest::runner_ = nullptr;
TaskCatalog* RouterTest::catalog_ = nullptr;
GraphSnapshotRegistry* RouterTest::registry_ = nullptr;

TEST_F(RouterTest, RoutedEqualsDirectAcrossMethodsLambdasAndChains) {
  auto shard_a = StartShard();
  auto shard_b = StartShard();
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  ShardRouter router(nullptr, options);

  // Direct reference engine, fresh service (cold cache).
  SummaryService direct_service(registry_);
  SummaryHandler direct(&direct_service, catalog_);

  size_t checked = 0;
  for (const SummaryRequest& request : IdentitySweep()) {
    const net::HttpResponse routed = router.Summarize(request);
    const net::HttpResponse local = direct.Summarize(request);
    ASSERT_EQ(routed.status, 200) << routed.body;
    ASSERT_EQ(local.status, 200) << local.body;
    // The routing invariant: byte identity, not structural similarity.
    ASSERT_EQ(routed.body, local.body)
        << "unit=" << request.unit << " k=" << request.k
        << " method=" << static_cast<int>(request.method)
        << " lambda=" << request.lambda;
    ++checked;
  }
  EXPECT_GE(checked, 50u);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.routed, checked);
  EXPECT_EQ(stats.local, 0u);
  // Both shards actually served traffic (placement spreads units).
  EXPECT_GT(stats.per_endpoint[0], 0u);
  EXPECT_GT(stats.per_endpoint[1], 0u);

  shard_a->server->Stop();
  shard_b->server->Stop();
}

TEST_F(RouterTest, ChainedKsAreShardSticky) {
  ShardRouter::Options options;
  options.endpoints = {"127.0.0.1:9001", "127.0.0.1:9002",
                       "127.0.0.1:9003"};
  ShardRouter router(nullptr, options);

  for (const auto& entry : catalog_->entries()) {
    SummaryRequest request;
    request.unit = entry.unit;
    request.k = 1;
    const size_t home = router.EndpointFor(request);
    for (int k = 2; k <= 10; ++k) {
      request.k = k;
      request.prev_k = k - 1;
      EXPECT_EQ(router.EndpointFor(request), home)
          << "unit " << entry.unit << " k " << k
          << " left its home shard — chain checkpoints would be lost";
    }
  }
}

TEST_F(RouterTest, PlacementIsStableWhenEndpointsGrow) {
  // Consistent hashing: adding a shard must not reshuffle every key.
  ShardRouter::Options two;
  two.endpoints = {"127.0.0.1:9001", "127.0.0.1:9002"};
  ShardRouter router_two(nullptr, two);
  ShardRouter::Options three = two;
  three.endpoints.push_back("127.0.0.1:9003");
  ShardRouter router_three(nullptr, three);

  size_t moved = 0;
  size_t total = 0;
  for (uint32_t unit = 0; unit < 600; ++unit) {
    SummaryRequest request;
    request.unit = unit;
    const size_t before = router_two.EndpointFor(request);
    const size_t after = router_three.EndpointFor(request);
    ++total;
    if (after != before) {
      ++moved;
      // A moved key may only move to the *new* shard, never between the
      // two old ones.
      EXPECT_EQ(after, 2u) << "unit " << unit;
    }
  }
  // Expected movement is ~1/3; anything above 60% means the hash is not
  // consistent (modulo-N placement moves ~2/3).
  EXPECT_LT(moved, total * 6 / 10);
  EXPECT_GT(moved, 0u);
}

TEST_F(RouterTest, FailoverToSurvivingShardKeepsAnswersIdentical) {
  auto shard_a = StartShard();
  auto shard_b = StartShard();
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  options.timeout_ms = 1000;
  ShardRouter router(nullptr, options);

  SummaryService direct_service(registry_);
  SummaryHandler direct(&direct_service, catalog_);

  // Find requests homed on shard A, then kill A.
  std::vector<SummaryRequest> homed_on_a;
  for (const auto& entry : catalog_->entries()) {
    SummaryRequest request;
    request.unit = entry.unit;
    request.k = entry.k;
    if (router.EndpointFor(request) == 0) homed_on_a.push_back(request);
  }
  ASSERT_FALSE(homed_on_a.empty());
  shard_a->server->Stop();

  for (const SummaryRequest& request : homed_on_a) {
    const net::HttpResponse routed = router.Summarize(request);
    ASSERT_EQ(routed.status, 200) << routed.body;
    EXPECT_EQ(routed.body, direct.Summarize(request).body);
  }
  const RouterStats stats = router.stats();
  EXPECT_GE(stats.failovers, homed_on_a.size());
  EXPECT_EQ(stats.routed, homed_on_a.size());
  EXPECT_EQ(stats.per_endpoint[0], 0u);
  EXPECT_EQ(stats.per_endpoint[1], homed_on_a.size());

  shard_b->server->Stop();
}

TEST_F(RouterTest, LocalFallbackAnswersWhenEveryShardIsDown) {
  SummaryService local_service(registry_);
  SummaryHandler local(&local_service, catalog_);
  ShardRouter::Options options;
  // Nothing listens on these ports (kernel refuses instantly on loopback).
  options.endpoints = {"127.0.0.1:1", "127.0.0.1:2"};
  options.timeout_ms = 500;
  ShardRouter router(&local, options);

  SummaryRequest request;
  request.unit = catalog_->entries().front().unit;
  request.k = 3;
  const net::HttpResponse response = router.Summarize(request);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.body, local.Summarize(request).body);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.local, 1u);
  EXPECT_EQ(stats.routed, 0u);
}

TEST_F(RouterTest, AllShardsDownWithoutFallbackIs502) {
  ShardRouter::Options options;
  options.endpoints = {"127.0.0.1:1", "127.0.0.1:2"};
  options.timeout_ms = 500;
  options.local_fallback = false;
  ShardRouter router(nullptr, options);

  SummaryRequest request;
  request.unit = catalog_->entries().front().unit;
  request.k = 1;
  EXPECT_EQ(router.Summarize(request).status, 502);
}

TEST_F(RouterTest, HandleDispatchesNonSummarizeEndpointsLocally) {
  SummaryService local_service(registry_);
  SummaryHandler local(&local_service, catalog_);
  ShardRouter::Options options;
  ShardRouter router(&local, options);  // no endpoints: pure shard role

  net::HttpRequest healthz;
  healthz.method = "GET";
  healthz.target = "/healthz";
  EXPECT_EQ(router.Handle(healthz).status, 200);

  net::HttpRequest bad;
  bad.method = "POST";
  bad.target = "/summarize";
  bad.body = "{broken";
  EXPECT_EQ(router.Handle(bad).status, 400);

  net::HttpRequest summarize = bad;
  summarize.body = R"({"user":)" +
                   std::to_string(catalog_->entries().front().unit) +
                   R"(,"k":1})";
  const net::HttpResponse response = router.Handle(summarize);
  EXPECT_EQ(response.status, 200) << response.body;
}

TEST_F(RouterTest, ParseEndpointValidation) {
  EXPECT_TRUE(ParseEndpoint("10.0.0.1:8080").ok());
  EXPECT_EQ(ParseEndpoint(":8080")->first, "127.0.0.1");
  EXPECT_EQ(ParseEndpoint("host:1")->second, 1);
  EXPECT_FALSE(ParseEndpoint("").ok());
  EXPECT_FALSE(ParseEndpoint("hostonly").ok());
  EXPECT_FALSE(ParseEndpoint("h:").ok());
  EXPECT_FALSE(ParseEndpoint("h:abc").ok());
  EXPECT_FALSE(ParseEndpoint("h:70000").ok());
  EXPECT_FALSE(ParseEndpoint("h:0").ok());
}

TEST_F(RouterTest, ReplicaSetIsTheDistinctRingPrefix) {
  ShardRouter::Options options;
  options.endpoints = {"127.0.0.1:9001", "127.0.0.1:9002",
                       "127.0.0.1:9003"};
  options.replicas = 2;
  options.health_probes = false;
  ShardRouter router(nullptr, options);

  for (uint32_t unit = 0; unit < 200; ++unit) {
    SummaryRequest request;
    request.unit = unit;
    const std::vector<size_t> replicas = router.ReplicaSetFor(request);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_NE(replicas[0], replicas[1]);
    // The primary of the replica set is the pure ring home.
    EXPECT_EQ(replicas[0], router.EndpointFor(request));
    // k never moves the replica set either (shard-sticky chains).
    SummaryRequest chained = request;
    chained.k = 7;
    chained.prev_k = 6;
    EXPECT_EQ(router.ReplicaSetFor(chained), replicas);
  }
}

TEST_F(RouterTest, BoundedFailoverCapsTheWalkAndCounts) {
  ShardRouter::Options options;
  // Three dead endpoints, one tolerated failure: the walk must stop
  // after 1 failed attempt with candidates still untried.
  options.endpoints = {"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"};
  options.timeout_ms = 500;
  options.max_failover = 1;
  options.local_fallback = false;
  options.hedge = false;
  options.health_probes = false;
  ShardRouter router(nullptr, options);

  SummaryRequest request;
  request.unit = catalog_->entries().front().unit;
  request.k = 1;
  EXPECT_EQ(router.Summarize(request).status, 502);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.capped, 1u);
  EXPECT_EQ(stats.failovers, 1u) << "exactly one attempt may fail";
  EXPECT_EQ(stats.routed, 0u);
}

TEST_F(RouterTest, EjectionThenProbeReinstatementWhenTheShardRejoins) {
  auto shard_a = StartShard();
  auto shard_b = StartShard();
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  options.timeout_ms = 1000;
  options.hedge = false;  // deterministic attempt accounting
  options.health.failure_threshold = 1;
  options.health.base_backoff_ms = 50;
  options.health.max_backoff_ms = 200;
  options.probe_interval_ms = 10;
  options.liveness_interval_ms = 0;  // only ejected endpoints are probed
  ShardRouter router(nullptr, options);

  // A request homed on B, with B dead: answered by A, B ejected.
  SummaryRequest on_b;
  bool found = false;
  for (const auto& entry : catalog_->entries()) {
    on_b.unit = entry.unit;
    on_b.k = entry.k;
    if (router.EndpointFor(on_b) == 1) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const uint16_t port_b = shard_b->server->port();
  shard_b->server->Stop();

  ASSERT_EQ(router.Summarize(on_b).status, 200);
  EXPECT_EQ(router.endpoint_state(1), EndpointHealth::State::kEjected);
  {
    const RouterStats stats = router.stats();
    EXPECT_GE(stats.ejections, 1u);
    EXPECT_GE(stats.failovers, 1u);
    EXPECT_EQ(stats.per_endpoint[1], 0u);
  }
  // While ejected, B is skipped outright, not re-attempted: the next
  // request adds exactly one skip-failover and zero transport failures
  // (an attempted-and-failed B would add two).
  const uint64_t failovers_before = router.stats().failovers;
  ASSERT_EQ(router.Summarize(on_b).status, 200);
  EXPECT_EQ(router.stats().failovers, failovers_before + 1);

  // The shard rejoins on its old address; the probe loop notices and
  // reinstates it without any request-path help.
  auto shard_b2 = StartShard(port_b);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (router.endpoint_state(1) != EndpointHealth::State::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(router.endpoint_state(1), EndpointHealth::State::kHealthy)
      << "probe loop never reinstated the rejoined shard";
  {
    const RouterStats stats = router.stats();
    EXPECT_GE(stats.reinstatements, 1u);
    EXPECT_GE(stats.probes, 1u);
  }
  // Traffic homed on B lands on B again.
  ASSERT_EQ(router.Summarize(on_b).status, 200);
  EXPECT_GT(router.stats().per_endpoint[1], 0u);

  shard_a->server->Stop();
  shard_b2->server->Stop();
}

TEST_F(RouterTest, ReadyzFollowsTheDrainLifecycle) {
  SummaryService service(registry_);
  SummaryHandler handler(&service, catalog_);

  net::HttpRequest readyz;
  readyz.method = "GET";
  readyz.target = "/readyz";
  EXPECT_EQ(handler.Handle(readyz).status, 200);

  net::HttpRequest drain;
  drain.method = "POST";
  drain.target = "/drain";
  drain.body = "{}";
  const net::HttpResponse drained = handler.Handle(drain);
  EXPECT_EQ(drained.status, 200) << drained.body;
  EXPECT_NE(drained.body.find("\"chains\""), std::string::npos);
  EXPECT_TRUE(handler.draining());

  const net::HttpResponse not_ready = handler.Handle(readyz);
  EXPECT_EQ(not_ready.status, 503);
  bool has_retry_after = false;
  for (const auto& [name, value] : not_ready.extra_headers) {
    if (name == "Retry-After") has_retry_after = true;
  }
  EXPECT_TRUE(has_retry_after);

  // A draining shard still answers straggler summarize requests.
  SummaryRequest request;
  request.unit = catalog_->entries().front().unit;
  request.k = 1;
  EXPECT_EQ(handler.Summarize(request).status, 200);

  net::HttpRequest undrain;
  undrain.method = "POST";
  undrain.target = "/undrain";
  undrain.body = "{}";
  EXPECT_EQ(handler.Handle(undrain).status, 200);
  EXPECT_FALSE(handler.draining());
  EXPECT_EQ(handler.Handle(readyz).status, 200);

  // Before the first snapshot there is nothing to serve: not ready.
  GraphSnapshotRegistry unpublished;
  SummaryService cold_service(&unpublished);
  SummaryHandler cold(&cold_service, catalog_);
  EXPECT_EQ(cold.Handle(readyz).status, 503);
}

TEST_F(RouterTest, DrainHandsChainsToTheInheritorAndKeepsReusealive) {
  auto shard_a = StartShard();
  auto shard_b = StartShard();
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  options.timeout_ms = 2000;
  options.hedge = false;
  options.health_probes = false;
  ShardRouter router(nullptr, options);

  SummaryService direct_service(registry_);
  SummaryHandler direct(&direct_service, catalog_);

  // Warm chained sweeps (k = 1..3) for every unit homed on shard A,
  // in the KMB configuration whose checkpoints carry state (Mehlhorn
  // computes chain-free — nothing to hand off there).
  std::vector<uint32_t> units_on_a;
  for (const auto& entry : catalog_->entries()) {
    if (entry.k != 1) continue;
    SummaryRequest request;
    request.unit = entry.unit;
    request.lambda = 0.0;
    request.variant = core::SteinerOptions::Variant::kKmb;
    if (router.EndpointFor(request) == 0) units_on_a.push_back(entry.unit);
  }
  ASSERT_FALSE(units_on_a.empty());
  for (const uint32_t unit : units_on_a) {
    for (int k = 1; k <= 3; ++k) {
      SummaryRequest request;
      request.unit = unit;
      request.k = k;
      request.prev_k = k > 1 ? k - 1 : 0;
      request.lambda = 0.0;
      request.variant = core::SteinerOptions::Variant::kKmb;
      ASSERT_EQ(router.Summarize(request).status, 200);
    }
  }
  ASSERT_FALSE(shard_a->service->ExportChains().empty());
  ASSERT_GT(shard_a->service->Stats().incremental, 0u);

  // Drain A through the router: checkpoints must land on B (the only
  // possible ring inheritor) and A must stop being routable.
  const uint64_t b_incremental = shard_b->service->Stats().incremental;
  const net::HttpResponse report =
      router.DrainEndpoint(shard_a->endpoint(), /*wait_ms=*/2000);
  ASSERT_EQ(report.status, 200) << report.body;
  EXPECT_NE(report.body.find("\"drained\""), std::string::npos);
  EXPECT_TRUE(shard_a->handler->draining());
  EXPECT_GT(shard_b->service->Stats().chains_imported, 0u)
      << "no checkpoint reached the inheritor";
  {
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.drains, 1u);
    EXPECT_GT(stats.chains_handed_off, 0u);
  }
  const auto readyz =
      net::HttpFetch("127.0.0.1", shard_a->server->port(), "GET", "/readyz");
  ASSERT_TRUE(readyz.ok()) << readyz.status();
  EXPECT_EQ(readyz->status, 503) << "drained shard still reports ready";

  // Extending each sweep now routes to B and keeps running
  // *incrementally* off the handed-over k=3 checkpoints — the §5 reuse
  // survived the drain (the acceptance property of ISSUE 6).
  const uint64_t a_served = router.stats().per_endpoint[0];
  for (const uint32_t unit : units_on_a) {
    SummaryRequest request;
    request.unit = unit;
    request.k = 4;
    request.prev_k = 3;
    request.lambda = 0.0;
    request.variant = core::SteinerOptions::Variant::kKmb;
    const net::HttpResponse routed = router.Summarize(request);
    ASSERT_EQ(routed.status, 200) << routed.body;
    EXPECT_EQ(routed.body, direct.Summarize(request).body);
  }
  EXPECT_EQ(router.stats().per_endpoint[0], a_served)
      << "draining endpoint was still routed to";
  EXPECT_GT(shard_b->service->Stats().incremental, b_incremental)
      << "inheritor recomputed from scratch: the handoff lost the chains";

  // Undrain restores the endpoint to rotation.
  EXPECT_EQ(router.UndrainEndpoint(shard_a->endpoint()).status, 200);
  EXPECT_FALSE(shard_a->handler->draining());

  shard_a->server->Stop();
  shard_b->server->Stop();
}

/// Builds the POST /summarize wire request for \p unit at \p k, carrying
/// \p trace_id in the propagation header (lower-cased name, as the server
/// parser stores it).
net::HttpRequest SummarizeWireRequest(uint32_t unit, int k,
                                      uint64_t trace_id) {
  net::HttpRequest request;
  request.method = "POST";
  request.target = "/summarize";
  request.body =
      R"({"user":)" + std::to_string(unit) + R"(,"k":)" + std::to_string(k) + "}";
  request.headers.emplace_back(obs::kTraceHeaderLower,
                               obs::TraceIdToHex(trace_id));
  return request;
}

/// The echoed trace header of \p response, or 0.
uint64_t EchoedTraceId(const net::HttpResponse& response) {
  uint64_t id = 0;
  const std::string* echoed = response.FindHeader(obs::kTraceHeader);
  if (echoed != nullptr) obs::ParseTraceId(*echoed, &id);
  return id;
}

TEST_F(RouterTest, RoutedRequestCarriesOneTraceIdEndToEnd) {
  auto shard_a = StartShard();
  auto shard_b = StartShard();
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  options.hedge = false;
  options.health_probes = false;
  ShardRouter router(nullptr, options);

  SummaryRequest probe;
  probe.unit = catalog_->entries().front().unit;
  probe.k = 1;
  const size_t home = router.EndpointFor(probe);
  const uint64_t trace_id = 0xD0C05ULL;

  const net::HttpResponse response =
      router.Handle(SummarizeWireRequest(probe.unit, probe.k, trace_id));
  ASSERT_EQ(response.status, 200) << response.body;
  // The edge adopts the caller's ID, never re-mints.
  EXPECT_EQ(EchoedTraceId(response), trace_id);
  // The body stays byte-identical to an untraced request: IDs ride only
  // in headers.
  EXPECT_EQ(response.body, router.Summarize(probe).body);

  obs::TraceLog::Entry entry;
  ASSERT_TRUE(router.trace_log().Find(trace_id, &entry));
  bool saw_ok_attempt = false;
  for (const obs::Span& span : entry.spans) {
    if (span.name == "attempt" &&
        span.note.find(" ok") != std::string::npos) {
      saw_ok_attempt = true;
    }
  }
  EXPECT_TRUE(saw_ok_attempt) << "router trace lost the attempt span";
  // The *same* ID reached the shard that served the request: one trace
  // per request across the whole fleet, not one per hop.
  Shard* served = home == 0 ? shard_a.get() : shard_b.get();
  Shard* idle = home == 0 ? shard_b.get() : shard_a.get();
  EXPECT_TRUE(served->handler->trace_log().Find(trace_id, &entry));
  EXPECT_FALSE(entry.spans.empty());
  EXPECT_FALSE(idle->handler->trace_log().Find(trace_id, &entry));

  shard_a->server->Stop();
  shard_b->server->Stop();
}

TEST_F(RouterTest, FailedOverRequestKeepsItsSingleTraceId) {
  auto shard_a = StartShard();
  auto shard_b = StartShard();
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  options.timeout_ms = 1000;
  options.hedge = false;
  options.health_probes = false;
  ShardRouter router(nullptr, options);

  // A request homed on A, with A dead: the failover attempt on B must
  // carry the original trace ID, and the router trace must show both the
  // failed and the successful hop.
  SummaryRequest on_a;
  bool found = false;
  for (const auto& entry : catalog_->entries()) {
    on_a.unit = entry.unit;
    on_a.k = entry.k;
    if (router.EndpointFor(on_a) == 0) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  shard_a->server->Stop();

  const uint64_t trace_id = 0xFA110FFULL;
  const net::HttpResponse response =
      router.Handle(SummarizeWireRequest(on_a.unit, on_a.k, trace_id));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(EchoedTraceId(response), trace_id);

  obs::TraceLog::Entry entry;
  ASSERT_TRUE(router.trace_log().Find(trace_id, &entry));
  bool saw_failure = false;
  bool saw_ok = false;
  for (const obs::Span& span : entry.spans) {
    if (span.name != "attempt") continue;
    if (span.note.find("transport-error") != std::string::npos) {
      saw_failure = true;
    }
    if (span.note.find(" ok") != std::string::npos) saw_ok = true;
  }
  EXPECT_TRUE(saw_failure) << "failed hop missing from the trace";
  EXPECT_TRUE(saw_ok) << "surviving hop missing from the trace";
  EXPECT_TRUE(shard_b->handler->trace_log().Find(trace_id, &entry))
      << "the failover shard saw a different (or no) trace ID";

  shard_b->server->Stop();
}

/// A shard whose /summarize can be slowed after startup — the hedge
/// trigger, without faking transport failures.
struct DelayedShard {
  std::unique_ptr<SummaryService> service;
  std::unique_ptr<SummaryHandler> handler;
  std::unique_ptr<net::HttpServer> server;
  std::shared_ptr<std::atomic<int>> delay_ms =
      std::make_shared<std::atomic<int>>(0);

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

std::unique_ptr<DelayedShard> StartDelayedShard(
    GraphSnapshotRegistry* registry, TaskCatalog* catalog) {
  auto shard = std::make_unique<DelayedShard>();
  shard->service = std::make_unique<SummaryService>(registry);
  shard->handler =
      std::make_unique<SummaryHandler>(shard->service.get(), catalog);
  net::HttpServer::Options options;
  options.num_workers = 2;
  SummaryHandler* handler = shard->handler.get();
  auto delay = shard->delay_ms;
  shard->server = std::make_unique<net::HttpServer>(
      [handler, delay](const net::HttpRequest& request) {
        const int ms = delay->load();
        if (ms > 0 && request.target == "/summarize") {
          std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        }
        return handler->Handle(request);
      },
      options);
  EXPECT_TRUE(shard->server->Start().ok());
  return shard;
}

TEST_F(RouterTest, HedgedRequestPropagatesOneTraceIdToBothReplicas) {
  auto shard_a = StartDelayedShard(registry_, catalog_);
  auto shard_b = StartDelayedShard(registry_, catalog_);
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  options.hedge = true;
  options.hedge_min_ms = 1;  // fire almost immediately
  options.health_probes = false;
  ShardRouter router(nullptr, options);

  SummaryRequest request;
  request.unit = catalog_->entries().front().unit;
  request.k = 1;
  const size_t primary = router.EndpointFor(request);
  DelayedShard* slow = primary == 0 ? shard_a.get() : shard_b.get();
  DelayedShard* fast = primary == 0 ? shard_b.get() : shard_a.get();
  slow->delay_ms->store(300);

  const uint64_t trace_id = 0x4ED6EULL;
  const net::HttpResponse response =
      router.Handle(SummarizeWireRequest(request.unit, request.k, trace_id));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(EchoedTraceId(response), trace_id);
  EXPECT_GE(router.stats().hedges, 1u) << "hedge never fired";

  obs::TraceLog::Entry entry;
  ASSERT_TRUE(router.trace_log().Find(trace_id, &entry));
  bool saw_hedge_fire = false;
  for (const obs::Span& span : entry.spans) {
    if (span.name == "hedge.fire") saw_hedge_fire = true;
  }
  EXPECT_TRUE(saw_hedge_fire);
  // The hedge replica answered under the caller's ID immediately; the
  // straggling primary lands the same ID once its sleep expires. One
  // trace ID on every involved endpoint — the acceptance property.
  EXPECT_TRUE(fast->handler->trace_log().Find(trace_id, &entry));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!slow->handler->trace_log().Find(trace_id, &entry) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(slow->handler->trace_log().Find(trace_id, &entry))
      << "the hedged-over primary never saw the shared trace ID";

  shard_a->server->Stop();
  shard_b->server->Stop();
}

/// The fleet-view acceptance property: the router's merged snapshot
/// equals the sum of what the shards themselves expose — exactly, bucket
/// by bucket, because the histograms are mergeable sufficient stats
/// rather than sampled reservoirs.
TEST_F(RouterTest, FleetMetricsEqualsSumOfShardScrapesExactly) {
  auto shard_a = StartShard();
  auto shard_b = StartShard();
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  options.hedge = false;
  options.health_probes = false;
  ShardRouter router(nullptr, options);

  size_t sent = 0;
  for (const SummaryRequest& request : IdentitySweep()) {
    ASSERT_EQ(router.Summarize(request).status, 200);
    if (++sent >= 40) break;
  }

  const obs::MetricsSnapshot fleet = router.FleetMetrics();

  obs::MetricsSnapshot summed;
  for (const Shard* shard : {shard_a.get(), shard_b.get()}) {
    const auto scrape = net::HttpFetch("127.0.0.1", shard->server->port(),
                                       "GET", "/metrics.json");
    ASSERT_TRUE(scrape.ok()) << scrape.status();
    ASSERT_EQ(scrape->status, 200);
    const auto json = net::ParseJson(scrape->body);
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    const auto snapshot = obs::MetricsSnapshotFromJson(*json);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    summed += *snapshot;
  }

  // service_* and cache_* metrics move only on /summarize, so the two
  // scrape passes observe identical values: equality is exact, not
  // approximate.
  EXPECT_EQ(fleet.counters.at("service_requests"),
            summed.counters.at("service_requests"));
  EXPECT_EQ(summed.counters.at("service_requests"), sent)
      << "no local fallback ran, so routed == served";
  EXPECT_EQ(fleet.counters.at("service_computed"),
            summed.counters.at("service_computed"));
  EXPECT_EQ(fleet.counters.at("cache_hits"), summed.counters.at("cache_hits"));
  // Bit-exact histogram merge: every bucket, count, sum, min, max.
  EXPECT_EQ(fleet.histograms.at("service_latency_ms"),
            summed.histograms.at("service_latency_ms"));
  EXPECT_EQ(fleet.histograms.at("service_compute_ms"),
            summed.histograms.at("service_compute_ms"));
  EXPECT_EQ(fleet.histograms.at("service_latency_ms").count, sent);
  // Router-side accounting rides the same merged snapshot.
  EXPECT_EQ(fleet.counters.at("router_routed"), sent);
  EXPECT_EQ(fleet.counters.at("router_scrape_errors"), 0u);
  EXPECT_EQ(fleet.gauges.at("router_endpoints"), 2);
  EXPECT_EQ(fleet.histograms.at("router_attempt_ms").count, sent);

  shard_a->server->Stop();
  shard_b->server->Stop();
}

TEST_F(RouterTest, UnitFingerprintSeparatesChainsButNotKs) {
  SummaryRequest request;
  request.unit = 42;
  request.k = 1;
  const uint64_t base = UnitFingerprint(request);
  request.k = 7;
  request.prev_k = 6;
  EXPECT_EQ(UnitFingerprint(request), base) << "k must not affect placement";
  SummaryRequest other = request;
  other.unit = 43;
  EXPECT_NE(UnitFingerprint(other), base);
  other = request;
  other.method = core::SummaryMethod::kPcst;
  EXPECT_NE(UnitFingerprint(other), base);
  other = request;
  other.lambda = 0.5;
  EXPECT_NE(UnitFingerprint(other), base);
}

}  // namespace
}  // namespace xsum::service
