/// End-to-end tests of `net::HttpServer` + `net::HttpClient` over real
/// loopback sockets: round trips, keep-alive reuse, concurrent clients,
/// garbage-on-the-wire robustness, parse-limit enforcement, and prompt
/// shutdown with connections open.

#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "net/json.h"

namespace xsum::net {
namespace {

/// Echo handler: reflects method, target, and body.
HttpResponse EchoHandler(const HttpRequest& request) {
  JsonValue json = JsonValue::Object();
  json.Set("method", request.method);
  json.Set("target", request.target);
  json.Set("body", request.body);
  HttpResponse response;
  response.body = json.Dump();
  return response;
}

/// Raw socket helper for malformed-input tests (the client refuses to
/// send these).
class RawConnection {
 public:
  explicit RawConnection(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }

  /// Reads until the peer closes or \p max_bytes arrive.
  std::string ReadAll(size_t max_bytes = 1 << 16) {
    std::string out;
    char chunk[1024];
    while (out.size() < max_bytes) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      out.append(chunk, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

HttpServer::Options TestOptions() {
  HttpServer::Options options;
  options.port = 0;  // ephemeral
  options.num_workers = 3;
  options.idle_timeout_ms = 2000;
  return options;
}

TEST(HttpServerTest, GetAndPostRoundTrip) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  HttpClient client("127.0.0.1", server.port());
  const auto get = client.Get("/stats");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->status, 200);
  EXPECT_EQ(get->body,
            R"({"method":"GET","target":"/stats","body":""})");

  const auto post = client.Post("/summarize", "{\"user\":7}");
  ASSERT_TRUE(post.ok()) << post.status();
  EXPECT_EQ(post->body,
            R"({"method":"POST","target":"/summarize","body":"{\"user\":7}"})");
  server.Stop();
}

TEST(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    const auto response = client.Post("/r", std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_NE(response->body.find("\"body\":\"" + std::to_string(i) + "\""),
              std::string::npos);
  }
  // All 20 requests rode a single accepted connection.
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.requests_served(), 20u);
  server.Stop();
}

TEST(HttpServerTest, ConcurrentClientsAllGetTheirOwnAnswers) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  constexpr size_t kClients = 6;
  constexpr int kPerClient = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      HttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < kPerClient; ++i) {
        const std::string body =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        const auto response = client.Post("/echo", body);
        if (!response.ok() ||
            response->body.find("\"body\":\"" + body + "\"") ==
                std::string::npos) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), kClients * kPerClient);
  server.Stop();
}

TEST(HttpServerTest, GarbageGets400AndConnectionCloses) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  RawConnection raw(server.port());
  ASSERT_TRUE(raw.connected());
  raw.Send("THIS IS NOT HTTP\r\n\r\n");
  const std::string response = raw.ReadAll();
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, HeaderFloodGets431) {
  HttpServer::Options options = TestOptions();
  options.limits.max_header_bytes = 512;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());
  RawConnection raw(server.port());
  ASSERT_TRUE(raw.connected());
  std::string flood = "GET / HTTP/1.1\r\nX-Pad: ";
  flood.append(2048, 'a');
  raw.Send(flood);
  const std::string response = raw.ReadAll();
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyGets413) {
  HttpServer::Options options = TestOptions();
  options.limits.max_body_bytes = 64;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());
  RawConnection raw(server.port());
  ASSERT_TRUE(raw.connected());
  raw.Send("POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  const std::string response = raw.ReadAll();
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, PipelinedRequestsAllAnswered) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  RawConnection raw(server.port());
  ASSERT_TRUE(raw.connected());
  raw.Send(
      "GET /one HTTP/1.1\r\n\r\n"
      "GET /two HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::string response = raw.ReadAll();
  EXPECT_NE(response.find("/one"), std::string::npos);
  EXPECT_NE(response.find("/two"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StopIsPromptWithOpenConnections) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  // An idle keep-alive connection parked in a worker's recv.
  HttpClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Get("/x").ok());
  const auto before = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  // Stop must not wait out the 2 s idle timeout.
  EXPECT_LT(elapsed.count(), 1000) << "Stop blocked on an idle connection";
}

TEST(HttpServerTest, StartFailsOnOccupiedPort) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  HttpServer::Options clash = TestOptions();
  clash.port = server.port();
  HttpServer second(EchoHandler, clash);
  const Status status = second.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError()) << status;
  server.Stop();
}

TEST(HttpClientTest, ResolvesHostnamesNotOnlyLiterals) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  // The documented endpoint form is host:port, so DNS names must work.
  HttpClient client("localhost", server.port());
  const auto response = client.Get("/named");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->body.find("/named"), std::string::npos);
  server.Stop();
}

TEST(HttpClientTest, ConnectionRefusedIsIOErrorNotCrash) {
  // Ephemeral port that nothing listens on: bind+close to find one.
  HttpServer probe(EchoHandler, TestOptions());
  ASSERT_TRUE(probe.Start().ok());
  const uint16_t dead_port = probe.port();
  probe.Stop();

  HttpClient::Options options;
  options.timeout_ms = 500;
  HttpClient client("127.0.0.1", dead_port, options);
  const auto response = client.Get("/healthz");
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsIOError());
}

TEST(HttpServerTest, ByteDrippingPeerIsTimedOutNotHeldForever) {
  HttpServer::Options options = TestOptions();
  options.num_workers = 1;
  options.idle_timeout_ms = 300;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());

  // A peer that sends half a request line and then goes quiet must not
  // pin the (only) worker past the socket timeout.
  const auto before = std::chrono::steady_clock::now();
  {
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    raw.Send("GET /slow HT");
    const std::string response = raw.ReadAll();  // blocks until the close
    EXPECT_EQ(response.find("200"), std::string::npos) << response;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_LT(elapsed.count(), 3000) << "read timeout did not fire";

  // The worker slot is free again: a well-behaved client is served.
  HttpClient client("127.0.0.1", server.port());
  const auto response = client.Get("/after");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  server.Stop();
}

TEST(HttpServerTest, MidBodyDisconnectReclaimsTheWorkerSlot) {
  HttpServer::Options options = TestOptions();
  options.num_workers = 1;
  options.idle_timeout_ms = 500;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());

  // Declare a 1000-byte body, deliver 10, hang up. The worker must
  // abandon the parse on the peer close, not wait for the rest.
  {
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    raw.Send("POST /half HTTP/1.1\r\nContent-Length: 1000\r\n\r\nabcdefghij");
  }  // destructor closes the socket mid-body

  HttpClient client("127.0.0.1", server.port());
  const auto response = client.Get("/next");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(server.requests_served(), 1u) << "the half request is not served";
  server.Stop();
}

/// Handler used by the shedding tests: /block parks until released.
struct GatedHandler {
  std::atomic<bool>* entered;
  std::atomic<bool>* release;

  HttpResponse operator()(const HttpRequest& request) const {
    if (request.target == "/block") {
      entered->store(true);
      while (!release->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return EchoHandler(request);
  }
};

TEST(HttpServerTest, QueueOverflowIsShedWith503AndRetryAfter) {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  HttpServer::Options options = TestOptions();
  options.num_workers = 1;
  options.max_pending = 1;
  HttpServer server(GatedHandler{&entered, &release}, options);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the only worker...
  std::thread blocked([&] {
    HttpClient client("127.0.0.1", server.port());
    const auto response = client.Get("/block");
    EXPECT_TRUE(response.ok()) << response.status();
  });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...fill the one queue slot...
  RawConnection queued(server.port());
  ASSERT_TRUE(queued.connected());
  queued.Send("GET /queued HTTP/1.1\r\nConnection: close\r\n\r\n");
  while (server.queue_depth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...and the next arrival is shed at the door, without being read.
  RawConnection shed(server.port());
  ASSERT_TRUE(shed.connected());
  shed.Send("GET /shed HTTP/1.1\r\n\r\n");
  const std::string response = shed.ReadAll();
  EXPECT_NE(response.find("503"), std::string::npos) << response;
  EXPECT_NE(response.find("Retry-After: 1"), std::string::npos) << response;
  EXPECT_GE(server.requests_shed(), 1u);

  release.store(true);
  blocked.join();
  // The queued connection was legitimate work and is still answered.
  EXPECT_NE(queued.ReadAll().find("/queued"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StaleQueuedConnectionsAreShedAtPickup) {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  HttpServer::Options options = TestOptions();
  options.num_workers = 1;
  options.queue_budget_ms = 50;
  HttpServer server(GatedHandler{&entered, &release}, options);
  ASSERT_TRUE(server.Start().ok());

  std::thread blocked([&] {
    HttpClient client("127.0.0.1", server.port());
    const auto response = client.Get("/block");
    EXPECT_TRUE(response.ok()) << response.status();
  });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  RawConnection stale(server.port());
  ASSERT_TRUE(stale.connected());
  stale.Send("GET /stale HTTP/1.1\r\n\r\n");
  while (server.queue_depth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the queued connection age far past its 50 ms budget, then free
  // the worker: pickup must shed it instead of serving a dead deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  release.store(true);
  blocked.join();
  const std::string response = stale.ReadAll();
  EXPECT_NE(response.find("503"), std::string::npos) << response;
  EXPECT_EQ(response.find("/stale"), std::string::npos)
      << "stale connection was served, not shed";
  EXPECT_GE(server.requests_shed(), 1u);
  server.Stop();
}

TEST(HttpClientTest, RetriesRefusedConnectsUntilTheListenerIsBack) {
  // Find a free port, leave nothing listening on it.
  HttpServer probe(EchoHandler, TestOptions());
  ASSERT_TRUE(probe.Start().ok());
  const uint16_t port = probe.port();
  probe.Stop();

  // Bring a server up on that port only after a delay: the first
  // connect attempts are refused, a later backed-off retry lands.
  HttpServer::Options revived_options = TestOptions();
  revived_options.port = port;
  HttpServer revived(EchoHandler, revived_options);
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ASSERT_TRUE(revived.Start().ok());
  });

  HttpClient::Options options;
  options.timeout_ms = 2000;
  options.connect_retries = 6;
  options.connect_backoff_ms = 40;
  HttpClient client("127.0.0.1", port, options);
  const auto response = client.Get("/revived");
  restarter.join();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->body.find("/revived"), std::string::npos);
  revived.Stop();
}

TEST(HttpClientTest, ZeroConnectRetriesFailsImmediately) {
  HttpServer probe(EchoHandler, TestOptions());
  ASSERT_TRUE(probe.Start().ok());
  const uint16_t dead_port = probe.port();
  probe.Stop();

  HttpClient::Options options;
  options.timeout_ms = 2000;
  options.connect_retries = 0;
  HttpClient client("127.0.0.1", dead_port, options);
  const auto before = std::chrono::steady_clock::now();
  const auto response = client.Get("/gone");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsIOError());
  // A loopback refusal is instant; no-retry must not sit in backoff.
  EXPECT_LT(elapsed.count(), 1000);
}

TEST(HttpClientTest, SurvivesServerSideConnectionReap) {
  HttpServer server(EchoHandler, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Get("/a").ok());
  // Bounce the server on the same port: the pooled connection is dead.
  const uint16_t port = server.port();
  server.Stop();
  HttpServer::Options options = TestOptions();
  options.port = port;
  HttpServer revived(EchoHandler, options);
  ASSERT_TRUE(revived.Start().ok());
  // The client's stale-connection retry makes this transparent.
  const auto response = client.Get("/b");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->body.find("/b"), std::string::npos);
  revived.Stop();
}

}  // namespace
}  // namespace xsum::net
