/// Tests for the synthetic dataset generators: structural validity,
/// calibration to the paper's published statistics, and determinism.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace xsum::data {
namespace {

TEST(SyntheticTest, Ml1mConfigScalesCounts) {
  const auto full = Ml1mConfig(1.0);
  EXPECT_EQ(full.num_users, 6040u);
  EXPECT_EQ(full.num_items, 3883u);
  EXPECT_EQ(full.target_ratings, 932293u);
  EXPECT_EQ(full.target_triples, 178461u);
  const auto half = Ml1mConfig(0.5);
  EXPECT_EQ(half.num_users, 3020u);
}

TEST(SyntheticTest, Lfm1mConfigMatchesPaper) {
  const auto c = Lfm1mConfig(1.0);
  EXPECT_EQ(c.num_users, 4817u);
  EXPECT_EQ(c.num_items, 12492u);
  EXPECT_EQ(c.num_entities, 17491u);
  EXPECT_EQ(c.target_ratings, 1091274u);
  EXPECT_EQ(c.flavor, DatasetFlavor::kMusic);
}

TEST(SyntheticTest, ScalingConfigRatios) {
  const auto c = ScalingConfig(10000);
  // ML1M ratios: ~30.4% users, ~19.6% items, rest entities.
  EXPECT_NEAR(static_cast<double>(c.num_users), 3044, 10);
  EXPECT_NEAR(static_cast<double>(c.num_items), 1957, 10);
  EXPECT_EQ(c.num_users + c.num_items + c.num_entities, 10000u);
  // ~56.7 edges per node, split ~83/17.
  EXPECT_NEAR(static_cast<double>(c.target_ratings + c.target_triples),
              567200, 5000);
}

TEST(SyntheticTest, GeneratedDatasetValidates) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.02));
  EXPECT_TRUE(ds.Validate());
  EXPECT_EQ(ds.num_users, ds.user_gender.size());
}

TEST(SyntheticTest, RatingsNearTarget) {
  const auto config = Ml1mConfig(0.05);
  const Dataset ds = MakeSyntheticDataset(config);
  // Deduplication loses a little; expect at least 85% of the target.
  EXPECT_GE(ds.ratings.size(), config.target_ratings * 85 / 100);
  EXPECT_LE(ds.ratings.size(), config.target_ratings + ds.num_users +
                                   ds.num_items);
}

TEST(SyntheticTest, TriplesNearTarget) {
  const auto config = Ml1mConfig(0.05);
  const Dataset ds = MakeSyntheticDataset(config);
  EXPECT_GE(ds.triples.size(), config.target_triples * 80 / 100);
}

TEST(SyntheticTest, EveryUserAndItemHasARating) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.03));
  const auto activity = ds.UserActivity();
  const auto popularity = ds.ItemPopularity();
  for (uint32_t u = 0; u < ds.num_users; ++u) EXPECT_GE(activity[u], 1u);
  for (uint32_t i = 0; i < ds.num_items; ++i) EXPECT_GE(popularity[i], 1u);
}

TEST(SyntheticTest, EveryEntityIsAttached) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.03));
  std::vector<char> used(ds.num_entities, 0);
  for (const Triple& t : ds.triples) used[t.entity] = 1;
  for (uint32_t e = 0; e < ds.num_entities; ++e) {
    EXPECT_TRUE(used[e]) << "entity " << e << " isolated";
  }
}

TEST(SyntheticTest, NoDuplicateRatings) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.03));
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const Rating& r : ds.ratings) {
    EXPECT_TRUE(seen.insert({r.user, r.item}).second)
        << "duplicate rating " << r.user << "," << r.item;
  }
}

TEST(SyntheticTest, PopularityIsSkewed) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.05));
  auto pop = ds.ItemPopularity();
  std::sort(pop.begin(), pop.end(), std::greater<>());
  // Zipf head: the top 10% of items should hold far more than 10% of mass.
  size_t head = 0;
  size_t total = 0;
  for (size_t i = 0; i < pop.size(); ++i) {
    total += pop[i];
    if (i < pop.size() / 10) head += pop[i];
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.25);
}

TEST(SyntheticTest, TimestampsWithinWindow) {
  const auto config = Ml1mConfig(0.02);
  const Dataset ds = MakeSyntheticDataset(config);
  for (const Rating& r : ds.ratings) {
    EXPECT_LE(r.timestamp, config.t0);
    EXPECT_GE(r.timestamp, config.t0 - config.timestamp_window);
  }
}

TEST(SyntheticTest, GenderMixRoughlyMatchesConfig) {
  const auto config = Ml1mConfig(0.2);
  const Dataset ds = MakeSyntheticDataset(config);
  size_t female = 0;
  for (Gender g : ds.user_gender) {
    if (g == Gender::kFemale) ++female;
  }
  const double frac = static_cast<double>(female) /
                      static_cast<double>(ds.num_users);
  EXPECT_NEAR(frac, config.female_fraction, 0.05);
}

TEST(SyntheticTest, DeterministicForSeed) {
  const Dataset a = MakeSyntheticDataset(Ml1mConfig(0.02, 7));
  const Dataset b = MakeSyntheticDataset(Ml1mConfig(0.02, 7));
  ASSERT_EQ(a.ratings.size(), b.ratings.size());
  for (size_t i = 0; i < a.ratings.size(); ++i) {
    EXPECT_EQ(a.ratings[i].user, b.ratings[i].user);
    EXPECT_EQ(a.ratings[i].item, b.ratings[i].item);
    EXPECT_EQ(a.ratings[i].rating, b.ratings[i].rating);
  }
  ASSERT_EQ(a.triples.size(), b.triples.size());
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  const Dataset a = MakeSyntheticDataset(Ml1mConfig(0.02, 7));
  const Dataset b = MakeSyntheticDataset(Ml1mConfig(0.02, 8));
  bool any_diff = a.ratings.size() != b.ratings.size();
  for (size_t i = 0; !any_diff && i < a.ratings.size(); ++i) {
    any_diff = a.ratings[i].user != b.ratings[i].user ||
               a.ratings[i].item != b.ratings[i].item;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, MusicFlavorUsesMusicRelations) {
  const Dataset ds = MakeSyntheticDataset(Lfm1mConfig(0.02));
  bool has_sung_by = false;
  bool has_album = false;
  for (const Triple& t : ds.triples) {
    has_sung_by |= t.relation == graph::Relation::kSungBy;
    has_album |= t.relation == graph::Relation::kInAlbum;
    EXPECT_NE(t.relation, graph::Relation::kDirectedBy);
  }
  EXPECT_TRUE(has_sung_by);
  EXPECT_TRUE(has_album);
}

TEST(SyntheticTest, MovieFlavorUsesMovieRelations) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.02));
  bool has_director = false;
  bool has_actor = false;
  for (const Triple& t : ds.triples) {
    has_director |= t.relation == graph::Relation::kDirectedBy;
    has_actor |= t.relation == graph::Relation::kActedBy;
    EXPECT_NE(t.relation, graph::Relation::kSungBy);
  }
  EXPECT_TRUE(has_director);
  EXPECT_TRUE(has_actor);
}

class SyntheticScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(SyntheticScaleSweep, ValidAtAllScales) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(GetParam()));
  EXPECT_TRUE(ds.Validate());
  EXPECT_GT(ds.ratings.size(), 0u);
  EXPECT_GT(ds.triples.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Scales, SyntheticScaleSweep,
                         ::testing::Values(0.002, 0.01, 0.05, 0.12));

}  // namespace
}  // namespace xsum::data
