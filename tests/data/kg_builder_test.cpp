/// Tests for knowledge-graph construction from datasets (§III graph G).

#include <gtest/gtest.h>

#include "data/graph_stats.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "graph/connectivity.h"

namespace xsum::data {
namespace {

Dataset MakeTinyDataset() {
  Dataset ds;
  ds.name = "tiny";
  ds.num_users = 2;
  ds.num_items = 2;
  ds.num_entities = 1;
  ds.user_gender = {Gender::kMale, Gender::kFemale};
  ds.t0 = 1000;
  ds.ratings = {{0, 0, 5.0f, 900}, {1, 1, 3.0f, 950}};
  ds.triples = {{0, graph::Relation::kHasGenre, 0, false},
                {1, graph::Relation::kHasGenre, 0, false}};
  return ds;
}

TEST(KgBuilderTest, NodeLayoutIsContiguous) {
  const auto rg = BuildRecGraph(MakeTinyDataset());
  ASSERT_TRUE(rg.ok());
  EXPECT_EQ(rg->UserNode(0), 0u);
  EXPECT_EQ(rg->UserNode(1), 1u);
  EXPECT_EQ(rg->ItemNode(0), 2u);
  EXPECT_EQ(rg->ItemNode(1), 3u);
  EXPECT_EQ(rg->EntityNode(0), 4u);
  EXPECT_EQ(rg->NodeToItem(2), 0u);
  EXPECT_EQ(rg->NodeToEntity(4), 0u);
  EXPECT_EQ(rg->NodeToUser(1), 1u);
}

TEST(KgBuilderTest, NodeTypesAssigned) {
  const auto rg = BuildRecGraph(MakeTinyDataset());
  ASSERT_TRUE(rg.ok());
  EXPECT_TRUE(rg->graph().IsUser(0));
  EXPECT_TRUE(rg->graph().IsItem(2));
  EXPECT_TRUE(rg->graph().IsEntity(4));
}

TEST(KgBuilderTest, EdgeCountsAndWeights) {
  const auto rg = BuildRecGraph(MakeTinyDataset());
  ASSERT_TRUE(rg.ok());
  EXPECT_EQ(rg->graph().num_edges(), 4u);  // 2 ratings + 2 triples
  // Rated edge weight = beta1 * r with the default params.
  const auto e = rg->graph().FindEdge(rg->UserNode(0), rg->ItemNode(0));
  ASSERT_NE(e, graph::kInvalidEdge);
  EXPECT_DOUBLE_EQ(rg->graph().edge_weight(e), 5.0);
  // Knowledge edge weight = wA = 0 by default.
  const auto ke = rg->graph().FindEdge(rg->ItemNode(0), rg->EntityNode(0));
  ASSERT_NE(ke, graph::kInvalidEdge);
  EXPECT_DOUBLE_EQ(rg->graph().edge_weight(ke), 0.0);
}

TEST(KgBuilderTest, BaseWeightsMatchGraph) {
  const auto rg = BuildRecGraph(MakeTinyDataset());
  ASSERT_TRUE(rg.ok());
  ASSERT_EQ(rg->base_weights().size(), rg->graph().num_edges());
  for (graph::EdgeId e = 0; e < rg->graph().num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(rg->base_weights()[e], rg->graph().edge_weight(e));
  }
}

TEST(KgBuilderTest, RatedItemsAndHasRated) {
  const auto rg = BuildRecGraph(MakeTinyDataset());
  ASSERT_TRUE(rg.ok());
  EXPECT_EQ(rg->RatedItems(0), std::vector<graph::NodeId>{rg->ItemNode(0)});
  EXPECT_TRUE(rg->HasRated(0, 0));
  EXPECT_FALSE(rg->HasRated(0, 1));
  EXPECT_TRUE(rg->HasRated(1, 1));
}

TEST(KgBuilderTest, T0DefaultsToDataset) {
  const auto rg = BuildRecGraph(MakeTinyDataset());
  ASSERT_TRUE(rg.ok());
  EXPECT_EQ(rg->weight_params().t0, 1000);
}

TEST(KgBuilderTest, CustomWaAppliesToKnowledgeEdges) {
  WeightParams params;
  params.wa = 0.25;
  const auto rg = BuildRecGraph(MakeTinyDataset(), params);
  ASSERT_TRUE(rg.ok());
  const auto ke = rg->graph().FindEdge(rg->ItemNode(0), rg->EntityNode(0));
  EXPECT_DOUBLE_EQ(rg->graph().edge_weight(ke), 0.25);
}

TEST(KgBuilderTest, RecencyAffectsWeights) {
  WeightParams params;
  params.beta1 = 0.0;
  params.beta2 = 1.0;
  params.gamma = 0.001;
  const auto rg = BuildRecGraph(MakeTinyDataset(), params);
  ASSERT_TRUE(rg.ok());
  const auto old_edge = rg->graph().FindEdge(rg->UserNode(0), rg->ItemNode(0));
  const auto new_edge = rg->graph().FindEdge(rg->UserNode(1), rg->ItemNode(1));
  // Newer rating (t=950) outweighs older (t=900) under pure recency.
  EXPECT_GT(rg->graph().edge_weight(new_edge),
            rg->graph().edge_weight(old_edge));
}

TEST(KgBuilderTest, RejectsInvalidDataset) {
  Dataset ds = MakeTinyDataset();
  ds.ratings.push_back({9, 0, 3.0f, 0});
  const auto rg = BuildRecGraph(ds);
  EXPECT_FALSE(rg.ok());
  EXPECT_TRUE(rg.status().IsInvalidArgument());
}

TEST(KgBuilderTest, SyntheticMl1mGraphIsLargelyConnected) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.03));
  const auto rg = BuildRecGraph(ds);
  ASSERT_TRUE(rg.ok());
  const auto comps = graph::WeaklyConnectedComponents(rg->graph());
  size_t largest = 0;
  for (size_t size : comps.sizes) largest = std::max(largest, size);
  EXPECT_GT(static_cast<double>(largest),
            0.99 * static_cast<double>(rg->graph().num_nodes()));
}

// --- graph stats (Table II machinery) ---------------------------------------

TEST(GraphStatsTest, CountsMatchDataset) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.02));
  const auto rg = BuildRecGraph(ds);
  ASSERT_TRUE(rg.ok());
  const auto stats = ComputeGraphStats(*rg);
  EXPECT_EQ(stats.num_users, ds.num_users);
  EXPECT_EQ(stats.num_items, ds.num_items);
  EXPECT_EQ(stats.num_entities, ds.num_entities);
  EXPECT_EQ(stats.num_rated_edges, ds.ratings.size());
  EXPECT_EQ(stats.num_triple_edges, ds.triples.size());
  EXPECT_EQ(stats.num_edges, ds.ratings.size() + ds.triples.size());
}

TEST(GraphStatsTest, DegreeIdentity) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.02));
  const auto rg = BuildRecGraph(ds);
  ASSERT_TRUE(rg.ok());
  const auto stats = ComputeGraphStats(*rg);
  // Sum of degrees = 2 |E|.
  EXPECT_NEAR(stats.avg_degree * static_cast<double>(stats.num_nodes),
              2.0 * static_cast<double>(stats.num_edges), 1.0);
}

TEST(GraphStatsTest, SmallWorldPathLength) {
  const Dataset ds = MakeSyntheticDataset(Ml1mConfig(0.04));
  const auto rg = BuildRecGraph(ds);
  ASSERT_TRUE(rg.ok());
  const auto stats = ComputeGraphStats(*rg);
  // The ML1M KG is small-world (paper: avg 3.20, diameter 6). The scaled
  // replica stays in that ballpark.
  EXPECT_GT(stats.avg_path_length, 1.5);
  EXPECT_LT(stats.avg_path_length, 4.5);
  EXPECT_GE(stats.diameter_estimate, 3);
  EXPECT_LE(stats.diameter_estimate, 10);
}

TEST(GraphStatsTest, ToStringContainsHeadlineNumbers) {
  const Dataset ds = MakeTinyDataset();
  const auto rg = BuildRecGraph(ds);
  ASSERT_TRUE(rg.ok());
  const auto stats = ComputeGraphStats(*rg);
  const std::string s = stats.ToString("title");
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("Number of nodes"), std::string::npos);
  EXPECT_NE(s.find("Density"), std::string::npos);
}

}  // namespace
}  // namespace xsum::data
