/// Tests for the dataset schema and the §III weight function.

#include <cmath>
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/weights.h"

namespace xsum::data {
namespace {

Dataset MakeTinyDataset() {
  Dataset ds;
  ds.name = "tiny";
  ds.num_users = 2;
  ds.num_items = 3;
  ds.num_entities = 2;
  ds.user_gender = {Gender::kMale, Gender::kFemale};
  ds.t0 = 1000;
  ds.ratings = {{0, 0, 5.0f, 900}, {0, 1, 3.0f, 950}, {1, 0, 4.0f, 980}};
  ds.triples = {{0, graph::Relation::kHasGenre, 0, false},
                {2, graph::Relation::kDirectedBy, 1, false}};
  return ds;
}

TEST(DatasetTest, ValidatesCleanData) {
  EXPECT_TRUE(MakeTinyDataset().Validate());
}

TEST(DatasetTest, RejectsUserIndexOutOfRange) {
  Dataset ds = MakeTinyDataset();
  ds.ratings.push_back({5, 0, 4.0f, 0});
  EXPECT_FALSE(ds.Validate());
}

TEST(DatasetTest, RejectsItemIndexOutOfRange) {
  Dataset ds = MakeTinyDataset();
  ds.ratings.push_back({0, 9, 4.0f, 0});
  EXPECT_FALSE(ds.Validate());
}

TEST(DatasetTest, RejectsRatingOutOfBounds) {
  Dataset ds = MakeTinyDataset();
  ds.ratings.push_back({0, 0, 6.0f, 0});
  EXPECT_FALSE(ds.Validate());
  ds.ratings.back().rating = 0.5f;
  EXPECT_FALSE(ds.Validate());
}

TEST(DatasetTest, RejectsBadTriples) {
  Dataset ds = MakeTinyDataset();
  ds.triples.push_back({0, graph::Relation::kHasGenre, 7, false});
  EXPECT_FALSE(ds.Validate());
  ds.triples.back() = {9, graph::Relation::kHasGenre, 0, false};
  EXPECT_FALSE(ds.Validate());
  // user-subject triple with valid user index is fine
  ds.triples.back() = {1, graph::Relation::kUserAttribute, 0, true};
  EXPECT_TRUE(ds.Validate());
  ds.triples.back().subject = 2;  // user index out of range
  EXPECT_FALSE(ds.Validate());
}

TEST(DatasetTest, RejectsGenderSizeMismatch) {
  Dataset ds = MakeTinyDataset();
  ds.user_gender.pop_back();
  EXPECT_FALSE(ds.Validate());
}

TEST(DatasetTest, ItemPopularityCounts) {
  const Dataset ds = MakeTinyDataset();
  const auto pop = ds.ItemPopularity();
  EXPECT_EQ(pop, (std::vector<uint32_t>{2, 1, 0}));
}

TEST(DatasetTest, UserActivityCounts) {
  const Dataset ds = MakeTinyDataset();
  const auto act = ds.UserActivity();
  EXPECT_EQ(act, (std::vector<uint32_t>{2, 1}));
}

// --- weights ------------------------------------------------------------------

TEST(WeightsTest, RecencyIsOneAtT0) {
  WeightParams params;
  params.t0 = 1000;
  params.gamma = 0.01;
  EXPECT_DOUBLE_EQ(RecencyScore(params, 1000), 1.0);
  EXPECT_DOUBLE_EQ(RecencyScore(params, 2000), 1.0);  // future clamped
}

TEST(WeightsTest, RecencyDecaysExponentially) {
  WeightParams params;
  params.t0 = 1000;
  params.gamma = 0.001;
  const double r1 = RecencyScore(params, 900);
  const double r2 = RecencyScore(params, 800);
  EXPECT_LT(r2, r1);
  EXPECT_NEAR(r1, std::exp(-0.1), 1e-12);
  EXPECT_NEAR(r2 / r1, r1 / 1.0, 1e-9);  // constant ratio per 100s
}

TEST(WeightsTest, PaperDefaultIgnoresRecency) {
  WeightParams params;  // beta1=1, beta2=0
  params.t0 = 1000;
  EXPECT_DOUBLE_EQ(RatedEdgeWeight(params, 4.0, 0), 4.0);
  EXPECT_DOUBLE_EQ(RatedEdgeWeight(params, 4.0, 999), 4.0);
}

TEST(WeightsTest, BetaMixing) {
  WeightParams params;
  params.beta1 = 0.5;
  params.beta2 = 2.0;
  params.t0 = 1000;
  params.gamma = 0.0;  // recency term = 1 for any past timestamp
  EXPECT_DOUBLE_EQ(RatedEdgeWeight(params, 4.0, 500), 0.5 * 4.0 + 2.0);
}

TEST(WeightsTest, HigherRatingHigherWeight) {
  WeightParams params;
  params.t0 = 1000;
  EXPECT_GT(RatedEdgeWeight(params, 5.0, 900), RatedEdgeWeight(params, 1.0, 900));
}

TEST(WeightsTest, MoreRecentHigherWeightWhenRecencyOn) {
  WeightParams params;
  params.beta1 = 0.0;
  params.beta2 = 1.0;
  params.gamma = 0.001;
  params.t0 = 1000;
  EXPECT_GT(RatedEdgeWeight(params, 3.0, 950), RatedEdgeWeight(params, 3.0, 500));
}

}  // namespace
}  // namespace xsum::data
