/// Tests for dataset IO: MovieLens-native loading and the xsum TSV
/// round-trip.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/io.h"
#include "data/synthetic.h"

namespace xsum::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("xsum_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteFile(const std::string& name, const std::string& body) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << body;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, LoadsMl1mNativeFormat) {
  Ml1mPaths paths;
  paths.ratings_dat = WriteFile("ratings.dat",
                                "1::1193::5::978300760\n"
                                "1::661::3::978302109\n"
                                "2::1193::4::978298413\n");
  paths.users_dat = WriteFile("users.dat",
                              "1::F::1::10::48067\n"
                              "2::M::56::16::70072\n");
  paths.triples_tsv = WriteFile("triples.tsv",
                                "1193\tdirected_by\t900\n"
                                "661\thas_genre\t901\n"
                                "9999\thas_genre\t901\n");  // unrated: skip
  const auto ds = LoadMl1m(paths);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_users, 2u);
  EXPECT_EQ(ds->num_items, 2u);
  EXPECT_EQ(ds->num_entities, 2u);
  EXPECT_EQ(ds->ratings.size(), 3u);
  EXPECT_EQ(ds->triples.size(), 2u);  // the unrated item's triple dropped
  EXPECT_EQ(ds->user_gender[0], Gender::kFemale);
  EXPECT_EQ(ds->user_gender[1], Gender::kMale);
  EXPECT_EQ(ds->t0, 978302109);  // max timestamp
  EXPECT_TRUE(ds->Validate());
  // Dense ids preserve first-seen order: raw 1193 -> 0, 661 -> 1.
  EXPECT_EQ(ds->ratings[0].item, 0u);
  EXPECT_EQ(ds->ratings[1].item, 1u);
  EXPECT_EQ(ds->triples[0].relation, graph::Relation::kDirectedBy);
}

TEST_F(IoTest, Ml1mMissingFileIsIOError) {
  Ml1mPaths paths;
  paths.ratings_dat = (dir_ / "nope.dat").string();
  EXPECT_TRUE(LoadMl1m(paths).status().IsIOError());
}

TEST_F(IoTest, Ml1mMalformedRowRejected) {
  Ml1mPaths paths;
  paths.ratings_dat = WriteFile("bad.dat", "1::2\n");
  EXPECT_TRUE(LoadMl1m(paths).status().IsInvalidArgument());
}

TEST_F(IoTest, Ml1mRatingOutOfRangeRejected) {
  Ml1mPaths paths;
  paths.ratings_dat = WriteFile("bad2.dat", "1::2::9::100\n");
  EXPECT_TRUE(LoadMl1m(paths).status().IsInvalidArgument());
}

TEST_F(IoTest, Ml1mWorksWithoutOptionalFiles) {
  Ml1mPaths paths;
  paths.ratings_dat = WriteFile("only.dat", "7::8::4::1000\n");
  const auto ds = LoadMl1m(paths);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users, 1u);
  EXPECT_EQ(ds->num_entities, 0u);
  EXPECT_EQ(ds->user_gender[0], Gender::kMale);  // default
}

TEST_F(IoTest, TsvRoundTripPreservesDataset) {
  const Dataset original = MakeSyntheticDataset(Ml1mConfig(0.01, 77));
  const std::string path = (dir_ / "ds.tsv").string();
  ASSERT_TRUE(SaveDatasetTsv(original, path).ok());
  const auto loaded = LoadDatasetTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->num_users, original.num_users);
  EXPECT_EQ(loaded->num_items, original.num_items);
  EXPECT_EQ(loaded->num_entities, original.num_entities);
  EXPECT_EQ(loaded->t0, original.t0);
  ASSERT_EQ(loaded->ratings.size(), original.ratings.size());
  for (size_t i = 0; i < original.ratings.size(); ++i) {
    EXPECT_EQ(loaded->ratings[i].user, original.ratings[i].user);
    EXPECT_EQ(loaded->ratings[i].item, original.ratings[i].item);
    EXPECT_EQ(loaded->ratings[i].rating, original.ratings[i].rating);
    EXPECT_EQ(loaded->ratings[i].timestamp, original.ratings[i].timestamp);
  }
  ASSERT_EQ(loaded->triples.size(), original.triples.size());
  for (size_t i = 0; i < original.triples.size(); ++i) {
    EXPECT_EQ(loaded->triples[i].subject, original.triples[i].subject);
    EXPECT_EQ(loaded->triples[i].relation, original.triples[i].relation);
    EXPECT_EQ(loaded->triples[i].entity, original.triples[i].entity);
  }
  EXPECT_EQ(loaded->user_gender, original.user_gender);
}

TEST_F(IoTest, TsvRejectsWrongMagic) {
  const std::string path = WriteFile("junk.tsv", "not-a-dataset\n");
  EXPECT_TRUE(LoadDatasetTsv(path).status().IsInvalidArgument());
}

TEST_F(IoTest, TsvMissingFileIsIOError) {
  EXPECT_TRUE(
      LoadDatasetTsv((dir_ / "missing.tsv").string()).status().IsIOError());
}

TEST(ParseRelationTest, RoundTripsAllRelations) {
  for (int r = 0; r < graph::kNumRelations; ++r) {
    const auto relation = static_cast<graph::Relation>(r);
    EXPECT_EQ(ParseRelation(graph::RelationToString(relation)), relation);
  }
  EXPECT_EQ(ParseRelation("unknown-thing"), graph::Relation::kRelatedTo);
}

}  // namespace
}  // namespace xsum::data
