// Lint fixture — NOT compiled, NOT real code. Exists so ctest can prove
// tools/lint_invariants.py's `env-catalog` rule fires on an XSUM_* env
// literal missing from EnvVarCatalog(). Run via:
//   lint_invariants.py --expect env-catalog tests/tools/fixture_env_uncataloged.cc
#include <cstdlib>

namespace fixture {

inline const char* ReadUndocumentedKnob() {
  // XSUM_SEED in this comment must NOT fire; the uncataloged literal
  // below must.
  return std::getenv("XSUM_NOT_A_REAL_KNOB");
}

}  // namespace fixture
