// Lint fixture — NOT compiled, NOT real code. Exists so ctest can prove
// tools/lint_invariants.py's `wall-clock` rule fires on system_clock in
// a latency path. Run via:
//   lint_invariants.py --expect wall-clock tests/tools/fixture_wall_clock.cc
#include <chrono>

namespace fixture {

// system_clock in this comment must NOT fire; the measurement below must.
inline double ElapsedMsWrongClock() {
  const auto start = std::chrono::system_clock::now();
  const auto stop = std::chrono::system_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace fixture
