// Lint fixture — NOT compiled, NOT real code. Exists so ctest can prove
// tools/lint_invariants.py's `naked-sync` rule fires on a raw std::mutex
// outside util/sync.h. Run via:
//   lint_invariants.py --expect naked-sync tests/tools/fixture_naked_mutex.cc
#include <mutex>

namespace fixture {

// A comment mentioning std::mutex must NOT fire (comments are stripped);
// the declarations below must.
inline int CountUnderNakedLock() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  static int count = 0;
  return ++count;
}

}  // namespace fixture
