/// Tests for the §V-B explanation-quality metrics against hand-computed
/// values on the Table I example structure, plus property checks.

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "metrics/metrics.h"

namespace xsum::metrics {
namespace {

using graph::GraphBuilder;
using graph::KnowledgeGraph;
using graph::NodeId;
using graph::NodeType;
using graph::Path;
using graph::Relation;

/// u0, u1 users; i2, i3 items; e4 entity. Edges:
///   e0: u0-i2 (w 5), e1: u1-i2 (w 3), e2: i2-e4 (w 0), e3: i3-e4 (w 0)
KnowledgeGraph MakeFixture() {
  GraphBuilder b;
  b.AddNodes(NodeType::kUser, 2);
  b.AddNodes(NodeType::kItem, 2);
  b.AddNodes(NodeType::kEntity, 1);
  EXPECT_TRUE(b.AddEdge(0, 2, Relation::kRated, 5.0).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, Relation::kRated, 3.0).ok());
  EXPECT_TRUE(b.AddEdge(2, 4, Relation::kHasGenre, 0.0).ok());
  EXPECT_TRUE(b.AddEdge(3, 4, Relation::kHasGenre, 0.0).ok());
  return std::move(b).Finalize();
}

Path ThreeHop() {
  // u0 -> i2 -> e4 -> i3
  Path p;
  p.nodes = {0, 2, 4, 3};
  p.edges = {0, 2, 3};
  return p;
}

TEST(ViewTest, FromPathsKeepsDuplicates) {
  const auto view = MakeViewFromPaths({ThreeHop(), ThreeHop()});
  EXPECT_EQ(view.edge_occurrences.size(), 6u);
  EXPECT_EQ(view.edge_ids.size(), 6u);
  EXPECT_EQ(view.node_occurrences.size(), 8u);
  EXPECT_EQ(view.unique_nodes.size(), 4u);
}

TEST(ViewTest, FromSubgraphIsDeduplicated) {
  const KnowledgeGraph g = MakeFixture();
  const auto s = graph::Subgraph::FromEdges(g, {0, 2, 3});
  const auto view = MakeViewFromSubgraph(g, s);
  EXPECT_EQ(view.edge_occurrences.size(), 3u);
  EXPECT_EQ(view.node_occurrences.size(), view.unique_nodes.size());
}

TEST(ViewTest, HallucinatedHopsHaveNoEdgeIds) {
  Path p;
  p.nodes = {0, 3};
  p.edges = {graph::kInvalidEdge};
  const auto view = MakeViewFromPaths({p});
  EXPECT_EQ(view.edge_occurrences.size(), 1u);
  EXPECT_TRUE(view.edge_ids.empty());
}

TEST(ComprehensibilityTest, InverseOfEdgeCount) {
  const auto view = MakeViewFromPaths({ThreeHop()});
  EXPECT_DOUBLE_EQ(Comprehensibility(view), 1.0 / 3.0);
  const auto two = MakeViewFromPaths({ThreeHop(), ThreeHop()});
  EXPECT_DOUBLE_EQ(Comprehensibility(two), 1.0 / 6.0);
}

TEST(ComprehensibilityTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Comprehensibility(ExplanationView{}), 0.0);
}

TEST(ActionabilityTest, ItemShareOfUniqueNodes) {
  const KnowledgeGraph g = MakeFixture();
  const auto view = MakeViewFromPaths({ThreeHop()});
  // Unique nodes: u0, i2, e4, i3 -> 2 items of 4.
  EXPECT_DOUBLE_EQ(Actionability(g, view), 0.5);
}

TEST(ActionabilityTest, EmptyIsZero) {
  const KnowledgeGraph g = MakeFixture();
  EXPECT_DOUBLE_EQ(Actionability(g, ExplanationView{}), 0.0);
}

TEST(DiversityTest, HandComputedPairJaccards) {
  // Edges (u0,i2), (i2,e4), (e4,i3): pairs share exactly one endpoint
  // (J = 1/3) except the (u0,i2)/(e4,i3) pair (J = 0).
  const auto view = MakeViewFromPaths({ThreeHop()});
  const double expected = (2.0 * (1.0 - 1.0 / 3.0) + 1.0) / 3.0;
  EXPECT_NEAR(Diversity(view), expected, 1e-12);
}

TEST(DiversityTest, FewerThanTwoEdgesIsZero) {
  EXPECT_DOUBLE_EQ(Diversity(ExplanationView{}), 0.0);
  Path one;
  one.nodes = {0, 2};
  one.edges = {0};
  EXPECT_DOUBLE_EQ(Diversity(MakeViewFromPaths({one})), 0.0);
}

TEST(DiversityTest, IdenticalEdgesScoreZero) {
  const KnowledgeGraph g = MakeFixture();
  Path p;
  p.nodes = {0, 2};
  p.edges = {0};
  const auto view = MakeViewFromPaths({p, p});
  EXPECT_DOUBLE_EQ(Diversity(view), 0.0);
}

TEST(DiversityTest, DisjointEdgesScoreOne) {
  Path a;
  a.nodes = {0, 2};
  a.edges = {0};
  Path b;
  b.nodes = {3, 4};
  b.edges = {3};
  const auto view = MakeViewFromPaths({a, b});
  EXPECT_DOUBLE_EQ(Diversity(view), 1.0);
}

TEST(DiversityTest, SampledEstimateCloseToExact) {
  // Build a large path multiset; compare exact vs sampled.
  std::vector<Path> paths;
  for (int i = 0; i < 40; ++i) paths.push_back(ThreeHop());
  const auto view = MakeViewFromPaths(paths);
  const double exact = Diversity(view, /*max_pairs=*/1u << 30);
  const double sampled = Diversity(view, /*max_pairs=*/2000);
  EXPECT_NEAR(sampled, exact, 0.05);
}

TEST(RedundancyTest, DuplicateShare) {
  const auto one = MakeViewFromPaths({ThreeHop()});
  EXPECT_DOUBLE_EQ(Redundancy(one), 0.0);  // 4 occurrences, 4 unique
  const auto two = MakeViewFromPaths({ThreeHop(), ThreeHop()});
  EXPECT_DOUBLE_EQ(Redundancy(two), 0.5);  // 8 occurrences, 4 unique
}

TEST(RedundancyTest, SubgraphIsZeroByConstruction) {
  const KnowledgeGraph g = MakeFixture();
  const auto s = graph::Subgraph::FromEdges(g, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(Redundancy(MakeViewFromSubgraph(g, s)), 0.0);
}

TEST(ConsistencyTest, IdenticalViewsScoreOne) {
  const auto v = MakeViewFromPaths({ThreeHop()});
  EXPECT_DOUBLE_EQ(Consistency({v, v, v}), 1.0);
}

TEST(ConsistencyTest, SingleViewScoresOne) {
  EXPECT_DOUBLE_EQ(Consistency({MakeViewFromPaths({ThreeHop()})}), 1.0);
}

TEST(ConsistencyTest, DisjointViewsScoreZero) {
  Path a;
  a.nodes = {0, 2};
  a.edges = {0};
  Path b;
  b.nodes = {3, 4};
  b.edges = {3};
  const auto va = MakeViewFromPaths({a});
  const auto vb = MakeViewFromPaths({b});
  EXPECT_DOUBLE_EQ(Consistency({va, vb}), 0.0);
}

TEST(ConsistencyTest, PartialOverlapHandChecked) {
  // {0,2,4,3} vs {0,2}: J = 2/4.
  Path grow;
  grow.nodes = {0, 2};
  grow.edges = {0};
  const auto small = MakeViewFromPaths({grow});
  const auto big = MakeViewFromPaths({ThreeHop()});
  EXPECT_DOUBLE_EQ(Consistency({small, big}), 0.5);
}

TEST(RelevanceTest, SumsBaseWeightsWithDuplicates) {
  const KnowledgeGraph g = MakeFixture();
  const auto weights = g.WeightVector();
  const auto one = MakeViewFromPaths({ThreeHop()});
  EXPECT_DOUBLE_EQ(Relevance(one, weights), 5.0);  // only e0 carries weight
  const auto two = MakeViewFromPaths({ThreeHop(), ThreeHop()});
  EXPECT_DOUBLE_EQ(Relevance(two, weights), 10.0);  // duplicates count
}

TEST(PrivacyTest, UserShareOfUniqueNodes) {
  const KnowledgeGraph g = MakeFixture();
  const auto view = MakeViewFromPaths({ThreeHop()});
  // 1 user of 4 unique nodes.
  EXPECT_DOUBLE_EQ(Privacy(g, view), 0.75);
}

TEST(PrivacyTest, EmptyIsPerfectlyPrivate) {
  const KnowledgeGraph g = MakeFixture();
  EXPECT_DOUBLE_EQ(Privacy(g, ExplanationView{}), 1.0);
}

TEST(MakeViewTest, DispatchesOnMethod) {
  const KnowledgeGraph g = MakeFixture();
  core::Summary baseline;
  baseline.method = core::SummaryMethod::kBaseline;
  baseline.input_paths = {ThreeHop(), ThreeHop()};
  baseline.subgraph = graph::Subgraph::FromEdges(g, {0});
  const auto bview = MakeView(g, baseline);
  EXPECT_EQ(bview.edge_occurrences.size(), 6u);  // paths, with duplicates

  core::Summary st = baseline;
  st.method = core::SummaryMethod::kSteiner;
  const auto sview = MakeView(g, st);
  EXPECT_EQ(sview.edge_occurrences.size(), 1u);  // the subgraph
}

}  // namespace
}  // namespace xsum::metrics
