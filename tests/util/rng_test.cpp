#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace xsum {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  uint64_t s1 = 1;
  uint64_t s2 = 1;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  uint64_t a = 1;
  uint64_t b = 2;
  EXPECT_NE(SplitMix64(&a), SplitMix64(&b));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsProduceDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedStillWorks) {
  Rng rng(0);
  EXPECT_NE(rng.Next64(), 0u);  // degenerate all-zero state avoided
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(31);
  const int n = 40000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(37);
  const int n = 40000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (uint64_t k : {0ULL, 1ULL, 5ULL, 50ULL, 100ULL}) {
    const auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (uint64_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(53);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(59);
  std::vector<double> weights = {0.0, 1.0, 0.0, 3.0};
  int counts[4] = {};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[3]) / counts[1], 3.0, 0.3);
}

TEST(ZipfTableTest, PmfSumsToOne) {
  ZipfTable table(100, 1.0);
  double total = 0;
  for (uint64_t i = 0; i < table.size(); ++i) total += table.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTableTest, SkewZeroIsUniform) {
  ZipfTable table(10, 0.0);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_NEAR(table.Pmf(i), 0.1, 1e-9);
}

TEST(ZipfTableTest, HeadHeavierThanTail) {
  ZipfTable table(1000, 1.0);
  EXPECT_GT(table.Pmf(0), table.Pmf(999) * 100);
}

TEST(ZipfTableTest, SamplesInRangeAndSkewed) {
  ZipfTable table(50, 1.2);
  Rng rng(61);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = table.Sample(&rng);
    EXPECT_LT(v, 50u);
    if (v < 5) ++head;
  }
  // With skew 1.2 the top-5 of 50 carry well over a third of the mass.
  EXPECT_GT(head, n / 3);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformBoundsHoldForAllSeeds) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1337, 999999,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace xsum
