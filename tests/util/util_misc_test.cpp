/// Tests for the small utility pieces: stats accumulator, string helpers,
/// table printer, env parsing, memory counters, timers, logging.

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "util/env.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace xsum {
namespace {

// --- StatAccumulator -------------------------------------------------------

TEST(StatAccumulatorTest, EmptyDefaults) {
  StatAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.Mean(), 0.0);
  EXPECT_EQ(acc.Min(), 0.0);
  EXPECT_EQ(acc.Max(), 0.0);
  EXPECT_EQ(acc.StdDev(), 0.0);
  EXPECT_EQ(acc.Percentile(50), 0.0);
}

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.Min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.Sum(), 10.0);
  EXPECT_NEAR(acc.StdDev(), 1.29099, 1e-4);
}

TEST(StatAccumulatorTest, Percentiles) {
  StatAccumulator acc;
  for (int i = 1; i <= 100; ++i) acc.Add(i);
  EXPECT_DOUBLE_EQ(acc.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 100.0);
  EXPECT_NEAR(acc.Median(), 50.5, 0.01);
  EXPECT_NEAR(acc.Percentile(95), 95.05, 0.1);
}

TEST(StatAccumulatorTest, ResetClears) {
  StatAccumulator acc;
  acc.Add(5.0);
  acc.Reset();
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.Sum(), 0.0);
}

TEST(StatAccumulatorTest, WindowBoundsRetainedSample) {
  StatAccumulator acc(/*window=*/4);
  for (int i = 1; i <= 100; ++i) acc.Add(i);
  // Full-history statistics are unaffected by the window.
  EXPECT_EQ(acc.count(), 100u);
  EXPECT_DOUBLE_EQ(acc.Sum(), 5050.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 50.5);
  // Sample statistics cover only the last 4 observations (97..100).
  EXPECT_DOUBLE_EQ(acc.Min(), 97.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 100.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(0), 97.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 100.0);
  acc.Reset();
  EXPECT_TRUE(acc.empty());
  acc.Add(7.0);  // ring restarts cleanly after Reset
  EXPECT_DOUBLE_EQ(acc.Max(), 7.0);
  EXPECT_EQ(acc.count(), 1u);
}

TEST(StatAccumulatorTest, SingleValueStdDevZero) {
  StatAccumulator acc;
  acc.Add(3.0);
  EXPECT_EQ(acc.StdDev(), 0.0);
  EXPECT_EQ(acc.Median(), 3.0);
}

// --- string_util -----------------------------------------------------------

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1125631), "1,125,631");
  EXPECT_EQ(FormatCount(-1234567), "-1,234,567");
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("k=", 10), "k=10");
  EXPECT_EQ(StrCat("a", "b", 1, 'c'), "ab1c");
}

// --- TextTable --------------------------------------------------------------

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, MissingCellsRenderEmpty) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"x"});
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_NE(table.ToString().find('x'), std::string::npos);
}

TEST(TextTableTest, DoubleRow) {
  TextTable table({"m", "k=1", "k=2"});
  table.AddDoubleRow("st", {0.5, 0.25}, 2);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("0.50"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
}

TEST(TextTableTest, Csv) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

// --- env ---------------------------------------------------------------------

TEST(EnvTest, FallbacksWhenUnset) {
  unsetenv("XSUM_TEST_VAR");
  EXPECT_DOUBLE_EQ(GetEnvDouble("XSUM_TEST_VAR", 1.5), 1.5);
  EXPECT_EQ(GetEnvInt("XSUM_TEST_VAR", 7), 7);
  EXPECT_EQ(GetEnvString("XSUM_TEST_VAR", "d"), "d");
}

TEST(EnvTest, ParsesValues) {
  setenv("XSUM_TEST_VAR", "2.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("XSUM_TEST_VAR", 0), 2.25);
  setenv("XSUM_TEST_VAR", "123", 1);
  EXPECT_EQ(GetEnvInt("XSUM_TEST_VAR", 0), 123);
  EXPECT_EQ(GetEnvString("XSUM_TEST_VAR", ""), "123");
  unsetenv("XSUM_TEST_VAR");
}

TEST(EnvTest, InvalidFallsBack) {
  setenv("XSUM_TEST_VAR", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("XSUM_TEST_VAR", 9.0), 9.0);
  EXPECT_EQ(GetEnvInt("XSUM_TEST_VAR", 8), 8);
  unsetenv("XSUM_TEST_VAR");
}

TEST(EnvTest, GarbageWarnsAndFallsBack) {
  // A partial numeric prefix must not silently parse ("12abc" != 12).
  setenv("XSUM_TEST_VAR", "12abc", 1);
  testing::internal::CaptureStderr();
  EXPECT_EQ(GetEnvInt("XSUM_TEST_VAR", 8), 8);
  std::string log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("XSUM_TEST_VAR"), std::string::npos);
  EXPECT_NE(log.find("not a valid"), std::string::npos);

  setenv("XSUM_TEST_VAR", "3.5x", 1);
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(GetEnvDouble("XSUM_TEST_VAR", 9.0), 9.0);
  log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("not a valid"), std::string::npos);
  unsetenv("XSUM_TEST_VAR");
}

TEST(EnvTest, OutOfRangeWarnsAndFallsBack) {
  // Saturating parses (strtoll/strtod ERANGE) are invalid, not silently
  // clamped to LLONG_MAX / inf.
  setenv("XSUM_TEST_VAR", "99999999999999999999999", 1);
  testing::internal::CaptureStderr();
  EXPECT_EQ(GetEnvInt("XSUM_TEST_VAR", 8), 8);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("not a valid"),
            std::string::npos);
  setenv("XSUM_TEST_VAR", "1e999", 1);
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(GetEnvDouble("XSUM_TEST_VAR", 9.0), 9.0);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("not a valid"),
            std::string::npos);
  unsetenv("XSUM_TEST_VAR");
}

TEST(EnvTest, TrailingWhitespaceIsAccepted) {
  setenv("XSUM_TEST_VAR", "42 ", 1);
  testing::internal::CaptureStderr();
  EXPECT_EQ(GetEnvInt("XSUM_TEST_VAR", 0), 42);
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
  unsetenv("XSUM_TEST_VAR");
}

TEST(EnvTest, NonNegativeRejectsNegativeWithWarning) {
  setenv("XSUM_TEST_VAR", "-3", 1);
  testing::internal::CaptureStderr();
  EXPECT_EQ(GetEnvNonNegativeInt("XSUM_TEST_VAR", 5), 5);
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("negative"), std::string::npos);
  setenv("XSUM_TEST_VAR", "3", 1);
  EXPECT_EQ(GetEnvNonNegativeInt("XSUM_TEST_VAR", 5), 3);
  unsetenv("XSUM_TEST_VAR");
}

// --- memory -------------------------------------------------------------------

TEST(MemoryCounterTest, TracksCurrentAndPeak) {
  MemoryCounter counter;
  counter.Add(100);
  counter.Add(50);
  EXPECT_EQ(counter.current_bytes(), 150);
  EXPECT_EQ(counter.peak_bytes(), 150);
  counter.Sub(120);
  EXPECT_EQ(counter.current_bytes(), 30);
  EXPECT_EQ(counter.peak_bytes(), 150);
  counter.Add(10);
  EXPECT_EQ(counter.peak_bytes(), 150);
}

TEST(MemoryCounterTest, SubClampsAtZero) {
  MemoryCounter counter;
  counter.Add(10);
  counter.Sub(100);
  EXPECT_EQ(counter.current_bytes(), 0);
}

TEST(MemoryCounterTest, ResetClearsBoth) {
  MemoryCounter counter;
  counter.Add(10);
  counter.Reset();
  EXPECT_EQ(counter.current_bytes(), 0);
  EXPECT_EQ(counter.peak_bytes(), 0);
}

TEST(RssTest, ReportsPositiveOnLinux) {
  EXPECT_GT(CurrentRssBytes(), 0);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);
}

// --- timer ---------------------------------------------------------------------

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer timer;
  timer.Start();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedNanos(), 0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  EXPECT_LE(timer.ElapsedSeconds(), 60.0);
}

TEST(ScopedTimerTest, AccumulatesOnDestruction) {
  int64_t acc = 0;
  {
    ScopedTimer t(&acc);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_GT(acc, 0);
}

// --- logging ---------------------------------------------------------------------

TEST(LoggingTest, LevelGetSet) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kOff);
  LogMessage(LogLevel::kError, "suppressed");  // must not crash
  XSUM_LOG_DEBUG << "also suppressed " << 42;
  SetLogLevel(original);
}

}  // namespace
}  // namespace xsum
