#include "util/status.h"

#include <gtest/gtest.h>

namespace xsum {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(StatusTest, WithContextPrependsOnError) {
  Status s = Status::NotFound("node 7");
  Status wrapped = s.WithContext("expanding closure");
  EXPECT_TRUE(wrapped.IsNotFound());
  EXPECT_EQ(wrapped.message(), "expanding closure: node 7");
}

TEST(StatusTest, WithContextNoOpOnOk) {
  Status s = Status::OK().WithContext("ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopyingSharesState) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy, s);
  EXPECT_EQ(copy.message(), "boom");
}

TEST(StatusCodeTest, Names) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  XSUM_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> Double(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> ChainAssign(int x) {
  XSUM_ASSIGN_OR_RETURN(int doubled, Double(x));
  return doubled + 1;
}

}  // namespace helpers

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(helpers::Chain(5).ok());
  EXPECT_TRUE(helpers::Chain(-5).IsInvalidArgument());
}

TEST(StatusMacroTest, AssignOrReturnPropagates) {
  auto ok = helpers::ChainAssign(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  auto err = helpers::ChainAssign(-1);
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

}  // namespace
}  // namespace xsum
