/// Anti-rot contract between the env-var catalog (`util/env.h`), the
/// operator documentation (`docs/OPERATIONS.md`), and the source tree:
///
///  1. every catalog entry appears in the OPERATIONS.md table, cell for
///     cell (name, type, default, range, consumers, description);
///  2. the table documents nothing the catalog does not know;
///  3. every `"XSUM_*"` string literal in src/ + bench/ + examples/ (the
///     convention for every GetEnv* call site) is a catalogued name — a
///     binary cannot grow an undocumented knob.
///
/// `XSUM_SOURCE_DIR` is injected by CMake so the test can read the
/// repository it was built from.

#include "util/env.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace xsum {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

fs::path SourceDir() { return fs::path(XSUM_SOURCE_DIR); }

/// The markdown row `docs/OPERATIONS.md` must carry for \p info.
std::string ExpectedRow(const EnvVarInfo& info) {
  std::string row = "| `";
  row += info.name;
  row += "` | ";
  row += info.type;
  row += " | ";
  row += info.default_str;
  row += " | ";
  row += info.range;
  row += " | ";
  row += info.consumers;
  row += " | ";
  row += info.description;
  row += " |";
  return row;
}

TEST(EnvDocsTest, CatalogIsNonTrivialAndWellFormed) {
  const auto& catalog = EnvVarCatalog();
  ASSERT_GE(catalog.size(), 12u);
  std::set<std::string> names;
  for (const EnvVarInfo& info : catalog) {
    EXPECT_TRUE(std::string(info.name).rfind("XSUM_", 0) == 0) << info.name;
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate catalog entry: " << info.name;
    EXPECT_STRNE(info.type, "");
    EXPECT_STRNE(info.default_str, "");
    EXPECT_STRNE(info.range, "");
    EXPECT_STRNE(info.consumers, "");
    EXPECT_STRNE(info.description, "");
    const std::string type = info.type;
    EXPECT_TRUE(type == "double" || type == "int" || type == "string")
        << info.name << " has unknown type " << type;
  }
  // The serving knobs this PR introduced are present.
  EXPECT_TRUE(names.count("XSUM_PORT"));
  EXPECT_TRUE(names.count("XSUM_SHARDS"));
  EXPECT_TRUE(names.count("XSUM_NET_WORKERS"));
  EXPECT_TRUE(names.count("XSUM_LOCAL_FALLBACK"));
}

TEST(EnvDocsTest, OperationsTableMatchesCatalogExactly) {
  const fs::path doc_path = SourceDir() / "docs" / "OPERATIONS.md";
  ASSERT_TRUE(fs::exists(doc_path)) << doc_path;
  const std::string doc = ReadFile(doc_path);

  // 1) Every catalog entry appears as a full, exact table row.
  for (const EnvVarInfo& info : EnvVarCatalog()) {
    const std::string row = ExpectedRow(info);
    EXPECT_NE(doc.find(row), std::string::npos)
        << "docs/OPERATIONS.md is missing or has drifted for " << info.name
        << "\nexpected row:\n" << row;
  }

  // 2) The table has no rows the catalog does not know.
  std::set<std::string> known;
  for (const EnvVarInfo& info : EnvVarCatalog()) known.insert(info.name);
  std::istringstream lines(doc);
  std::string line;
  size_t rows = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "| `XSUM_";
    if (line.rfind(prefix, 0) != 0) continue;
    ++rows;
    const size_t name_end = line.find('`', 3);
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(3, name_end - 3);
    EXPECT_TRUE(known.count(name))
        << "docs/OPERATIONS.md documents " << name
        << " which util/env.cpp's EnvVarCatalog() does not list";
  }
  EXPECT_EQ(rows, EnvVarCatalog().size())
      << "table row count and catalog size diverged";
}

TEST(EnvDocsTest, EverySourceEnvLiteralIsCatalogued) {
  std::set<std::string> known;
  for (const EnvVarInfo& info : EnvVarCatalog()) known.insert(info.name);

  size_t literals_seen = 0;
  for (const char* tree : {"src", "bench", "examples"}) {
    const fs::path root = SourceDir() / tree;
    ASSERT_TRUE(fs::exists(root)) << root;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      const std::string content = ReadFile(entry.path());
      // Convention: env reads pass the name as a string literal, so the
      // opening quote directly precedes XSUM_.
      size_t pos = 0;
      while ((pos = content.find("\"XSUM_", pos)) != std::string::npos) {
        size_t end = pos + 1;
        while (end < content.size() &&
               (std::isupper(static_cast<unsigned char>(content[end])) ||
                std::isdigit(static_cast<unsigned char>(content[end])) ||
                content[end] == '_')) {
          ++end;
        }
        const std::string name = content.substr(pos + 1, end - pos - 1);
        EXPECT_TRUE(known.count(name))
            << entry.path().string() << " reads " << name
            << " which is not in util/env.cpp's EnvVarCatalog() — add it "
               "there and to docs/OPERATIONS.md";
        ++literals_seen;
        pos = end;
      }
    }
  }
  // Sanity: the scan actually found the well-known call sites.
  EXPECT_GE(literals_seen, 15u);
}

}  // namespace
}  // namespace xsum
