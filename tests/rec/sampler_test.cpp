/// Tests for the §V-A sampling protocol: gender-balanced, activity-
/// stratified user samples and popularity-split item samples.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rec/sampler.h"

namespace xsum::rec {
namespace {

data::Dataset MakeDataset() {
  auto config = data::Ml1mConfig(0.05, 9);
  config.female_fraction = 0.4;
  return data::MakeSyntheticDataset(config);
}

TEST(SamplerTest, BalancedGenderSample) {
  const auto ds = MakeDataset();
  const auto users = SampleUsersByGender(ds, 20, 3);
  EXPECT_EQ(users.size(), 40u);
  size_t male = 0;
  size_t female = 0;
  for (uint32_t u : users) {
    (ds.user_gender[u] == data::Gender::kMale ? male : female) += 1;
  }
  EXPECT_EQ(male, 20u);
  EXPECT_EQ(female, 20u);
}

TEST(SamplerTest, UsersAreDistinctAndInRange) {
  const auto ds = MakeDataset();
  const auto users = SampleUsersByGender(ds, 30, 3);
  std::set<uint32_t> unique(users.begin(), users.end());
  EXPECT_EQ(unique.size(), users.size());
  for (uint32_t u : users) EXPECT_LT(u, ds.num_users);
}

TEST(SamplerTest, DeterministicForSeed) {
  const auto ds = MakeDataset();
  EXPECT_EQ(SampleUsersByGender(ds, 15, 3), SampleUsersByGender(ds, 15, 3));
  EXPECT_NE(SampleUsersByGender(ds, 15, 3), SampleUsersByGender(ds, 15, 4));
}

TEST(SamplerTest, TakesAllWhenGenderPoolSmall) {
  data::Dataset ds;
  ds.num_users = 4;
  ds.num_items = 2;
  ds.num_entities = 1;
  ds.user_gender = {data::Gender::kMale, data::Gender::kMale,
                    data::Gender::kFemale, data::Gender::kMale};
  ds.ratings = {{0, 0, 3.0f, 0}, {1, 0, 4.0f, 0}, {2, 1, 5.0f, 0},
                {3, 1, 2.0f, 0}};
  const auto users = SampleUsersByGender(ds, 10, 1);
  EXPECT_EQ(users.size(), 4u);  // everyone
}

TEST(SamplerTest, PreservesActivityDistribution) {
  const auto ds = MakeDataset();
  const auto activity = ds.UserActivity();
  const auto users = SampleUsersByGender(ds, 50, 3);
  // The stratified sample must include both low- and high-activity users.
  uint32_t min_act = UINT32_MAX;
  uint32_t max_act = 0;
  for (uint32_t u : users) {
    min_act = std::min(min_act, activity[u]);
    max_act = std::max(max_act, activity[u]);
  }
  std::vector<uint32_t> sorted_activity = activity;
  std::sort(sorted_activity.begin(), sorted_activity.end());
  const uint32_t q1 = sorted_activity[sorted_activity.size() / 4];
  const uint32_t q3 = sorted_activity[3 * sorted_activity.size() / 4];
  EXPECT_LE(min_act, q1) << "no low-activity users sampled";
  EXPECT_GE(max_act, q3) << "no high-activity users sampled";
}

TEST(ItemSamplerTest, SplitsByPopularity) {
  const auto ds = MakeDataset();
  const auto sample = SampleItemsByPopularity(ds, 25, 25);
  EXPECT_EQ(sample.popular.size(), 25u);
  EXPECT_EQ(sample.unpopular.size(), 25u);
  const auto pop = ds.ItemPopularity();
  uint32_t min_popular = UINT32_MAX;
  for (uint32_t i : sample.popular) min_popular = std::min(min_popular, pop[i]);
  uint32_t max_unpopular = 0;
  for (uint32_t i : sample.unpopular) {
    max_unpopular = std::max(max_unpopular, pop[i]);
    EXPECT_GE(pop[i], 1u) << "unpopular items must still have >=1 rating";
  }
  EXPECT_GE(min_popular, max_unpopular);
}

TEST(ItemSamplerTest, AllConcatenates) {
  const auto ds = MakeDataset();
  const auto sample = SampleItemsByPopularity(ds, 5, 7);
  EXPECT_EQ(sample.All().size(), 12u);
}

TEST(ItemSamplerTest, HandlesTinyCatalogue) {
  data::Dataset ds;
  ds.num_users = 2;
  ds.num_items = 3;
  ds.num_entities = 1;
  ds.user_gender = {data::Gender::kMale, data::Gender::kFemale};
  ds.ratings = {{0, 0, 3.0f, 0}, {1, 1, 4.0f, 0}};
  const auto sample = SampleItemsByPopularity(ds, 10, 10);
  // Only 2 rated items exist in total.
  EXPECT_EQ(sample.popular.size() + sample.unpopular.size(), 2u);
}

TEST(MakeGroupsTest, ChunksUsers) {
  const std::vector<uint32_t> users = {1, 2, 3, 4, 5, 6, 7};
  const auto groups = MakeGroups(users, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(groups[2], (std::vector<uint32_t>{7}));
}

TEST(MakeGroupsTest, ZeroSizeYieldsNothing) {
  EXPECT_TRUE(MakeGroups({1, 2, 3}, 0).empty());
}

TEST(MakeGroupsTest, EmptyInput) {
  EXPECT_TRUE(MakeGroups({}, 5).empty());
}

}  // namespace
}  // namespace xsum::rec
