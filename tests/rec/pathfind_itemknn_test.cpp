/// Tests for explanation-path generation (paper §II: recommenders without
/// paths) and the ItemKNN non-graph recommender built on top of it.

#include <gtest/gtest.h>

#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "rec/itemknn.h"
#include "rec/pathfind.h"

namespace xsum::rec {
namespace {

/// u0 rated i0; i0 and i1 share entity e0; i2 is in a separate component.
data::Dataset MakeTinyDataset() {
  data::Dataset ds;
  ds.name = "pathfind-tiny";
  ds.num_users = 2;
  ds.num_items = 3;
  ds.num_entities = 2;
  ds.user_gender = {data::Gender::kMale, data::Gender::kFemale};
  ds.t0 = 100;
  ds.ratings = {{0, 0, 5.0f, 50}, {1, 2, 4.0f, 60}};
  ds.triples = {{0, graph::Relation::kHasGenre, 0, false},
                {1, graph::Relation::kHasGenre, 0, false},
                {2, graph::Relation::kHasGenre, 1, false}};
  return ds;
}

TEST(PathFindTest, FindsThreeHopPath) {
  const auto rg = std::move(data::BuildRecGraph(MakeTinyDataset()))
                      .ValueOrDie();
  const auto path = FindExplanationPath(rg, 0, 1);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  // u0 -> i0 -> e0 -> i1.
  EXPECT_EQ(path->nodes.size(), 4u);
  EXPECT_EQ(path->Source(), rg.UserNode(0));
  EXPECT_EQ(path->Target(), rg.ItemNode(1));
  EXPECT_TRUE(path->Validate(rg.graph(), /*allow_hallucinated=*/false));
  EXPECT_TRUE(path->IsFaithful());
}

TEST(PathFindTest, DirectEdgeIsOneHop) {
  const auto rg = std::move(data::BuildRecGraph(MakeTinyDataset()))
                      .ValueOrDie();
  const auto path = FindExplanationPath(rg, 0, 0);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->Length(), 1u);
}

TEST(PathFindTest, UnreachableWithinBudgetIsNotFound) {
  const auto rg = std::move(data::BuildRecGraph(MakeTinyDataset()))
                      .ValueOrDie();
  // i2 is 5 hops away from u0 (via u1? u0-i0-e0-i1 ... i2 connects via e1
  // and u1 only: u0 cannot reach i2 in 3 hops).
  const auto path = FindExplanationPath(rg, 0, 2);
  EXPECT_TRUE(path.status().IsNotFound());
}

TEST(PathFindTest, RejectsBadArguments) {
  const auto rg = std::move(data::BuildRecGraph(MakeTinyDataset()))
                      .ValueOrDie();
  EXPECT_TRUE(FindExplanationPath(rg, 99, 0).status().IsInvalidArgument());
  EXPECT_TRUE(FindExplanationPath(rg, 0, 99).status().IsInvalidArgument());
  PathFindOptions bad;
  bad.max_hops = 0;
  EXPECT_TRUE(FindExplanationPath(rg, 0, 1, bad).status().IsInvalidArgument());
}

TEST(PathFindTest, LongerBudgetReachesFurther) {
  const auto rg = std::move(data::BuildRecGraph(MakeTinyDataset()))
                      .ValueOrDie();
  PathFindOptions wide;
  wide.max_hops = 6;
  const auto path = FindExplanationPath(rg, 0, 2, wide);
  // u0-i0-e0-i1? no link to i2... i2 only connects u1 and e1; e1 only i2.
  // So i2 is truly unreachable from u0's component side? u1-i2 edge exists
  // and u1 has no other edges: u0 cannot reach u1 at all. Still NotFound.
  EXPECT_TRUE(path.status().IsNotFound());
}

TEST(PathFindTest, BatchCollectsFailures) {
  const auto rg = std::move(data::BuildRecGraph(MakeTinyDataset()))
                      .ValueOrDie();
  std::vector<uint32_t> failed;
  const auto paths = FindExplanationPaths(rg, 0, {0, 1, 2}, {}, &failed);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_EQ(failed, std::vector<uint32_t>{2});
}

TEST(PathFindTest, WorksOnSyntheticGraph) {
  const auto ds = data::MakeSyntheticDataset(data::Ml1mConfig(0.03, 13));
  const auto rg = std::move(data::BuildRecGraph(ds)).ValueOrDie();
  size_t found = 0;
  for (uint32_t item = 0; item < 20; ++item) {
    const auto path = FindExplanationPath(rg, 0, item);
    if (!path.ok()) continue;
    ++found;
    EXPECT_TRUE(path->Validate(rg.graph(), /*allow_hallucinated=*/false));
    EXPECT_LE(path->Length(), 3u);
  }
  EXPECT_GT(found, 10u);  // the small-world KG reaches most items in 3 hops
}

TEST(ItemKnnTest, RecommendationsHaveGeneratedFaithfulPaths) {
  const auto ds = data::MakeSyntheticDataset(data::Ml1mConfig(0.03, 17));
  const auto rg = std::move(data::BuildRecGraph(ds)).ValueOrDie();
  const ItemKnnRecommender knn(rg, 17);
  EXPECT_EQ(knn.name(), "ItemKNN");
  size_t users_with_recs = 0;
  for (uint32_t user = 0; user < 15; ++user) {
    const auto recs = knn.Recommend(user, 10);
    if (!recs.empty()) ++users_with_recs;
    for (const auto& r : recs) {
      EXPECT_FALSE(rg.HasRated(user, r.item));
      EXPECT_EQ(r.path.Source(), rg.UserNode(user));
      EXPECT_EQ(r.path.Target(), rg.ItemNode(r.item));
      EXPECT_LE(r.path.Length(), 3u);
      EXPECT_TRUE(r.path.IsFaithful());
      EXPECT_TRUE(r.path.Validate(rg.graph(), /*allow_hallucinated=*/false));
    }
  }
  EXPECT_GT(users_with_recs, 10u);
}

TEST(ItemKnnTest, DeterministicAndRanked) {
  const auto ds = data::MakeSyntheticDataset(data::Ml1mConfig(0.03, 19));
  const auto rg = std::move(data::BuildRecGraph(ds)).ValueOrDie();
  const ItemKnnRecommender knn(rg, 19);
  const auto a = knn.Recommend(2, 10);
  const auto b = knn.Recommend(2, 10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    if (i > 0) {
      EXPECT_GE(a[i - 1].score, a[i].score);
    }
  }
}

}  // namespace
}  // namespace xsum::rec
