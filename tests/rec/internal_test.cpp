/// Tests for the shared recommender machinery in rec/internal.h.

#include <gtest/gtest.h>

#include "data/kg_builder.h"
#include "rec/internal.h"

namespace xsum::rec::internal {
namespace {

TEST(SelectTopKDistinctTest, RanksByScoreDescending) {
  std::vector<Candidate> cands;
  for (const auto& [item, score] :
       {std::pair{1u, 0.5}, {2u, 2.0}, {3u, 1.0}}) {
    Candidate c;
    c.item = item;
    c.score = score;
    cands.push_back(c);
  }
  const auto out = SelectTopKDistinct(std::move(cands), 10);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].item, 2u);
  EXPECT_EQ(out[1].item, 3u);
  EXPECT_EQ(out[2].item, 1u);
}

TEST(SelectTopKDistinctTest, KeepsBestPerItem) {
  std::vector<Candidate> cands;
  Candidate low;
  low.item = 7;
  low.score = 1.0;
  Candidate high;
  high.item = 7;
  high.score = 3.0;
  cands.push_back(low);
  cands.push_back(high);
  const auto out = SelectTopKDistinct(std::move(cands), 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].score, 3.0);
}

TEST(SelectTopKDistinctTest, TruncatesToK) {
  std::vector<Candidate> cands;
  for (uint32_t i = 0; i < 20; ++i) {
    Candidate c;
    c.item = i;
    c.score = static_cast<double>(i);
    cands.push_back(c);
  }
  const auto out = SelectTopKDistinct(std::move(cands), 5);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].item, 19u);
}

TEST(SelectTopKDistinctTest, TiesBreakByItemId) {
  std::vector<Candidate> cands;
  for (uint32_t item : {9u, 4u, 6u}) {
    Candidate c;
    c.item = item;
    c.score = 1.0;
    cands.push_back(c);
  }
  const auto out = SelectTopKDistinct(std::move(cands), 10);
  EXPECT_EQ(out[0].item, 4u);
  EXPECT_EQ(out[1].item, 6u);
  EXPECT_EQ(out[2].item, 9u);
}

TEST(SelectTopKDistinctTest, EmptyAndZeroK) {
  EXPECT_TRUE(SelectTopKDistinct({}, 5).empty());
  std::vector<Candidate> cands(1);
  EXPECT_TRUE(SelectTopKDistinct(std::move(cands), 0).empty());
}

TEST(UserSeedTest, DistinctAcrossUsersAndMethods) {
  const uint64_t a = UserSeed(42, 1, 10);
  EXPECT_EQ(a, UserSeed(42, 1, 10));           // deterministic
  EXPECT_NE(a, UserSeed(42, 1, 11));           // user matters
  EXPECT_NE(a, UserSeed(42, 2, 10));           // method matters
  EXPECT_NE(a, UserSeed(43, 1, 10));           // master seed matters
}

TEST(DegreePriorTest, DampensHubs) {
  data::Dataset ds;
  ds.num_users = 3;
  ds.num_items = 2;
  ds.num_entities = 1;
  ds.user_gender.assign(3, data::Gender::kMale);
  ds.ratings = {{0, 0, 5.0f, 0}, {1, 0, 4.0f, 0}, {2, 0, 3.0f, 0},
                {0, 1, 2.0f, 0}};
  ds.triples = {{0, graph::Relation::kHasGenre, 0, false}};
  const auto rg = std::move(data::BuildRecGraph(ds)).ValueOrDie();
  // Item 0 has degree 4 (3 raters + 1 entity); item 1 degree 1.
  EXPECT_LT(DegreePrior(rg, rg.ItemNode(0)), DegreePrior(rg, rg.ItemNode(1)));
  EXPECT_GT(DegreePrior(rg, rg.ItemNode(0)), 0.0);
}

TEST(RatedNodeSetTest, CollectsItemNodes) {
  data::Dataset ds;
  ds.num_users = 2;
  ds.num_items = 3;
  ds.num_entities = 1;
  ds.user_gender.assign(2, data::Gender::kMale);
  ds.ratings = {{0, 0, 5.0f, 0}, {0, 2, 4.0f, 0}, {1, 1, 3.0f, 0}};
  ds.triples = {{0, graph::Relation::kHasGenre, 0, false}};
  const auto rg = std::move(data::BuildRecGraph(ds)).ValueOrDie();
  const auto rated = RatedNodeSet(rg, 0);
  EXPECT_EQ(rated.size(), 2u);
  EXPECT_TRUE(rated.count(rg.ItemNode(0)) > 0);
  EXPECT_TRUE(rated.count(rg.ItemNode(2)) > 0);
  EXPECT_EQ(rated.count(rg.ItemNode(1)), 0u);
}

}  // namespace
}  // namespace xsum::rec::internal
