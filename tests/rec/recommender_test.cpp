/// Tests for the four simulated path recommenders. The contract every
/// simulator must honour (paper §V-A): top-k ranked items, each with an
/// explanation path of at most three hops from the user node to the item
/// node; recommended items exclude already-rated ones; output is a
/// deterministic function of (seed, user) with the k-prefix property.

#include <set>

#include <gtest/gtest.h>

#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "rec/recommender.h"

namespace xsum::rec {
namespace {

class RecommenderFixture {
 public:
  RecommenderFixture() {
    dataset_ = data::MakeSyntheticDataset(data::Ml1mConfig(0.03, 5));
    auto built = data::BuildRecGraph(dataset_);
    rg_ = std::move(built).ValueOrDie();
  }

  const data::RecGraph& rg() const { return rg_; }
  const data::Dataset& dataset() const { return dataset_; }

 private:
  data::Dataset dataset_;
  data::RecGraph rg_;
};

RecommenderFixture& Fixture() {
  static RecommenderFixture* fixture = new RecommenderFixture();
  return *fixture;
}

class RecommenderContractTest
    : public ::testing::TestWithParam<RecommenderKind> {};

TEST_P(RecommenderContractTest, ReturnsAtMostKRankedItems) {
  const auto rec = MakeRecommender(GetParam(), Fixture().rg(), 42, {});
  for (uint32_t user : {0u, 5u, 17u}) {
    const auto recs = rec->Recommend(user, 10);
    EXPECT_LE(recs.size(), 10u);
    for (size_t i = 1; i < recs.size(); ++i) {
      EXPECT_GE(recs[i - 1].score, recs[i].score) << "not sorted at " << i;
    }
  }
}

TEST_P(RecommenderContractTest, ItemsAreDistinctAndUnrated) {
  const auto rec = MakeRecommender(GetParam(), Fixture().rg(), 42, {});
  for (uint32_t user : {1u, 9u, 33u}) {
    const auto recs = rec->Recommend(user, 10);
    std::set<uint32_t> items;
    for (const auto& r : recs) {
      EXPECT_TRUE(items.insert(r.item).second) << "duplicate item " << r.item;
      EXPECT_FALSE(Fixture().rg().HasRated(user, r.item))
          << "recommended an already-rated item";
    }
  }
}

TEST_P(RecommenderContractTest, PathsConnectUserToItemWithinThreeHops) {
  const auto rec = MakeRecommender(GetParam(), Fixture().rg(), 42, {});
  const bool allow_hallucinated = GetParam() == RecommenderKind::kPlm;
  for (uint32_t user : {2u, 21u}) {
    for (const auto& r : rec->Recommend(user, 10)) {
      ASSERT_FALSE(r.path.Empty());
      EXPECT_EQ(r.path.Source(), Fixture().rg().UserNode(user));
      EXPECT_EQ(r.path.Target(), Fixture().rg().ItemNode(r.item));
      EXPECT_LE(r.path.Length(), 3u);
      EXPECT_TRUE(r.path.Validate(Fixture().rg().graph(), allow_hallucinated));
    }
  }
}

TEST_P(RecommenderContractTest, DeterministicAcrossCalls) {
  const auto rec = MakeRecommender(GetParam(), Fixture().rg(), 42, {});
  const auto a = rec->Recommend(3, 10);
  const auto b = rec->Recommend(3, 10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].path.nodes, b[i].path.nodes);
  }
}

TEST_P(RecommenderContractTest, KPrefixProperty) {
  const auto rec = MakeRecommender(GetParam(), Fixture().rg(), 42, {});
  const auto full = rec->Recommend(4, 10);
  const auto top3 = rec->Recommend(4, 3);
  ASSERT_LE(top3.size(), 3u);
  for (size_t i = 0; i < top3.size(); ++i) {
    EXPECT_EQ(top3[i].item, full[i].item);
  }
}

TEST_P(RecommenderContractTest, DifferentSeedsChangeOutput) {
  const auto a = MakeRecommender(GetParam(), Fixture().rg(), 1, {});
  const auto b = MakeRecommender(GetParam(), Fixture().rg(), 2, {});
  // At least one of a few users should get a different list.
  bool any_diff = false;
  for (uint32_t user : {0u, 1u, 2u, 3u, 4u}) {
    const auto ra = a->Recommend(user, 10);
    const auto rb = b->Recommend(user, 10);
    if (ra.size() != rb.size()) {
      any_diff = true;
      break;
    }
    for (size_t i = 0; i < ra.size(); ++i) {
      if (ra[i].item != rb[i].item) {
        any_diff = true;
        break;
      }
    }
    if (any_diff) break;
  }
  EXPECT_TRUE(any_diff);
}

TEST_P(RecommenderContractTest, ProducesRecommendationsForMostUsers) {
  const auto rec = MakeRecommender(GetParam(), Fixture().rg(), 42, {});
  size_t with_recs = 0;
  const uint32_t probe = 40;
  for (uint32_t user = 0; user < probe; ++user) {
    if (!rec->Recommend(user, 10).empty()) ++with_recs;
  }
  EXPECT_GT(with_recs, probe * 8 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, RecommenderContractTest,
    ::testing::Values(RecommenderKind::kPgpr, RecommenderKind::kCafe,
                      RecommenderKind::kPlm, RecommenderKind::kPearlm),
    [](const ::testing::TestParamInfo<RecommenderKind>& param_info) {
      return RecommenderKindToString(param_info.param);
    });

TEST(RecommenderKindTest, Names) {
  EXPECT_STREQ(RecommenderKindToString(RecommenderKind::kPgpr), "PGPR");
  EXPECT_STREQ(RecommenderKindToString(RecommenderKind::kCafe), "CAFE");
  EXPECT_STREQ(RecommenderKindToString(RecommenderKind::kPlm), "PLM");
  EXPECT_STREQ(RecommenderKindToString(RecommenderKind::kPearlm), "PEARLM");
}

TEST(RecommenderNameTest, MatchesKind) {
  const auto& rg = Fixture().rg();
  EXPECT_EQ(MakeRecommender(RecommenderKind::kPgpr, rg, 1, {})->name(),
            "PGPR");
  EXPECT_EQ(MakeRecommender(RecommenderKind::kCafe, rg, 1, {})->name(),
            "CAFE");
  EXPECT_EQ(MakeRecommender(RecommenderKind::kPlm, rg, 1, {})->name(), "PLM");
  EXPECT_EQ(MakeRecommender(RecommenderKind::kPearlm, rg, 1, {})->name(),
            "PEARLM");
}

TEST(PearlmFaithfulnessTest, AllPathsAreFaithful) {
  const auto rec =
      MakeRecommender(RecommenderKind::kPearlm, Fixture().rg(), 42, {});
  for (uint32_t user = 0; user < 25; ++user) {
    for (const auto& r : rec->Recommend(user, 10)) {
      EXPECT_TRUE(r.path.IsFaithful())
          << "PEARLM must never hallucinate edges";
    }
  }
}

TEST(PlmHallucinationTest, SometimesEmitsNovelHops) {
  RecommenderOptions options;
  options.plm_hallucination_rate = 0.35;
  const auto rec =
      MakeRecommender(RecommenderKind::kPlm, Fixture().rg(), 42, options);
  size_t hallucinated = 0;
  size_t total = 0;
  for (uint32_t user = 0; user < 25; ++user) {
    for (const auto& r : rec->Recommend(user, 10)) {
      ++total;
      if (!r.path.IsFaithful()) ++hallucinated;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(hallucinated, 0u)
      << "PLM with a high hallucination rate should emit novel paths";
}

TEST(PlmHallucinationTest, RateZeroIsFaithful) {
  RecommenderOptions options;
  options.plm_hallucination_rate = 0.0;
  const auto rec =
      MakeRecommender(RecommenderKind::kPlm, Fixture().rg(), 42, options);
  for (uint32_t user = 0; user < 10; ++user) {
    for (const auto& r : rec->Recommend(user, 10)) {
      EXPECT_TRUE(r.path.IsFaithful());
    }
  }
}

}  // namespace
}  // namespace xsum::rec
