/// Tests of the transport-facing summary handler: request parsing and
/// validation, endpoint dispatch, deterministic response rendering, the
/// predecessor-hint path, and snapshot publication over the wire surface.

#include "service/handler.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/summarizer.h"
#include "eval/experiment.h"
#include "eval/runner.h"
#include "net/json.h"
#include "service/snapshot_registry.h"

namespace xsum::service {
namespace {

eval::ExperimentConfig TinyConfig() {
  eval::ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 3;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.ks = {1, 3, 5};
  return config;
}

/// Shared serving stack for the whole suite (graph building dominates
/// test wall time; the handler itself is stateless across tests).
class HandlerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new eval::ExperimentRunner(TinyConfig());
    ASSERT_TRUE(runner_->Init().ok());
    auto data = runner_->ComputeBaseline(rec::RecommenderKind::kPgpr);
    ASSERT_TRUE(data.ok()) << data.status();
    ASSERT_FALSE(data->users.empty());
    catalog_ = new TaskCatalog();
    for (const core::UserRecs& ur : data->users) {
      catalog_->AddUserCentric(runner_->rec_graph(), ur, 5);
    }
    registry_ = new GraphSnapshotRegistry();
    registry_->Publish(GraphSnapshotRegistry::Alias(runner_->rec_graph()));
    service_ = new SummaryService(registry_);
    handler_ = new SummaryHandler(
        service_, catalog_, []() -> Result<uint64_t> {
          return registry_->Publish(
              GraphSnapshotRegistry::Alias(runner_->rec_graph()));
        });
  }

  static void TearDownTestSuite() {
    delete handler_;
    delete service_;
    delete registry_;
    delete catalog_;
    delete runner_;
    handler_ = nullptr;
    service_ = nullptr;
    registry_ = nullptr;
    catalog_ = nullptr;
    runner_ = nullptr;
  }

  static uint32_t FirstUser() { return catalog_->entries().front().unit; }

  static net::HttpResponse Call(const std::string& method,
                                const std::string& target,
                                const std::string& body = "") {
    net::HttpRequest request;
    request.method = method;
    request.target = target;
    request.body = body;
    return handler_->Handle(request);
  }

  static eval::ExperimentRunner* runner_;
  static TaskCatalog* catalog_;
  static GraphSnapshotRegistry* registry_;
  static SummaryService* service_;
  static SummaryHandler* handler_;
};

eval::ExperimentRunner* HandlerTest::runner_ = nullptr;
TaskCatalog* HandlerTest::catalog_ = nullptr;
GraphSnapshotRegistry* HandlerTest::registry_ = nullptr;
SummaryService* HandlerTest::service_ = nullptr;
SummaryHandler* HandlerTest::handler_ = nullptr;

TEST_F(HandlerTest, ParseSummaryRequestAcceptsFullDocument) {
  const auto json = net::ParseJson(
      R"({"scenario":"user-centric","user":12,"k":4,"method":"PCST",)"
      R"("lambda":0.5,"cost_mode":"unit","variant":"kmb","prev_k":3})");
  ASSERT_TRUE(json.ok());
  const auto request = ParseSummaryRequest(*json);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->scenario, core::Scenario::kUserCentric);
  EXPECT_EQ(request->unit, 12u);
  EXPECT_EQ(request->k, 4);
  EXPECT_EQ(request->method, core::SummaryMethod::kPcst);
  EXPECT_DOUBLE_EQ(request->lambda, 0.5);
  EXPECT_EQ(request->cost_mode, core::CostMode::kUnit);
  EXPECT_EQ(request->variant, core::SteinerOptions::Variant::kKmb);
  EXPECT_EQ(request->prev_k, 3);
}

TEST_F(HandlerTest, ParseSummaryRequestDefaultsAndRoundTrip) {
  const auto json = net::ParseJson(R"({"user":3,"k":1})");
  ASSERT_TRUE(json.ok());
  const auto request = ParseSummaryRequest(*json);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, core::SummaryMethod::kSteiner);
  EXPECT_DOUBLE_EQ(request->lambda, 1.0);
  EXPECT_EQ(request->cost_mode, core::CostMode::kWeightAwareLog);
  EXPECT_EQ(request->prev_k, 0);

  // ToJson -> Parse is the identity.
  const auto round = ParseSummaryRequest(SummaryRequestToJson(*request));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->unit, request->unit);
  EXPECT_EQ(round->k, request->k);
  EXPECT_EQ(round->method, request->method);
  EXPECT_DOUBLE_EQ(round->lambda, request->lambda);
}

TEST_F(HandlerTest, ParseSummaryRequestRejectsBadDocuments) {
  const std::vector<std::string> bad = {
      R"([1,2,3])",                               // not an object
      R"({"k":1})",                               // missing unit
      R"({"user":-1,"k":1})",                     // negative unit
      R"({"user":"x","k":1})",                    // unit wrong type
      R"({"user":1})",                            // missing k
      R"({"user":1,"k":0})",                      // k out of range
      R"({"user":1,"k":5000})",                   // k out of range
      R"({"user":1,"k":2.5})",                    // k not integral
      R"({"user":1,"k":1,"method":"DIJKSTRA"})",  // unknown method
      R"({"user":1,"k":1,"scenario":"global"})",  // unknown scenario
      R"({"user":1,"k":1,"lambda":-2})",          // negative lambda
      R"({"user":1,"k":1,"cost_mode":"banana"})",
      R"({"user":1,"k":1,"variant":"dreyfus"})",
      R"({"user":1,"k":3,"prev_k":3})",           // hint not < k
      R"({"item":1,"k":1})",  // user-centric requests name a user
  };
  for (const std::string& text : bad) {
    const auto json = net::ParseJson(text);
    ASSERT_TRUE(json.ok()) << text;
    EXPECT_FALSE(ParseSummaryRequest(*json).ok()) << "accepted: " << text;
  }
}

TEST_F(HandlerTest, HealthzReportsVersionAndCatalog) {
  const auto response = Call("GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  const auto json = net::ParseJson(response.body);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Find("status")->AsString(), "ok");
  EXPECT_GE(json->Find("snapshot_version")->AsInt(), 1);
  EXPECT_EQ(json->Find("catalog_tasks")->AsInt(),
            static_cast<int64_t>(catalog_->size()));
}

TEST_F(HandlerTest, UnknownEndpointsAnd405s) {
  EXPECT_EQ(Call("GET", "/nope").status, 404);
  EXPECT_EQ(Call("GET", "/summarize").status, 405);
  EXPECT_EQ(Call("POST", "/stats").status, 405);
  EXPECT_EQ(Call("POST", "/healthz").status, 405);
  EXPECT_EQ(Call("GET", "/snapshot").status, 405);
}

TEST_F(HandlerTest, SummarizeBadBodiesAre400NotCrashes) {
  EXPECT_EQ(Call("POST", "/summarize", "").status, 400);
  EXPECT_EQ(Call("POST", "/summarize", "{not json").status, 400);
  EXPECT_EQ(Call("POST", "/summarize", R"({"user":1})").status, 400);
}

TEST_F(HandlerTest, SummarizeUnknownUnitIs404) {
  const auto response =
      Call("POST", "/summarize", R"({"user":999999,"k":3})");
  EXPECT_EQ(response.status, 404);
}

TEST_F(HandlerTest, SummarizeMatchesDirectEngineCall) {
  SummaryRequest request;
  request.unit = FirstUser();
  request.k = 3;
  const net::HttpResponse response = handler_->Summarize(request);
  ASSERT_EQ(response.status, 200) << response.body;

  // The response body equals a by-hand rendering of a fresh Summarize.
  const core::SummaryTask* task =
      catalog_->Find(core::Scenario::kUserCentric, request.unit, 3);
  ASSERT_NE(task, nullptr);
  const auto fresh = core::Summarize(runner_->rec_graph(), *task,
                                     RequestOptions(request));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(response.body,
            SummaryToJson(*fresh, service_->serving_version()));

  // Determinism: asking again returns the same bytes.
  EXPECT_EQ(handler_->Summarize(request).body, response.body);
}

TEST_F(HandlerTest, PredecessorHintIsAnOptimizationNotAnInput) {
  SummaryRequest base;
  base.unit = FirstUser();
  base.lambda = 0.0;  // λ=0 keeps the chain signature stable (§5.2)
  base.variant = core::SteinerOptions::Variant::kKmb;

  // Ascending k chain with hints.
  std::vector<std::string> chained;
  for (int k = 1; k <= 5; ++k) {
    SummaryRequest request = base;
    request.k = k;
    request.prev_k = k - 1;  // 0 on the first step = no hint
    const auto response = handler_->Summarize(request);
    ASSERT_EQ(response.status, 200) << response.body;
    chained.push_back(response.body);
  }
  const uint64_t incremental = service_->Stats().incremental;

  // The same ks without hints (cache already has them: identical bytes).
  for (int k = 1; k <= 5; ++k) {
    SummaryRequest request = base;
    request.k = k;
    const auto response = handler_->Summarize(request);
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(response.body, chained[static_cast<size_t>(k - 1)]);
  }
  // At least one chained step actually reused the predecessor.
  EXPECT_GE(incremental, 1u);

  // A stale hint (unknown predecessor k) degrades to fresh compute.
  SummaryRequest stale = base;
  stale.unit = 999999;
  stale.k = 2;
  stale.prev_k = 1;
  EXPECT_EQ(handler_->Summarize(stale).status, 404);
}

TEST_F(HandlerTest, StatsDocumentCarriesServiceCounters) {
  // Generate traffic first: ctest runs every test in its own process.
  SummaryRequest warm;
  warm.unit = FirstUser();
  warm.k = 1;
  ASSERT_EQ(handler_->Summarize(warm).status, 200);
  const auto response = Call("GET", "/stats");
  EXPECT_EQ(response.status, 200);
  const auto json = net::ParseJson(response.body);
  ASSERT_TRUE(json.ok()) << response.body;
  EXPECT_GE(json->Find("requests")->AsInt(), 1);
  ASSERT_NE(json->Find("cache"), nullptr);
  EXPECT_GE(json->Find("cache")->Find("hits")->AsInt(), 0);
  EXPECT_GE(json->Find("qps")->AsDouble(), 0.0);
}

TEST_F(HandlerTest, SnapshotPublishBumpsServingVersion) {
  const uint64_t before = service_->serving_version();
  const auto response = Call("POST", "/snapshot");
  ASSERT_EQ(response.status, 200) << response.body;
  const auto json = net::ParseJson(response.body);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Find("snapshot_version")->AsInt(),
            static_cast<int64_t>(before + 1));
  EXPECT_EQ(service_->serving_version(), before + 1);
}

TEST_F(HandlerTest, SnapshotWithoutPublisherIs503) {
  SummaryHandler no_publish(service_, catalog_);
  net::HttpRequest request;
  request.method = "POST";
  request.target = "/snapshot";
  EXPECT_EQ(no_publish.Handle(request).status, 503);
}

}  // namespace
}  // namespace xsum::service
