/// Tests of the drain-handoff chain wire format (`chain_transfer.h`) and
/// its service-side endpoints: a real chained k-sweep's checkpoints
/// survive export → JSON bytes → import into a *different* service and
/// keep the incremental path alive there (the §7.4 handoff property at
/// the service level), serialization is deterministic, and malformed or
/// out-of-bounds documents are rejected rather than trusted.

#include "service/chain_transfer.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "eval/experiment.h"
#include "eval/runner.h"
#include "net/json.h"
#include "service/handler.h"
#include "service/shard_router.h"
#include "service/snapshot_registry.h"

namespace xsum::service {
namespace {

eval::ExperimentConfig TinyConfig() {
  eval::ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 3;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.ks = {1, 3, 5};
  return config;
}

class ChainTransferTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new eval::ExperimentRunner(TinyConfig());
    ASSERT_TRUE(runner_->Init().ok());
    auto data = runner_->ComputeBaseline(rec::RecommenderKind::kPgpr);
    ASSERT_TRUE(data.ok()) << data.status();
    catalog_ = new TaskCatalog();
    for (const core::UserRecs& ur : data->users) {
      catalog_->AddUserCentric(runner_->rec_graph(), ur, 5);
    }
    registry_ = new GraphSnapshotRegistry();
    registry_->Publish(GraphSnapshotRegistry::Alias(runner_->rec_graph()));
  }

  static void TearDownTestSuite() {
    delete catalog_;
    delete registry_;
    delete runner_;
    catalog_ = nullptr;
    registry_ = nullptr;
    runner_ = nullptr;
  }

  /// Distinct unit ids of the catalog, in insertion order.
  static std::vector<uint32_t> Units() {
    std::vector<uint32_t> units;
    for (const auto& entry : catalog_->entries()) {
      if (units.empty() || units.back() != entry.unit) {
        units.push_back(entry.unit);
      }
    }
    return units;
  }

  /// A λ=0 KMB request for (unit, k): the configuration whose chain
  /// checkpoints carry state *and* stay reusable across ks (Mehlhorn
  /// computes chain-free; λ>0 costs are k-dependent, which resets the
  /// chain every step).
  static SummaryRequest ChainedRequest(uint32_t unit, int k) {
    SummaryRequest request;
    request.unit = unit;
    request.k = k;
    request.prev_k = k > 1 ? k - 1 : 0;
    request.lambda = 0.0;
    request.variant = core::SteinerOptions::Variant::kKmb;
    return request;
  }

  /// Runs the chained sweep k = 1..max_k of \p unit on \p service with a
  /// route key, exactly the way the routed handler does.
  static void SweepUnit(SummaryService* service, uint32_t unit, int max_k) {
    SummaryRequest request = ChainedRequest(unit, 1);
    const uint64_t route_key = UnitFingerprint(request);
    for (int k = 1; k <= max_k; ++k) {
      const core::SummaryTask* task =
          catalog_->Find(core::Scenario::kUserCentric, unit, k);
      ASSERT_NE(task, nullptr);
      const core::SummaryTask* predecessor =
          k > 1 ? catalog_->Find(core::Scenario::kUserCentric, unit, k - 1)
                : nullptr;
      request.k = k;
      const auto result = service->Summarize(*task, RequestOptions(request),
                                             predecessor, nullptr, route_key);
      ASSERT_TRUE(result.ok()) << result.status();
    }
  }

  static eval::ExperimentRunner* runner_;
  static TaskCatalog* catalog_;
  static GraphSnapshotRegistry* registry_;
};

eval::ExperimentRunner* ChainTransferTest::runner_ = nullptr;
TaskCatalog* ChainTransferTest::catalog_ = nullptr;
GraphSnapshotRegistry* ChainTransferTest::registry_ = nullptr;

TEST_F(ChainTransferTest, RoundTripThroughWireBytesPreservesCheckpoints) {
  SummaryService source(registry_);
  for (const uint32_t unit : Units()) SweepUnit(&source, unit, 3);
  const std::vector<SummaryCache::ChainExport> exports =
      source.ExportChains();
  ASSERT_FALSE(exports.empty()) << "routed sweeps must leave exportable "
                                   "chains (route-keyed cache entries)";

  for (const SummaryCache::ChainExport& entry : exports) {
    // Through the actual wire bytes, not just the value tree.
    const std::string wire = ChainCheckpointToJson(entry).Dump();
    const auto parsed = net::ParseJson(wire);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const auto checkpoint = ChainCheckpointFromJson(*parsed);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
    EXPECT_EQ(checkpoint->key.snapshot_version, entry.key.snapshot_version);
    EXPECT_EQ(checkpoint->key.fp_hi, entry.key.fp_hi);
    EXPECT_EQ(checkpoint->key.fp_lo, entry.key.fp_lo);
    EXPECT_EQ(checkpoint->route_key, entry.route_key);
    EXPECT_TRUE(checkpoint->chain.has_state);
    EXPECT_EQ(checkpoint->chain.graph, nullptr)
        << "the importing service re-anchors the graph";
    EXPECT_EQ(checkpoint->chain.method, entry.chain->method);
    EXPECT_EQ(checkpoint->chain.closure.pairs.size(),
              entry.chain->closure.pairs.size());
    EXPECT_EQ(checkpoint->chain.closure.arena.size(),
              entry.chain->closure.arena.size());
    // Determinism: re-exporting the re-imported checkpoint yields the
    // same bytes (pair order is sorted, not hash-map order).
    SummaryCache::ChainExport echo;
    echo.key = checkpoint->key;
    echo.route_key = checkpoint->route_key;
    echo.chain = std::make_shared<core::SummaryChain>(checkpoint->chain);
    EXPECT_EQ(ChainCheckpointToJson(echo).Dump(), wire);
  }
}

TEST_F(ChainTransferTest, ImportedChainsKeepIncrementalReuseAliveElsewhere) {
  SummaryService source(registry_);
  for (const uint32_t unit : Units()) SweepUnit(&source, unit, 3);
  ASSERT_GT(source.Stats().incremental, 0u)
      << "premise: the chained sweep itself reuses closure rows";

  // Hand every checkpoint to a cold destination service, through the
  // wire format (what /drain → /chains does across processes).
  SummaryService dest(registry_);
  size_t imported = 0;
  for (const SummaryCache::ChainExport& entry : source.ExportChains()) {
    const auto parsed = net::ParseJson(ChainCheckpointToJson(entry).Dump());
    ASSERT_TRUE(parsed.ok());
    auto checkpoint = ChainCheckpointFromJson(*parsed);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
    const Status status =
        dest.ImportChain(checkpoint->key, checkpoint->route_key,
                         std::move(checkpoint->chain));
    ASSERT_TRUE(status.ok()) << status;
    ++imported;
  }
  EXPECT_EQ(dest.Stats().chains_imported, imported);

  // Extending each sweep on the destination (k=4 from the imported k=3
  // checkpoint) must run incrementally — the §5 reuse survived the move.
  const uint64_t before = dest.Stats().incremental;
  for (const uint32_t unit : Units()) {
    const SummaryRequest request = ChainedRequest(unit, 4);
    const core::SummaryTask* task =
        catalog_->Find(core::Scenario::kUserCentric, unit, 4);
    const core::SummaryTask* predecessor =
        catalog_->Find(core::Scenario::kUserCentric, unit, 3);
    ASSERT_NE(task, nullptr);
    ASSERT_NE(predecessor, nullptr);
    const auto result =
        dest.Summarize(*task, RequestOptions(request), predecessor, nullptr,
                       UnitFingerprint(request));
    ASSERT_TRUE(result.ok()) << result.status();

    // And the answer is the same bits a hint-free compute produces.
    SummaryService fresh(registry_);
    const auto direct = fresh.Summarize(*task, RequestOptions(request));
    ASSERT_TRUE(direct.ok()) << direct.status();
    EXPECT_EQ(SummaryToJson(**result, 1), SummaryToJson(**direct, 1));
  }
  EXPECT_GT(dest.Stats().incremental, before)
      << "imported checkpoints never fed an incremental compute";
}

TEST_F(ChainTransferTest, ImportRejectsVersionSkewAndMissingSnapshot) {
  SummaryService source(registry_);
  SweepUnit(&source, Units().front(), 2);
  const auto exports = source.ExportChains();
  ASSERT_FALSE(exports.empty());

  // No published snapshot: nothing to anchor to.
  GraphSnapshotRegistry empty_registry;
  SummaryService unpublished(&empty_registry);
  core::SummaryChain chain = *exports.front().chain;
  Status status = unpublished.ImportChain(exports.front().key,
                                          exports.front().route_key, chain);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status;

  // Checkpoint from another snapshot version: stale, refused.
  SummaryService dest(registry_);
  CacheKey stale = exports.front().key;
  stale.snapshot_version += 1;
  chain = *exports.front().chain;
  status = dest.ImportChain(stale, exports.front().route_key, chain);
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_EQ(dest.Stats().chains_imported, 0u);
}

/// A minimal structurally valid checkpoint document for mutation tests.
net::JsonValue MinimalDoc() {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("v", 1);
  json.Set("snapshot_version", 1);
  json.Set("fp_hi", "a1");
  json.Set("fp_lo", "b2");
  json.Set("route_key", "c3");
  json.Set("method", 1);
  json.Set("variant", 0);
  json.Set("sig_kind", 0);
  json.Set("sig_mode", 0);
  json.Set("deviations", net::JsonValue::Array());
  net::JsonValue pair = net::JsonValue::Array();
  pair.Append("7");
  pair.Append("3ff0000000000000");  // 1.0
  pair.Append(0);
  pair.Append(3);
  net::JsonValue pairs = net::JsonValue::Array();
  pairs.Append(std::move(pair));
  json.Set("pairs", std::move(pairs));
  net::JsonValue arena = net::JsonValue::Array();
  arena.Append(4);
  arena.Append(5);
  arena.Append(6);
  json.Set("arena", std::move(arena));
  json.Set("links", 2);
  json.Set("resets", 0);
  return json;
}

TEST(ChainTransferValidationTest, MinimalDocumentParses) {
  const auto checkpoint = ChainCheckpointFromJson(MinimalDoc());
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint->key.fp_hi, 0xa1u);
  EXPECT_EQ(checkpoint->route_key, 0xc3u);
  EXPECT_EQ(checkpoint->chain.closure.arena.size(), 3u);
  EXPECT_EQ(checkpoint->chain.links, 2u);
  const auto it = checkpoint->chain.closure.pairs.find(7);
  ASSERT_NE(it, checkpoint->chain.closure.pairs.end());
  EXPECT_DOUBLE_EQ(it->second.dist, 1.0);
}

TEST(ChainTransferValidationTest, RejectsMalformedDocuments) {
  {
    net::JsonValue doc = MinimalDoc();
    doc.Set("v", kChainWireVersion + 1);  // future wire version
    EXPECT_FALSE(ChainCheckpointFromJson(doc).ok());
  }
  {
    net::JsonValue doc = MinimalDoc();
    doc.Set("fp_hi", "xyz");  // non-hex digits
    EXPECT_FALSE(ChainCheckpointFromJson(doc).ok());
  }
  {
    net::JsonValue doc = MinimalDoc();
    doc.Set("fp_lo", "00112233445566778");  // 17 digits: overflow
    EXPECT_FALSE(ChainCheckpointFromJson(doc).ok());
  }
  {
    net::JsonValue doc = MinimalDoc();
    doc.Set("sig_kind", 9);  // out-of-range enum
    EXPECT_FALSE(ChainCheckpointFromJson(doc).ok());
  }
  {
    net::JsonValue doc = MinimalDoc();
    doc.Set("arena", net::JsonValue::Array());  // pair span now OOB
    EXPECT_FALSE(ChainCheckpointFromJson(doc).ok());
  }
  {
    net::JsonValue doc = MinimalDoc();
    net::JsonValue pair = net::JsonValue::Array();
    pair.Append("8");
    pair.Append("0");
    pair.Append(2);
    pair.Append(1);  // end < begin
    net::JsonValue pairs = net::JsonValue::Array();
    pairs.Append(std::move(pair));
    doc.Set("pairs", std::move(pairs));
    EXPECT_FALSE(ChainCheckpointFromJson(doc).ok());
  }
  {
    net::JsonValue doc = MinimalDoc();
    doc.Set("links", -1);  // negative counter
    EXPECT_FALSE(ChainCheckpointFromJson(doc).ok());
  }
  EXPECT_FALSE(ChainCheckpointFromJson(net::JsonValue("nope")).ok());
  EXPECT_FALSE(ChainCheckpointFromJson(net::JsonValue::Object()).ok());
}

}  // namespace
}  // namespace xsum::service
