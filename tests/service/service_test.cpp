/// Property tests of the summary service front end: cached responses must
/// be bit-identical to fresh `Summarize` calls across methods and
/// scenarios, concurrent identical requests must coalesce into one
/// computation, and a snapshot swap must never serve a stale entry.

#include "service/service.h"

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/runner.h"
#include "service/snapshot_registry.h"

namespace xsum::service {
namespace {

eval::ExperimentConfig TinyConfig() {
  eval::ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 4;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.user_group_size = 4;
  config.item_group_size = 3;
  config.ks = {1, 3, 5};
  return config;
}

/// Tasks covering all four paper scenarios, built from a real baseline.
std::vector<core::SummaryTask> ScenarioTasks(
    const eval::ExperimentRunner& runner, const eval::BaselineData& data) {
  std::vector<core::SummaryTask> tasks;
  for (int k : {1, 3, 5}) {  // overlapping k-prefixes of the same unit
    tasks.push_back(
        core::MakeUserCentricTask(runner.rec_graph(), data.users[0], k));
  }
  tasks.push_back(core::MakeItemCentricTask(
      runner.rec_graph(), data.items[0].item, data.items[0].audience, 3));
  tasks.push_back(
      core::MakeUserGroupTask(runner.rec_graph(), data.user_groups[0], 3));
  tasks.push_back(
      core::MakeItemGroupTask(runner.rec_graph(), data.item_groups[0], 3));
  return tasks;
}

std::vector<core::SummarizerOptions> MethodLineup() {
  std::vector<core::SummarizerOptions> methods;
  core::SummarizerOptions baseline;
  baseline.method = core::SummaryMethod::kBaseline;
  methods.push_back(baseline);
  for (auto [variant, lambda] :
       {std::pair{core::SteinerOptions::Variant::kKmb, 0.01},
        std::pair{core::SteinerOptions::Variant::kMehlhorn, 1.0}}) {
    core::SummarizerOptions st;
    st.method = core::SummaryMethod::kSteiner;
    st.lambda = lambda;
    st.steiner.variant = variant;
    methods.push_back(st);
  }
  core::SummarizerOptions pcst;
  pcst.method = core::SummaryMethod::kPcst;
  methods.push_back(pcst);
  return methods;
}

void ExpectIdentical(const core::Summary& a, const core::Summary& b) {
  EXPECT_EQ(a.subgraph.nodes(), b.subgraph.nodes());
  EXPECT_EQ(a.subgraph.edges(), b.subgraph.edges());
  EXPECT_EQ(a.unreached_terminals, b.unreached_terminals);
  EXPECT_EQ(a.terminals, b.terminals);
  EXPECT_EQ(a.anchors, b.anchors);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.scenario, b.scenario);
}

TEST(SummaryServiceTest, CachedBitIdenticalToFreshAcrossMethodsAndScenarios) {
  eval::ExperimentRunner runner(TinyConfig());
  ASSERT_TRUE(runner.Init().ok());
  const auto data = runner.ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_FALSE(data->users.empty());
  ASSERT_FALSE(data->items.empty());
  ASSERT_FALSE(data->user_groups.empty());
  ASSERT_FALSE(data->item_groups.empty());

  GraphSnapshotRegistry registry;
  registry.Publish(GraphSnapshotRegistry::Alias(runner.rec_graph()));
  ServiceOptions options;
  options.num_workers = 2;
  SummaryService service(&registry, options);

  uint64_t distinct = 0;
  for (const core::SummaryTask& task : ScenarioTasks(runner, *data)) {
    for (const core::SummarizerOptions& method : MethodLineup()) {
      const auto first = service.Summarize(task, method);
      ASSERT_TRUE(first.ok()) << first.status();
      ++distinct;

      // Property: the cached value is bit-identical to a fresh
      // single-shot Summarize on the same graph.
      const auto fresh = core::Summarize(runner.rec_graph(), task, method);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      ExpectIdentical(*fresh, **first);

      // The repeat is served from the cache: same shared object, no new
      // engine run.
      const auto repeat = service.Summarize(task, method);
      ASSERT_TRUE(repeat.ok()) << repeat.status();
      EXPECT_EQ(first->get(), repeat->get());
    }
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 2 * distinct);
  EXPECT_EQ(stats.computed, distinct);
  EXPECT_EQ(stats.cache.hits, distinct);
  EXPECT_EQ(stats.cache.insertions, distinct);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.qps, 0.0);
}

TEST(SummaryServiceTest, SnapshotSwapNeverServesStaleEntries) {
  // Graphs A and B share topology (same dataset) but carry different edge
  // weights, so a stale ST answer would be observably wrong.
  data::Dataset dataset =
      data::MakeSyntheticDataset(data::Ml1mConfig(0.02, 11));
  data::WeightParams params_b;
  params_b.beta1 = 0.25;
  params_b.beta2 = 1.0;
  params_b.t0 = dataset.t0;
  auto graph_a = std::make_shared<const data::RecGraph>(
      std::move(data::BuildRecGraph(dataset)).ValueOrDie());
  auto graph_b = std::make_shared<const data::RecGraph>(
      std::move(data::BuildRecGraph(dataset, params_b)).ValueOrDie());

  core::SummaryTask task;
  task.terminals = {graph_a->UserNode(0), graph_a->ItemNode(0),
                    graph_a->ItemNode(1)};
  task.anchors = {task.terminals.front()};
  task.s_size = 2;
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;

  GraphSnapshotRegistry registry;
  SummaryService service(&registry, ServiceOptions());

  ASSERT_EQ(registry.Publish(graph_a), 1u);
  const auto on_a = service.Summarize(task, st);
  ASSERT_TRUE(on_a.ok()) << on_a.status();
  const auto fresh_a = core::Summarize(*graph_a, task, st);
  ASSERT_TRUE(fresh_a.ok());
  ExpectIdentical(*fresh_a, **on_a);

  ASSERT_EQ(registry.Publish(graph_b), 2u);
  const auto on_b = service.Summarize(task, st);
  ASSERT_TRUE(on_b.ok()) << on_b.status();
  const auto fresh_b = core::Summarize(*graph_b, task, st);
  ASSERT_TRUE(fresh_b.ok());
  // The version-2 request was recomputed on graph B — not served from the
  // version-1 entry (its key can no longer match).
  ExpectIdentical(*fresh_b, **on_b);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.snapshot_swaps, 1u);
  EXPECT_EQ(stats.snapshot_version, 2u);

  // After the swap, the version-2 entry serves hits as usual.
  const auto repeat_b = service.Summarize(task, st);
  ASSERT_TRUE(repeat_b.ok());
  EXPECT_EQ(on_b->get(), repeat_b->get());
}

TEST(SummaryServiceTest, SingleFlightCoalescesConcurrentIdenticalRequests) {
  eval::ExperimentRunner runner(TinyConfig());
  ASSERT_TRUE(runner.Init().ok());
  const auto data = runner.ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  const core::SummaryTask task =
      core::MakeUserCentricTask(runner.rec_graph(), data->users[0], 5);
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;

  GraphSnapshotRegistry registry;
  registry.Publish(GraphSnapshotRegistry::Alias(runner.rec_graph()));
  ServiceOptions options;
  options.num_workers = 2;
  SummaryService service(&registry, options);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::Summary>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto result = service.Summarize(task, st);
      ASSERT_TRUE(result.ok()) << result.status();
      results[t] = *result;
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactly one engine run; everyone shares its bits (hit or coalesced).
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.cache.insertions, 1u);
  EXPECT_EQ(stats.cache.hits + stats.coalesced,
            static_cast<uint64_t>(kThreads - 1));
  for (const auto& result : results) {
    ASSERT_NE(result, nullptr);
    ExpectIdentical(*results[0], *result);
  }
}

TEST(SummaryServiceTest, CacheDisabledAlwaysComputes) {
  eval::ExperimentRunner runner(TinyConfig());
  ASSERT_TRUE(runner.Init().ok());
  const auto data = runner.ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  const core::SummaryTask task =
      core::MakeUserCentricTask(runner.rec_graph(), data->users[0], 3);
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;

  GraphSnapshotRegistry registry;
  registry.Publish(GraphSnapshotRegistry::Alias(runner.rec_graph()));
  ServiceOptions options;
  options.enable_cache = false;
  SummaryService service(&registry, options);

  const auto first = service.Summarize(task, st);
  const auto second = service.Summarize(task, st);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectIdentical(**first, **second);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.insertions, 0u);
}

TEST(SummaryServiceTest, ErrorsPropagateAndAreNotCached) {
  eval::ExperimentRunner runner(TinyConfig());
  ASSERT_TRUE(runner.Init().ok());
  core::SummaryTask bad;
  bad.terminals = {static_cast<graph::NodeId>(
      runner.rec_graph().graph().num_nodes() + 7)};
  core::SummarizerOptions pcst;
  pcst.method = core::SummaryMethod::kPcst;

  GraphSnapshotRegistry registry;
  registry.Publish(GraphSnapshotRegistry::Alias(runner.rec_graph()));
  SummaryService service(&registry, ServiceOptions());

  const auto first = service.Summarize(bad, pcst);
  const auto second = service.Summarize(bad, pcst);
  EXPECT_FALSE(first.ok());
  EXPECT_FALSE(second.ok());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.computed, 2u);  // the failure was not cached
  EXPECT_EQ(stats.cache.insertions, 0u);
}

TEST(SummaryServiceTest, NoPublishedSnapshotFailsPrecondition) {
  GraphSnapshotRegistry registry;
  SummaryService service(&registry, ServiceOptions());
  core::SummaryTask task;
  task.terminals = {0};
  const auto result = service.Summarize(task, core::SummarizerOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(SummaryServiceTest, StatsWellDefinedBeforeAndAfterFirstRequest) {
  // Regression: the latency percentiles must be well-defined on an empty
  // (no traffic yet) and a one-sample reservoir — zeros and the single
  // sample respectively, never garbage.
  eval::ExperimentRunner runner(TinyConfig());
  ASSERT_TRUE(runner.Init().ok());
  GraphSnapshotRegistry registry;
  registry.Publish(GraphSnapshotRegistry::Alias(runner.rec_graph()));
  SummaryService service(&registry, ServiceOptions());

  const ServiceStats before = service.Stats();
  EXPECT_EQ(before.requests, 0u);
  EXPECT_EQ(before.mean_ms, 0.0);
  EXPECT_EQ(before.p50_ms, 0.0);
  EXPECT_EQ(before.p99_ms, 0.0);
  EXPECT_EQ(before.qps, 0.0);

  const auto data = runner.ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  const core::SummaryTask task =
      core::MakeUserCentricTask(runner.rec_graph(), data->users[0], 3);
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;
  ASSERT_TRUE(service.Summarize(task, st).ok());

  const ServiceStats after = service.Stats();
  EXPECT_EQ(after.requests, 1u);
  // One sample: every percentile is that sample, and the mean equals it.
  EXPECT_EQ(after.p50_ms, after.p99_ms);
  EXPECT_EQ(after.p50_ms, after.mean_ms);
  EXPECT_GT(after.p50_ms, 0.0);
}

TEST(SummaryServiceTest, PredecessorHintSummarizesIncrementallyBitIdentical) {
  eval::ExperimentRunner runner(TinyConfig());
  ASSERT_TRUE(runner.Init().ok());
  const auto data = runner.ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  GraphSnapshotRegistry registry;
  registry.Publish(GraphSnapshotRegistry::Alias(runner.rec_graph()));
  SummaryService service(&registry, ServiceOptions());

  // λ = 0 KMB: the resolved costs are k-stable, so the chained compute
  // actually reuses the predecessor's closure rows (not just the wiring).
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;
  st.lambda = 0.0;
  st.steiner.variant = core::SteinerOptions::Variant::kKmb;

  const core::SummaryTask* predecessor = nullptr;
  core::SummaryTask prev_task;
  for (int k = 1; k <= 5; ++k) {
    const core::SummaryTask task =
        core::MakeUserCentricTask(runner.rec_graph(), data->users[0], k);
    const auto incremental = service.Summarize(task, st, predecessor);
    ASSERT_TRUE(incremental.ok()) << incremental.status();
    // Property: the hinted answer is bit-identical to a fresh one-shot.
    const auto fresh = core::Summarize(runner.rec_graph(), task, st);
    ASSERT_TRUE(fresh.ok());
    ExpectIdentical(*fresh, **incremental);
    prev_task = task;
    predecessor = &prev_task;
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.computed, 5u);
  // Every step past the first was seeded by the (task, k−1) checkpoint.
  EXPECT_EQ(stats.incremental, 4u);
  EXPECT_EQ(stats.errors, 0u);

  // A wrong or unrelated hint degrades to a fresh compute, never a wrong
  // answer.
  const core::SummaryTask unrelated =
      core::MakeUserCentricTask(runner.rec_graph(), data->users.back(), 2);
  const core::SummaryTask task =
      core::MakeUserCentricTask(runner.rec_graph(), data->users[0], 6);
  const auto hinted = service.Summarize(task, st, &unrelated);
  const auto fresh = core::Summarize(runner.rec_graph(), task, st);
  ASSERT_TRUE(hinted.ok() && fresh.ok());
  ExpectIdentical(*fresh, **hinted);
}

}  // namespace
}  // namespace xsum::service
