/// End-to-end tests of the fleet self-evaluation surface: a shard's
/// `GET /evalstats` exposes its accumulator losslessly, partitioning a
/// real request stream across shard handlers merges bit-identically to
/// one process serving everything, and — over real loopback servers —
/// the router's fleet-merged `/evalstats` equals both the exact sum of
/// the per-shard scrapes and the single-process reference. This is the
/// distributed-evaluation acceptance property of the replay PR.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "eval/eval_stats.h"
#include "eval/experiment.h"
#include "eval/runner.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "service/handler.h"
#include "service/shard_router.h"
#include "service/snapshot_registry.h"

namespace xsum::service {
namespace {

eval::ExperimentConfig TinyConfig() {
  eval::ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 3;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.ks = {1, 3, 5};
  return config;
}

/// One in-process shard over the shared registry/catalog.
struct Shard {
  std::unique_ptr<SummaryService> service;
  std::unique_ptr<SummaryHandler> handler;
  std::unique_ptr<net::HttpServer> server;

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

class EvalStatsEndpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new eval::ExperimentRunner(TinyConfig());
    ASSERT_TRUE(runner_->Init().ok());
    auto data = runner_->ComputeBaseline(rec::RecommenderKind::kPgpr);
    ASSERT_TRUE(data.ok()) << data.status();
    catalog_ = new TaskCatalog();
    for (const core::UserRecs& ur : data->users) {
      catalog_->AddUserCentric(runner_->rec_graph(), ur, 5);
    }
    registry_ = new GraphSnapshotRegistry();
    registry_->Publish(GraphSnapshotRegistry::Alias(runner_->rec_graph()));
  }

  static void TearDownTestSuite() {
    delete catalog_;
    delete registry_;
    delete runner_;
    catalog_ = nullptr;
    registry_ = nullptr;
    runner_ = nullptr;
  }

  static std::unique_ptr<Shard> StartShard() {
    auto shard = std::make_unique<Shard>();
    shard->service = std::make_unique<SummaryService>(registry_);
    shard->handler =
        std::make_unique<SummaryHandler>(shard->service.get(), catalog_);
    net::HttpServer::Options options;
    options.num_workers = 2;
    SummaryHandler* handler = shard->handler.get();
    shard->server = std::make_unique<net::HttpServer>(
        [handler](const net::HttpRequest& request) {
          return handler->Handle(request);
        },
        options);
    EXPECT_TRUE(shard->server->Start().ok());
    return shard;
  }

  /// A mixed request stream: several units, chained ks, both methods —
  /// enough variety that every metric and both group axes move.
  static std::vector<SummaryRequest> Stream() {
    std::vector<SummaryRequest> requests;
    std::vector<uint32_t> units;
    for (const auto& entry : catalog_->entries()) {
      if (units.empty() || units.back() != entry.unit) {
        units.push_back(entry.unit);
      }
    }
    units.resize(std::min<size_t>(units.size(), 4));
    for (const uint32_t unit : units) {
      for (int k = 1; k <= 4; ++k) {
        SummaryRequest request;
        request.unit = unit;
        request.k = k;
        requests.push_back(request);
        request.method = core::SummaryMethod::kPcst;
        requests.push_back(request);
      }
    }
    return requests;
  }

  static eval::EvalStatsSnapshot ScrapeEvalStats(uint16_t port) {
    const auto response =
        net::HttpFetch("127.0.0.1", port, "GET", "/evalstats");
    EXPECT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->status, 200);
    const auto json = net::ParseJson(response->body);
    EXPECT_TRUE(json.ok()) << json.status().ToString();
    const auto snapshot = eval::EvalStatsSnapshotFromJson(*json);
    EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    return snapshot.ok() ? *snapshot : eval::EvalStatsSnapshot{};
  }

  static eval::ExperimentRunner* runner_;
  static TaskCatalog* catalog_;
  static GraphSnapshotRegistry* registry_;
};

eval::ExperimentRunner* EvalStatsEndpointTest::runner_ = nullptr;
TaskCatalog* EvalStatsEndpointTest::catalog_ = nullptr;
GraphSnapshotRegistry* EvalStatsEndpointTest::registry_ = nullptr;

TEST_F(EvalStatsEndpointTest, EndpointExposesTheAccumulatorLosslessly) {
  SummaryService service(registry_);
  SummaryHandler handler(&service, catalog_);
  const std::vector<SummaryRequest> stream = Stream();
  for (const SummaryRequest& request : stream) {
    ASSERT_EQ(handler.Summarize(request).status, 200);
  }

  net::HttpRequest get;
  get.method = "GET";
  get.target = "/evalstats";
  const net::HttpResponse response = handler.Handle(get);
  ASSERT_EQ(response.status, 200) << response.body;
  const auto json = net::ParseJson(response.body);
  ASSERT_TRUE(json.ok());
  const auto scraped = eval::EvalStatsSnapshotFromJson(*json);
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();

  // The wire form reloads to exactly the in-memory snapshot: the scrape
  // loses nothing a merge would need.
  EXPECT_EQ(*scraped, handler.EvalSnapshot());
  EXPECT_EQ(scraped->summaries, stream.size());
  EXPECT_EQ(scraped->skipped, 0u);
  EXPECT_EQ(scraped->metrics.size(), eval::MetricNames().size());
  for (const std::string& name : eval::MetricNames()) {
    EXPECT_EQ(scraped->metrics.at(name).count, stream.size()) << name;
  }
  // Both fairness axes populated: methods and scenarios.
  EXPECT_TRUE(scraped->groups.count("method:ST"));
  EXPECT_TRUE(scraped->groups.count("method:PCST"));
  EXPECT_TRUE(scraped->groups.count("scenario:user-centric"));

  // POST is rejected; the endpoint is a read surface.
  net::HttpRequest post = get;
  post.method = "POST";
  EXPECT_EQ(handler.Handle(post).status, 405);
}

TEST_F(EvalStatsEndpointTest, DisablingEvalStopsAccumulation) {
  SummaryService service(registry_);
  SummaryHandler handler(&service, catalog_);
  handler.set_eval_enabled(false);
  SummaryRequest request;
  request.unit = catalog_->entries().front().unit;
  request.k = 2;
  ASSERT_EQ(handler.Summarize(request).status, 200);
  const eval::EvalStatsSnapshot snapshot = handler.EvalSnapshot();
  EXPECT_EQ(snapshot.summaries, 0u);
  EXPECT_TRUE(snapshot.metrics.empty());

  handler.set_eval_enabled(true);
  ASSERT_EQ(handler.Summarize(request).status, 200);
  EXPECT_EQ(handler.EvalSnapshot().summaries, 1u);
}

TEST_F(EvalStatsEndpointTest, ShardSplitOfARealStreamMergesBitIdentically) {
  // One process serving the whole stream vs the stream partitioned
  // across 2..4 independent serving handlers: the merged sufficient
  // statistics must be equal via operator== — raw integer limb state,
  // i.e. bit identity, the property that makes /evalstats trustworthy.
  const std::vector<SummaryRequest> stream = Stream();

  SummaryService reference_service(registry_);
  SummaryHandler reference(&reference_service, catalog_);
  for (const SummaryRequest& request : stream) {
    ASSERT_EQ(reference.Summarize(request).status, 200);
  }
  const eval::EvalStatsSnapshot expected = reference.EvalSnapshot();
  ASSERT_EQ(expected.summaries, stream.size());

  for (size_t shards = 2; shards <= 4; ++shards) {
    std::vector<std::unique_ptr<SummaryService>> services;
    std::vector<std::unique_ptr<SummaryHandler>> handlers;
    for (size_t s = 0; s < shards; ++s) {
      services.push_back(std::make_unique<SummaryService>(registry_));
      handlers.push_back(
          std::make_unique<SummaryHandler>(services.back().get(), catalog_));
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_EQ(handlers[i % shards]->Summarize(stream[i]).status, 200);
    }
    eval::EvalStatsSnapshot merged;
    for (const auto& handler : handlers) {
      merged += handler->EvalSnapshot();
    }
    EXPECT_EQ(merged, expected) << shards << " shards";
  }
}

TEST_F(EvalStatsEndpointTest,
       RouterMergedStatsEqualShardSumAndSingleProcessExactly) {
  auto shard_a = StartShard();
  auto shard_b = StartShard();
  ShardRouter::Options options;
  options.endpoints = {shard_a->endpoint(), shard_b->endpoint()};
  options.hedge = false;  // each request served exactly once
  options.health_probes = false;
  ShardRouter router(nullptr, options);

  // The single-process reference for the same stream.
  SummaryService reference_service(registry_);
  SummaryHandler reference(&reference_service, catalog_);

  const std::vector<SummaryRequest> stream = Stream();
  for (const SummaryRequest& request : stream) {
    ASSERT_EQ(router.Summarize(request).status, 200);
    ASSERT_EQ(reference.Summarize(request).status, 200);
  }
  // Both shards actually evaluated traffic.
  ASSERT_GT(shard_a->handler->EvalSnapshot().summaries, 0u);
  ASSERT_GT(shard_b->handler->EvalSnapshot().summaries, 0u);

  const eval::EvalStatsSnapshot fleet = router.FleetEvalStats();

  // Property 1: the router's merge is exactly the sum of what the shards
  // themselves scrape out over HTTP.
  eval::EvalStatsSnapshot summed;
  summed += ScrapeEvalStats(shard_a->server->port());
  summed += ScrapeEvalStats(shard_b->server->port());
  EXPECT_EQ(fleet, summed);

  // Property 2: the fleet merge is bit-identical to one process that
  // served the entire stream — the tentpole acceptance criterion.
  EXPECT_EQ(fleet, reference.EvalSnapshot());
  EXPECT_EQ(fleet.summaries, stream.size());

  // The router's own /evalstats wire document carries the same merge.
  net::HttpRequest get;
  get.method = "GET";
  get.target = "/evalstats";
  const net::HttpResponse wire = router.Handle(get);
  ASSERT_EQ(wire.status, 200);
  const auto json = net::ParseJson(wire.body);
  ASSERT_TRUE(json.ok());
  const auto parsed = eval::EvalStatsSnapshotFromJson(*json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, fleet);

  // A dead shard is a counted scrape error, never a guessed partial.
  shard_b->server->Stop();
  const eval::EvalStatsSnapshot degraded = router.FleetEvalStats();
  EXPECT_EQ(degraded, ScrapeEvalStats(shard_a->server->port()));

  shard_a->server->Stop();
}

}  // namespace
}  // namespace xsum::service
