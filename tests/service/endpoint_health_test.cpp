/// Fake-time unit tests of the `EndpointHealth` circuit breaker: the
/// healthy → suspect → ejected transitions, exponential probe backoff
/// with its cap, reinstatement (by probe and by a racing request), the
/// liveness-probe cadence, and the draining override. Every time-
/// dependent method takes an explicit `now`, so no test sleeps.

#include "service/endpoint_health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace xsum::service {
namespace {

using State = EndpointHealth::State;
using TimePoint = EndpointHealth::TimePoint;

TimePoint At(int ms) {
  return TimePoint{} + std::chrono::milliseconds(ms);
}

EndpointHealth::Options TestOptions() {
  EndpointHealth::Options options;
  options.failure_threshold = 3;
  options.base_backoff_ms = 100;
  options.max_backoff_ms = 400;
  return options;
}

TEST(EndpointHealthTest, StartsHealthyAndSelectable) {
  EndpointHealth health(TestOptions());
  EXPECT_EQ(health.state(), State::kHealthy);
  EXPECT_TRUE(health.Selectable());
  EXPECT_EQ(health.consecutive_failures(), 0);
  EXPECT_EQ(health.ewma_ms(), 0.0);
}

TEST(EndpointHealthTest, ConsecutiveFailuresCrossThresholdIntoEjected) {
  EndpointHealth health(TestOptions());
  EXPECT_FALSE(health.RecordFailure(At(0)));
  EXPECT_EQ(health.state(), State::kSuspect);
  EXPECT_TRUE(health.Selectable()) << "suspect still serves";
  EXPECT_FALSE(health.RecordFailure(At(1)));
  // The threshold crossing — and only it — reports the ejection.
  EXPECT_TRUE(health.RecordFailure(At(2)));
  EXPECT_EQ(health.state(), State::kEjected);
  EXPECT_FALSE(health.Selectable());
  // Further failures while ejected never re-report.
  EXPECT_FALSE(health.RecordFailure(At(3)));
}

TEST(EndpointHealthTest, OneSuccessResetsTheFailureStreak) {
  EndpointHealth health(TestOptions());
  health.RecordFailure(At(0));
  health.RecordFailure(At(1));
  EXPECT_FALSE(health.RecordSuccess(5.0)) << "not a reinstatement";
  EXPECT_EQ(health.state(), State::kHealthy);
  EXPECT_EQ(health.consecutive_failures(), 0);
  // The streak restarts from zero: two more failures do not eject.
  health.RecordFailure(At(2));
  health.RecordFailure(At(3));
  EXPECT_EQ(health.state(), State::kSuspect);
}

TEST(EndpointHealthTest, EjectedProbesOnlyAfterTheBackoffWindow) {
  EndpointHealth health(TestOptions());
  for (int i = 0; i < 3; ++i) health.RecordFailure(At(0));
  ASSERT_EQ(health.state(), State::kEjected);
  EXPECT_FALSE(health.ShouldProbe(At(99), 0));
  EXPECT_TRUE(health.ShouldProbe(At(100), 0));
  EXPECT_TRUE(health.ShouldProbe(At(5000), 0));
}

TEST(EndpointHealthTest, FailedProbesDoubleTheBackoffUpToTheCap) {
  EndpointHealth health(TestOptions());
  for (int i = 0; i < 3; ++i) health.RecordFailure(At(0));
  // Probe at t=100 fails: backoff 100 -> 200, next window at 300.
  EXPECT_FALSE(health.OnProbeResult(false, At(100)));
  EXPECT_FALSE(health.ShouldProbe(At(299), 0));
  EXPECT_TRUE(health.ShouldProbe(At(300), 0));
  // 200 -> 400 (the cap), then 400 -> 400.
  EXPECT_FALSE(health.OnProbeResult(false, At(300)));
  EXPECT_FALSE(health.ShouldProbe(At(699), 0));
  EXPECT_TRUE(health.ShouldProbe(At(700), 0));
  EXPECT_FALSE(health.OnProbeResult(false, At(700)));
  EXPECT_TRUE(health.ShouldProbe(At(1100), 0))
      << "backoff must cap at max_backoff_ms, not keep doubling";
}

TEST(EndpointHealthTest, SuccessfulProbeReinstatesAndResetsBackoff) {
  EndpointHealth health(TestOptions());
  for (int i = 0; i < 3; ++i) health.RecordFailure(At(0));
  EXPECT_FALSE(health.OnProbeResult(false, At(100)));
  EXPECT_TRUE(health.OnProbeResult(true, At(300)));
  EXPECT_EQ(health.state(), State::kHealthy);
  EXPECT_TRUE(health.Selectable());
  // The next ejection starts again from the base backoff, not the
  // doubled one.
  for (int i = 0; i < 3; ++i) health.RecordFailure(At(1000));
  EXPECT_FALSE(health.ShouldProbe(At(1099), 0));
  EXPECT_TRUE(health.ShouldProbe(At(1100), 0));
}

TEST(EndpointHealthTest, RacingRequestSuccessAlsoReinstates) {
  EndpointHealth health(TestOptions());
  for (int i = 0; i < 3; ++i) health.RecordFailure(At(0));
  // A last-resort attempt (every peer worse) that succeeds beats the
  // probe thread to the reinstatement.
  EXPECT_TRUE(health.RecordSuccess(4.0));
  EXPECT_EQ(health.state(), State::kHealthy);
}

TEST(EndpointHealthTest, HealthyEndpointsGetLivenessCadenceProbes) {
  EndpointHealth health(TestOptions());
  // 0 disables liveness probing outright.
  EXPECT_FALSE(health.ShouldProbe(At(1000000), 0));
  // Never probed: due immediately once a cadence is configured.
  EXPECT_TRUE(health.ShouldProbe(At(1000), 1000));
  health.OnProbeResult(true, At(1000));
  EXPECT_FALSE(health.ShouldProbe(At(1500), 1000));
  EXPECT_TRUE(health.ShouldProbe(At(2000), 1000));
}

TEST(EndpointHealthTest, DrainingIsUnselectableAndNeverProbed) {
  EndpointHealth health(TestOptions());
  health.set_draining(true);
  EXPECT_TRUE(health.draining());
  EXPECT_EQ(health.state(), State::kHealthy) << "draining is not a verdict";
  EXPECT_FALSE(health.Selectable());
  EXPECT_FALSE(health.ShouldProbe(At(1000000), 100));
  // Even an *ejected* draining endpoint is left alone — /undrain first.
  for (int i = 0; i < 3; ++i) health.RecordFailure(At(0));
  EXPECT_FALSE(health.ShouldProbe(At(1000000), 0));
  health.set_draining(false);
  EXPECT_TRUE(health.ShouldProbe(At(1000000), 0));
}

TEST(EndpointHealthTest, EwmaSeedsOnFirstSampleThenSmooths) {
  EndpointHealth::Options options = TestOptions();
  options.ewma_alpha = 0.5;
  EndpointHealth health(options);
  health.RecordSuccess(10.0);
  EXPECT_DOUBLE_EQ(health.ewma_ms(), 10.0) << "first sample seeds, no blend";
  health.RecordSuccess(20.0);
  EXPECT_DOUBLE_EQ(health.ewma_ms(), 15.0);
  health.RecordSuccess(15.0);
  EXPECT_DOUBLE_EQ(health.ewma_ms(), 15.0);
}

TEST(EndpointHealthTest, StateNamesMatchTheStatsWireStrings) {
  EXPECT_EQ(std::string(EndpointStateName(State::kHealthy)), "healthy");
  EXPECT_EQ(std::string(EndpointStateName(State::kSuspect)), "suspect");
  EXPECT_EQ(std::string(EndpointStateName(State::kEjected)), "ejected");
}

TEST(EndpointHealthTest, SnapshotMatchesTheIndividualGetters) {
  EndpointHealth health(TestOptions());
  health.RecordSuccess(10.0);
  health.RecordFailure(At(0));
  health.set_draining(true);
  const EndpointHealth::Snapshot snap = health.snapshot();
  EXPECT_EQ(snap.state, State::kSuspect);
  EXPECT_TRUE(snap.draining);
  EXPECT_EQ(snap.consecutive_failures, 1);
  EXPECT_DOUBLE_EQ(snap.ewma_ms, 10.0);
}

// Regression test for the torn /stats row the annotation migration
// surfaced: RouterStatsResponse used to assemble each endpoint row from
// four separately-locked getters, so a reader interleaving with a
// RecordSuccess could observe state == healthy next to the *previous*
// failure streak. snapshot() takes one lock, so the invariant
// "healthy ⇒ zero consecutive failures" (RecordSuccess and OnProbeResult
// both reset the streak in the same critical section that flips the
// state) must hold in every observed snapshot.
TEST(EndpointHealthTest, SnapshotIsInternallyConsistentUnderConcurrency) {
  EndpointHealth::Options options = TestOptions();
  options.failure_threshold = 1000000;  // stay in healthy/suspect
  EndpointHealth health(options);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int tick = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      health.RecordFailure(At(tick++));
      health.RecordFailure(At(tick++));
      health.RecordSuccess(5.0);
    }
  });
  // Sample until both states were observed at least once (so the
  // assertions demonstrably ran against live transitions), bounded by a
  // generous deadline; a tight reader loop can monopolize the mutex, so
  // each miss yields to give the writer its window.
  int healthy_seen = 0;
  int suspect_seen = 0;
  const auto sample_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((healthy_seen == 0 || suspect_seen == 0) &&
         std::chrono::steady_clock::now() < sample_deadline) {
    const EndpointHealth::Snapshot snap = health.snapshot();
    if (snap.state == State::kHealthy) {
      ++healthy_seen;
      ASSERT_EQ(snap.consecutive_failures, 0)
          << "torn row: healthy state paired with a stale failure streak";
    } else if (snap.state == State::kSuspect) {
      ++suspect_seen;
      ASSERT_GE(snap.consecutive_failures, 1)
          << "torn row: suspect state paired with a reset failure streak";
    }
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(healthy_seen, 0);
  EXPECT_GT(suspect_seen, 0);
}

}  // namespace
}  // namespace xsum::service
