/// Unit tests of the service-layer building blocks: cache-key
/// fingerprinting (sensitivity to every knob that changes summary bits),
/// the sharded LRU byte budget, and snapshot registry version pinning.

#include "service/summary_cache.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "service/snapshot_registry.h"

namespace xsum::service {
namespace {

core::SummaryTask SmallTask() {
  core::SummaryTask task;
  task.scenario = core::Scenario::kUserCentric;
  task.anchors = {0};
  task.terminals = {0, 5, 9};
  graph::Path path;
  path.nodes = {0, 5};
  path.edges = {3};
  task.paths = {path};
  task.s_size = 2;
  return task;
}

std::pair<uint64_t, uint64_t> Fp(const core::SummaryTask& task,
                                 const core::SummarizerOptions& options) {
  uint64_t hi = 0, lo = 0;
  FingerprintTask(task, options, &hi, &lo);
  return {hi, lo};
}

TEST(FingerprintTest, DeterministicAndSensitive) {
  const core::SummaryTask task = SmallTask();
  core::SummarizerOptions options;
  const auto base = Fp(task, options);
  EXPECT_EQ(base, Fp(task, options));  // pure function

  // Every task field that changes the summary must change the key.
  {
    core::SummaryTask t = task;
    t.scenario = core::Scenario::kUserGroup;
    EXPECT_NE(base, Fp(t, options));
  }
  {
    core::SummaryTask t = task;
    t.terminals.push_back(11);
    EXPECT_NE(base, Fp(t, options));
  }
  {
    core::SummaryTask t = task;
    t.anchors = {1};
    EXPECT_NE(base, Fp(t, options));
  }
  {
    core::SummaryTask t = task;
    t.paths[0].nodes.back() = 6;
    EXPECT_NE(base, Fp(t, options));
  }
  {
    core::SummaryTask t = task;
    t.s_size = 3;
    EXPECT_NE(base, Fp(t, options));
  }
  // ... and every option knob.
  {
    core::SummarizerOptions o = options;
    o.method = core::SummaryMethod::kPcst;
    EXPECT_NE(base, Fp(task, o));
  }
  {
    core::SummarizerOptions o = options;
    o.lambda = 100.0;
    EXPECT_NE(base, Fp(task, o));
  }
  {
    core::SummarizerOptions o = options;
    o.cost_mode = core::CostMode::kUnit;
    EXPECT_NE(base, Fp(task, o));
  }
  {
    core::SummarizerOptions o = options;
    o.steiner.variant = core::SteinerOptions::Variant::kMehlhorn;
    EXPECT_NE(base, Fp(task, o));
  }
  {
    core::SummarizerOptions o = options;
    o.pcst.strong_prune = true;
    EXPECT_NE(base, Fp(task, o));
  }
}

std::shared_ptr<const core::Summary> DummySummary(size_t num_nodes) {
  auto summary = std::make_shared<core::Summary>();
  summary->terminals.assign(num_nodes, 1);
  return summary;
}

CacheKey Key(uint64_t version, uint64_t fp) {
  CacheKey key;
  key.snapshot_version = version;
  key.fp_hi = fp * 0x9E3779B97F4A7C15ULL;
  key.fp_lo = fp;
  return key;
}

TEST(SummaryCacheTest, HitMissAndCounters) {
  SummaryCache cache;
  EXPECT_EQ(cache.Lookup(Key(1, 7)), nullptr);
  cache.Insert(Key(1, 7), DummySummary(4));
  const auto hit = cache.Lookup(Key(1, 7));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->terminals.size(), 4u);
  // Same fingerprint under another snapshot version is a different entry.
  EXPECT_EQ(cache.Lookup(Key(2, 7)), nullptr);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 1.0 / 3.0);
}

TEST(SummaryCacheTest, FirstWriterWins) {
  SummaryCache cache;
  cache.Insert(Key(1, 7), DummySummary(4));
  cache.Insert(Key(1, 7), DummySummary(9));  // single-flight loser: ignored
  const auto hit = cache.Lookup(Key(1, 7));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->terminals.size(), 4u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(SummaryCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  SummaryCache::Options options;
  options.num_shards = 1;  // deterministic single LRU list
  // Room for exactly two dummy entries (96 covers per-entry bookkeeping:
  // key, summary/chain pointers, route key, byte count).
  options.max_bytes = 2 * (SummaryFootprintBytes(*DummySummary(8)) + 96);
  SummaryCache cache(options);

  cache.Insert(Key(1, 1), DummySummary(8));
  cache.Insert(Key(1, 2), DummySummary(8));
  ASSERT_NE(cache.Lookup(Key(1, 1)), nullptr);  // 1 becomes MRU, 2 is LRU
  cache.Insert(Key(1, 3), DummySummary(8));     // evicts 2

  EXPECT_NE(cache.Lookup(Key(1, 1)), nullptr);
  EXPECT_EQ(cache.Lookup(Key(1, 2)), nullptr);
  EXPECT_NE(cache.Lookup(Key(1, 3)), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, stats.max_bytes);

  // A value bigger than the whole budget is rejected, not force-fitted.
  cache.Insert(Key(1, 4), DummySummary(100000));
  EXPECT_EQ(cache.Lookup(Key(1, 4)), nullptr);
  EXPECT_GE(cache.stats().rejected, 1u);
}

TEST(SummaryCacheTest, EvictionDoesNotInvalidateHeldResults) {
  SummaryCache::Options options;
  options.num_shards = 1;
  // Room for exactly one dummy entry.
  options.max_bytes = SummaryFootprintBytes(*DummySummary(8)) + 128;
  SummaryCache cache(options);
  cache.Insert(Key(1, 1), DummySummary(8));
  const auto held = cache.Lookup(Key(1, 1));
  ASSERT_NE(held, nullptr);
  cache.Insert(Key(1, 2), DummySummary(8));  // evicts entry 1
  EXPECT_EQ(cache.Lookup(Key(1, 1)), nullptr);
  EXPECT_EQ(held->terminals.size(), 8u);  // still alive and untouched
}

TEST(SummaryCacheTest, ClearDropsEntriesKeepsCounters) {
  SummaryCache cache;
  cache.Insert(Key(1, 1), DummySummary(2));
  ASSERT_NE(cache.Lookup(Key(1, 1)), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup(Key(1, 1)), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // history survives
}

std::shared_ptr<const core::SummaryChain> DummyChain(size_t links) {
  auto chain = std::make_shared<core::SummaryChain>();
  chain->has_state = true;
  chain->links = links;
  return chain;
}

TEST(SummaryCacheTest, ChainOnlyPlaceholderIsALookupMissButAChainHit) {
  SummaryCache cache;
  cache.InsertChainOnly(Key(1, 7), DummyChain(3), /*route_key=*/0xBEEF);
  // A placeholder is not an answer: Lookup must miss so the service
  // computes the summary...
  EXPECT_EQ(cache.Lookup(Key(1, 7)), nullptr);
  // ...but the incremental assist serves the imported checkpoint.
  const auto chain = cache.LookupChain(Key(1, 7));
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->links, 3u);
}

TEST(SummaryCacheTest, InsertUpgradesPlaceholderInPlaceKeepingItsChain) {
  SummaryCache cache;
  cache.InsertChainOnly(Key(1, 7), DummyChain(3), 0xBEEF);
  // The computed summary arrives without a chain of its own (a plain
  // from-scratch compute): the imported checkpoint must survive.
  cache.Insert(Key(1, 7), DummySummary(4));
  const auto hit = cache.Lookup(Key(1, 7));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->terminals.size(), 4u);
  const auto chain = cache.LookupChain(Key(1, 7));
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->links, 3u);
}

TEST(SummaryCacheTest, ResidentChainWinsOverAChainOnlyImport) {
  SummaryCache cache;
  cache.Insert(Key(1, 7), DummySummary(4), DummyChain(9), 0xA);
  // A drained peer's import for a key we already have state for loses.
  cache.InsertChainOnly(Key(1, 7), DummyChain(1), 0xB);
  const auto chain = cache.LookupChain(Key(1, 7));
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->links, 9u);
  ASSERT_NE(cache.Lookup(Key(1, 7)), nullptr) << "summary not clobbered";
}

TEST(SummaryCacheTest, ExportChainsReturnsOnlyRouteTaggedChainEntries) {
  SummaryCache cache;
  cache.Insert(Key(1, 1), DummySummary(4));                   // no chain
  cache.Insert(Key(1, 2), DummySummary(4), DummyChain(1));    // no route key
  cache.Insert(Key(1, 3), DummySummary(4), DummyChain(2), 0xCAFE);
  cache.InsertChainOnly(Key(1, 4), DummyChain(3), 0xF00D);
  const auto exports = cache.ExportChains();
  ASSERT_EQ(exports.size(), 2u);
  for (const auto& entry : exports) {
    ASSERT_NE(entry.chain, nullptr);
    ASSERT_NE(entry.route_key, 0u);
    if (entry.key == Key(1, 3)) {
      EXPECT_EQ(entry.route_key, 0xCAFEu);
      EXPECT_EQ(entry.chain->links, 2u);
    } else {
      EXPECT_EQ(entry.key, Key(1, 4));
      EXPECT_EQ(entry.route_key, 0xF00Du);
      EXPECT_EQ(entry.chain->links, 3u);
    }
  }
}

TEST(SnapshotRegistryTest, VersionsAreMonotonicAndPinned) {
  GraphSnapshotRegistry registry;
  EXPECT_EQ(registry.current_version(), 0u);
  EXPECT_FALSE(registry.Current().valid());

  data::Dataset dataset =
      data::MakeSyntheticDataset(data::Ml1mConfig(0.02, 11));
  data::RecGraph graph_a =
      std::move(data::BuildRecGraph(dataset)).ValueOrDie();
  const size_t nodes_a = graph_a.graph().num_nodes();

  EXPECT_EQ(registry.Publish(std::move(graph_a)), 1u);
  const GraphSnapshot pin = registry.Current();
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.version, 1u);

  data::Dataset dataset_b =
      data::MakeSyntheticDataset(data::Ml1mConfig(0.03, 12));
  data::RecGraph graph_b =
      std::move(data::BuildRecGraph(dataset_b)).ValueOrDie();
  EXPECT_EQ(registry.Publish(std::move(graph_b)), 2u);
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_EQ(registry.num_published(), 2u);

  // The old pin still references the version-1 graph, untouched by the
  // swap.
  EXPECT_EQ(pin.graph->graph().num_nodes(), nodes_a);
  EXPECT_NE(registry.Current().graph->graph().num_nodes(), nodes_a);
}

}  // namespace
}  // namespace xsum::service
