/// Tests of the service's opt-in micro-batching window: with
/// `batch_window_us` set, concurrent cache-miss requests that share a
/// snapshot and options must coalesce into one multi-query kernel wave —
/// and every response must stay byte-identical to the unbatched path,
/// including windows that expire empty (occupancy 1) and option mixes the
/// wave kernel cannot serve.

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/summarizer.h"
#include "eval/experiment.h"
#include "eval/runner.h"
#include "service/service.h"
#include "service/snapshot_registry.h"

namespace xsum::service {
namespace {

eval::ExperimentConfig TinyConfig() {
  eval::ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 4;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.user_group_size = 4;
  config.item_group_size = 3;
  config.ks = {1, 3, 5};
  return config;
}

void ExpectIdentical(const core::Summary& a, const core::Summary& b) {
  EXPECT_EQ(a.subgraph.nodes(), b.subgraph.nodes());
  EXPECT_EQ(a.subgraph.edges(), b.subgraph.edges());
  EXPECT_EQ(a.unreached_terminals, b.unreached_terminals);
  EXPECT_EQ(a.terminals, b.terminals);
  EXPECT_EQ(a.anchors, b.anchors);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.scenario, b.scenario);
}

struct Harness {
  std::unique_ptr<eval::ExperimentRunner> runner;
  eval::BaselineData data;
  GraphSnapshotRegistry registry;

  Harness() {
    runner = std::make_unique<eval::ExperimentRunner>(TinyConfig());
    EXPECT_TRUE(runner->Init().ok());
    auto baseline = runner->ComputeBaseline(rec::RecommenderKind::kPgpr);
    EXPECT_TRUE(baseline.ok()) << baseline.status();
    data = std::move(*baseline);
    registry.Publish(GraphSnapshotRegistry::Alias(runner->rec_graph()));
  }

  /// Distinct cache keys sharing one option set: user × k combinations.
  std::vector<core::SummaryTask> DistinctTasks(size_t count) const {
    std::vector<core::SummaryTask> tasks;
    const auto& users = data.users;
    for (size_t i = 0; i < count; ++i) {
      tasks.push_back(core::MakeUserCentricTask(
          runner->rec_graph(), users[i % users.size()],
          1 + static_cast<int>(i / users.size())));
    }
    return tasks;
  }
};

core::SummarizerOptions KmbOptions() {
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;
  st.steiner.variant = core::SteinerOptions::Variant::kKmb;
  return st;
}

TEST(BatchWindowTest, SequentialRequestsStayByteIdenticalWithWindowOn) {
  // Sequential traffic means every window expires empty (occupancy 1) and
  // must fall through to the plain compute path: responses identical to a
  // no-window service and to fresh engine calls.
  Harness h;
  ServiceOptions plain_options;
  plain_options.num_workers = 2;
  SummaryService plain(&h.registry, plain_options);
  ServiceOptions batched_options;
  batched_options.num_workers = 2;
  batched_options.batch_window_us = 500;
  batched_options.batch_max = 4;
  SummaryService batched(&h.registry, batched_options);

  const auto options = KmbOptions();
  for (const core::SummaryTask& task : h.DistinctTasks(8)) {
    const auto a = plain.Summarize(task, options);
    const auto b = batched.Summarize(task, options);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    ExpectIdentical(**a, **b);
    const auto fresh = core::Summarize(h.runner->rec_graph(), task, options);
    ASSERT_TRUE(fresh.ok());
    ExpectIdentical(*fresh, **b);
  }
  // No concurrent misses -> no waves, but every request went through the
  // window machinery without dropping a response.
  const ServiceStats stats = batched.Stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.computed, 8u);
  EXPECT_EQ(stats.batch_waves, 0u);
  EXPECT_EQ(stats.batch_requests, 0u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(BatchWindowTest, ConcurrentDistinctMissesCoalesceIntoWaves) {
  Harness h;
  constexpr size_t kThreads = 6;
  ServiceOptions options;
  options.num_workers = 2;
  options.batch_window_us = 200000;  // generous: batch_max closes it early
  options.batch_max = kThreads;
  SummaryService service(&h.registry, options);

  const auto kmb = KmbOptions();
  const std::vector<core::SummaryTask> tasks = h.DistinctTasks(kThreads);
  std::vector<std::shared_ptr<const core::Summary>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto result = service.Summarize(tasks[t], kmb);
      ASSERT_TRUE(result.ok()) << result.status();
      results[t] = *result;
    });
  }
  for (std::thread& t : threads) t.join();

  // Every response is byte-identical to a fresh engine run of its own
  // task, no matter which wave (or solo fallback) served it.
  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    const auto fresh =
        core::Summarize(h.runner->rec_graph(), tasks[t], kmb);
    ASSERT_TRUE(fresh.ok());
    ExpectIdentical(*fresh, *results[t]);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, kThreads);
  EXPECT_EQ(stats.computed, kThreads);  // distinct tasks: no coalescing
  EXPECT_EQ(stats.errors, 0u);
  // All threads raced the same window; at least one wave must have formed
  // and every wave request is accounted.
  EXPECT_GE(stats.batch_waves, 1u);
  EXPECT_GE(stats.batch_requests, 2u);
  EXPECT_LE(stats.batch_requests, kThreads);

  // Repeats are pure cache hits: the wave inserted every member's result.
  for (size_t t = 0; t < kThreads; ++t) {
    const auto repeat = service.Summarize(tasks[t], kmb);
    ASSERT_TRUE(repeat.ok());
    EXPECT_EQ(repeat->get(), results[t].get());
  }
}

TEST(BatchWindowTest, IneligibleMethodBypassesTheWindow) {
  // PCST requests must never enter the wave path even with the window on.
  Harness h;
  ServiceOptions options;
  options.num_workers = 2;
  options.batch_window_us = 1000;
  SummaryService service(&h.registry, options);
  core::SummarizerOptions pcst;
  pcst.method = core::SummaryMethod::kPcst;
  for (const core::SummaryTask& task : h.DistinctTasks(4)) {
    const auto result = service.Summarize(task, pcst);
    ASSERT_TRUE(result.ok()) << result.status();
    const auto fresh = core::Summarize(h.runner->rec_graph(), task, pcst);
    ASSERT_TRUE(fresh.ok());
    ExpectIdentical(*fresh, **result);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.batch_waves, 0u);
  EXPECT_EQ(stats.batch_requests, 0u);
  EXPECT_EQ(stats.computed, 4u);
}

TEST(BatchWindowTest, BatchMaxTwoServesManyConcurrentMissesCorrectly) {
  // A tiny batch_max under heavy concurrency: windows close early at two
  // members, later misses open fresh windows. Correctness must not depend
  // on how the requests landed in waves.
  Harness h;
  constexpr size_t kThreads = 8;
  ServiceOptions options;
  options.num_workers = 2;
  options.batch_window_us = 20000;
  options.batch_max = 2;
  SummaryService service(&h.registry, options);

  const auto kmb = KmbOptions();
  const std::vector<core::SummaryTask> tasks = h.DistinctTasks(kThreads);
  std::vector<std::shared_ptr<const core::Summary>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto result = service.Summarize(tasks[t], kmb);
      ASSERT_TRUE(result.ok()) << result.status();
      results[t] = *result;
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    const auto fresh =
        core::Summarize(h.runner->rec_graph(), tasks[t], kmb);
    ASSERT_TRUE(fresh.ok());
    ExpectIdentical(*fresh, *results[t]);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, kThreads);
  EXPECT_EQ(stats.computed, kThreads);
  EXPECT_EQ(stats.errors, 0u);
  // batch_max bounds every wave's size.
  if (stats.batch_waves > 0) {
    EXPECT_LE(stats.batch_requests, stats.batch_waves * 2);
  }
}

}  // namespace
}  // namespace xsum::service
