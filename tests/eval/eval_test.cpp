/// Integration tests of the evaluation harness: config-from-env, baseline
/// computation, panel evaluation, and the figure driver.

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/figure.h"
#include "eval/runner.h"

namespace xsum::eval {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 4;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.user_group_size = 4;
  config.item_group_size = 3;
  config.ks = {1, 3, 5};
  return config;
}

const ExperimentRunner& TinyRunner() {
  static ExperimentRunner* runner = [] {
    auto* r = new ExperimentRunner(TinyConfig());
    EXPECT_TRUE(r->Init().ok());
    return r;
  }();
  return *runner;
}

TEST(ExperimentConfigTest, FromEnvOverrides) {
  setenv("XSUM_SCALE", "0.5", 1);
  setenv("XSUM_USERS", "44", 1);
  setenv("XSUM_ITEMS", "13", 1);
  setenv("XSUM_SEED", "77", 1);
  const auto config = ExperimentConfig::FromEnv();
  EXPECT_DOUBLE_EQ(config.scale, 0.5);
  EXPECT_EQ(config.users_per_gender, 22u);
  EXPECT_EQ(config.items_popular, 6u);
  EXPECT_EQ(config.items_unpopular, 7u);  // absorbs the odd remainder
  EXPECT_EQ(config.seed, 77u);
  unsetenv("XSUM_SCALE");
  unsetenv("XSUM_USERS");
  unsetenv("XSUM_ITEMS");
  unsetenv("XSUM_SEED");
}

TEST(ExperimentConfigTest, DescribeMentionsKnobs) {
  const std::string desc = TinyConfig().Describe();
  EXPECT_NE(desc.find("ML1M"), std::string::npos);
  EXPECT_NE(desc.find("XSUM_SCALE"), std::string::npos);
}

TEST(StandardMethodsTest, PaperLineup) {
  const auto methods = StandardMethods("PGPR");
  ASSERT_EQ(methods.size(), 5u);
  EXPECT_EQ(methods[0].label, "PGPR");
  EXPECT_EQ(methods[0].options.method, core::SummaryMethod::kBaseline);
  EXPECT_EQ(methods[1].label, "ST l=0.01");
  EXPECT_EQ(methods[2].label, "ST l=1");
  EXPECT_EQ(methods[3].label, "ST l=100");
  EXPECT_EQ(methods[4].label, "PCST");
  EXPECT_EQ(methods[4].options.method, core::SummaryMethod::kPcst);
}

TEST(RunnerTest, InitBuildsGraphAndSample) {
  const auto& runner = TinyRunner();
  EXPECT_GT(runner.rec_graph().graph().num_nodes(), 0u);
  EXPECT_EQ(runner.sampled_users().size(), 8u);
}

TEST(RunnerTest, UninitializedRunnerRefuses) {
  ExperimentRunner runner(TinyConfig());
  EXPECT_TRUE(
      runner.ComputeBaseline(rec::RecommenderKind::kPgpr).status()
          .IsFailedPrecondition());
}

TEST(RunnerTest, ComputeBaselineProducesAllUnitShapes) {
  const auto data = TinyRunner().ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->label, "PGPR");
  EXPECT_GT(data->users.size(), 0u);
  EXPECT_GT(data->items.size(), 0u);
  EXPECT_EQ(data->items.size(), data->item_is_popular.size());
  EXPECT_GT(data->user_groups.size(), 0u);
  EXPECT_GT(data->item_groups.size(), 0u);
  for (const auto& ur : data->users) {
    EXPECT_LE(ur.recs.size(), 10u);
    EXPECT_FALSE(ur.recs.empty());
  }
  // Audiences are ranked and non-empty.
  for (const auto& ia : data->items) {
    EXPECT_FALSE(ia.audience.empty());
  }
}

TEST(RunnerTest, PanelShapesMatchSpec) {
  const auto data = TinyRunner().ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  PanelSpec spec;
  spec.scenario = core::Scenario::kUserCentric;
  spec.metric = MetricKind::kComprehensibility;
  spec.ks = {1, 3, 5};
  spec.methods = StandardMethods(data->label);
  const auto series = TinyRunner().RunPanel(*data, spec);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 5u);
  for (const auto& row : *series) {
    EXPECT_EQ(row.values.size(), 3u);
    for (double v : row.values) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);  // comprehensibility is 1/|E|
    }
  }
}

TEST(RunnerTest, ComprehensibilityDecreasesWithK) {
  const auto data = TinyRunner().ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  PanelSpec spec;
  spec.scenario = core::Scenario::kUserCentric;
  spec.metric = MetricKind::kComprehensibility;
  spec.ks = {1, 3, 5};
  spec.methods = {StandardMethods(data->label)[0]};  // baseline row
  const auto series = TinyRunner().RunPanel(*data, spec);
  ASSERT_TRUE(series.ok());
  const auto& v = (*series)[0].values;
  EXPECT_GE(v[0], v[1]);
  EXPECT_GE(v[1], v[2]);
}

TEST(RunnerTest, ConsistencyInUnitRange) {
  const auto data = TinyRunner().ComputeBaseline(rec::RecommenderKind::kCafe);
  ASSERT_TRUE(data.ok());
  PanelSpec spec;
  spec.scenario = core::Scenario::kUserCentric;
  spec.metric = MetricKind::kConsistency;
  spec.ks = {1, 3, 5};
  spec.methods = StandardMethods(data->label);
  const auto series = TinyRunner().RunPanel(*data, spec);
  ASSERT_TRUE(series.ok());
  for (const auto& row : *series) {
    for (double v : row.values) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
    // k=1 consistency is 1 by definition.
    EXPECT_DOUBLE_EQ(row.values[0], 1.0);
  }
}

TEST(RunnerTest, GroupScenariosRun) {
  const auto data = TinyRunner().ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  for (const auto scenario :
       {core::Scenario::kUserGroup, core::Scenario::kItemGroup}) {
    PanelSpec spec;
    spec.scenario = scenario;
    spec.metric = MetricKind::kPrivacy;
    spec.ks = {1, 5};
    spec.methods = StandardMethods(data->label);
    const auto series = TinyRunner().RunPanel(*data, spec);
    ASSERT_TRUE(series.ok());
    EXPECT_EQ((*series)[0].values.size(), 2u);
  }
}

TEST(RunnerTest, ItemPopularityFilterPartitionsUnits) {
  const auto data = TinyRunner().ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  PanelSpec spec;
  spec.scenario = core::Scenario::kItemCentric;
  spec.metric = MetricKind::kComprehensibility;
  spec.ks = {5};
  spec.methods = {StandardMethods(data->label)[0]};
  spec.item_popularity_filter = 1;
  EXPECT_TRUE(TinyRunner().RunPanel(*data, spec).ok());
  spec.item_popularity_filter = 0;
  EXPECT_TRUE(TinyRunner().RunPanel(*data, spec).ok());
}

TEST(RunnerTest, PerformanceMetricsNonNegative) {
  const auto data = TinyRunner().ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(data.ok());
  for (const auto metric : {MetricKind::kTimeMs, MetricKind::kMemoryMb}) {
    PanelSpec spec;
    spec.scenario = core::Scenario::kUserCentric;
    spec.metric = metric;
    spec.ks = {2};
    spec.methods = StandardMethods(data->label);
    const auto series = TinyRunner().RunPanel(*data, spec);
    ASSERT_TRUE(series.ok());
    for (const auto& row : *series) EXPECT_GE(row.values[0], 0.0);
  }
}

TEST(MetricKindTest, Names) {
  EXPECT_STREQ(MetricKindToString(MetricKind::kComprehensibility),
               "comprehensibility");
  EXPECT_STREQ(MetricKindToString(MetricKind::kTimeMs), "time (ms)");
}

TEST(FigureTest, PrintPanelFormats) {
  std::ostringstream oss;
  SeriesResult row;
  row.label = "ST l=1";
  row.values = {0.5, 0.25};
  PrintPanel(oss, "(a) test panel", {1, 2}, {row});
  const std::string out = oss.str();
  EXPECT_NE(out.find("(a) test panel"), std::string::npos);
  EXPECT_NE(out.find("k=1"), std::string::npos);
  EXPECT_NE(out.find("ST l=1"), std::string::npos);
  EXPECT_NE(out.find("0.2500"), std::string::npos);
}

TEST(FigureTest, RunQualityFigureEndToEnd) {
  std::ostringstream oss;
  const auto status = RunQualityFigure(
      TinyRunner(), {rec::RecommenderKind::kPgpr},
      {core::Scenario::kUserCentric}, MetricKind::kComprehensibility,
      "Figure X", oss);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::string out = oss.str();
  EXPECT_NE(out.find("Figure X"), std::string::npos);
  EXPECT_NE(out.find("user-centric"), std::string::npos);
  EXPECT_NE(out.find("PCST"), std::string::npos);
}

TEST(DatasetKindTest, Names) {
  EXPECT_STREQ(DatasetKindToString(DatasetKind::kMl1m), "ML1M");
  EXPECT_STREQ(DatasetKindToString(DatasetKind::kLfm1m), "LFM1M");
}

}  // namespace
}  // namespace xsum::eval
