/// Tests for the fairness analysis (§VII future work) and CSV export.

#include <cstdlib>
#include <filesystem>
#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/csv_export.h"
#include "eval/fairness.h"
#include "rec/recommender.h"
#include "rec/sampler.h"

namespace xsum::eval {
namespace {

struct FairnessFixture {
  FairnessFixture() {
    dataset = data::MakeSyntheticDataset(data::Ml1mConfig(0.03, 51));
    rg = std::move(data::BuildRecGraph(dataset)).ValueOrDie();
    const auto model =
        rec::MakeRecommender(rec::RecommenderKind::kPgpr, rg, 51, {});
    const auto users = rec::SampleUsersByGender(dataset, 8, 52);
    FairnessGroup male{"male", {}};
    FairnessGroup female{"female", {}};
    for (uint32_t user : users) {
      core::UserRecs ur;
      ur.user = user;
      ur.recs = model->Recommend(user, 10);
      if (ur.recs.empty()) continue;
      (dataset.user_gender[user] == data::Gender::kMale ? male : female)
          .units.push_back(std::move(ur));
    }
    groups = {male, female};
  }

  data::Dataset dataset;
  data::RecGraph rg;
  std::vector<FairnessGroup> groups;
};

FairnessFixture& Fixture() {
  static FairnessFixture* fixture = new FairnessFixture();
  return *fixture;
}

TEST(FairnessTest, ReportsPerGroupMeansAndGaps) {
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;
  const auto report = AnalyzeUserGroupFairness(
      Fixture().rg, Fixture().groups, st, /*k=*/10,
      {MetricKind::kComprehensibility, MetricKind::kPrivacy});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rows.size(), 2u);
  EXPECT_EQ(report->group_labels,
            (std::vector<std::string>{"male", "female"}));
  for (const FairnessRow& row : report->rows) {
    ASSERT_EQ(row.group_means.size(), 2u);
    for (double mean : row.group_means) {
      EXPECT_GE(mean, 0.0);
      EXPECT_LE(mean, 1.0);
    }
    EXPECT_GE(row.gap, 0.0);
    EXPECT_GE(row.relative_gap, 0.0);
    EXPECT_NEAR(row.gap,
                std::fabs(row.group_means[0] - row.group_means[1]), 1e-12);
  }
}

TEST(FairnessTest, SummariesAreMoreEvenThanTheyAreLopsided) {
  // Sanity: relative gaps of ST summaries across gender groups stay well
  // below 100% (the paper's fairness claim in qualitative form).
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;
  const auto report = AnalyzeUserGroupFairness(
      Fixture().rg, Fixture().groups, st, 10,
      {MetricKind::kComprehensibility});
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->rows[0].relative_gap, 0.6);
}

TEST(FairnessTest, RejectsDegenerateInputs) {
  core::SummarizerOptions st;
  EXPECT_TRUE(AnalyzeUserGroupFairness(Fixture().rg, {}, st, 10,
                                       {MetricKind::kPrivacy})
                  .status()
                  .IsInvalidArgument());
  std::vector<FairnessGroup> with_empty = Fixture().groups;
  with_empty.push_back(FairnessGroup{"empty", {}});
  EXPECT_TRUE(AnalyzeUserGroupFairness(Fixture().rg, with_empty, st, 10,
                                       {MetricKind::kPrivacy})
                  .status()
                  .IsInvalidArgument());
}

TEST(FairnessTest, RejectsUnsupportedMetric) {
  core::SummarizerOptions st;
  EXPECT_TRUE(AnalyzeUserGroupFairness(Fixture().rg, Fixture().groups, st, 10,
                                       {MetricKind::kTimeMs})
                  .status()
                  .IsInvalidArgument());
}

TEST(FairnessTest, ToStringRendersTable) {
  core::SummarizerOptions st;
  const auto report = AnalyzeUserGroupFairness(
      Fixture().rg, Fixture().groups, st, 5, {MetricKind::kDiversity});
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString("fairness");
  EXPECT_NE(text.find("fairness"), std::string::npos);
  EXPECT_NE(text.find("male"), std::string::npos);
  EXPECT_NE(text.find("diversity"), std::string::npos);
  EXPECT_NE(text.find("relative gap"), std::string::npos);
}

// --- CSV export ---------------------------------------------------------------

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("xsum_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    unsetenv("XSUM_CSV_DIR");
  }
  std::filesystem::path dir_;
};

TEST_F(CsvTest, WritePanelCsvRoundTrip) {
  SeriesResult row;
  row.label = "ST l=1";
  row.values = {0.5, 0.25};
  const std::string path = (dir_ / "panel.csv").string();
  ASSERT_TRUE(WritePanelCsv(path, {1, 2}, {row}).ok());
  std::ifstream in(path);
  std::string header, line;
  std::getline(in, header);
  std::getline(in, line);
  EXPECT_EQ(header, "method,k=1,k=2");
  EXPECT_EQ(line, "ST l=1,0.500000,0.250000");
}

TEST_F(CsvTest, WriteFailsOnBadPath) {
  EXPECT_TRUE(WritePanelCsv((dir_ / "no/such/dir.csv").string(), {1}, {})
                  .IsIOError());
}

TEST_F(CsvTest, MaybeExportNoopWithoutEnv) {
  EXPECT_EQ(MaybeExportPanelCsv("slug", {1}, {}), "");
}

TEST_F(CsvTest, MaybeExportWritesSluggedFile) {
  setenv("XSUM_CSV_DIR", dir_.c_str(), 1);
  SeriesResult row;
  row.label = "PCST";
  row.values = {1.0};
  const std::string path =
      MaybeExportPanelCsv("Figure 2 (a) User-centric!", {1}, {row});
  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_NE(path.find("figure_2__a__user_centric_"), std::string::npos);
}

}  // namespace
}  // namespace xsum::eval
