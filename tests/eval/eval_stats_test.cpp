/// Tests of the mergeable evaluation sufficient statistics
/// (eval/eval_stats.h): the ExactSum accumulator against IEEE hardware
/// arithmetic, the shard-partition bit-identity property across shard
/// counts and seeds, lossless JSON round-trips, and strict rejection of
/// malformed scrape documents. The same properties over *real* served
/// summaries and real HTTP scrapes live in
/// tests/service/evalstats_endpoint_test.cpp.

#include "eval/eval_stats.h"

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "net/json.h"
#include "util/rng.h"

namespace xsum::eval {
namespace {

/// Exact bit comparison — distinguishes ±0 and denies any ulp slack.
bool BitEqual(double a, double b) {
  uint64_t ab = 0;
  uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

/// A random finite double with a wide exponent spread and random sign —
/// far nastier than any real metric value, which is the point.
double RandomDouble(Rng& rng) {
  const double mantissa = rng.UniformDouble(1.0, 2.0);
  const int exponent = static_cast<int>(rng.UniformInt(-320, 320));
  const double magnitude = std::ldexp(mantissa, exponent);
  return rng.Bernoulli(0.5) ? -magnitude : magnitude;
}

TEST(ExactSumTest, PairSumsMatchHardwareExactly) {
  // IEEE a+b is the exact sum rounded once; so is ExactSum{a,b}.ToDouble.
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const double a = RandomDouble(rng);
    const double b = RandomDouble(rng);
    if (!std::isfinite(a + b)) continue;
    ExactSum sum;
    ASSERT_TRUE(sum.Add(a));
    ASSERT_TRUE(sum.Add(b));
    EXPECT_TRUE(BitEqual(sum.ToDouble(), a + b))
        << "a=" << a << " b=" << b << " got " << sum.ToDouble();
  }
}

TEST(ExactSumTest, SingleValuesRoundTripExactly) {
  const std::vector<double> extremes = {
      0.0,
      1.0,
      -1.0,
      DBL_MIN,
      -DBL_MIN,
      DBL_MAX,
      -DBL_MAX,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::ldexp(1.0, -1000),
      0.1,
      1.0 / 3.0,
  };
  for (const double value : extremes) {
    ExactSum sum;
    ASSERT_TRUE(sum.Add(value));
    EXPECT_TRUE(BitEqual(sum.ToDouble(), value)) << value;
  }
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const double value = RandomDouble(rng);
    ExactSum sum;
    ASSERT_TRUE(sum.Add(value));
    EXPECT_TRUE(BitEqual(sum.ToDouble(), value)) << value;
  }
}

TEST(ExactSumTest, RejectsNonFiniteAndLeavesStateUntouched) {
  ExactSum sum;
  EXPECT_FALSE(sum.Add(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(sum.Add(-std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(sum.Add(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(sum.IsZero());
  ASSERT_TRUE(sum.Add(3.5));
  ExactSum before = sum;
  EXPECT_FALSE(sum.Add(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(sum, before);
}

TEST(ExactSumTest, CancellationIsExactAcrossMagnitudes) {
  // 1e308 + 1e-308 - 1e308 - 1e-308 is garbage in floating point; the
  // fixed-point accumulator returns exactly zero.
  ExactSum sum;
  ASSERT_TRUE(sum.Add(1e308));
  ASSERT_TRUE(sum.Add(1e-308));
  ASSERT_TRUE(sum.Add(-1e308));
  ASSERT_TRUE(sum.Add(-1e-308));
  EXPECT_TRUE(BitEqual(sum.ToDouble(), 0.0));
  // Tiny residue survives the huge cancellation exactly.
  ExactSum residue;
  ASSERT_TRUE(residue.Add(1e308));
  ASSERT_TRUE(residue.Add(2.5));
  ASSERT_TRUE(residue.Add(-1e308));
  EXPECT_TRUE(BitEqual(residue.ToDouble(), 2.5));
}

TEST(ExactSumTest, ToDoubleRoundsHalfToEven) {
  // 1 + 2^-53 is exactly halfway between 1 and 1+2^-52: ties-to-even
  // keeps the even mantissa (1.0).
  ExactSum down;
  ASSERT_TRUE(down.Add(1.0));
  ASSERT_TRUE(down.Add(std::ldexp(1.0, -53)));
  EXPECT_TRUE(BitEqual(down.ToDouble(), 1.0));
  // (1+2^-52) + 2^-53 is halfway with an odd mantissa: rounds up.
  ExactSum up;
  ASSERT_TRUE(up.Add(1.0 + std::ldexp(1.0, -52)));
  ASSERT_TRUE(up.Add(std::ldexp(1.0, -53)));
  EXPECT_TRUE(BitEqual(up.ToDouble(), 1.0 + std::ldexp(1.0, -51)));
}

TEST(ExactSumTest, MergeIsPartitionAndOrderIndependent) {
  // The load-bearing fleet property: any partition of the stream into
  // shards, each accumulating locally, merged in any order, equals the
  // single-stream accumulator bit for bit.
  Rng value_rng(23);
  std::vector<double> values;
  values.reserve(300);
  for (int i = 0; i < 300; ++i) values.push_back(RandomDouble(value_rng));

  ExactSum reference;
  for (const double value : values) ASSERT_TRUE(reference.Add(value));

  for (const uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    for (size_t shards = 1; shards <= 8; ++shards) {
      Rng rng(seed * 1000 + shards);
      std::vector<ExactSum> partials(shards);
      for (const double value : values) {
        ASSERT_TRUE(partials[rng.Uniform(shards)].Add(value));
      }
      // Merge in a shuffled order: associativity and commutativity are
      // both part of the claim.
      std::vector<size_t> order(shards);
      std::iota(order.begin(), order.end(), 0);
      rng.Shuffle(&order);
      ExactSum merged;
      for (const size_t p : order) merged += partials[p];
      EXPECT_EQ(merged, reference) << "seed " << seed << " shards " << shards;
      EXPECT_TRUE(BitEqual(merged.ToDouble(), reference.ToDouble()));
    }
  }
}

TEST(ExactSumTest, JsonRoundTripIsLossless) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    ExactSum sum;
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(sum.Add(RandomDouble(rng)));
    // Through the actual wire form (Dump + reparse), not just the tree.
    const auto json = net::ParseJson(sum.ToJson().Dump());
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    const auto parsed = ExactSumFromJson(*json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, sum);
  }
  // Zero serializes to empty limb arrays and reloads as zero.
  const auto zero = ExactSumFromJson(ExactSum().ToJson());
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->IsZero());
}

TEST(ExactSumTest, FromJsonRejectsMalformedDocuments) {
  const std::vector<std::string> bad = {
      R"([1,2])",                     // not an object
      R"({"pos":[0]})",               // missing neg
      R"({"neg":[0]})",               // missing pos
      R"({"pos":0,"neg":[]})",        // pos not an array
      R"({"pos":[-1],"neg":[]})",     // negative limb
      R"({"pos":[4294967296],"neg":[]})",  // limb >= 2^32
      R"({"pos":["1"],"neg":[]})",    // ill-typed limb
  };
  for (const std::string& document : bad) {
    const auto json = net::ParseJson(document);
    ASSERT_TRUE(json.ok()) << document;
    EXPECT_FALSE(ExactSumFromJson(*json).ok()) << document;
  }
  // Too many limbs.
  net::JsonValue limbs = net::JsonValue::Array();
  for (int i = 0; i < ExactSum::kLimbs + 1; ++i) {
    limbs.Append(net::JsonValue(int64_t{1}));
  }
  net::JsonValue over = net::JsonValue::Object();
  over.Set("pos", limbs);
  over.Set("neg", net::JsonValue::Array());
  EXPECT_FALSE(ExactSumFromJson(over).ok());
}

TEST(MetricStatsTest, TracksCountsAndRejectsNonFiniteSamples) {
  MetricStats stats;
  stats.Add(2.0);
  stats.Add(-0.5);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.non_finite, 0u);
  EXPECT_TRUE(BitEqual(stats.sum.ToDouble(), 1.5));
  EXPECT_TRUE(BitEqual(stats.sum_squares.ToDouble(), 4.25));
  EXPECT_TRUE(BitEqual(stats.Mean(), 0.75));

  stats.Add(std::numeric_limits<double>::quiet_NaN());
  // Finite value whose square overflows: rejected whole, not half-added.
  stats.Add(1e200);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.non_finite, 2u);
  EXPECT_TRUE(BitEqual(stats.sum.ToDouble(), 1.5));

  EXPECT_TRUE(BitEqual(MetricStats().Mean(), 0.0));
}

TEST(MetricStatsTest, JsonRoundTripAndStrictness) {
  MetricStats stats;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) stats.Add(RandomDouble(rng));
  stats.Add(std::numeric_limits<double>::infinity());
  const auto json = net::ParseJson(stats.ToJson().Dump());
  ASSERT_TRUE(json.ok());
  const auto parsed = MetricStatsFromJson(*json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, stats);

  const std::vector<std::string> bad = {
      R"(7)",
      R"({"non_finite":0,"sum":{"pos":[],"neg":[]},"sum_sq":{"pos":[],"neg":[]}})",
      R"({"count":-1,"non_finite":0,"sum":{"pos":[],"neg":[]},"sum_sq":{"pos":[],"neg":[]}})",
      R"({"count":1,"non_finite":0,"sum":{"pos":[]},"sum_sq":{"pos":[],"neg":[]}})",
      R"({"count":1,"non_finite":0,"sum":{"pos":[],"neg":[]}})",
  };
  for (const std::string& document : bad) {
    const auto doc = net::ParseJson(document);
    ASSERT_TRUE(doc.ok()) << document;
    EXPECT_FALSE(MetricStatsFromJson(*doc).ok()) << document;
  }
}

/// One synthetic "served summary": random metric values plus the group
/// labels the live accumulator would tag.
struct SyntheticSample {
  SummaryMetricValues values;
  std::string method;
  std::string scenario;
};

std::vector<SyntheticSample> SyntheticStream(size_t n, uint64_t seed) {
  const std::vector<std::string> methods = {"method:ST", "method:PCST",
                                            "method:baseline"};
  const std::vector<std::string> scenarios = {"scenario:user-centric",
                                              "scenario:item-centric"};
  Rng rng(seed);
  std::vector<SyntheticSample> stream;
  stream.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SyntheticSample sample;
    sample.values.comprehensibility = RandomDouble(rng);
    sample.values.actionability = RandomDouble(rng);
    sample.values.diversity = RandomDouble(rng);
    sample.values.redundancy = RandomDouble(rng);
    sample.values.relevance = RandomDouble(rng);
    sample.values.privacy = RandomDouble(rng);
    sample.method = methods[rng.Uniform(methods.size())];
    sample.scenario = scenarios[rng.Uniform(scenarios.size())];
    stream.push_back(sample);
  }
  return stream;
}

TEST(EvalStatsSnapshotTest, ShardSplitMergeIsBitIdenticalAcrossSeeds) {
  // The acceptance property at snapshot level: every metric and every
  // group, any shard count 1..8, any random partition — merged equals
  // the single-process accumulator exactly (operator== compares the raw
  // integer limb state, so this is bit identity, not tolerance).
  const std::vector<SyntheticSample> stream = SyntheticStream(400, 97);

  EvalAccumulator reference;
  for (const SyntheticSample& sample : stream) {
    reference.RecordValues(sample.values, sample.method, sample.scenario);
  }
  reference.RecordSkipped();
  const EvalStatsSnapshot expected = reference.Snapshot();
  ASSERT_EQ(expected.summaries, stream.size());
  ASSERT_EQ(expected.metrics.size(), MetricNames().size());

  for (const uint64_t seed : {11ull, 22ull, 33ull}) {
    for (size_t shards = 1; shards <= 8; ++shards) {
      Rng rng(seed * 100 + shards);
      std::vector<EvalAccumulator> partials(shards);
      for (const SyntheticSample& sample : stream) {
        partials[rng.Uniform(shards)].RecordValues(
            sample.values, sample.method, sample.scenario);
      }
      partials[rng.Uniform(shards)].RecordSkipped();
      EvalStatsSnapshot merged;
      for (const EvalAccumulator& partial : partials) {
        merged += partial.Snapshot();
      }
      EXPECT_EQ(merged, expected) << "seed " << seed << " shards " << shards;
      for (const std::string& name : MetricNames()) {
        EXPECT_TRUE(BitEqual(merged.metrics.at(name).Mean(),
                             expected.metrics.at(name).Mean()))
            << name;
      }
    }
  }
}

TEST(EvalStatsSnapshotTest, JsonRoundTripThroughTheWireForm) {
  const std::vector<SyntheticSample> stream = SyntheticStream(60, 13);
  EvalAccumulator accumulator;
  for (const SyntheticSample& sample : stream) {
    accumulator.RecordValues(sample.values, sample.method, sample.scenario);
  }
  accumulator.RecordSkipped();
  accumulator.RecordSkipped();
  const EvalStatsSnapshot snapshot = accumulator.Snapshot();

  const auto json = net::ParseJson(snapshot.ToJson().Dump());
  ASSERT_TRUE(json.ok());
  const auto parsed = EvalStatsSnapshotFromJson(*json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, snapshot);
  EXPECT_EQ(parsed->skipped, 2u);
  // The derived "means" member is exposition, not merge state.
  EXPECT_NE(snapshot.ToJson().Dump().find("\"means\""), std::string::npos);
}

TEST(EvalStatsSnapshotTest, FromJsonRejectsMalformedScrapes) {
  const std::vector<std::string> bad = {
      R"(null)",
      R"({"summaries":0,"skipped":0,"metrics":{},"groups":{}})",  // no v
      R"({"v":2,"summaries":0,"skipped":0,"metrics":{},"groups":{}})",
      R"({"v":1,"skipped":0,"metrics":{},"groups":{}})",
      R"({"v":1,"summaries":-1,"skipped":0,"metrics":{},"groups":{}})",
      R"({"v":1,"summaries":0,"metrics":{},"groups":{}})",
      R"({"v":1,"summaries":0,"skipped":0,"groups":{}})",
      R"({"v":1,"summaries":0,"skipped":0,"metrics":{"m":3},"groups":{}})",
      R"({"v":1,"summaries":0,"skipped":0,"metrics":{},"groups":[]})",
      R"({"v":1,"summaries":0,"skipped":0,"metrics":{},"groups":{"g":1}})",
  };
  for (const std::string& document : bad) {
    const auto json = net::ParseJson(document);
    ASSERT_TRUE(json.ok()) << document;
    EXPECT_FALSE(EvalStatsSnapshotFromJson(*json).ok()) << document;
  }
}

TEST(EvalStatsSnapshotTest, MergeAccumulatesDisjointGroupsAndCounters) {
  EvalAccumulator a;
  EvalAccumulator b;
  SummaryMetricValues values;
  values.relevance = 1.25;
  a.RecordValues(values, "method:ST", "scenario:user-centric");
  b.RecordValues(values, "method:PCST", "scenario:item-centric");
  b.RecordSkipped();

  EvalStatsSnapshot merged = a.Snapshot();
  merged += b.Snapshot();
  EXPECT_EQ(merged.summaries, 2u);
  EXPECT_EQ(merged.skipped, 1u);
  EXPECT_EQ(merged.groups.size(), 4u);
  EXPECT_EQ(merged.groups.at("method:ST").at("relevance").count, 1u);
  EXPECT_EQ(merged.groups.at("method:PCST").at("relevance").count, 1u);
  EXPECT_EQ(merged.metrics.at("relevance").count, 2u);
  EXPECT_TRUE(BitEqual(merged.metrics.at("relevance").Mean(), 1.25));
}

}  // namespace
}  // namespace xsum::eval
