/// Determinism tests of the parallel experiment runner: the same panel
/// evaluated with 1 worker and with N workers must produce bit-identical
/// series and identical CSV exports, for every metric family (including
/// the order-sensitive consistency metric).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "eval/csv_export.h"
#include "eval/experiment.h"
#include "eval/runner.h"

namespace xsum::eval {
namespace {

ExperimentConfig TinyConfig(size_t num_workers) {
  ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 4;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.user_group_size = 4;
  config.item_group_size = 3;
  config.ks = {1, 3, 5};
  config.num_workers = num_workers;
  return config;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(RunnerParallelTest, WorkerCountDoesNotChangeResults) {
  ExperimentRunner serial(TinyConfig(1));
  ExperimentRunner parallel(TinyConfig(4));
  ASSERT_TRUE(serial.Init().ok());
  ASSERT_TRUE(parallel.Init().ok());

  const auto serial_data =
      serial.ComputeBaseline(rec::RecommenderKind::kPgpr);
  const auto parallel_data =
      parallel.ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(serial_data.ok());
  ASSERT_TRUE(parallel_data.ok());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "xsum_runner_parallel_test";
  std::filesystem::create_directories(dir);

  // Cover an independent per-unit metric, the order-sensitive consistency
  // metric, the memory metric (whose workspace accounting must not leak
  // per-worker capacity history), and all four scenarios.
  const std::vector<std::pair<core::Scenario, MetricKind>> panels = {
      {core::Scenario::kUserCentric, MetricKind::kComprehensibility},
      {core::Scenario::kUserCentric, MetricKind::kMemoryMb},
      {core::Scenario::kItemCentric, MetricKind::kDiversity},
      {core::Scenario::kUserGroup, MetricKind::kConsistency},
      {core::Scenario::kItemGroup, MetricKind::kRedundancy},
  };
  int panel_idx = 0;
  for (const auto& [scenario, metric] : panels) {
    PanelSpec spec;
    spec.scenario = scenario;
    spec.metric = metric;
    spec.ks = serial.config().ks;
    spec.methods = StandardMethods("PGPR");

    const auto serial_series = serial.RunPanel(*serial_data, spec);
    const auto parallel_series = parallel.RunPanel(*parallel_data, spec);
    ASSERT_TRUE(serial_series.ok()) << serial_series.status();
    ASSERT_TRUE(parallel_series.ok()) << parallel_series.status();
    ASSERT_EQ(serial_series->size(), parallel_series->size());
    for (size_t row = 0; row < serial_series->size(); ++row) {
      EXPECT_EQ((*serial_series)[row].label, (*parallel_series)[row].label);
      ASSERT_EQ((*serial_series)[row].values.size(),
                (*parallel_series)[row].values.size());
      for (size_t ki = 0; ki < (*serial_series)[row].values.size(); ++ki) {
        // Bit-identical, not approximately equal: values are merged in
        // unit order regardless of scheduling.
        EXPECT_EQ((*serial_series)[row].values[ki],
                  (*parallel_series)[row].values[ki])
            << "panel " << panel_idx << " row " << row << " k-index " << ki;
      }
    }

    // The exported CSVs match byte-for-byte.
    const std::string serial_csv =
        (dir / ("serial_" + std::to_string(panel_idx) + ".csv")).string();
    const std::string parallel_csv =
        (dir / ("parallel_" + std::to_string(panel_idx) + ".csv")).string();
    ASSERT_TRUE(WritePanelCsv(serial_csv, spec.ks, *serial_series).ok());
    ASSERT_TRUE(WritePanelCsv(parallel_csv, spec.ks, *parallel_series).ok());
    const std::string serial_text = ReadFile(serial_csv);
    EXPECT_FALSE(serial_text.empty());
    EXPECT_EQ(serial_text, ReadFile(parallel_csv));
    ++panel_idx;
  }
  std::filesystem::remove_all(dir);
}

TEST(RunnerParallelTest, WorkersFromEnvOverride) {
  setenv("XSUM_WORKERS", "3", 1);
  const auto config = ExperimentConfig::FromEnv();
  EXPECT_EQ(config.num_workers, 3u);
  unsetenv("XSUM_WORKERS");
}

TEST(RunnerParallelTest, NegativeWorkersWarnsAndKeepsDefault) {
  setenv("XSUM_WORKERS", "-4", 1);
  testing::internal::CaptureStderr();
  const auto config = ExperimentConfig::FromEnv();
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_EQ(config.num_workers, 0u);  // the auto default, not a wrapped value
  EXPECT_NE(log.find("XSUM_WORKERS"), std::string::npos);
  EXPECT_NE(log.find("negative"), std::string::npos);
  unsetenv("XSUM_WORKERS");
}

TEST(RunnerParallelTest, SummaryCacheDoesNotChangePanelResults) {
  // The service-layer result cache answers repeated (method, unit, k)
  // tasks; the series it produces must be bit-identical to the uncached
  // path. Two panels of the same scenario repeat every summary, so the
  // cached run must also report hits.
  ExperimentConfig cached_config = TinyConfig(2);
  cached_config.use_summary_cache = true;
  ExperimentConfig uncached_config = TinyConfig(2);
  uncached_config.use_summary_cache = false;
  ExperimentRunner cached(cached_config);
  ExperimentRunner uncached(uncached_config);
  ASSERT_TRUE(cached.Init().ok());
  ASSERT_TRUE(uncached.Init().ok());
  const auto cached_data = cached.ComputeBaseline(rec::RecommenderKind::kPgpr);
  const auto uncached_data =
      uncached.ComputeBaseline(rec::RecommenderKind::kPgpr);
  ASSERT_TRUE(cached_data.ok());
  ASSERT_TRUE(uncached_data.ok());

  for (const MetricKind metric :
       {MetricKind::kComprehensibility, MetricKind::kDiversity,
        MetricKind::kMemoryMb}) {
    PanelSpec spec;
    spec.scenario = core::Scenario::kUserCentric;
    spec.metric = metric;
    spec.ks = cached.config().ks;
    spec.methods = StandardMethods("PGPR");
    const auto with_cache = cached.RunPanel(*cached_data, spec);
    const auto without_cache = uncached.RunPanel(*uncached_data, spec);
    ASSERT_TRUE(with_cache.ok()) << with_cache.status();
    ASSERT_TRUE(without_cache.ok()) << without_cache.status();
    ASSERT_EQ(with_cache->size(), without_cache->size());
    for (size_t row = 0; row < with_cache->size(); ++row) {
      EXPECT_EQ((*with_cache)[row].values, (*without_cache)[row].values)
          << "metric " << MetricKindToString(metric) << " row " << row;
    }
  }
  // Three panels over identical units: the 2nd and 3rd runs are pure hits.
  EXPECT_GT(cached.panel_cache_hits(), 0u);
  EXPECT_EQ(uncached.panel_cache_hits(), 0u);
}

}  // namespace
}  // namespace xsum::eval
