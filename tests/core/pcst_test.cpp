/// Tests for Algorithm 2 (PCST summaries): growth connects terminals, the
/// grown-region default vs strong pruning, prize/cost policies, and the
/// |T|-independence of the sweep.

#include <algorithm>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/pcst.h"
#include "graph/union_find.h"
#include "util/rng.h"

namespace xsum::core {
namespace {

using graph::EdgeId;
using graph::GraphBuilder;
using graph::KnowledgeGraph;
using graph::NodeId;
using graph::NodeType;
using graph::Relation;

KnowledgeGraph MakePathGraph(size_t n) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(builder
                    .AddEdge(static_cast<NodeId>(i),
                             static_cast<NodeId>(i + 1), Relation::kRelatedTo,
                             1.0)
                    .ok());
  }
  return std::move(builder).Finalize();
}

bool TerminalsConnected(const KnowledgeGraph& g, const graph::Subgraph& s,
                        const std::vector<NodeId>& terminals) {
  graph::UnionFind uf(g.num_nodes());
  for (EdgeId e : s.edges()) uf.Union(g.edge(e).src, g.edge(e).dst);
  for (size_t i = 1; i < terminals.size(); ++i) {
    if (!uf.Connected(terminals[0], terminals[i])) return false;
  }
  return true;
}

TEST(PcstTest, EmptyTerminals) {
  const KnowledgeGraph g = MakePathGraph(4);
  const auto result = PcstSummary(g, g.WeightVector(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.Empty());
}

TEST(PcstTest, SingleTerminal) {
  const KnowledgeGraph g = MakePathGraph(4);
  const auto result = PcstSummary(g, g.WeightVector(), {2});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.ContainsNode(2));
  EXPECT_EQ(result->tree.num_edges(), 0u);
}

TEST(PcstTest, ConnectsEndpointsOfPath) {
  const KnowledgeGraph g = MakePathGraph(5);
  const std::vector<NodeId> terminals = {0, 4};
  const auto result = PcstSummary(g, g.WeightVector(), terminals);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(TerminalsConnected(g, result->tree, terminals));
  EXPECT_TRUE(result->unreached_terminals.empty());
  // On a path graph the grown region IS the connecting path.
  EXPECT_EQ(result->tree.num_edges(), 4u);
}

TEST(PcstTest, AdjacentTerminalsAdoptSharedEdge) {
  const KnowledgeGraph g = MakePathGraph(3);
  const auto result = PcstSummary(g, g.WeightVector(), {0, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree.num_edges(), 1u);
  EXPECT_TRUE(TerminalsConnected(g, result->tree, {0, 1}));
}

TEST(PcstTest, DuplicateTerminalsIgnored) {
  const KnowledgeGraph g = MakePathGraph(5);
  const auto a = PcstSummary(g, g.WeightVector(), {0, 4});
  const auto b = PcstSummary(g, g.WeightVector(), {0, 4, 4, 0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tree.edges(), b->tree.edges());
}

TEST(PcstTest, DisconnectedTerminalForgone) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 5);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRelatedTo, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4, Relation::kRelatedTo, 1.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto result = PcstSummary(g, g.WeightVector(), {0, 1, 4});
  ASSERT_TRUE(result.ok());
  // {0,1} connected; 4 is in another component (prize forgone).
  EXPECT_EQ(result->unreached_terminals, std::vector<NodeId>{4});
  EXPECT_TRUE(result->tree.ContainsNode(4));  // still listed as a node
}

TEST(PcstTest, RejectsOutOfRangeTerminal) {
  const KnowledgeGraph g = MakePathGraph(3);
  const auto result = PcstSummary(g, g.WeightVector(), {17});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(PcstTest, GrownRegionIsSupersetOfStrongPruned) {
  // On a denser graph, the default (grown region) keeps at least as many
  // edges as the strong-pruned tree — the paper's "additional nodes".
  Rng rng(5);
  GraphBuilder builder;
  const size_t n = 30;
  builder.AddNodes(NodeType::kEntity, n);
  for (size_t i = 0; i < n; ++i) {
    builder
        .AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 Relation::kRelatedTo, 1.0)
        .ValueOrDie();
  }
  for (int c = 0; c < 25; ++c) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a != b) {
      builder.AddEdge(a, b, Relation::kRelatedTo, 1.0).ValueOrDie();
    }
  }
  const KnowledgeGraph g = std::move(builder).Finalize();
  const std::vector<NodeId> terminals = {0, 9, 17, 25};

  PcstOptions grown;  // default: keep grown region
  PcstOptions pruned;
  pruned.strong_prune = true;
  const auto a = PcstSummary(g, g.WeightVector(), terminals, grown);
  const auto b = PcstSummary(g, g.WeightVector(), terminals, pruned);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(a->tree.num_edges(), b->tree.num_edges());
  EXPECT_TRUE(TerminalsConnected(g, a->tree, terminals));
  EXPECT_TRUE(TerminalsConnected(g, b->tree, terminals));
  // Strong-pruned result has only terminal leaves.
  std::unordered_map<NodeId, int> degree;
  for (EdgeId e : b->tree.edges()) {
    ++degree[g.edge(e).src];
    ++degree[g.edge(e).dst];
  }
  for (const auto& [node, d] : degree) {
    if (d == 1) {
      EXPECT_TRUE(std::find(terminals.begin(), terminals.end(), node) !=
                  terminals.end());
    }
  }
}

TEST(PcstTest, AlphaBetaPrizesComputedFromWeights) {
  const KnowledgeGraph g = MakePathGraph(5);
  std::vector<double> weights = {0.5, 2.0, 1.0, 3.0};
  PcstOptions options;
  options.prize_policy = PcstOptions::PrizePolicy::kAlphaBeta;
  const auto result = PcstSummary(g, weights, {0, 4}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(TerminalsConnected(g, result->tree, {0, 4}));
  // Objective uses alpha = 3.0 for terminals, beta = 0.5 for others.
  // 4 unit-cost edges, prizes: 2 * 3.0 + 3 * 0.5 = 7.5 -> C = 4 - 7.5.
  EXPECT_NEAR(result->objective, 4.0 - 7.5, 1e-9);
}

TEST(PcstTest, WeightedEdgeCostsChangeObjective) {
  const KnowledgeGraph g = MakePathGraph(3);
  std::vector<double> weights = {5.0, 7.0};
  PcstOptions options;
  options.use_edge_weights = true;
  const auto result = PcstSummary(g, weights, {0, 2}, options);
  ASSERT_TRUE(result.ok());
  // Objective = 12 (weighted costs) - 2 (unit terminal prizes).
  EXPECT_NEAR(result->objective, 12.0 - 2.0, 1e-9);
}

TEST(PcstTest, RejectsShortWeightVectorWhenWeighted) {
  const KnowledgeGraph g = MakePathGraph(3);
  PcstOptions options;
  options.use_edge_weights = true;
  const auto result = PcstSummary(g, {1.0}, {0, 2}, options);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(PcstTest, ObjectiveMatchesDefinition) {
  const KnowledgeGraph g = MakePathGraph(4);
  const auto result = PcstSummary(g, g.WeightVector(), {0, 3});
  ASSERT_TRUE(result.ok());
  // C(S) = sum unit costs - sum prizes (1 per terminal in S, 0 others).
  const double expected =
      static_cast<double>(result->tree.num_edges()) - 2.0;
  EXPECT_NEAR(result->objective, expected, 1e-9);
}

TEST(PcstTest, WorkspaceReported) {
  const KnowledgeGraph g = MakePathGraph(10);
  const auto result = PcstSummary(g, g.WeightVector(), {0, 9});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->workspace_bytes, 0u);
}

/// Property sweep: the growth always connects all terminals of a
/// connected graph and the grown region always contains them.
class PcstRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PcstRandomSweep, ConnectsAllTerminalsOnConnectedGraphs) {
  Rng rng(GetParam());
  const size_t n = 50;
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  for (size_t i = 0; i < n; ++i) {
    builder
        .AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 Relation::kRelatedTo, 1.0)
        .ValueOrDie();
  }
  for (int c = 0; c < 40; ++c) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a != b) {
      builder.AddEdge(a, b, Relation::kRelatedTo, 1.0).ValueOrDie();
    }
  }
  const KnowledgeGraph g = std::move(builder).Finalize();

  std::vector<NodeId> terminals;
  const size_t t = 2 + rng.Uniform(8);
  for (uint64_t v : rng.SampleWithoutReplacement(n, t)) {
    terminals.push_back(static_cast<NodeId>(v));
  }
  const auto result = PcstSummary(g, g.WeightVector(), terminals);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->unreached_terminals.empty());
  EXPECT_TRUE(TerminalsConnected(g, result->tree, terminals));
  for (NodeId v : terminals) EXPECT_TRUE(result->tree.ContainsNode(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcstRandomSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace xsum::core
