/// Tests for the four scenario task builders (§III terminal sets), the
/// baseline union, the summarizer façade, and the text renderer.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/renderer.h"
#include "core/scenario.h"
#include "core/summarizer.h"
#include "data/kg_builder.h"

namespace xsum::core {
namespace {

using graph::NodeId;
using graph::Path;

/// 2 users, 4 items, 2 entities; user 0 rated items 0,1; user 1 rated
/// item 2; items share entities.
class ScenarioFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::Dataset ds;
    ds.name = "scenario-fixture";
    ds.num_users = 2;
    ds.num_items = 4;
    ds.num_entities = 2;
    ds.user_gender = {data::Gender::kMale, data::Gender::kFemale};
    ds.t0 = 100;
    ds.ratings = {{0, 0, 5.0f, 50},
                  {0, 1, 4.0f, 60},
                  {1, 2, 3.0f, 70}};
    ds.triples = {{0, graph::Relation::kHasGenre, 0, false},
                  {1, graph::Relation::kHasGenre, 0, false},
                  {2, graph::Relation::kHasGenre, 0, false},
                  {3, graph::Relation::kHasGenre, 0, false},
                  {1, graph::Relation::kDirectedBy, 1, false},
                  {3, graph::Relation::kDirectedBy, 1, false}};
    rg_ = std::move(data::BuildRecGraph(ds)).ValueOrDie();
  }

  /// Path u -> rated item -> entity -> recommended item.
  Path MakePath(uint32_t user, uint32_t rated, uint32_t entity,
                uint32_t item) const {
    Path p;
    p.nodes = {rg_.UserNode(user), rg_.ItemNode(rated),
               rg_.EntityNode(entity), rg_.ItemNode(item)};
    const auto& g = rg_.graph();
    p.edges = {g.FindEdge(p.nodes[0], p.nodes[1]),
               g.FindEdge(p.nodes[1], p.nodes[2]),
               g.FindEdge(p.nodes[2], p.nodes[3])};
    EXPECT_TRUE(p.Validate(g, /*allow_hallucinated=*/false));
    return p;
  }

  UserRecs MakeRecsForUser0() const {
    UserRecs ur;
    ur.user = 0;
    ur.recs.push_back({2, 2.0, MakePath(0, 0, 0, 2)});
    ur.recs.push_back({3, 1.0, MakePath(0, 1, 1, 3)});
    return ur;
  }

  data::RecGraph rg_;
};

TEST_F(ScenarioFixture, UserCentricTerminals) {
  const auto task = MakeUserCentricTask(rg_, MakeRecsForUser0(), 2);
  EXPECT_EQ(task.scenario, Scenario::kUserCentric);
  // T = {u0} ∪ {i2, i3}.
  std::vector<NodeId> expected = {rg_.UserNode(0), rg_.ItemNode(2),
                                  rg_.ItemNode(3)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(task.terminals, expected);
  EXPECT_EQ(task.paths.size(), 2u);
  EXPECT_EQ(task.s_size, 2u);
  EXPECT_EQ(task.anchors, std::vector<NodeId>{rg_.UserNode(0)});
}

TEST_F(ScenarioFixture, UserCentricKPrefix) {
  const auto task = MakeUserCentricTask(rg_, MakeRecsForUser0(), 1);
  EXPECT_EQ(task.paths.size(), 1u);
  EXPECT_EQ(task.s_size, 1u);
  EXPECT_EQ(task.terminals.size(), 2u);
}

TEST_F(ScenarioFixture, UserCentricKLargerThanRecs) {
  const auto task = MakeUserCentricTask(rg_, MakeRecsForUser0(), 10);
  EXPECT_EQ(task.paths.size(), 2u);
}

TEST_F(ScenarioFixture, ItemCentricTerminals) {
  std::vector<AudienceEntry> audience;
  audience.push_back({0, MakePath(0, 0, 0, 2)});
  audience.push_back({1, MakePath(1, 2, 0, 2)});
  const auto task = MakeItemCentricTask(rg_, 2, audience, 2);
  EXPECT_EQ(task.scenario, Scenario::kItemCentric);
  std::vector<NodeId> expected = {rg_.UserNode(0), rg_.UserNode(1),
                                  rg_.ItemNode(2)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(task.terminals, expected);
  EXPECT_EQ(task.s_size, 2u);  // |Ci|
}

TEST_F(ScenarioFixture, UserGroupMergesMembers) {
  UserRecs u0 = MakeRecsForUser0();
  UserRecs u1;
  u1.user = 1;
  u1.recs.push_back({3, 1.5, MakePath(1, 2, 0, 3)});
  const auto task = MakeUserGroupTask(rg_, {u0, u1}, 2);
  EXPECT_EQ(task.scenario, Scenario::kUserGroup);
  // T = D ∪ RD = {u0, u1} ∪ {i2, i3}.
  EXPECT_EQ(task.terminals.size(), 4u);
  EXPECT_EQ(task.paths.size(), 3u);
  EXPECT_EQ(task.s_size, 2u);  // |RD| = |{i2, i3}|
  EXPECT_EQ(task.anchors.size(), 2u);
}

TEST_F(ScenarioFixture, ItemGroupMergesAudiences) {
  ItemAudience a;
  a.item = 2;
  a.audience.push_back({0, MakePath(0, 0, 0, 2)});
  ItemAudience b;
  b.item = 3;
  b.audience.push_back({0, MakePath(0, 1, 1, 3)});
  b.audience.push_back({1, MakePath(1, 2, 0, 3)});
  const auto task = MakeItemGroupTask(rg_, {a, b}, 10);
  EXPECT_EQ(task.scenario, Scenario::kItemGroup);
  // T = F ∪ CF = {i2, i3} ∪ {u0, u1}.
  EXPECT_EQ(task.terminals.size(), 4u);
  EXPECT_EQ(task.paths.size(), 3u);
  EXPECT_EQ(task.s_size, 2u);  // |CF|
}

TEST_F(ScenarioFixture, ScenarioNames) {
  EXPECT_STREQ(ScenarioToString(Scenario::kUserCentric), "user-centric");
  EXPECT_STREQ(ScenarioToString(Scenario::kItemCentric), "item-centric");
  EXPECT_STREQ(ScenarioToString(Scenario::kUserGroup), "user-group");
  EXPECT_STREQ(ScenarioToString(Scenario::kItemGroup), "item-group");
}

// --- baseline ----------------------------------------------------------------

TEST_F(ScenarioFixture, UnionOfPathsDeduplicates) {
  const Path p = MakePath(0, 0, 0, 2);
  const auto s = UnionOfPaths(rg_.graph(), {p, p});
  EXPECT_EQ(s.num_edges(), 3u);  // deduplicated
  EXPECT_EQ(s.num_nodes(), 4u);
}

TEST_F(ScenarioFixture, TotalPathEdgesCountsDuplicates) {
  const Path p = MakePath(0, 0, 0, 2);
  EXPECT_EQ(TotalPathEdges({p, p}), 6u);
  EXPECT_EQ(TotalPathEdges({}), 0u);
}

TEST_F(ScenarioFixture, UnionOfPathsSkipsHallucinatedEdges) {
  Path p;
  p.nodes = {rg_.UserNode(0), rg_.ItemNode(3)};
  p.edges = {graph::kInvalidEdge};
  const auto s = UnionOfPaths(rg_.graph(), {p});
  EXPECT_EQ(s.num_edges(), 0u);
  EXPECT_EQ(s.num_nodes(), 2u);  // endpoints still counted
}

// --- summarizer façade ---------------------------------------------------------

TEST_F(ScenarioFixture, SummarizeBaseline) {
  const auto task = MakeUserCentricTask(rg_, MakeRecsForUser0(), 2);
  SummarizerOptions options;
  options.method = SummaryMethod::kBaseline;
  const auto summary = Summarize(rg_, task, options);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->method, SummaryMethod::kBaseline);
  EXPECT_EQ(summary->input_paths.size(), 2u);
  EXPECT_GT(summary->subgraph.num_edges(), 0u);
}

TEST_F(ScenarioFixture, SummarizeSteinerSpansTerminals) {
  const auto task = MakeUserCentricTask(rg_, MakeRecsForUser0(), 2);
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;
  const auto summary = Summarize(rg_, task, options);
  ASSERT_TRUE(summary.ok());
  for (NodeId t : task.terminals) {
    EXPECT_TRUE(summary->subgraph.ContainsNode(t));
  }
  EXPECT_TRUE(summary->subgraph.IsWeaklyConnected(rg_.graph()));
  EXPECT_GE(summary->elapsed_ms, 0.0);
  EXPECT_GT(summary->memory_bytes, 0u);
}

TEST_F(ScenarioFixture, SummarizePcstSpansTerminals) {
  const auto task = MakeUserCentricTask(rg_, MakeRecsForUser0(), 2);
  SummarizerOptions options;
  options.method = SummaryMethod::kPcst;
  const auto summary = Summarize(rg_, task, options);
  ASSERT_TRUE(summary.ok());
  for (NodeId t : task.terminals) {
    EXPECT_TRUE(summary->subgraph.ContainsNode(t));
  }
  EXPECT_TRUE(summary->unreached_terminals.empty());
}

TEST(SummarizerOptionsTest, Labels) {
  SummarizerOptions o;
  o.method = SummaryMethod::kBaseline;
  EXPECT_EQ(o.Label(), "baseline");
  o.method = SummaryMethod::kSteiner;
  o.lambda = 100.0;
  EXPECT_EQ(o.Label(), "ST l=100");
  o.lambda = 0.01;
  EXPECT_EQ(o.Label(), "ST l=0.01");
  o.method = SummaryMethod::kPcst;
  EXPECT_EQ(o.Label(), "PCST");
}

TEST(SummaryMethodTest, Names) {
  EXPECT_STREQ(SummaryMethodToString(SummaryMethod::kBaseline), "baseline");
  EXPECT_STREQ(SummaryMethodToString(SummaryMethod::kSteiner), "ST");
  EXPECT_STREQ(SummaryMethodToString(SummaryMethod::kPcst), "PCST");
}

// --- renderer --------------------------------------------------------------------

TEST_F(ScenarioFixture, RenderPathDefaults) {
  const Path p = MakePath(0, 0, 0, 2);
  const std::string text = RenderPath(rg_, p);
  EXPECT_NE(text.find("u0"), std::string::npos);
  EXPECT_NE(text.find("item 2"), std::string::npos);
  EXPECT_NE(text.find("through"), std::string::npos);
}

TEST_F(ScenarioFixture, RenderPathWithNames) {
  NameTable names;
  names.Set(rg_.UserNode(0), "Alice");
  names.Set(rg_.ItemNode(2), "The Beekeeper");
  const Path p = MakePath(0, 0, 0, 2);
  const std::string text = RenderPath(rg_, p, names);
  EXPECT_NE(text.find("Alice"), std::string::npos);
  EXPECT_NE(text.find("The Beekeeper"), std::string::npos);
}

TEST_F(ScenarioFixture, RenderEmptyPath) {
  EXPECT_EQ(RenderPath(rg_, Path{}), "(empty path)");
}

TEST_F(ScenarioFixture, RenderDirectConnection) {
  Path p;
  p.nodes = {rg_.UserNode(0), rg_.ItemNode(0)};
  p.edges = {rg_.graph().FindEdge(p.nodes[0], p.nodes[1])};
  const std::string text = RenderPath(rg_, p);
  EXPECT_NE(text.find("directly connected"), std::string::npos);
}

TEST_F(ScenarioFixture, RenderSummaryListsTerminals) {
  const auto task = MakeUserCentricTask(rg_, MakeRecsForUser0(), 2);
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;
  const auto summary = Summarize(rg_, task, options);
  ASSERT_TRUE(summary.ok());
  const std::string text = RenderSummary(rg_, *summary);
  EXPECT_NE(text.find("u0"), std::string::npos);
  EXPECT_NE(text.find("item 2"), std::string::npos);
  EXPECT_NE(text.find("item 3"), std::string::npos);
}

TEST_F(ScenarioFixture, RenderEmptySummary) {
  Summary summary;
  EXPECT_EQ(RenderSummary(rg_, summary), "(empty summary)");
}

}  // namespace
}  // namespace xsum::core
