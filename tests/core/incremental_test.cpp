/// Property tests of the incremental k-sweep summarization engine
/// (core/incremental.h): chained summaries must be bit-identical to
/// from-scratch ones across methods (ST-KMB / ST-Mehlhorn / PCST /
/// baseline), scenarios, λ overlays, worker counts, frontier choices, and
/// both closure-store retention modes — reuse may only engage where it is
/// provably exact. Also the regression tests of the unified perf
/// accounting (Summary::elapsed_ms / memory_bytes filled on every path).

#include "core/incremental.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch.h"
#include "core/cost_transform.h"
#include "core/scenario.h"
#include "core/steiner.h"
#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "graph/cost_view.h"
#include "util/rng.h"

namespace xsum::core {
namespace {

struct Fixture {
  data::Dataset dataset;
  data::RecGraph rg;
};

Fixture MakeFixture(double scale, uint64_t seed) {
  Fixture f;
  f.dataset = data::MakeSyntheticDataset(data::Ml1mConfig(scale, seed));
  f.rg = std::move(data::BuildRecGraph(f.dataset)).ValueOrDie();
  return f;
}

/// Random walk from a node, used as a synthetic explanation path.
graph::Path RandomWalkFrom(const data::RecGraph& rg, graph::NodeId start,
                           Rng* rng) {
  const graph::KnowledgeGraph& g = rg.graph();
  graph::Path path;
  graph::NodeId v = start;
  path.nodes.push_back(v);
  for (int hop = 0; hop < 3; ++hop) {
    const auto nbrs = g.Neighbors(v);
    if (nbrs.empty()) break;
    const graph::AdjEntry& a = nbrs[rng->Uniform(nbrs.size())];
    path.nodes.push_back(a.neighbor);
    path.edges.push_back(a.edge);
    v = a.neighbor;
  }
  return path;
}

/// Synthetic ranked recommendations for one user — the k-prefix property
/// of the real recommenders (each k task is a prefix of the k+1 task).
UserRecs MakeUserRecs(const data::RecGraph& rg, uint32_t user,
                      size_t num_recs, Rng* rng) {
  UserRecs recs;
  recs.user = user;
  for (size_t r = 0; r < num_recs; ++r) {
    rec::Recommendation rec;
    rec.item = static_cast<uint32_t>(rng->Uniform(rg.num_items()));
    rec.score = 1.0 - 0.01 * static_cast<double>(r);
    rec.path = RandomWalkFrom(rg, rg.UserNode(user), rng);
    recs.recs.push_back(std::move(rec));
  }
  return recs;
}

std::vector<SummarizerOptions> MethodLineup() {
  std::vector<SummarizerOptions> methods;
  SummarizerOptions baseline;
  baseline.method = SummaryMethod::kBaseline;
  methods.push_back(baseline);
  for (auto variant : {SteinerOptions::Variant::kKmb,
                       SteinerOptions::Variant::kMehlhorn}) {
    for (double lambda : {0.0, 1.0, 100.0}) {
      SummarizerOptions st;
      st.method = SummaryMethod::kSteiner;
      st.lambda = lambda;
      st.steiner.variant = variant;
      methods.push_back(st);
    }
  }
  // kUnit cost mode: the overlay cannot move unit costs, so the chain
  // carries across every k even at λ > 0.
  SummarizerOptions st_unit;
  st_unit.method = SummaryMethod::kSteiner;
  st_unit.lambda = 1.0;
  st_unit.cost_mode = CostMode::kUnit;
  st_unit.steiner.variant = SteinerOptions::Variant::kKmb;
  methods.push_back(st_unit);
  for (auto frontier :
       {PcstOptions::Frontier::kAuto, PcstOptions::Frontier::kHeap,
        PcstOptions::Frontier::kBucket, PcstOptions::Frontier::kDelta}) {
    SummarizerOptions pcst;
    pcst.method = SummaryMethod::kPcst;
    pcst.pcst.frontier = frontier;
    pcst.pcst.growth_slack = 0.5;  // tie-free regime: all frontiers agree
    methods.push_back(pcst);
  }
  return methods;
}

void ExpectIdentical(const Summary& fresh, const Summary& chained) {
  EXPECT_EQ(fresh.subgraph.nodes(), chained.subgraph.nodes());
  EXPECT_EQ(fresh.subgraph.edges(), chained.subgraph.edges());
  EXPECT_EQ(fresh.unreached_terminals, chained.unreached_terminals);
  EXPECT_EQ(fresh.terminals, chained.terminals);
}

TEST(IncrementalTest, UserCentricSweepMatchesFromScratchAcrossMethods) {
  const Fixture f = MakeFixture(0.03, 31);
  Rng rng(101);
  const auto methods = MethodLineup();
  for (const bool retain_trees : {true, false}) {
    for (uint32_t user = 0; user < 3; ++user) {
      const UserRecs recs = MakeUserRecs(f.rg, user, 6, &rng);
      for (const SummarizerOptions& options : methods) {
        IncrementalSummarizer inc(f.rg, nullptr, retain_trees);
        for (int k = 1; k <= 6; ++k) {
          const SummaryTask task = MakeUserCentricTask(f.rg, recs, k);
          const Result<Summary> fresh = Summarize(f.rg, task, options);
          const Result<Summary> chained = inc.Next(task, options);
          ASSERT_TRUE(fresh.ok()) << fresh.status();
          ASSERT_TRUE(chained.ok()) << chained.status();
          ExpectIdentical(*fresh, *chained);
        }
      }
    }
  }
}

TEST(IncrementalTest, GroupScenarioSweepsMatchFromScratch) {
  const Fixture f = MakeFixture(0.03, 32);
  Rng rng(102);
  // User-group chain: every member contributes its k-prefix.
  std::vector<UserRecs> group;
  for (uint32_t user = 0; user < 4; ++user) {
    group.push_back(MakeUserRecs(f.rg, user, 5, &rng));
  }
  // Item-group chain from synthetic ranked audiences.
  std::vector<ItemAudience> items;
  for (uint32_t item = 0; item < 3; ++item) {
    ItemAudience ia;
    ia.item = item;
    for (uint32_t user = 0; user < 5; ++user) {
      AudienceEntry entry;
      entry.user = user;
      entry.path = RandomWalkFrom(f.rg, f.rg.UserNode(user), &rng);
      ia.audience.push_back(std::move(entry));
    }
    items.push_back(std::move(ia));
  }
  for (const SummarizerOptions& options : MethodLineup()) {
    IncrementalSummarizer inc_users(f.rg);
    IncrementalSummarizer inc_items(f.rg);
    for (int k = 1; k <= 5; ++k) {
      const SummaryTask user_task = MakeUserGroupTask(f.rg, group, k);
      const SummaryTask item_task = MakeItemGroupTask(f.rg, items, k);
      const Result<Summary> fresh_users = Summarize(f.rg, user_task, options);
      const Result<Summary> fresh_items = Summarize(f.rg, item_task, options);
      const Result<Summary> chained_users = inc_users.Next(user_task, options);
      const Result<Summary> chained_items = inc_items.Next(item_task, options);
      ASSERT_TRUE(fresh_users.ok() && chained_users.ok());
      ASSERT_TRUE(fresh_items.ok() && chained_items.ok());
      ExpectIdentical(*fresh_users, *chained_users);
      ExpectIdentical(*fresh_items, *chained_items);
    }
  }
}

TEST(IncrementalTest, ClosureReuseEngagesWhenCostsAreStable) {
  const Fixture f = MakeFixture(0.03, 33);
  Rng rng(103);
  const UserRecs recs = MakeUserRecs(f.rg, 1, 8, &rng);
  // λ = 0: the Eq. (1) multiplier is exactly 1, so the adjusted weights
  // (and the resolved costs) are bitwise stable across the whole sweep.
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;
  options.lambda = 0.0;
  options.steiner.variant = SteinerOptions::Variant::kKmb;
  IncrementalSummarizer inc(f.rg);
  size_t total_reused = 0;
  for (int k = 1; k <= 8; ++k) {
    const SummaryTask task = MakeUserCentricTask(f.rg, recs, k);
    ASSERT_TRUE(inc.Next(task, options).ok());
    total_reused += inc.chain().closure.last_reused_pairs;
  }
  EXPECT_EQ(inc.chain().resets, 0u);
  EXPECT_GE(inc.chain().links, 8u);
  EXPECT_GT(total_reused, 0u);
  // Tree retention: each terminal is searched at most once per chain.
  EXPECT_LE(inc.chain().closure.trees.size(),
            MakeUserCentricTask(f.rg, recs, 8).terminals.size());
}

TEST(IncrementalTest, ChainResetsWhenOverlayMovesCosts) {
  const Fixture f = MakeFixture(0.03, 34);
  Rng rng(104);
  const UserRecs recs = MakeUserRecs(f.rg, 2, 6, &rng);
  // λ = 100 with real path overlays: adding the k+1-th path re-weights
  // touched edges, so the cost signature moves every step and the chain
  // must restart rather than reuse stale closure rows.
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;
  options.lambda = 100.0;
  options.steiner.variant = SteinerOptions::Variant::kKmb;
  IncrementalSummarizer inc(f.rg);
  for (int k = 1; k <= 6; ++k) {
    const SummaryTask task = MakeUserCentricTask(f.rg, recs, k);
    const Result<Summary> fresh = Summarize(f.rg, task, options);
    const Result<Summary> chained = inc.Next(task, options);
    ASSERT_TRUE(fresh.ok() && chained.ok());
    ExpectIdentical(*fresh, *chained);
  }
  EXPECT_GT(inc.chain().resets, 0u);
}

TEST(IncrementalTest, ChainedStoreServesArbitraryTerminalSets) {
  // The closure memo is keyed by node pair under fixed costs, so chained
  // calls are exact for any terminal-set sequence — subsets, supersets,
  // and partial overlaps — not just nested sweeps.
  const Fixture f = MakeFixture(0.03, 35);
  const auto costs = WeightsToCosts(f.rg.base_weights());
  graph::CostView view;
  view.Assign(f.rg.graph(), costs);
  Rng rng(105);
  for (const bool retain_trees : {true, false}) {
    KmbClosureStore store;
    store.retain_trees = retain_trees;
    graph::SearchWorkspace ws;
    for (int round = 0; round < 10; ++round) {
      std::vector<graph::NodeId> terminals;
      terminals.push_back(f.rg.UserNode(
          static_cast<uint32_t>(rng.Uniform(f.rg.num_users()))));
      const size_t t = 2 + rng.Uniform(8);
      while (terminals.size() < t) {
        terminals.push_back(f.rg.ItemNode(
            static_cast<uint32_t>(rng.Uniform(f.rg.num_items()))));
      }
      const auto fresh = SteinerTree(view, terminals);
      const auto chained = SteinerTreeChained(view, terminals, {}, &ws, &store);
      ASSERT_TRUE(fresh.ok() && chained.ok());
      EXPECT_EQ(fresh->tree.nodes(), chained->tree.nodes());
      EXPECT_EQ(fresh->tree.edges(), chained->tree.edges());
      EXPECT_EQ(fresh->unreached_terminals, chained->unreached_terminals);
    }
    EXPECT_GT(store.pairs.size(), 0u);
  }
}

TEST(IncrementalTest, RunSweepAndPanelSweepMatchPerKRunsAcrossWorkers) {
  const Fixture f = MakeFixture(0.03, 36);
  Rng rng(106);
  std::vector<UserRecs> users;
  for (uint32_t user = 0; user < 5; ++user) {
    users.push_back(MakeUserRecs(f.rg, user, 6, &rng));
  }
  std::vector<std::function<SummaryTask(int)>> units;
  for (const UserRecs& recs : users) {
    units.push_back(
        [&f, &recs](int k) { return MakeUserCentricTask(f.rg, recs, k); });
  }
  const std::vector<int> ks = {5, 1, 3, 6, 2, 4};  // deliberately unsorted
  for (double lambda : {0.0, 1.0}) {
    SummarizerOptions options;
    options.method = SummaryMethod::kSteiner;
    options.lambda = lambda;
    options.steiner.variant = SteinerOptions::Variant::kKmb;
    std::vector<std::vector<Result<Summary>>> per_worker_results;
    for (const size_t workers : {size_t{1}, size_t{3}}) {
      BatchSummarizer engine(f.rg, workers);
      const auto swept = engine.RunPanelSweep(units, ks, options);
      ASSERT_EQ(swept.size(), units.size());
      for (size_t u = 0; u < units.size(); ++u) {
        ASSERT_EQ(swept[u].size(), ks.size());
        for (size_t ki = 0; ki < ks.size(); ++ki) {
          ASSERT_TRUE(swept[u][ki].ok()) << swept[u][ki].status();
          // Slot (u, ki) really answers units[u](ks[ki]), and matches an
          // independent per-k run bit-for-bit.
          const Result<Summary> fresh =
              Summarize(f.rg, units[u](ks[ki]), options);
          ASSERT_TRUE(fresh.ok());
          ExpectIdentical(*fresh, *swept[u][ki]);
        }
      }
    }
  }
}

TEST(IncrementalTest, MemoryAccountingIndependentOfRetentionMode) {
  // Retained source trees are chain infrastructure, not per-query working
  // set: the memory metric must not depend on whether a sweep ran through
  // the tree-retention hot path (engine route) or the compact checkpoint
  // mode (service route) — otherwise a figure's memory series would
  // change with the serving route.
  const Fixture f = MakeFixture(0.03, 38);
  Rng rng(108);
  const UserRecs recs = MakeUserRecs(f.rg, 3, 6, &rng);
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;
  options.lambda = 0.0;  // cost-stable: the chain carries at every k
  options.steiner.variant = SteinerOptions::Variant::kKmb;
  IncrementalSummarizer retained(f.rg, nullptr, /*retain_trees=*/true);
  IncrementalSummarizer compact(f.rg, nullptr, /*retain_trees=*/false);
  for (int k = 1; k <= 6; ++k) {
    const SummaryTask task = MakeUserCentricTask(f.rg, recs, k);
    const Result<Summary> a = retained.Next(task, options);
    const Result<Summary> b = compact.Next(task, options);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->memory_bytes, b->memory_bytes) << "k=" << k;
  }
  EXPECT_GT(retained.chain().closure.trees.size(), 0u);
}

// --- unified perf accounting (regression: one-shot Summarize used to be
// able to drop Summary::elapsed_ms / memory_bytes relative to the batch
// path; all paths now finish through one helper) -------------------------

TEST(IncrementalTest, PerfCountersFilledOnEveryPath) {
  const Fixture f = MakeFixture(0.03, 37);
  Rng rng(107);
  const UserRecs recs = MakeUserRecs(f.rg, 0, 5, &rng);
  const SummaryTask task = MakeUserCentricTask(f.rg, recs, 5);
  BatchSummarizer engine(f.rg, 1);
  IncrementalSummarizer inc(f.rg);
  for (const SummaryMethod method :
       {SummaryMethod::kBaseline, SummaryMethod::kSteiner,
        SummaryMethod::kPcst}) {
    SummarizerOptions options;
    options.method = method;
    options.steiner.variant = SteinerOptions::Variant::kKmb;
    const Result<Summary> one_shot = Summarize(f.rg, task, options);
    const Result<Summary> batch = engine.Run(task, options);
    const Result<Summary> chained = inc.Next(task, options);
    for (const Result<Summary>* result : {&one_shot, &batch, &chained}) {
      ASSERT_TRUE(result->ok()) << (*result).status();
      EXPECT_GT((*result)->memory_bytes, 0u)
          << SummaryMethodToString(method);
      EXPECT_GE((*result)->elapsed_ms, 0.0);
    }
    // One accounting for all paths: a fresh-chain step reports the same
    // memory as the one-shot and batch paths, bit for bit (the service
    // bench verifies cached-vs-fresh equality on this field).
    EXPECT_EQ(one_shot->memory_bytes, batch->memory_bytes);
    EXPECT_EQ(one_shot->memory_bytes, chained->memory_bytes);
    // The graph methods do real search work; their wall time cannot be
    // the zeroed default.
    if (method != SummaryMethod::kBaseline) {
      EXPECT_GT(one_shot->elapsed_ms, 0.0);
      EXPECT_GT(batch->elapsed_ms, 0.0);
      EXPECT_GT(chained->elapsed_ms, 0.0);
    }
  }
}

}  // namespace
}  // namespace xsum::core
