/// Tests for the Eq. (1) weight adjustment and the max-weight→min-cost
/// transform.

#include <gtest/gtest.h>

#include "core/cost_transform.h"
#include "core/weight_adjust.h"
#include "graph/knowledge_graph.h"

namespace xsum::core {
namespace {

using graph::GraphBuilder;
using graph::KnowledgeGraph;
using graph::NodeType;
using graph::Path;
using graph::Relation;

/// u0 - i1 - e2 - i3 with weights 4, 0, 0.
KnowledgeGraph MakeChain() {
  GraphBuilder builder;
  builder.AddNode(NodeType::kUser);
  builder.AddNode(NodeType::kItem);
  builder.AddNode(NodeType::kEntity);
  builder.AddNode(NodeType::kItem);
  EXPECT_TRUE(builder.AddEdge(0, 1, Relation::kRated, 4.0).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, Relation::kHasGenre, 0.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3, Relation::kHasGenre, 0.0).ok());
  return std::move(builder).Finalize();
}

Path ChainPath() {
  Path p;
  p.nodes = {0, 1, 2, 3};
  p.edges = {0, 1, 2};
  return p;
}

TEST(CountEdgeOccurrencesTest, CountsPerEdge) {
  const KnowledgeGraph g = MakeChain();
  Path half;
  half.nodes = {0, 1, 2};
  half.edges = {0, 1};
  const auto counts = CountEdgeOccurrences(g, {ChainPath(), half});
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(CountEdgeOccurrencesTest, SkipsHallucinatedHops) {
  const KnowledgeGraph g = MakeChain();
  Path p;
  p.nodes = {0, 3};
  p.edges = {graph::kInvalidEdge};
  const auto counts = CountEdgeOccurrences(g, {p});
  for (uint32_t c : counts) EXPECT_EQ(c, 0u);
}

TEST(AdjustWeightsTest, EquationOneExact) {
  const KnowledgeGraph g = MakeChain();
  const std::vector<double> base = {4.0, 1.0, 1.0};
  // One path covering all edges; |S| = 2, lambda = 3.
  const auto adjusted = AdjustWeights(g, base, {ChainPath()}, 3.0, 2);
  // w(e) = w * (1 + 3 * (1/2)) = 2.5 * w.
  EXPECT_DOUBLE_EQ(adjusted[0], 4.0 * 2.5);
  EXPECT_DOUBLE_EQ(adjusted[1], 1.0 * 2.5);
  EXPECT_DOUBLE_EQ(adjusted[2], 1.0 * 2.5);
}

TEST(AdjustWeightsTest, LambdaZeroKeepsBaseWeights) {
  const KnowledgeGraph g = MakeChain();
  const std::vector<double> base = {4.0, 0.0, 0.0};
  const auto adjusted = AdjustWeights(g, base, {ChainPath()}, 0.0, 1);
  EXPECT_EQ(adjusted, base);
}

TEST(AdjustWeightsTest, EdgesOutsidePathsUnchanged) {
  const KnowledgeGraph g = MakeChain();
  const std::vector<double> base = {4.0, 1.0, 1.0};
  Path prefix;
  prefix.nodes = {0, 1};
  prefix.edges = {0};
  const auto adjusted = AdjustWeights(g, base, {prefix}, 10.0, 1);
  EXPECT_GT(adjusted[0], base[0]);
  EXPECT_DOUBLE_EQ(adjusted[1], base[1]);
  EXPECT_DOUBLE_EQ(adjusted[2], base[2]);
}

TEST(AdjustWeightsTest, ZeroBaseWeightStaysZero) {
  // Faithful to Eq. (1): wM(e) = 0 (the paper's wA) is multiplicative, so
  // path frequency cannot resurrect a zero-weight edge.
  const KnowledgeGraph g = MakeChain();
  const std::vector<double> base = {4.0, 0.0, 0.0};
  const auto adjusted = AdjustWeights(g, base, {ChainPath()}, 100.0, 1);
  EXPECT_DOUBLE_EQ(adjusted[1], 0.0);
  EXPECT_DOUBLE_EQ(adjusted[2], 0.0);
}

TEST(AdjustWeightsTest, FrequencyNormalizedBySSize) {
  const KnowledgeGraph g = MakeChain();
  const std::vector<double> base = {1.0, 1.0, 1.0};
  const auto small_s = AdjustWeights(g, base, {ChainPath()}, 1.0, 1);
  const auto large_s = AdjustWeights(g, base, {ChainPath()}, 1.0, 10);
  EXPECT_GT(small_s[0], large_s[0]);
  EXPECT_DOUBLE_EQ(small_s[0], 2.0);   // 1 * (1 + 1/1)
  EXPECT_DOUBLE_EQ(large_s[0], 1.1);   // 1 * (1 + 1/10)
}

// --- cost transform -----------------------------------------------------------

TEST(CostTransformTest, UnitMode) {
  const auto costs = WeightsToCosts({1.0, 5.0, 2.0}, CostMode::kUnit);
  EXPECT_EQ(costs, (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(CostTransformTest, EmptyInput) {
  EXPECT_TRUE(WeightsToCosts({}).empty());
}

TEST(CostTransformTest, AllEqualWeightsYieldUnitCosts) {
  const auto costs = WeightsToCosts({3.0, 3.0, 3.0});
  EXPECT_EQ(costs, (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(CostTransformTest, OrderPreservingAndBounded) {
  const std::vector<double> weights = {0.0, 2.0, 5.0, 1.0};
  const auto costs = WeightsToCosts(weights);
  // Higher weight -> lower cost; all costs in [1, 2].
  EXPECT_DOUBLE_EQ(costs[2], 1.0);  // max weight
  EXPECT_DOUBLE_EQ(costs[0], 2.0);  // min weight
  EXPECT_GT(costs[3], costs[1]);
  for (double c : costs) {
    EXPECT_GE(c, 1.0);
    EXPECT_LE(c, 2.0);
  }
}

TEST(CostTransformTest, EveryEdgeCostsAtLeastOne) {
  // The "+1 per edge" floor is what makes total cost minimize |E_S| first
  // (the paper's primary objective).
  const auto costs = WeightsToCosts({-5.0, 100.0, 7.0});
  for (double c : costs) EXPECT_GE(c, 1.0);
}

}  // namespace
}  // namespace xsum::core
