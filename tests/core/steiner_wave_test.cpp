/// Bit-identity tests of the batched KMB wave: `SteinerTreeWave` must
/// return, slot for slot, exactly what the sequential `SteinerTree` call
/// returns for the same terminal set — tree nodes/edges, unreached
/// terminals, workspace_bytes accounting, and error statuses — across
/// single-task waves, wide waves that exercise the internal chunking, the
/// Mehlhorn fallback, and heavy workspace reuse.

#include <vector>

#include <gtest/gtest.h>

#include "core/steiner.h"
#include "graph/cost_view.h"
#include "graph/knowledge_graph.h"
#include "graph/multi_query.h"
#include "graph/search_workspace.h"
#include "util/rng.h"

namespace xsum::core {
namespace {

using graph::CostView;
using graph::GraphBuilder;
using graph::KnowledgeGraph;
using graph::NodeId;
using graph::NodeType;
using graph::Relation;

KnowledgeGraph RandomGraph(size_t n, size_t extra_edges, uint64_t seed,
                           std::vector<double>* costs) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  Rng rng(seed);
  costs->clear();
  auto add = [&](NodeId a, NodeId b) {
    if (a == b) return;
    auto result = builder.AddEdge(a, b, Relation::kRelatedTo, 1.0);
    if (result.ok()) costs->push_back(1.0 + rng.Uniform(8));
  };
  for (NodeId v = 1; v < n; ++v) {
    add(static_cast<NodeId>(rng.Uniform(v)), v);
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    add(static_cast<NodeId>(rng.Uniform(n)),
        static_cast<NodeId>(rng.Uniform(n)));
  }
  return std::move(builder).Finalize();
}

void ExpectSlotIdentical(const Result<SteinerResult>& wave,
                         const Result<SteinerResult>& solo, size_t slot) {
  ASSERT_EQ(wave.ok(), solo.ok()) << "slot " << slot;
  if (!solo.ok()) {
    EXPECT_EQ(wave.status().code(), solo.status().code()) << "slot " << slot;
    return;
  }
  EXPECT_EQ(wave->tree.nodes(), solo->tree.nodes()) << "slot " << slot;
  EXPECT_EQ(wave->tree.edges(), solo->tree.edges()) << "slot " << slot;
  EXPECT_EQ(wave->unreached_terminals, solo->unreached_terminals)
      << "slot " << slot;
  EXPECT_EQ(wave->workspace_bytes, solo->workspace_bytes) << "slot " << slot;
}

TEST(SteinerWaveTest, RandomizedWavesMatchSequentialSlotBySlot) {
  Rng rng(808);
  graph::SearchWorkspace wave_ws;
  graph::SearchWorkspace solo_ws;
  graph::MultiQueryWorkspace mq;
  for (int round = 0; round < 8; ++round) {
    const size_t n = 30 + rng.Uniform(200);
    std::vector<double> costs;
    const KnowledgeGraph g = RandomGraph(n, 2 * n, 7000 + round, &costs);
    CostView view;
    view.Assign(g, costs);

    const size_t wave_size = 1 + rng.Uniform(12);
    std::vector<std::vector<NodeId>> terminal_sets(wave_size);
    for (auto& terminals : terminal_sets) {
      const size_t t = 1 + rng.Uniform(6);
      for (size_t i = 0; i < t; ++i) {
        terminals.push_back(static_cast<NodeId>(rng.Uniform(n)));
      }
    }

    SteinerOptions options;
    options.variant = SteinerOptions::Variant::kKmb;
    const auto wave =
        SteinerTreeWave(view, terminal_sets, options, &wave_ws, &mq);
    ASSERT_EQ(wave.size(), wave_size);
    for (size_t i = 0; i < wave_size; ++i) {
      const auto solo = SteinerTree(view, terminal_sets[i], options, &solo_ws);
      ExpectSlotIdentical(wave[i], solo, i);
    }
  }
}

TEST(SteinerWaveTest, WideWaveExercisesChunkingAndStaysIdentical) {
  // 70 tasks > kMaxWaveWidth (64): the wave must chunk internally and
  // remain slot-identical to sequential calls across the chunk boundary.
  std::vector<double> costs;
  const KnowledgeGraph g = RandomGraph(120, 300, 909, &costs);
  CostView view;
  view.Assign(g, costs);
  Rng rng(910);
  std::vector<std::vector<NodeId>> terminal_sets(70);
  for (auto& terminals : terminal_sets) {
    for (int i = 0; i < 3; ++i) {
      terminals.push_back(static_cast<NodeId>(rng.Uniform(120)));
    }
  }
  SteinerOptions options;
  options.variant = SteinerOptions::Variant::kKmb;
  graph::SearchWorkspace wave_ws;
  graph::SearchWorkspace solo_ws;
  graph::MultiQueryWorkspace mq;
  const auto wave = SteinerTreeWave(view, terminal_sets, options, &wave_ws,
                                    &mq);
  ASSERT_EQ(wave.size(), terminal_sets.size());
  for (size_t i = 0; i < terminal_sets.size(); ++i) {
    const auto solo = SteinerTree(view, terminal_sets[i], options, &solo_ws);
    ExpectSlotIdentical(wave[i], solo, i);
  }
}

TEST(SteinerWaveTest, BadTaskFailsItsSlotWithoutPoisoningTheWave) {
  std::vector<double> costs;
  const KnowledgeGraph g = RandomGraph(40, 80, 555, &costs);
  CostView view;
  view.Assign(g, costs);
  std::vector<std::vector<NodeId>> terminal_sets = {
      {1, 5, 9},
      {0, static_cast<NodeId>(1000)},  // out of range: must fail alone
      {2, 30, 17},
  };
  SteinerOptions options;
  options.variant = SteinerOptions::Variant::kKmb;
  graph::SearchWorkspace wave_ws;
  graph::SearchWorkspace solo_ws;
  graph::MultiQueryWorkspace mq;
  const auto wave = SteinerTreeWave(view, terminal_sets, options, &wave_ws,
                                    &mq);
  ASSERT_EQ(wave.size(), 3u);
  for (size_t i = 0; i < terminal_sets.size(); ++i) {
    const auto solo = SteinerTree(view, terminal_sets[i], options, &solo_ws);
    ExpectSlotIdentical(wave[i], solo, i);
  }
  EXPECT_FALSE(wave[1].ok());
  EXPECT_TRUE(wave[0].ok());
  EXPECT_TRUE(wave[2].ok());
}

TEST(SteinerWaveTest, MehlhornWaveFallsBackToSequentialResults) {
  std::vector<double> costs;
  const KnowledgeGraph g = RandomGraph(80, 160, 606, &costs);
  CostView view;
  view.Assign(g, costs);
  Rng rng(607);
  std::vector<std::vector<NodeId>> terminal_sets(5);
  for (auto& terminals : terminal_sets) {
    for (int i = 0; i < 4; ++i) {
      terminals.push_back(static_cast<NodeId>(rng.Uniform(80)));
    }
  }
  SteinerOptions options;
  options.variant = SteinerOptions::Variant::kMehlhorn;
  graph::SearchWorkspace wave_ws;
  graph::SearchWorkspace solo_ws;
  graph::MultiQueryWorkspace mq;
  const auto wave = SteinerTreeWave(view, terminal_sets, options, &wave_ws,
                                    &mq);
  ASSERT_EQ(wave.size(), terminal_sets.size());
  for (size_t i = 0; i < terminal_sets.size(); ++i) {
    const auto solo = SteinerTree(view, terminal_sets[i], options, &solo_ws);
    ExpectSlotIdentical(wave[i], solo, i);
  }
}

}  // namespace
}  // namespace xsum::core
