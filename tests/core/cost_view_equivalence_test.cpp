/// Property tests of the unified CostView layer (DESIGN.md §4): the
/// refactored kernels and every view-sharing route above them must be
/// bit-identical to the pre-refactor computation — per-relaxation
/// `costs[edge]` gathers, per-task cost rebuilds, and the indexed-heap
/// PCST frontier.
///
/// Coverage axes: cost modes × Eq. (1) weight overlays (λ, input paths) ×
/// worker counts × heap-vs-bucket frontier selection.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch.h"
#include "core/cost_transform.h"
#include "core/cost_views.h"
#include "core/pcst.h"
#include "core/steiner.h"
#include "core/summarizer.h"
#include "core/weight_adjust.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "graph/cost_view.h"
#include "graph/dijkstra.h"
#include "graph/search_workspace.h"
#include "util/rng.h"

namespace xsum::core {
namespace {

using graph::CostView;
using graph::EdgeId;
using graph::NodeId;
using graph::SearchWorkspace;

struct Fixture {
  data::Dataset dataset;
  data::RecGraph rg;
};

Fixture MakeFixture(double scale, uint64_t seed) {
  Fixture f;
  f.dataset = data::MakeSyntheticDataset(data::Ml1mConfig(scale, seed));
  f.rg = std::move(data::BuildRecGraph(f.dataset)).ValueOrDie();
  return f;
}

graph::Path RandomWalk(const data::RecGraph& rg, Rng* rng) {
  const graph::KnowledgeGraph& g = rg.graph();
  graph::Path path;
  NodeId v = rg.UserNode(static_cast<uint32_t>(rng->Uniform(rg.num_users())));
  path.nodes.push_back(v);
  for (int hop = 0; hop < 3; ++hop) {
    const auto nbrs = g.Neighbors(v);
    if (nbrs.empty()) break;
    const graph::AdjEntry& a = nbrs[rng->Uniform(nbrs.size())];
    path.nodes.push_back(a.neighbor);
    path.edges.push_back(a.edge);
    v = a.neighbor;
  }
  return path;
}

SummaryTask RandomTask(const data::RecGraph& rg, size_t num_terminals,
                       size_t num_paths, Rng* rng) {
  SummaryTask task;
  task.terminals.push_back(
      rg.UserNode(static_cast<uint32_t>(rng->Uniform(rg.num_users()))));
  while (task.terminals.size() < num_terminals) {
    task.terminals.push_back(
        rg.ItemNode(static_cast<uint32_t>(rng->Uniform(rg.num_items()))));
  }
  std::sort(task.terminals.begin(), task.terminals.end());
  task.terminals.erase(
      std::unique(task.terminals.begin(), task.terminals.end()),
      task.terminals.end());
  task.anchors = {task.terminals.front()};
  for (size_t p = 0; p < num_paths; ++p) {
    task.paths.push_back(RandomWalk(rg, rng));
  }
  task.s_size = std::max<size_t>(1, task.terminals.size() - 1);
  return task;
}

void ExpectIdentical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.subgraph.nodes(), b.subgraph.nodes());
  EXPECT_EQ(a.subgraph.edges(), b.subgraph.edges());
  EXPECT_EQ(a.unreached_terminals, b.unreached_terminals);
}

/// Pre-refactor single-source Dijkstra, transcribed verbatim from the
/// pre-CostView kernel: identical workspace machinery, but costs gathered
/// per relaxation by EdgeId from a flat vector. The refactored kernel must
/// reproduce its dist/parent/settled state bit-for-bit.
void PreRefactorDijkstraInto(const graph::KnowledgeGraph& graph,
                             const std::vector<double>& costs, NodeId source,
                             std::span<const NodeId> targets,
                             SearchWorkspace& ws) {
  ws.Begin(graph.num_nodes());
  size_t targets_remaining = 0;
  for (NodeId t : targets) {
    if (ws.Mark(t)) ++targets_remaining;
  }
  graph::IndexedMinHeap& heap = ws.heap();
  ws.Relax(source, 0.0, graph::kInvalidNode, graph::kInvalidEdge);
  heap.PushOrDecrease(source, 0.0);
  while (!heap.Empty()) {
    const NodeId u = heap.PopMin();
    ws.SetSettled(u);
    if (targets_remaining > 0 && ws.marked(u)) {
      ws.Unmark(u);
      if (--targets_remaining == 0) break;
    }
    const double du = ws.dist(u);
    for (const graph::AdjEntry& a : graph.Neighbors(u)) {
      const double nd = du + costs[a.edge];
      if (nd < ws.dist(a.neighbor)) {
        ws.Relax(a.neighbor, nd, u, a.edge);
        heap.PushOrDecrease(a.neighbor, nd);
      }
    }
  }
}

TEST(CostViewEquivalenceTest, DijkstraMatchesPreRefactorGatherAcrossModes) {
  const Fixture f = MakeFixture(0.03, 31);
  const graph::KnowledgeGraph& g = f.rg.graph();
  Rng rng(91);
  SearchWorkspace ref_ws;
  SearchWorkspace view_ws;
  for (CostMode mode : {CostMode::kWeightAwareLog, CostMode::kWeightAware,
                        CostMode::kUnit}) {
    const std::vector<double> costs =
        WeightsToCosts(f.rg.base_weights(), mode);
    CostView view;
    view.Assign(g, costs);
    for (int round = 0; round < 4; ++round) {
      const NodeId src =
          f.rg.UserNode(static_cast<uint32_t>(rng.Uniform(f.rg.num_users())));
      std::vector<NodeId> targets;
      for (int t = 0; t < 4; ++t) {
        targets.push_back(f.rg.ItemNode(
            static_cast<uint32_t>(rng.Uniform(f.rg.num_items()))));
      }
      PreRefactorDijkstraInto(g, costs, src, targets, ref_ws);
      DijkstraInto(view, src, targets, view_ws);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(ref_ws.dist(v), view_ws.dist(v)) << "node " << v;
        ASSERT_EQ(ref_ws.parent_node(v), view_ws.parent_node(v));
        ASSERT_EQ(ref_ws.parent_edge(v), view_ws.parent_edge(v));
        ASSERT_EQ(ref_ws.settled(v), view_ws.settled(v));
      }
    }
  }
}

TEST(CostViewEquivalenceTest,
     SharedAndRebuiltViewsAgreeAcrossModesAndOverlays) {
  // Every route to a summary — throwaway context (per-call view), reused
  // context (cached rebuild), engine with shared prebuilt views — must be
  // bit-identical, for every cost mode, with and without an Eq. (1)
  // overlay, including the λ extremes the paper sweeps.
  const Fixture f = MakeFixture(0.03, 32);
  BatchSummarizer engine(f.rg, /*num_workers=*/1);
  SummarizeContext reused;
  Rng rng(92);
  for (CostMode mode : {CostMode::kWeightAwareLog, CostMode::kWeightAware,
                        CostMode::kUnit}) {
    for (const double lambda : {0.0, 1.0, 100.0}) {
      for (const size_t num_paths : {size_t{0}, size_t{5}}) {
        const SummaryTask task = RandomTask(f.rg, 6, num_paths, &rng);
        for (auto variant : {SteinerOptions::Variant::kKmb,
                             SteinerOptions::Variant::kMehlhorn}) {
          SummarizerOptions options;
          options.method = SummaryMethod::kSteiner;
          options.cost_mode = mode;
          options.lambda = lambda;
          options.steiner.variant = variant;
          const Result<Summary> fresh = Summarize(f.rg, task, options);
          const Result<Summary> shared = engine.Run(task, options);
          const Result<Summary> rebuilt =
              SummarizeWith(f.rg, task, options, reused);
          ASSERT_TRUE(fresh.ok()) << fresh.status();
          ASSERT_TRUE(shared.ok()) << shared.status();
          ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
          ExpectIdentical(*fresh, *shared);
          ExpectIdentical(*fresh, *rebuilt);
        }
      }
    }
  }
}

TEST(CostViewEquivalenceTest, PcstSharedUnitViewMatchesFresh) {
  const Fixture f = MakeFixture(0.03, 33);
  BatchSummarizer engine(f.rg, /*num_workers=*/1);
  Rng rng(93);
  for (int round = 0; round < 4; ++round) {
    const SummaryTask task = RandomTask(f.rg, 4 + 3 * round, 2, &rng);
    SummarizerOptions options;
    options.method = SummaryMethod::kPcst;
    const Result<Summary> fresh = Summarize(f.rg, task, options);
    const Result<Summary> shared = engine.Run(task, options);
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    ASSERT_TRUE(shared.ok()) << shared.status();
    ExpectIdentical(*fresh, *shared);
  }
}

TEST(CostViewEquivalenceTest, WorkerCountsAreBitIdentical) {
  const Fixture f = MakeFixture(0.03, 34);
  Rng rng(94);
  std::vector<SummaryTask> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back(RandomTask(f.rg, 5, 3, &rng));
  for (SummaryMethod method : {SummaryMethod::kSteiner, SummaryMethod::kPcst}) {
    SummarizerOptions options;
    options.method = method;
    BatchSummarizer serial(f.rg, /*num_workers=*/1);
    BatchSummarizer parallel(f.rg, /*num_workers=*/4);
    const auto a = serial.RunAll(tasks, options);
    const auto b = parallel.RunAll(tasks, options);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(a[i].ok()) << a[i].status();
      ASSERT_TRUE(b[i].ok()) << b[i].status();
      ExpectIdentical(*a[i], *b[i]);
    }
  }
}

TEST(CostViewEquivalenceTest, BucketFrontierBitIdenticalToHeapPath) {
  // In the tie-free regime (growth_slack > 0) the Dial bucket frontier
  // and the delta-stepping frontier must reproduce the indexed-heap
  // growth exactly: same tree, same unreached set, bit-identical
  // objective. kAuto must agree with all of them.
  const Fixture f = MakeFixture(0.04, 35);
  SearchWorkspace heap_ws;
  SearchWorkspace bucket_ws;
  SearchWorkspace delta_ws;
  SearchWorkspace auto_ws;
  CostView unit_view;
  unit_view.AssignUnit(f.rg.graph());
  Rng rng(95);
  for (const double slack : {0.1, 0.5, 2.0}) {
    for (const bool strong_prune : {false, true}) {
      for (int round = 0; round < 3; ++round) {
        const SummaryTask task = RandomTask(f.rg, 4 + 5 * round, 0, &rng);
        PcstOptions options;
        options.growth_slack = slack;
        options.strong_prune = strong_prune;

        options.frontier = PcstOptions::Frontier::kHeap;
        const auto heap_result = PcstSummary(
            unit_view, f.rg.base_weights(), task.terminals, options, &heap_ws);
        options.frontier = PcstOptions::Frontier::kBucket;
        const auto bucket_result =
            PcstSummary(unit_view, f.rg.base_weights(), task.terminals,
                        options, &bucket_ws);
        options.frontier = PcstOptions::Frontier::kDelta;
        const auto delta_result =
            PcstSummary(unit_view, f.rg.base_weights(), task.terminals,
                        options, &delta_ws);
        options.frontier = PcstOptions::Frontier::kAuto;
        const auto auto_result = PcstSummary(
            unit_view, f.rg.base_weights(), task.terminals, options, &auto_ws);

        ASSERT_TRUE(heap_result.ok());
        ASSERT_TRUE(bucket_result.ok());
        ASSERT_TRUE(delta_result.ok());
        ASSERT_TRUE(auto_result.ok());
        EXPECT_EQ(heap_result->tree.nodes(), bucket_result->tree.nodes());
        EXPECT_EQ(heap_result->tree.edges(), bucket_result->tree.edges());
        EXPECT_EQ(heap_result->unreached_terminals,
                  bucket_result->unreached_terminals);
        EXPECT_EQ(heap_result->objective, bucket_result->objective);
        EXPECT_EQ(heap_result->tree.nodes(), delta_result->tree.nodes());
        EXPECT_EQ(heap_result->tree.edges(), delta_result->tree.edges());
        EXPECT_EQ(heap_result->unreached_terminals,
                  delta_result->unreached_terminals);
        EXPECT_EQ(heap_result->objective, delta_result->objective);
        EXPECT_EQ(heap_result->tree.nodes(), auto_result->tree.nodes());
        EXPECT_EQ(heap_result->tree.edges(), auto_result->tree.edges());
        EXPECT_EQ(heap_result->objective, auto_result->objective);
      }
    }
  }
}

TEST(CostViewEquivalenceTest, AutoSelectionKeepsHeapSemanticsAtZeroSlack) {
  // With slack 0 every growth key collapses to the same value, ordering is
  // pure tie-breaking, and kAuto must keep the indexed heap (the
  // compatibility anchor): identical results to a forced-heap run.
  const Fixture f = MakeFixture(0.03, 36);
  SearchWorkspace a_ws;
  SearchWorkspace b_ws;
  Rng rng(96);
  for (int round = 0; round < 4; ++round) {
    const SummaryTask task = RandomTask(f.rg, 5 + 2 * round, 0, &rng);
    PcstOptions heap_options;
    heap_options.frontier = PcstOptions::Frontier::kHeap;
    PcstOptions auto_options;  // default: kAuto, slack 0
    const auto forced = PcstSummary(f.rg.graph(), f.rg.base_weights(),
                                    task.terminals, heap_options, &a_ws);
    const auto chosen = PcstSummary(f.rg.graph(), f.rg.base_weights(),
                                    task.terminals, auto_options, &b_ws);
    ASSERT_TRUE(forced.ok());
    ASSERT_TRUE(chosen.ok());
    EXPECT_EQ(forced->tree.nodes(), chosen->tree.nodes());
    EXPECT_EQ(forced->tree.edges(), chosen->tree.edges());
    EXPECT_EQ(forced->objective, chosen->objective);
  }
}

TEST(CostViewEquivalenceTest, SharedViewsMatchPerTaskTransform) {
  // The lazily built shared views must carry exactly the bits the per-task
  // transform produces from the base weights.
  const Fixture f = MakeFixture(0.03, 37);
  SharedCostViews views(f.rg);
  for (CostMode mode : {CostMode::kWeightAwareLog, CostMode::kWeightAware,
                        CostMode::kUnit}) {
    const std::vector<double> expected =
        WeightsToCosts(f.rg.base_weights(), mode);
    const CostView& view = views.ForMode(mode);
    ASSERT_EQ(view.edge_costs().size(), expected.size());
    for (EdgeId e = 0; e < expected.size(); ++e) {
      ASSERT_EQ(view.cost(e), expected[e]) << "mode " << static_cast<int>(mode)
                                           << " edge " << e;
    }
  }
  EXPECT_TRUE(views.Matches(f.rg));
}

}  // namespace
}  // namespace xsum::core
