/// Tests for Algorithm 1 (ST summaries): correctness on hand-checked
/// graphs, the 2-approximation guarantee against brute force on small
/// random graphs, and structural invariants (tree, spans terminals,
/// terminal leaves only) as property sweeps over both variants.

#include <algorithm>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/steiner.h"
#include "graph/union_find.h"
#include "util/rng.h"

namespace xsum::core {
namespace {

using graph::EdgeId;
using graph::GraphBuilder;
using graph::KnowledgeGraph;
using graph::NodeId;
using graph::NodeType;
using graph::Relation;

/// Star: center 0, leaves 1..n.
KnowledgeGraph MakeStar(size_t leaves) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, leaves + 1);
  for (size_t i = 1; i <= leaves; ++i) {
    EXPECT_TRUE(
        builder.AddEdge(0, static_cast<NodeId>(i), Relation::kRelatedTo, 1.0)
            .ok());
  }
  return std::move(builder).Finalize();
}

std::vector<double> UnitCosts(const KnowledgeGraph& g) {
  return std::vector<double>(g.num_edges(), 1.0);
}

/// Exact minimum Steiner tree cost by enumerating edge subsets (tiny
/// graphs only).
double BruteForceSteinerCost(const KnowledgeGraph& g,
                             const std::vector<double>& costs,
                             const std::vector<NodeId>& terminals) {
  const size_t m = g.num_edges();
  double best = 1e300;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    graph::UnionFind uf(g.num_nodes());
    double cost = 0;
    for (size_t e = 0; e < m; ++e) {
      if (mask & (1u << e)) {
        uf.Union(g.edge(static_cast<EdgeId>(e)).src,
                 g.edge(static_cast<EdgeId>(e)).dst);
        cost += costs[e];
      }
    }
    bool connects = true;
    for (size_t t = 1; t < terminals.size(); ++t) {
      if (!uf.Connected(terminals[0], terminals[t])) {
        connects = false;
        break;
      }
    }
    if (connects) best = std::min(best, cost);
  }
  return best;
}

class SteinerVariantTest
    : public ::testing::TestWithParam<SteinerOptions::Variant> {
 protected:
  SteinerOptions Options() const {
    SteinerOptions o;
    o.variant = GetParam();
    return o;
  }
};

TEST_P(SteinerVariantTest, EmptyTerminals) {
  const KnowledgeGraph g = MakeStar(3);
  const auto result = SteinerTree(g, UnitCosts(g), {}, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.Empty());
}

TEST_P(SteinerVariantTest, SingleTerminalIsIsolatedNode) {
  const KnowledgeGraph g = MakeStar(3);
  const auto result = SteinerTree(g, UnitCosts(g), {2}, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree.num_nodes(), 1u);
  EXPECT_EQ(result->tree.num_edges(), 0u);
  EXPECT_TRUE(result->tree.ContainsNode(2));
}

TEST_P(SteinerVariantTest, TwoLeavesOfStarRouteViaCenter) {
  const KnowledgeGraph g = MakeStar(4);
  const auto result = SteinerTree(g, UnitCosts(g), {1, 3}, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree.num_edges(), 2u);
  EXPECT_TRUE(result->tree.ContainsNode(0));  // Steiner node
  EXPECT_TRUE(result->tree.IsTree(g));
  EXPECT_TRUE(result->unreached_terminals.empty());
}

TEST_P(SteinerVariantTest, AllLeavesSpanWholeStar) {
  const KnowledgeGraph g = MakeStar(5);
  const std::vector<NodeId> terminals = {1, 2, 3, 4, 5};
  const auto result = SteinerTree(g, UnitCosts(g), terminals, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree.num_edges(), 5u);
  for (NodeId t : terminals) EXPECT_TRUE(result->tree.ContainsNode(t));
}

TEST_P(SteinerVariantTest, DuplicateTerminalsIgnored) {
  const KnowledgeGraph g = MakeStar(4);
  const auto a = SteinerTree(g, UnitCosts(g), {1, 3}, Options());
  const auto b = SteinerTree(g, UnitCosts(g), {1, 3, 3, 1}, Options());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tree.edges(), b->tree.edges());
}

TEST_P(SteinerVariantTest, WeightedCostsChooseCheapRoute) {
  // 0-1 direct cost 5; 0-2 cost 1, 2-1 cost 1 => route via 2.
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 3);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRelatedTo, 5.0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, Relation::kRelatedTo, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1, Relation::kRelatedTo, 1.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto result = SteinerTree(g, g.WeightVector(), {0, 1}, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree.num_edges(), 2u);
  EXPECT_TRUE(result->tree.ContainsNode(2));
}

TEST_P(SteinerVariantTest, DisconnectedTerminalsReported) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 4);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRelatedTo, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3, Relation::kRelatedTo, 1.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto result = SteinerTree(g, UnitCosts(g), {0, 1, 3}, Options());
  ASSERT_TRUE(result.ok());
  // {0,1} is the largest connected terminal group; 3 is unreached.
  EXPECT_EQ(result->unreached_terminals, std::vector<NodeId>{3});
  EXPECT_TRUE(result->tree.ContainsNode(0));
  EXPECT_TRUE(result->tree.ContainsNode(3));  // still present, isolated
}

TEST_P(SteinerVariantTest, RejectsNegativeCosts) {
  const KnowledgeGraph g = MakeStar(3);
  std::vector<double> costs(g.num_edges(), -1.0);
  const auto result = SteinerTree(g, costs, {1, 2}, Options());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_P(SteinerVariantTest, RejectsShortCostVector) {
  const KnowledgeGraph g = MakeStar(3);
  const auto result = SteinerTree(g, {1.0}, {1, 2}, Options());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_P(SteinerVariantTest, RejectsOutOfRangeTerminal) {
  const KnowledgeGraph g = MakeStar(3);
  const auto result = SteinerTree(g, UnitCosts(g), {99}, Options());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

/// Property sweep on random graphs: result is a tree containing all
/// terminals, every leaf is a terminal, and total cost is within 2x of
/// the brute-force optimum.
TEST_P(SteinerVariantTest, RandomGraphInvariantsAndApproximation) {
  Rng rng(GetParam() == SteinerOptions::Variant::kKmb ? 101 : 202);
  for (int round = 0; round < 12; ++round) {
    const size_t n = 8;
    GraphBuilder builder;
    builder.AddNodes(NodeType::kEntity, n);
    // Ring + chords, <= 14 edges so brute force (2^14) stays fast.
    std::vector<std::pair<NodeId, NodeId>> used;
    for (size_t i = 0; i < n; ++i) {
      builder
          .AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                   Relation::kRelatedTo, rng.UniformDouble(0.5, 3.0))
          .ValueOrDie();
    }
    for (int c = 0; c < 6; ++c) {
      const NodeId a = static_cast<NodeId>(rng.Uniform(n));
      const NodeId b = static_cast<NodeId>(rng.Uniform(n));
      if (a == b) continue;
      builder.AddEdge(a, b, Relation::kRelatedTo, rng.UniformDouble(0.5, 3.0))
          .ValueOrDie();
    }
    const KnowledgeGraph g = std::move(builder).Finalize();
    const auto costs = g.WeightVector();

    std::vector<NodeId> terminals;
    for (uint64_t t : rng.SampleWithoutReplacement(n, 3)) {
      terminals.push_back(static_cast<NodeId>(t));
    }
    const auto result = SteinerTree(g, costs, terminals, Options());
    ASSERT_TRUE(result.ok());
    const auto& tree = result->tree;

    EXPECT_TRUE(tree.IsTree(g)) << "round " << round;
    for (NodeId t : terminals) EXPECT_TRUE(tree.ContainsNode(t));
    EXPECT_TRUE(result->unreached_terminals.empty());

    // Every degree-1 node of the tree must be a terminal.
    std::unordered_map<NodeId, int> degree;
    for (EdgeId e : tree.edges()) {
      ++degree[g.edge(e).src];
      ++degree[g.edge(e).dst];
    }
    for (const auto& [node, d] : degree) {
      if (d == 1) {
        EXPECT_TRUE(std::find(terminals.begin(), terminals.end(), node) !=
                    terminals.end())
            << "non-terminal leaf " << node;
      }
    }

    const double optimal = BruteForceSteinerCost(g, costs, terminals);
    EXPECT_LE(tree.TotalWeight(costs), 2.0 * optimal + 1e-9)
        << "approximation bound violated in round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, SteinerVariantTest,
                         ::testing::Values(SteinerOptions::Variant::kKmb,
                                           SteinerOptions::Variant::kMehlhorn),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          SteinerOptions::Variant::kKmb
                                      ? "Kmb"
                                      : "Mehlhorn";
                         });

TEST(SteinerCleanupTest, CleanupRemovesCycles) {
  // Without cleanup the expansion may contain overlapping paths; with
  // cleanup the result must be a tree.
  Rng rng(7);
  const size_t n = 12;
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.4)) {
        builder
            .AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                     Relation::kRelatedTo, rng.UniformDouble(0.5, 2.0))
            .ValueOrDie();
      }
    }
  }
  const KnowledgeGraph g = std::move(builder).Finalize();
  SteinerOptions with_cleanup;
  const auto result =
      SteinerTree(g, g.WeightVector(), {0, 3, 7, 11}, with_cleanup);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.IsTree(g));
}

TEST(SteinerWorkspaceTest, ReportsWorkspaceBytes) {
  const KnowledgeGraph g = MakeStar(6);
  const auto result = SteinerTree(g, UnitCosts(g), {1, 2, 3});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->workspace_bytes, 0u);
}

TEST(SteinerWorkspaceTest, KmbWorkspaceGrowsWithTerminals) {
  const KnowledgeGraph g = MakeStar(64);
  SteinerOptions kmb;
  kmb.variant = SteinerOptions::Variant::kKmb;
  const auto small = SteinerTree(g, UnitCosts(g), {1, 2, 3}, kmb);
  std::vector<NodeId> many;
  for (NodeId t = 1; t <= 40; ++t) many.push_back(t);
  const auto large = SteinerTree(g, UnitCosts(g), many, kmb);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->workspace_bytes, small->workspace_bytes);
}

}  // namespace
}  // namespace xsum::core
