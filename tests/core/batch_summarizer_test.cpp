/// Property tests of the batch summarization engine: a context reused
/// across tasks, methods, and graphs of different sizes must return
/// bit-identical summaries (tree nodes/edges, unreached terminals,
/// objective) to fresh single-shot calls.

#include "core/batch.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_transform.h"
#include "core/pcst.h"
#include "core/steiner.h"
#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "graph/path.h"
#include "util/rng.h"

namespace xsum::core {
namespace {

struct Fixture {
  data::Dataset dataset;
  data::RecGraph rg;
};

/// Synthetic ML1M-flavoured graphs at different scales and seeds.
Fixture MakeFixture(double scale, uint64_t seed) {
  Fixture f;
  f.dataset = data::MakeSyntheticDataset(data::Ml1mConfig(scale, seed));
  f.rg = std::move(data::BuildRecGraph(f.dataset)).ValueOrDie();
  return f;
}

/// Random walk from a user, used as a synthetic explanation path.
graph::Path RandomWalk(const data::RecGraph& rg, Rng* rng) {
  const graph::KnowledgeGraph& g = rg.graph();
  graph::Path path;
  graph::NodeId v =
      rg.UserNode(static_cast<uint32_t>(rng->Uniform(rg.num_users())));
  path.nodes.push_back(v);
  for (int hop = 0; hop < 3; ++hop) {
    const auto nbrs = g.Neighbors(v);
    if (nbrs.empty()) break;
    const graph::AdjEntry& a = nbrs[rng->Uniform(nbrs.size())];
    path.nodes.push_back(a.neighbor);
    path.edges.push_back(a.edge);
    v = a.neighbor;
  }
  return path;
}

SummaryTask RandomTask(const data::RecGraph& rg, size_t num_terminals,
                       size_t num_paths, Rng* rng) {
  SummaryTask task;
  task.terminals.push_back(
      rg.UserNode(static_cast<uint32_t>(rng->Uniform(rg.num_users()))));
  while (task.terminals.size() < num_terminals) {
    task.terminals.push_back(
        rg.ItemNode(static_cast<uint32_t>(rng->Uniform(rg.num_items()))));
  }
  std::sort(task.terminals.begin(), task.terminals.end());
  task.terminals.erase(
      std::unique(task.terminals.begin(), task.terminals.end()),
      task.terminals.end());
  task.anchors = {task.terminals.front()};
  for (size_t p = 0; p < num_paths; ++p) {
    task.paths.push_back(RandomWalk(rg, rng));
  }
  task.s_size = std::max<size_t>(1, task.terminals.size() - 1);
  return task;
}

std::vector<SummarizerOptions> MethodLineup() {
  std::vector<SummarizerOptions> methods;
  SummarizerOptions baseline;
  baseline.method = SummaryMethod::kBaseline;
  methods.push_back(baseline);
  for (auto variant : {SteinerOptions::Variant::kKmb,
                       SteinerOptions::Variant::kMehlhorn}) {
    SummarizerOptions st;
    st.method = SummaryMethod::kSteiner;
    st.lambda = 1.0;
    st.steiner.variant = variant;
    methods.push_back(st);
  }
  SummarizerOptions pcst;
  pcst.method = SummaryMethod::kPcst;
  methods.push_back(pcst);
  return methods;
}

void ExpectIdentical(const Summary& fresh, const Summary& reused) {
  EXPECT_EQ(fresh.subgraph.nodes(), reused.subgraph.nodes());
  EXPECT_EQ(fresh.subgraph.edges(), reused.subgraph.edges());
  EXPECT_EQ(fresh.unreached_terminals, reused.unreached_terminals);
}

TEST(BatchSummarizerTest, ReusedContextMatchesFreshAcrossGraphsAndMethods) {
  // One context shared by every task on every graph — including shrinking
  // back to a smaller graph — must be indistinguishable from fresh calls.
  SummarizeContext shared;
  Rng rng(4242);
  const std::vector<std::pair<double, uint64_t>> graphs = {
      {0.02, 11}, {0.05, 12}, {0.02, 13}};
  const auto methods = MethodLineup();
  for (const auto& [scale, seed] : graphs) {
    const Fixture f = MakeFixture(scale, seed);
    for (int task_idx = 0; task_idx < 4; ++task_idx) {
      const SummaryTask task = RandomTask(f.rg, 3 + 2 * task_idx, 4, &rng);
      for (const SummarizerOptions& options : methods) {
        const Result<Summary> fresh = Summarize(f.rg, task, options);
        const Result<Summary> reused =
            SummarizeWith(f.rg, task, options, shared);
        ASSERT_TRUE(fresh.ok()) << fresh.status();
        ASSERT_TRUE(reused.ok()) << reused.status();
        ExpectIdentical(*fresh, *reused);
      }
    }
  }
}

TEST(BatchSummarizerTest, SteinerWorkspaceReuseMatchesFreshIncludingInternals) {
  const Fixture f = MakeFixture(0.03, 21);
  const auto costs = WeightsToCosts(f.rg.base_weights());
  graph::SearchWorkspace reused;
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    const SummaryTask task = RandomTask(f.rg, 4 + round, 0, &rng);
    for (auto variant : {SteinerOptions::Variant::kKmb,
                         SteinerOptions::Variant::kMehlhorn}) {
      SteinerOptions options;
      options.variant = variant;
      const auto fresh =
          SteinerTree(f.rg.graph(), costs, task.terminals, options);
      const auto with_ws =
          SteinerTree(f.rg.graph(), costs, task.terminals, options, &reused);
      ASSERT_TRUE(fresh.ok());
      ASSERT_TRUE(with_ws.ok());
      EXPECT_EQ(fresh->tree.nodes(), with_ws->tree.nodes());
      EXPECT_EQ(fresh->tree.edges(), with_ws->tree.edges());
      EXPECT_EQ(fresh->unreached_terminals, with_ws->unreached_terminals);
    }
  }
}

TEST(BatchSummarizerTest, PcstWorkspaceReuseMatchesFreshIncludingObjective) {
  const Fixture f = MakeFixture(0.03, 22);
  graph::SearchWorkspace reused;
  Rng rng(78);
  for (int round = 0; round < 5; ++round) {
    const SummaryTask task = RandomTask(f.rg, 3 + 2 * round, 0, &rng);
    for (const bool strong_prune : {false, true}) {
      PcstOptions options;
      options.strong_prune = strong_prune;
      const auto fresh = PcstSummary(f.rg.graph(), f.rg.base_weights(),
                                     task.terminals, options);
      const auto with_ws = PcstSummary(f.rg.graph(), f.rg.base_weights(),
                                       task.terminals, options, &reused);
      ASSERT_TRUE(fresh.ok());
      ASSERT_TRUE(with_ws.ok());
      EXPECT_EQ(fresh->tree.nodes(), with_ws->tree.nodes());
      EXPECT_EQ(fresh->tree.edges(), with_ws->tree.edges());
      EXPECT_EQ(fresh->unreached_terminals, with_ws->unreached_terminals);
      EXPECT_EQ(fresh->objective, with_ws->objective);  // bit-identical
    }
  }
}

TEST(BatchSummarizerTest, RunAllPreservesTaskOrder) {
  const Fixture f = MakeFixture(0.03, 23);
  Rng rng(79);
  std::vector<SummaryTask> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(RandomTask(f.rg, 4, 2, &rng));
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;

  BatchSummarizer parallel_engine(f.rg, /*num_workers=*/4);
  const auto batched = parallel_engine.RunAll(tasks, options);
  ASSERT_EQ(batched.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Result<Summary> fresh = Summarize(f.rg, tasks[i], options);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(batched[i].ok()) << batched[i].status();
    ExpectIdentical(*fresh, *batched[i]);
    // RunAll slot i really answers tasks[i].
    EXPECT_EQ(batched[i]->terminals, tasks[i].terminals);
  }
}

TEST(BatchSummarizerTest, PropagatesErrorsPerTask) {
  const Fixture f = MakeFixture(0.02, 24);
  SummaryTask bad;
  bad.terminals = {static_cast<graph::NodeId>(f.rg.graph().num_nodes() + 7)};
  SummarizerOptions options;
  options.method = SummaryMethod::kPcst;
  BatchSummarizer engine(f.rg, 2);
  Rng rng(80);
  const std::vector<SummaryTask> tasks = {RandomTask(f.rg, 3, 0, &rng), bad};
  const auto results = engine.RunAll(tasks, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[1].status().IsInvalidArgument());
}

TEST(BatchSummarizerTest, WaveIsBitIdenticalToPerTaskRunsOnMixedTasks) {
  // RunWaveWith must return, slot for slot, exactly what RunWith returns:
  // summary bytes AND memory accounting. The mix matters — pathless KMB
  // tasks ride the multi-query kernel, tasks with explanation paths get a
  // λ overlay (ineligible) and must take the per-task path inside the
  // same wave call without disturbing their neighbours.
  const Fixture f = MakeFixture(0.03, 25);
  Rng rng(81);
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;
  options.steiner.variant = SteinerOptions::Variant::kKmb;
  options.lambda = 1.0;

  BatchSummarizer engine(f.rg, /*num_workers=*/2);
  for (int round = 0; round < 3; ++round) {
    std::vector<SummaryTask> tasks;
    for (int i = 0; i < 8; ++i) {
      // Even slots: kernel-eligible (no paths -> the Eq. (1) overlay is a
      // no-op). Odd slots: overlay tasks, per-task fallback.
      tasks.push_back(RandomTask(f.rg, 3 + i % 4, (i % 2) * 3, &rng));
    }
    std::vector<const SummaryTask*> ptrs;
    for (const SummaryTask& t : tasks) ptrs.push_back(&t);

    const auto wave = engine.RunWaveWith(0, ptrs, options);
    ASSERT_EQ(wave.size(), tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      const auto solo = engine.RunWith(1, tasks[i], options);
      ASSERT_TRUE(solo.ok()) << solo.status();
      ASSERT_TRUE(wave[i].ok()) << wave[i].status();
      ExpectIdentical(*solo, *wave[i]);
      EXPECT_EQ(wave[i]->terminals, solo->terminals);
      EXPECT_EQ(wave[i]->anchors, solo->anchors);
      EXPECT_EQ(wave[i]->memory_bytes, solo->memory_bytes) << "slot " << i;
    }
  }
}

TEST(BatchSummarizerTest, SingleTaskWaveMatchesRunWith) {
  const Fixture f = MakeFixture(0.02, 26);
  Rng rng(82);
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;
  options.steiner.variant = SteinerOptions::Variant::kKmb;
  const SummaryTask task = RandomTask(f.rg, 5, 0, &rng);
  BatchSummarizer engine(f.rg, 2);
  const auto wave = engine.RunWaveWith(0, {&task}, options);
  ASSERT_EQ(wave.size(), 1u);
  const auto solo = engine.RunWith(1, task, options);
  ASSERT_TRUE(wave[0].ok());
  ASSERT_TRUE(solo.ok());
  ExpectIdentical(*solo, *wave[0]);
  EXPECT_EQ(wave[0]->memory_bytes, solo->memory_bytes);
}

TEST(BatchSummarizerTest, WavePropagatesBadTaskWithoutPoisoningOthers) {
  const Fixture f = MakeFixture(0.02, 27);
  Rng rng(83);
  SummarizerOptions options;
  options.method = SummaryMethod::kSteiner;
  options.steiner.variant = SteinerOptions::Variant::kKmb;
  SummaryTask bad;
  bad.terminals = {static_cast<graph::NodeId>(f.rg.graph().num_nodes() + 7)};
  const SummaryTask good_a = RandomTask(f.rg, 4, 0, &rng);
  const SummaryTask good_b = RandomTask(f.rg, 3, 0, &rng);
  BatchSummarizer engine(f.rg, 1);
  const auto wave = engine.RunWaveWith(0, {&good_a, &bad, &good_b}, options);
  ASSERT_EQ(wave.size(), 3u);
  EXPECT_TRUE(wave[0].ok());
  EXPECT_FALSE(wave[1].ok());
  EXPECT_TRUE(wave[2].ok());
  const auto solo = engine.RunWith(0, good_b, options);
  ASSERT_TRUE(solo.ok());
  ExpectIdentical(*solo, *wave[2]);
}

}  // namespace
}  // namespace xsum::core
