/// Tests of the synthetic workload generators (replay/scenario.h):
/// seed determinism, the structural signature of each scenario kind
/// (storm concentration, tenant separation, recency windows, diurnal
/// drift), and the shared arrival-schedule invariants every generator
/// must satisfy for the emitted traces to replay.

#include "replay/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace xsum::replay {
namespace {

constexpr size_t kUniverse = 200;

ScenarioOptions SmallOptions(uint64_t seed = 42) {
  ScenarioOptions options;
  options.count = 600;
  options.seed = seed;
  options.mean_gap_us = 100.0;
  return options;
}

const std::vector<ScenarioKind> kAllKinds = {
    ScenarioKind::kDiurnal, ScenarioKind::kHotKey,
    ScenarioKind::kMultiTenant, ScenarioKind::kRecency};

TEST(ScenarioKindTest, NamesRoundTripAndErrorsAreNamed) {
  for (const ScenarioKind kind : kAllKinds) {
    const auto parsed = ParseScenarioKind(ScenarioKindName(kind));
    ASSERT_TRUE(parsed.ok()) << ScenarioKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  const auto bad = ParseScenarioKind("bursty");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("bursty"), std::string::npos);
  EXPECT_NE(bad.status().message().find("hotkey"), std::string::npos)
      << "error should list the valid kinds";
}

TEST(ScenarioTest, SameSeedIsBitDeterministicDifferentSeedDiverges) {
  for (const ScenarioKind kind : kAllKinds) {
    const auto a = GenerateScenario(kind, kUniverse, SmallOptions(7));
    const auto b = GenerateScenario(kind, kUniverse, SmallOptions(7));
    EXPECT_EQ(a, b) << ScenarioKindName(kind);
    const auto c = GenerateScenario(kind, kUniverse, SmallOptions(8));
    EXPECT_NE(a, c) << ScenarioKindName(kind);
  }
}

TEST(ScenarioTest, SharedArrivalInvariantsHoldForEveryKind) {
  const ScenarioOptions options = SmallOptions();
  for (const ScenarioKind kind : kAllKinds) {
    const auto events = GenerateScenario(kind, kUniverse, options);
    ASSERT_EQ(events.size(), options.count) << ScenarioKindName(kind);
    int64_t last_offset = 0;
    for (const ArrivalEvent& event : events) {
      EXPECT_GE(event.offset_us, last_offset) << ScenarioKindName(kind);
      last_offset = event.offset_us;
      EXPECT_LT(event.pick, kUniverse) << ScenarioKindName(kind);
      EXPECT_GT(event.offset_us, 0) << ScenarioKindName(kind);
    }
    // The default options spread work over more than one client.
    std::set<uint32_t> clients;
    for (const ArrivalEvent& event : events) clients.insert(event.client);
    EXPECT_GT(clients.size(), 1u) << ScenarioKindName(kind);
  }
}

TEST(ScenarioTest, EmptyUniverseOrCountYieldsNoEvents) {
  EXPECT_TRUE(GenerateScenario(ScenarioKind::kHotKey, 0, SmallOptions())
                  .empty());
  ScenarioOptions none = SmallOptions();
  none.count = 0;
  EXPECT_TRUE(GenerateScenario(ScenarioKind::kHotKey, kUniverse, none)
                  .empty());
  // A one-element universe is degenerate but legal.
  const auto tiny =
      GenerateScenario(ScenarioKind::kRecency, 1, SmallOptions());
  ASSERT_EQ(tiny.size(), SmallOptions().count);
  for (const ArrivalEvent& event : tiny) EXPECT_EQ(event.pick, 0u);
}

TEST(ScenarioTest, HotKeyStormConcentratesPicksAndAccelerates) {
  const ScenarioOptions options = SmallOptions();
  const auto events =
      GenerateScenario(ScenarioKind::kHotKey, kUniverse, options);
  const size_t begin =
      static_cast<size_t>(options.storm_begin_frac * options.count);
  const size_t end =
      static_cast<size_t>(options.storm_end_frac * options.count);

  // Inside the storm one key dominates; outside nothing does.
  std::map<size_t, size_t> storm_histogram;
  for (size_t i = begin; i < end; ++i) ++storm_histogram[events[i].pick];
  size_t hottest = 0;
  for (const auto& [pick, count] : storm_histogram) {
    hottest = std::max(hottest, count);
  }
  const size_t storm_events = end - begin;
  EXPECT_GT(hottest, storm_events / 2)
      << "storm_hot_frac=0.8 should collapse most storm picks onto one key";

  std::map<size_t, size_t> calm_histogram;
  for (size_t i = 0; i < begin; ++i) ++calm_histogram[events[i].pick];
  size_t calm_hottest = 0;
  for (const auto& [pick, count] : calm_histogram) {
    calm_hottest = std::max(calm_hottest, count);
  }
  EXPECT_LT(calm_hottest, begin / 2) << "no storm before the window";

  // The storm also compresses inter-arrival time: its window spans far
  // less wall time per event than the calm prefix.
  const double calm_span =
      static_cast<double>(events[begin - 1].offset_us - events[0].offset_us) /
      static_cast<double>(begin - 1);
  const double storm_span =
      static_cast<double>(events[end - 1].offset_us -
                          events[begin].offset_us) /
      static_cast<double>(storm_events - 1);
  EXPECT_LT(storm_span * 2.0, calm_span)
      << "storm_rate_boost=4 should visibly compress arrival gaps";
}

TEST(ScenarioTest, MultiTenantKeepsTenantsSeparableByClientId) {
  ScenarioOptions options = SmallOptions();
  options.tenants = 3;
  const auto events =
      GenerateScenario(ScenarioKind::kMultiTenant, kUniverse, options);
  ASSERT_EQ(events.size(), options.count);

  // Client id IS the tenant id, every tenant gets its fair share, and
  // each tenant prefers its own universe slice.
  std::map<uint32_t, size_t> per_tenant;
  std::map<uint32_t, size_t> in_own_slice;
  const size_t slice = kUniverse / options.tenants;
  for (const ArrivalEvent& event : events) {
    ASSERT_LT(event.client, options.tenants);
    ++per_tenant[event.client];
    const size_t base = event.client * slice;
    // Slices wrap modulo the universe; membership check mirrors that.
    const size_t relative = (event.pick + kUniverse - base) % kUniverse;
    if (relative < slice) ++in_own_slice[event.client];
  }
  ASSERT_EQ(per_tenant.size(), options.tenants);
  for (uint32_t t = 0; t < options.tenants; ++t) {
    EXPECT_GE(per_tenant[t], options.count / options.tenants)
        << "tenant " << t;
    EXPECT_EQ(in_own_slice[t], per_tenant[t])
        << "tenant " << t << " picked outside its slice";
  }
}

TEST(ScenarioTest, RecencyPicksSlideWithTheWindow) {
  ScenarioOptions options = SmallOptions();
  options.window_frac = 0.1;
  const auto events =
      GenerateScenario(ScenarioKind::kRecency, kUniverse, options);
  const size_t window = static_cast<size_t>(
      options.window_frac * static_cast<double>(kUniverse));
  for (size_t i = 0; i < events.size(); ++i) {
    const double phase =
        static_cast<double>(i) / static_cast<double>(options.count);
    const size_t start =
        static_cast<size_t>(phase * static_cast<double>(kUniverse));
    const size_t relative = (events[i].pick + kUniverse - start) % kUniverse;
    EXPECT_LT(relative, window) << "event " << i;
  }
  // Picks from an early window are disjoint from a later (non-wrapping)
  // window: the window moved. The final stretch wraps modulo the
  // universe, so compare the first eighth against [3/4, 7/8).
  std::set<size_t> early;
  std::set<size_t> late;
  for (size_t i = 0; i < events.size() / 8; ++i) early.insert(events[i].pick);
  for (size_t i = 3 * events.size() / 4; i < 7 * events.size() / 8; ++i) {
    late.insert(events[i].pick);
  }
  for (const size_t pick : late) {
    EXPECT_FALSE(early.count(pick)) << "window never advanced past " << pick;
  }
}

TEST(ScenarioTest, DiurnalDriftsTheHotSetAcrossTheRun) {
  ScenarioOptions options = SmallOptions();
  options.count = 1200;
  options.zipf_skew = 1.4;
  const auto events =
      GenerateScenario(ScenarioKind::kDiurnal, kUniverse, options);

  // The modal pick of the first quarter differs from the last quarter's:
  // same skew, rotated hot set.
  const auto modal = [&](size_t begin, size_t end) {
    std::map<size_t, size_t> histogram;
    for (size_t i = begin; i < end; ++i) ++histogram[events[i].pick];
    size_t best_pick = 0;
    size_t best_count = 0;
    for (const auto& [pick, count] : histogram) {
      if (count > best_count) {
        best_count = count;
        best_pick = pick;
      }
    }
    return best_pick;
  };
  EXPECT_NE(modal(0, events.size() / 4),
            modal(3 * events.size() / 4, events.size()))
      << "popularity never drifted";
}

}  // namespace
}  // namespace xsum::replay
