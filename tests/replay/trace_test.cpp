/// Tests of the versioned trace format (replay/trace.h): fingerprint
/// stability, record/trace/file round-trips, the strict line-numbered
/// rejection of malformed or truncated traces, and the TraceSink's
/// guarantee that live-recorded files always reload.

#include "replay/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/json.h"

namespace xsum::replay {
namespace {

net::JsonValue RequestJson(uint32_t user, int k) {
  const auto json = net::ParseJson(R"({"user":)" + std::to_string(user) +
                                   R"(,"k":)" + std::to_string(k) + "}");
  EXPECT_TRUE(json.ok());
  return *json;
}

TraceRecord MakeRecord(uint64_t seq, int64_t offset_us,
                       const std::string& client) {
  TraceRecord record;
  record.seq = seq;
  record.offset_us = offset_us;
  record.client = client;
  record.request = RequestJson(7, 3);
  record.status = 200;
  record.fingerprint = ResponseFingerprint(200, "body-" + client);
  return record;
}

Trace MakeTrace(size_t n) {
  Trace trace;
  for (size_t i = 0; i < n; ++i) {
    trace.records.push_back(MakeRecord(i, static_cast<int64_t>(i) * 250,
                                       "c" + std::to_string(i % 3)));
  }
  return trace;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/xsum_trace_test_" + name;
}

TEST(FingerprintTest, StableAndSensitiveToStatusAndBody) {
  const std::string fp = ResponseFingerprint(200, "hello");
  EXPECT_EQ(fp.size(), 16u);
  for (const char c : fp) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << fp;
  }
  EXPECT_EQ(fp, ResponseFingerprint(200, "hello"));
  EXPECT_NE(fp, ResponseFingerprint(200, "hello!"));
  EXPECT_NE(fp, ResponseFingerprint(404, "hello"));
  // The status/body separator prevents concatenation collisions:
  // (20, "0body") must not fingerprint like (200, "body").
  EXPECT_NE(ResponseFingerprint(200, "body"),
            ResponseFingerprint(20, "0body"));
  EXPECT_EQ(Fingerprint64(""), 1469598103934665603ull);  // FNV-1a basis
}

TEST(TraceRecordTest, JsonRoundTripPreservesEveryField) {
  const TraceRecord record = MakeRecord(4, 1234, "alpha");
  const auto json = net::ParseJson(record.ToJson().Dump());
  ASSERT_TRUE(json.ok());
  const auto parsed = TraceRecordFromJson(*json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 4u);
  EXPECT_EQ(parsed->offset_us, 1234);
  EXPECT_EQ(parsed->client, "alpha");
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->fingerprint, record.fingerprint);
  EXPECT_EQ(parsed->RequestBody(), record.RequestBody());
}

TEST(TraceRecordTest, RejectsMissingAndIllTypedMembers) {
  const std::string valid = MakeRecord(0, 0, "c").ToJson().Dump();
  ASSERT_TRUE(TraceRecordFromJson(*net::ParseJson(valid)).ok());

  const std::vector<std::string> bad = {
      R"([])",  // not an object
      R"({"seq":0,"offset_us":0,"client":"c","request":{},"status":200,"fp":"0123456789abcdef"})",  // no v
      R"({"v":1,"offset_us":0,"client":"c","request":{},"status":200,"fp":"0123456789abcdef"})",  // no seq
      R"({"v":1,"seq":-1,"offset_us":0,"client":"c","request":{},"status":200,"fp":"0123456789abcdef"})",
      R"({"v":1,"seq":0,"client":"c","request":{},"status":200,"fp":"0123456789abcdef"})",  // no offset
      R"({"v":1,"seq":0,"offset_us":-5,"client":"c","request":{},"status":200,"fp":"0123456789abcdef"})",
      R"({"v":1,"seq":0,"offset_us":0,"request":{},"status":200,"fp":"0123456789abcdef"})",  // no client
      R"({"v":1,"seq":0,"offset_us":0,"client":7,"request":{},"status":200,"fp":"0123456789abcdef"})",
      R"({"v":1,"seq":0,"offset_us":0,"client":"c","status":200,"fp":"0123456789abcdef"})",  // no request
      R"({"v":1,"seq":0,"offset_us":0,"client":"c","request":[],"status":200,"fp":"0123456789abcdef"})",
      R"({"v":1,"seq":0,"offset_us":0,"client":"c","request":{},"fp":"0123456789abcdef"})",  // no status
      R"({"v":1,"seq":0,"offset_us":0,"client":"c","request":{},"status":99,"fp":"0123456789abcdef"})",
      R"({"v":1,"seq":0,"offset_us":0,"client":"c","request":{},"status":600,"fp":"0123456789abcdef"})",
      R"({"v":1,"seq":0,"offset_us":0,"client":"c","request":{},"status":200})",  // no fp
      R"({"v":1,"seq":0,"offset_us":0,"client":"c","request":{},"status":200,"fp":"0123"})",  // short fp
      R"({"v":1,"seq":0,"offset_us":0,"client":"c","request":{},"status":200,"fp":"0123456789ABCDEF"})",  // upper
  };
  for (const std::string& document : bad) {
    const auto json = net::ParseJson(document);
    ASSERT_TRUE(json.ok()) << document;
    EXPECT_FALSE(TraceRecordFromJson(*json).ok()) << document;
  }
}

TEST(TraceRecordTest, UnknownVersionNamesBothVersions) {
  std::string line = MakeRecord(0, 0, "c").ToJson().Dump();
  net::JsonValue record = *net::ParseJson(line);
  record.Set("v", int64_t{2});
  const auto parsed = TraceRecordFromJson(record);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unsupported trace version 2"),
            std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("reads v1"), std::string::npos);
}

TEST(ParseTraceTest, DumpParseRoundTripIsTheIdentity) {
  const Trace trace = MakeTrace(5);
  const auto reloaded = ParseTrace(trace.Dump());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reloaded->records[i].seq, trace.records[i].seq);
    EXPECT_EQ(reloaded->records[i].offset_us, trace.records[i].offset_us);
    EXPECT_EQ(reloaded->records[i].client, trace.records[i].client);
    EXPECT_EQ(reloaded->records[i].fingerprint, trace.records[i].fingerprint);
    EXPECT_EQ(reloaded->records[i].RequestBody(),
              trace.records[i].RequestBody());
  }
  // And the round trip is byte-stable at the document level.
  EXPECT_EQ(reloaded->Dump(), trace.Dump());
}

TEST(ParseTraceTest, EmptyDocumentIsAnEmptyTrace) {
  const auto empty = ParseTrace("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ParseTraceTest, RejectionsCarryTheOffendingLineNumber) {
  const Trace trace = MakeTrace(3);
  const std::string good = trace.Dump();

  // Truncated final line (a partial write) is unparseable JSON.
  {
    const std::string cut = good.substr(0, good.size() - 20);
    const auto parsed = ParseTrace(cut);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("trace line 3"),
              std::string::npos)
        << parsed.status().ToString();
    EXPECT_NE(parsed.status().message().find("truncated"), std::string::npos);
  }
  // Non-contiguous seq: drop the middle line.
  {
    Trace gap;
    gap.records = {trace.records[0], trace.records[2]};
    const auto parsed = ParseTrace(gap.Dump());
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("trace line 2"),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find("non-contiguous seq 2"),
              std::string::npos)
        << parsed.status().ToString();
  }
  // Decreasing offsets.
  {
    Trace warped = MakeTrace(2);
    warped.records[0].offset_us = 100;
    warped.records[1].offset_us = 50;
    const auto parsed = ParseTrace(warped.Dump());
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("trace line 2"),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find("decreases"), std::string::npos);
  }
  // Blank interior line: seq renumbering hazard, rejected outright.
  {
    const size_t first_newline = good.find('\n');
    std::string blank = good;
    blank.insert(first_newline + 1, "\n");
    const auto parsed = ParseTrace(blank);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("blank line inside trace"),
              std::string::npos)
        << parsed.status().ToString();
  }
  // A record-level rejection is wrapped with its line number.
  {
    Trace versioned = MakeTrace(2);
    std::string text = versioned.records[0].ToJson().Dump() + "\n";
    net::JsonValue second = versioned.records[1].ToJson();
    second.Set("status", int64_t{42});
    text += second.Dump() + "\n";
    const auto parsed = ParseTrace(text);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("trace line 2"),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find("status"), std::string::npos);
  }
}

TEST(TraceFileTest, WriteThenLoadRoundTrips) {
  const std::string path = TempPath("roundtrip.jsonl");
  const Trace trace = MakeTrace(4);
  ASSERT_TRUE(WriteTrace(path, trace).ok());
  const auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Dump(), trace.Dump());
  std::remove(path.c_str());
}

TEST(TraceFileTest, LoadErrorsNameTheFile) {
  const auto missing = LoadTrace(TempPath("does_not_exist.jsonl"));
  EXPECT_FALSE(missing.ok());

  const std::string path = TempPath("corrupt.jsonl");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("{\"v\":1,\"seq\":0,\n", file);
  std::fclose(file);
  const auto corrupt = LoadTrace(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find(path), std::string::npos)
      << corrupt.status().ToString();
  EXPECT_NE(corrupt.status().message().find("trace line 1"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceSinkTest, RecordedFileSatisfiesEveryLoadInvariant) {
  const std::string path = TempPath("sink.jsonl");
  auto sink = TraceSink::Open(path);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();
  const std::vector<std::string> bodies = {"one", "two", "three"};
  for (size_t i = 0; i < bodies.size(); ++i) {
    (*sink)->Record("client-" + std::to_string(i % 2),
                    RequestJson(static_cast<uint32_t>(i), 2), 200, bodies[i]);
  }
  EXPECT_EQ((*sink)->recorded(), 3u);
  ASSERT_TRUE((*sink)->Close().ok());
  // Close is idempotent and records after close are dropped, not crashes.
  ASSERT_TRUE((*sink)->Close().ok());
  (*sink)->Record("late", RequestJson(9, 1), 200, "late");
  EXPECT_EQ((*sink)->recorded(), 3u);

  const auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  int64_t last_offset = 0;
  for (size_t i = 0; i < 3; ++i) {
    const TraceRecord& record = loaded->records[i];
    EXPECT_EQ(record.seq, i);
    EXPECT_GE(record.offset_us, last_offset);
    last_offset = record.offset_us;
    EXPECT_EQ(record.fingerprint, ResponseFingerprint(200, bodies[i]));
  }
  EXPECT_EQ(loaded->records[0].client, "client-0");
  EXPECT_EQ(loaded->records[1].client, "client-1");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xsum::replay
