/// Tests of the open-loop trace replayer (replay/replayer.h): schedule
/// construction (determinism, client mapping, speed scaling) as a pure
/// function, and the tentpole acceptance property end-to-end — a trace
/// recorded against the real serving stack replays at 1x and 4x with
/// every response byte-identical to the recorded fingerprint.

#include "replay/replayer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/runner.h"
#include "net/json.h"
#include "replay/scenario.h"
#include "replay/trace.h"
#include "service/handler.h"
#include "service/snapshot_registry.h"

namespace xsum::replay {
namespace {

TraceRecord ScheduleRecord(uint64_t seq, int64_t offset_us,
                           const std::string& client) {
  TraceRecord record;
  record.seq = seq;
  record.offset_us = offset_us;
  record.client = client;
  record.request = *net::ParseJson(R"({"user":1,"k":1})");
  record.fingerprint = ResponseFingerprint(200, client);
  return record;
}

TEST(BuildScheduleTest, MapsClientsByFirstAppearanceAndFoldsModulo) {
  Trace trace;
  // First-appearance order: b -> slot 0, a -> slot 1, c -> slot 2.
  trace.records = {
      ScheduleRecord(0, 0, "b"),   ScheduleRecord(1, 100, "a"),
      ScheduleRecord(2, 200, "b"), ScheduleRecord(3, 300, "c"),
      ScheduleRecord(4, 400, "a"),
  };

  // Auto client count: one thread per distinct id.
  ReplayOptions by_id;
  const ReplaySchedule full = BuildSchedule(trace, by_id);
  ASSERT_EQ(full.clients.size(), 3u);
  ASSERT_EQ(full.clients[0].size(), 2u);  // b
  EXPECT_EQ(full.clients[0][0].record_index, 0u);
  EXPECT_EQ(full.clients[0][1].record_index, 2u);
  ASSERT_EQ(full.clients[1].size(), 2u);  // a
  EXPECT_EQ(full.clients[1][0].record_index, 1u);
  EXPECT_EQ(full.clients[1][1].record_index, 4u);
  ASSERT_EQ(full.clients[2].size(), 1u);  // c
  EXPECT_EQ(full.clients[2][0].record_index, 3u);

  // Fewer threads than ids: c (slot 2) folds onto thread 0, per-client
  // order still intact within each thread.
  ReplayOptions two;
  two.num_clients = 2;
  const ReplaySchedule folded = BuildSchedule(trace, two);
  ASSERT_EQ(folded.clients.size(), 2u);
  ASSERT_EQ(folded.clients[0].size(), 3u);  // b, b, c
  EXPECT_EQ(folded.clients[0][0].record_index, 0u);
  EXPECT_EQ(folded.clients[0][1].record_index, 2u);
  EXPECT_EQ(folded.clients[0][2].record_index, 3u);
  ASSERT_EQ(folded.clients[1].size(), 2u);  // a, a

  // Pure function: identical inputs, identical schedule.
  EXPECT_EQ(BuildSchedule(trace, two), folded);
}

TEST(BuildScheduleTest, SpeedDividesTargetTimes) {
  Trace trace;
  trace.records = {ScheduleRecord(0, 1000, "x"),
                   ScheduleRecord(1, 5000, "x")};
  ReplayOptions options;
  options.speed = 4.0;
  const ReplaySchedule schedule = BuildSchedule(trace, options);
  ASSERT_EQ(schedule.clients.size(), 1u);
  EXPECT_EQ(schedule.clients[0][0].target_us, 250);
  EXPECT_EQ(schedule.clients[0][1].target_us, 1250);
}

TEST(BuildScheduleTest, EmptyTraceYieldsOneIdleClient) {
  const ReplaySchedule schedule = BuildSchedule(Trace{}, ReplayOptions{});
  ASSERT_EQ(schedule.clients.size(), 1u);
  EXPECT_TRUE(schedule.clients[0].empty());
}

eval::ExperimentConfig TinyConfig() {
  eval::ExperimentConfig config;
  config.scale = 0.02;
  config.users_per_gender = 3;
  config.items_popular = 3;
  config.items_unpopular = 3;
  config.ks = {1, 3, 5};
  return config;
}

/// Shared serving stack: trace recording and replay both issue against
/// the same deterministic engine (graph building dominates wall time).
class ReplayerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new eval::ExperimentRunner(TinyConfig());
    ASSERT_TRUE(runner_->Init().ok());
    auto data = runner_->ComputeBaseline(rec::RecommenderKind::kPgpr);
    ASSERT_TRUE(data.ok()) << data.status();
    catalog_ = new service::TaskCatalog();
    for (const core::UserRecs& ur : data->users) {
      catalog_->AddUserCentric(runner_->rec_graph(), ur, 5);
    }
    registry_ = new service::GraphSnapshotRegistry();
    registry_->Publish(
        service::GraphSnapshotRegistry::Alias(runner_->rec_graph()));
    service_ = new service::SummaryService(registry_);
    handler_ = new service::SummaryHandler(service_, catalog_);
  }

  static void TearDownTestSuite() {
    delete handler_;
    delete service_;
    delete registry_;
    delete catalog_;
    delete runner_;
    handler_ = nullptr;
    service_ = nullptr;
    registry_ = nullptr;
    catalog_ = nullptr;
    runner_ = nullptr;
  }

  static net::HttpResponse Issue(const TraceRecord& record) {
    net::HttpRequest request;
    request.method = "POST";
    request.target = "/summarize";
    request.body = record.RequestBody();
    return handler_->Handle(request);
  }

  /// Records a scenario-driven trace against the live stack: generated
  /// arrivals mapped onto catalog tasks, fingerprints from real
  /// responses — exactly what `xsum_server record` produces.
  static Trace RecordedTrace(size_t count) {
    ScenarioOptions options;
    options.count = count;
    options.seed = 17;
    options.mean_gap_us = 150.0;
    options.clients = 3;
    const auto& entries = catalog_->entries();
    const auto events =
        GenerateScenario(ScenarioKind::kHotKey, entries.size(), options);
    Trace trace;
    for (size_t i = 0; i < events.size(); ++i) {
      const auto& entry = entries[events[i].pick];
      TraceRecord record;
      record.seq = i;
      record.offset_us = events[i].offset_us;
      record.client = "c" + std::to_string(events[i].client);
      record.request = *net::ParseJson(
          R"({"user":)" + std::to_string(entry.unit) + R"(,"k":)" +
          std::to_string(entry.k) + "}");
      const net::HttpResponse response = Issue(record);
      EXPECT_EQ(response.status, 200) << response.body;
      record.status = response.status;
      record.fingerprint =
          ResponseFingerprint(response.status, response.body);
      trace.records.push_back(record);
    }
    return trace;
  }

  static eval::ExperimentRunner* runner_;
  static service::TaskCatalog* catalog_;
  static service::GraphSnapshotRegistry* registry_;
  static service::SummaryService* service_;
  static service::SummaryHandler* handler_;
};

eval::ExperimentRunner* ReplayerTest::runner_ = nullptr;
service::TaskCatalog* ReplayerTest::catalog_ = nullptr;
service::GraphSnapshotRegistry* ReplayerTest::registry_ = nullptr;
service::SummaryService* ReplayerTest::service_ = nullptr;
service::SummaryHandler* ReplayerTest::handler_ = nullptr;

TEST_F(ReplayerTest, RecordedTraceReplaysByteIdenticalAt1xAnd4x) {
  // The acceptance property: record once, replay at 1x and at 4x, every
  // response fingerprint equal to the recorded one. The trace survives a
  // serialization round trip on the way, as it would on disk.
  const Trace recorded = RecordedTrace(40);
  const auto trace = ParseTrace(recorded.Dump());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  for (const double speed : {1.0, 4.0}) {
    ReplayOptions options;
    options.speed = speed;
    const ReplayReport report =
        Replay(*trace, options,
               [](size_t, const TraceRecord& record) {
                 return Issue(record);
               });
    EXPECT_TRUE(report.ok) << "speed " << speed << ": "
                           << report.first_divergence_detail;
    EXPECT_EQ(report.issued, trace->size()) << speed;
    EXPECT_EQ(report.matched, trace->size()) << speed;
    EXPECT_EQ(report.mismatched, 0u) << speed;
    EXPECT_EQ(report.failed, 0u) << speed;
    EXPECT_EQ(report.latencies_ms.count(), trace->size()) << speed;
    EXPECT_GT(report.wall_ms, 0.0);
  }
}

TEST_F(ReplayerTest, DivergenceIsDetectedCountedAndNamed) {
  Trace trace = RecordedTrace(12);
  // Corrupt one recorded fingerprint: the stack still answers what it
  // answered, so the replay must flag exactly that record.
  const size_t victim = 5;
  trace.records[victim].fingerprint = std::string(16, '0');

  ReplayOptions options;
  options.speed = 8.0;
  const ReplayReport report = Replay(
      trace, options,
      [](size_t, const TraceRecord& record) { return Issue(record); });
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.mismatched, 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.matched, trace.size() - 1)
      << "replay must continue past the divergence";
  EXPECT_EQ(report.issued, trace.size());
  EXPECT_EQ(report.first_divergence_seq, victim);
  EXPECT_NE(report.first_divergence_detail.find("seq 5"), std::string::npos)
      << report.first_divergence_detail;

  // A status divergence counts as failed, not mismatched.
  Trace wrong_status = RecordedTrace(6);
  wrong_status.records[2].status = 503;
  const ReplayReport status_report = Replay(
      wrong_status, options,
      [](size_t, const TraceRecord& record) { return Issue(record); });
  EXPECT_FALSE(status_report.ok);
  EXPECT_EQ(status_report.failed, 1u);
  EXPECT_EQ(status_report.first_divergence_seq, 2u);
}

}  // namespace
}  // namespace xsum::replay
