/// Tests for request tracing (src/obs/trace.h): ID mint/parse/format,
/// concurrent span appends (the hedge-pool shape), the SpanTimer RAII
/// null-safety contract, and the bounded TraceLog ring with its JSON
/// exposition.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "net/json.h"

namespace xsum::obs {
namespace {

TEST(TraceIdTest, MintedIdsAreNonzeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = NewTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
}

TEST(TraceIdTest, HexRoundTrip) {
  const std::vector<uint64_t> ids = {1, 0xDEADBEEF, UINT64_MAX,
                                     0x00F3A90000000001ull};
  for (uint64_t id : ids) {
    const std::string hex = TraceIdToHex(id);
    EXPECT_EQ(hex.size(), 16u);
    uint64_t parsed = 0;
    ASSERT_TRUE(ParseTraceId(hex, &parsed)) << hex;
    EXPECT_EQ(parsed, id);
  }
}

TEST(TraceIdTest, ParseRejectsGarbageAndZero) {
  uint64_t id = 42;
  EXPECT_FALSE(ParseTraceId("", &id));
  EXPECT_FALSE(ParseTraceId("0", &id));            // zero is not a trace
  EXPECT_FALSE(ParseTraceId("0000000000000000", &id));
  EXPECT_FALSE(ParseTraceId("xyz", &id));
  EXPECT_FALSE(ParseTraceId("12345678901234567", &id));  // 17 digits
  EXPECT_FALSE(ParseTraceId("12 34", &id));
  EXPECT_EQ(id, 42u) << "failed parse must leave the output untouched";
  EXPECT_TRUE(ParseTraceId("a", &id));  // short forms are fine
  EXPECT_EQ(id, 0xAu);
}

TEST(TraceTest, ConcurrentAppendsAllLand) {
  // The hedge pool appends the straggling primary's span from another
  // thread while the caller appends its own — no span may be lost.
  Trace trace(NewTraceId());
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace.AddSpan("attempt", 0.0, 1.0, std::to_string(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(trace.spans().size(),
            static_cast<size_t>(kThreads * kSpansPerThread));
}

TEST(SpanTimerTest, RecordsOnDestructionAndNullTraceIsNoop) {
  Trace trace(NewTraceId());
  {
    SpanTimer span(&trace, "cache.lookup");
    span.set_note("hit");
  }
  const std::vector<Span> spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "cache.lookup");
  EXPECT_EQ(spans[0].note, "hit");
  EXPECT_GE(spans[0].elapsed_ms, 0.0);
  {
    SpanTimer null_span(nullptr, "compute");
    null_span.set_note("must not crash");
  }
}

TEST(TraceLogTest, FindAndRingBound) {
  TraceLog log(/*capacity=*/4);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    Trace trace(NewTraceId());
    trace.AddSpan("compute", 0.0, static_cast<double>(i));
    log.Record(trace);
    ids.push_back(trace.id());
  }
  EXPECT_EQ(log.Snapshot().size(), 4u);
  TraceLog::Entry entry;
  EXPECT_FALSE(log.Find(ids[0], &entry)) << "oldest must be evicted";
  EXPECT_FALSE(log.Find(ids[1], &entry));
  for (int i = 2; i < 6; ++i) {
    ASSERT_TRUE(log.Find(ids[i], &entry)) << i;
    EXPECT_EQ(entry.id, ids[i]);
    ASSERT_EQ(entry.spans.size(), 1u);
    EXPECT_DOUBLE_EQ(entry.spans[0].elapsed_ms, static_cast<double>(i));
  }
}

TEST(TraceLogTest, ToJsonCarriesIdsAndSpans) {
  TraceLog log;
  Trace trace(0xABCDEF0123456789ull);
  trace.AddSpan("queue.wait", 0.0, 1.5);
  trace.AddSpan("attempt", 1.5, 10.0, "127.0.0.1:9101 ok");
  log.Record(trace);
  const net::JsonValue json = log.ToJson();
  const net::JsonValue* traces = json.Find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  ASSERT_EQ(traces->items().size(), 1u);
  const net::JsonValue& entry = traces->items()[0];
  ASSERT_NE(entry.Find("id"), nullptr);
  EXPECT_EQ(entry.Find("id")->AsString(), "abcdef0123456789");
  const net::JsonValue* spans = entry.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items().size(), 2u);
  EXPECT_EQ(spans->items()[1].Find("name")->AsString(), "attempt");
  EXPECT_EQ(spans->items()[1].Find("note")->AsString(), "127.0.0.1:9101 ok");
}

}  // namespace
}  // namespace xsum::obs
