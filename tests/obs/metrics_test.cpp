/// Tests for the obs-layer metrics registry (src/obs/metrics.h): bucket
/// placement, the exact-merge property the fleet `/metrics` view depends
/// on (merged shard snapshots == one process that saw every sample,
/// bit-exact), the lossless JSON round-trip routers scrape, and the
/// deterministic Prometheus exposition.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "net/json.h"
#include "util/rng.h"

namespace xsum::obs {
namespace {

TEST(HistogramBucketsTest, IndexMatchesLog2Bounds) {
  EXPECT_EQ(HistogramBucketIndex(0), 0);
  EXPECT_EQ(HistogramBucketIndex(1), 1);
  EXPECT_EQ(HistogramBucketIndex(2), 2);
  EXPECT_EQ(HistogramBucketIndex(3), 2);
  EXPECT_EQ(HistogramBucketIndex(4), 3);
  // Every sample lands in the bucket whose [lower, upper) brackets it.
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t micros = rng.Next64() >> (rng.Uniform(64));
    const int index = HistogramBucketIndex(micros);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, kHistogramBuckets);
    EXPECT_GE(micros, HistogramBucketLowerMicros(index));
    if (index < kHistogramBuckets - 1) {
      EXPECT_LT(micros, HistogramBucketUpperMicros(index));
    }
  }
}

TEST(HistogramTest, EmptySnapshotIsWellDefined) {
  Histogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_TRUE(snapshot.empty());
  EXPECT_EQ(snapshot.MeanMs(), 0.0);
  EXPECT_EQ(snapshot.PercentileMs(50.0), 0.0);
  EXPECT_EQ(snapshot.PercentileMs(99.0), 0.0);
}

TEST(HistogramTest, SingleSampleReportsItselfAtEveryPercentile) {
  // The pinned /stats contract: after one request p50 == p99 == mean.
  Histogram histogram;
  histogram.RecordMs(3.5);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.MeanMs(), 3.5);
  EXPECT_DOUBLE_EQ(snapshot.PercentileMs(0.0), 3.5);
  EXPECT_DOUBLE_EQ(snapshot.PercentileMs(50.0), 3.5);
  EXPECT_DOUBLE_EQ(snapshot.PercentileMs(99.0), 3.5);
  EXPECT_DOUBLE_EQ(snapshot.PercentileMs(100.0), 3.5);
}

TEST(HistogramTest, PercentilesAreMonotoneAndClampedToObservedRange) {
  Histogram histogram;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    histogram.RecordMicros(rng.Uniform(2'000'000));
  }
  const HistogramSnapshot snapshot = histogram.Snapshot();
  double previous = -1.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double value = snapshot.PercentileMs(p);
    EXPECT_GE(value, previous) << "p" << p;
    EXPECT_GE(value, static_cast<double>(snapshot.min_micros) / 1000.0);
    EXPECT_LE(value, static_cast<double>(snapshot.max_micros) / 1000.0);
    previous = value;
  }
}

TEST(HistogramTest, NegativeAndZeroSamplesClampToBucketZero) {
  Histogram histogram;
  histogram.RecordMs(-5.0);
  histogram.RecordMs(0.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.sum_micros, 0u);
}

/// The tentpole property: splitting one sample stream across K shard
/// histograms and merging the snapshots reproduces the single-process
/// histogram *bit-exactly* — counts, sum, min, max, every bucket.
TEST(HistogramMergeTest, MergeOfShardSplitsEqualsSingleProcess) {
  for (uint64_t seed : {1ull, 42ull, 999ull}) {
    for (size_t num_shards : {2u, 3u, 7u}) {
      Histogram combined;
      std::vector<Histogram> shards(num_shards);
      Rng rng(seed);
      for (int i = 0; i < 4000; ++i) {
        // Heavy-tailed stream: shifted uniform exponents cover every
        // bucket regime including the +Inf overflow.
        const uint64_t micros = rng.Next64() >> rng.Uniform(64);
        combined.RecordMicros(micros);
        shards[rng.Uniform(num_shards)].RecordMicros(micros);
      }
      HistogramSnapshot merged;  // starts empty, the identity
      for (const Histogram& shard : shards) merged += shard.Snapshot();
      EXPECT_EQ(merged, combined.Snapshot())
          << "seed " << seed << ", " << num_shards << " shards";
    }
  }
}

/// The fleet-view tail contract: merging shard snapshots must never
/// report a percentile *below* what every shard reports locally — a
/// merged p99 under the lowest shard p99 would mean the router's
/// `/metrics` hides a tail that every shard can see. Randomized over
/// shard counts, sample counts (down to the single-sample point-mass
/// snapshots that broke the old interpolating estimator), and three
/// value regimes (uniform, exponential bucket ladder incl. overflow,
/// and narrow same-bucket clusters).
TEST(HistogramMergeTest, MergedPercentileNeverBelowAnyShard) {
  Rng rng(31);
  for (int iteration = 0; iteration < 4000; ++iteration) {
    const size_t num_shards = 2 + rng.Uniform(4);
    std::vector<HistogramSnapshot> shards;
    HistogramSnapshot merged;
    for (size_t s = 0; s < num_shards; ++s) {
      Histogram histogram;
      const size_t samples = 1 + rng.Uniform(20);
      const uint64_t regime = rng.Uniform(3);
      for (size_t i = 0; i < samples; ++i) {
        uint64_t micros = 0;
        if (regime == 0) {
          micros = rng.Uniform(5000);
        } else if (regime == 1) {
          micros = uint64_t{1} << rng.Uniform(51);
        } else {
          micros = 90 + rng.Uniform(21);
        }
        histogram.RecordMicros(micros);
      }
      shards.push_back(histogram.Snapshot());
      merged += shards.back();
    }
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
      double lowest_shard = shards[0].PercentileMs(p);
      for (const HistogramSnapshot& shard : shards) {
        lowest_shard = std::min(lowest_shard, shard.PercentileMs(p));
      }
      const double fleet = merged.PercentileMs(p);
      ASSERT_GE(fleet, lowest_shard)
          << "p" << p << " iteration " << iteration;
      // Duplication invariance: K identical replicas merge to the same
      // percentiles one replica reports (counts, sum, and extremes all
      // scale together, so the estimate must not move).
      HistogramSnapshot doubled = merged;
      doubled += merged;
      ASSERT_DOUBLE_EQ(doubled.PercentileMs(p), fleet)
          << "p" << p << " iteration " << iteration;
    }
  }
}

TEST(HistogramMergeTest, MergeWithEmptyIsIdentity) {
  Histogram histogram;
  histogram.RecordMs(1.25);
  histogram.RecordMs(900.0);
  HistogramSnapshot merged = histogram.Snapshot();
  merged += HistogramSnapshot();
  EXPECT_EQ(merged, histogram.Snapshot());
  HistogramSnapshot other;
  other += histogram.Snapshot();
  EXPECT_EQ(other, histogram.Snapshot());
}

TEST(RegistryTest, HandlesAreStableAndSnapshotSeesEverything) {
  Registry registry;
  Counter* counter = registry.GetCounter("requests");
  EXPECT_EQ(counter, registry.GetCounter("requests"));
  counter->Add(3);
  registry.GetGauge("depth")->Set(-2);
  registry.GetHistogram("latency_ms")->RecordMs(1.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("requests"), 3u);
  EXPECT_EQ(snapshot.gauges.at("depth"), -2);
  EXPECT_EQ(snapshot.histograms.at("latency_ms").count, 1u);
}

TEST(MetricsSnapshotTest, MergeAddsCountersGaugesAndHistograms) {
  Registry a;
  Registry b;
  a.GetCounter("requests")->Add(5);
  b.GetCounter("requests")->Add(7);
  b.GetCounter("only_b")->Add(1);
  a.GetGauge("in_flight")->Set(2);
  b.GetGauge("in_flight")->Set(3);
  a.GetHistogram("latency_ms")->RecordMs(1.0);
  b.GetHistogram("latency_ms")->RecordMs(64.0);
  MetricsSnapshot merged = a.Snapshot();
  merged += b.Snapshot();
  EXPECT_EQ(merged.counters.at("requests"), 12u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_EQ(merged.gauges.at("in_flight"), 5);
  EXPECT_EQ(merged.histograms.at("latency_ms").count, 2u);
}

/// Router scrape path: registry snapshot -> JSON -> parse -> merge must
/// lose nothing, including the empty-histogram min sentinel.
TEST(MetricsSnapshotTest, JsonRoundTripIsLossless) {
  Registry registry;
  registry.GetCounter("service_requests")->Add(123);
  registry.GetGauge("cache_bytes")->Set(1 << 20);
  Histogram* histogram = registry.GetHistogram("service_latency_ms");
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    histogram->RecordMicros(rng.Next64() >> rng.Uniform(64));
  }
  registry.GetHistogram("never_recorded");  // empty: min == UINT64_MAX
  const MetricsSnapshot original = registry.Snapshot();

  const std::string wire = original.ToJson().Dump();
  auto parsed_json = net::ParseJson(wire);
  ASSERT_TRUE(parsed_json.ok()) << parsed_json.status().ToString();
  auto round_tripped = MetricsSnapshotFromJson(*parsed_json);
  ASSERT_TRUE(round_tripped.ok()) << round_tripped.status().ToString();
  EXPECT_EQ(*round_tripped, original);
}

TEST(MetricsSnapshotTest, FromJsonRejectsBucketCountMismatch) {
  Registry registry;
  registry.GetHistogram("h")->RecordMs(1.0);
  net::JsonValue json = registry.Snapshot().ToJson();
  // Truncate the bucket array: the strict parser must refuse rather than
  // guess (size-mismatch merges silently corrupt fleet counts). Find()
  // is const-only, so rebuild the nested objects via copies + Set.
  const net::JsonValue* histograms = json.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const net::JsonValue* h = histograms->Find("h");
  ASSERT_NE(h, nullptr);
  net::JsonValue truncated = net::JsonValue::Array();
  truncated.Append(net::JsonValue(int64_t{1}));
  net::JsonValue h_copy = *h;
  h_copy.Set("counts", std::move(truncated));
  net::JsonValue histograms_copy = *histograms;
  histograms_copy.Set("h", std::move(h_copy));
  json.Set("histograms", std::move(histograms_copy));
  auto parsed = MetricsSnapshotFromJson(json);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(MetricsSnapshotTest, PrometheusTextIsDeterministicAndWellFormed) {
  Registry registry;
  registry.GetCounter("service_requests")->Add(9);
  registry.GetGauge("service_in_flight")->Set(1);
  registry.GetHistogram("service_latency_ms")->RecordMs(2.0);
  registry.GetHistogram("service_latency_ms")->RecordMs(700.0);
  const std::string text = registry.Snapshot().PrometheusText();
  EXPECT_EQ(text, registry.Snapshot().PrometheusText());

  EXPECT_NE(text.find("# TYPE xsum_service_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("xsum_service_requests_total 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE xsum_service_in_flight gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE xsum_service_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("xsum_service_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("xsum_service_latency_ms_count 2"), std::string::npos);
  // Merged-then-rendered equals rendered merge: exposition is a pure
  // function of snapshot state.
  MetricsSnapshot merged = registry.Snapshot();
  merged += MetricsSnapshot();
  EXPECT_EQ(merged.PrometheusText(), text);
}

TEST(MetricsSnapshotTest, PrometheusBucketCountsAreCumulative) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("h");
  histogram->RecordMicros(1);    // bucket 1
  histogram->RecordMicros(3);    // bucket 2
  histogram->RecordMicros(100);  // bucket 7
  const std::string text = registry.Snapshot().PrometheusText();
  // The +Inf bucket must equal _count (3), and earlier bucket lines are
  // nondecreasing — spot-check by extracting every bucket value.
  size_t pos = 0;
  uint64_t previous = 0;
  int lines = 0;
  while ((pos = text.find("xsum_h_bucket{le=\"", pos)) != std::string::npos) {
    const size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const uint64_t value = std::stoull(text.substr(value_at + 2));
    EXPECT_GE(value, previous);
    previous = value;
    ++lines;
    pos = value_at;
  }
  EXPECT_EQ(lines, kHistogramBuckets);
  EXPECT_EQ(previous, 3u);
}

}  // namespace
}  // namespace xsum::obs
