/// Tests for union-find, BFS, Kruskal MST, and weak connectivity.

#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/connectivity.h"
#include "graph/knowledge_graph.h"
#include "graph/mst.h"
#include "graph/union_find.h"
#include "util/rng.h"

namespace xsum::graph {
namespace {

// --- UnionFind ---------------------------------------------------------------

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_EQ(uf.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMergesAndReports) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFindTest, TransitiveMerging) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.num_sets(), 3u);  // {0,1,2,3}, {4}, {5}
}

TEST(UnionFindTest, LargeChain) {
  const size_t n = 10000;
  UnionFind uf(n);
  for (size_t i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.Connected(0, n - 1));
}

// --- BFS -----------------------------------------------------------------------

KnowledgeGraph MakeStar(size_t leaves) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, leaves + 1);
  for (size_t i = 1; i <= leaves; ++i) {
    EXPECT_TRUE(
        builder.AddEdge(0, static_cast<NodeId>(i), Relation::kRelatedTo, 1.0)
            .ok());
  }
  return std::move(builder).Finalize();
}

TEST(BfsTest, StarDistances) {
  const KnowledgeGraph g = MakeStar(4);
  const auto hops = BfsHops(g, 0);
  EXPECT_EQ(hops[0], 0);
  for (NodeId v = 1; v <= 4; ++v) EXPECT_EQ(hops[v], 1);
  const auto from_leaf = BfsHops(g, 1);
  EXPECT_EQ(from_leaf[0], 1);
  EXPECT_EQ(from_leaf[2], 2);
}

TEST(BfsTest, HopLimitCutsSearch) {
  // Path 0-1-2-3.
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 4);
  for (NodeId i = 0; i < 3; ++i) {
    ASSERT_TRUE(builder.AddEdge(i, i + 1, Relation::kRelatedTo, 1.0).ok());
  }
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto hops = BfsHops(g, 0, /*max_hops=*/1);
  EXPECT_EQ(hops[1], 1);
  EXPECT_EQ(hops[2], kUnreachedHops);
  EXPECT_EQ(hops[3], kUnreachedHops);
}

TEST(BfsTest, TreeParentsConsistent) {
  const KnowledgeGraph g = MakeStar(3);
  const BfsTree tree = Bfs(g, 1);
  EXPECT_EQ(tree.parent_node[0], 1u);
  EXPECT_EQ(tree.parent_node[2], 0u);
  EXPECT_EQ(tree.parent_node[1], kInvalidNode);
}

TEST(BfsTest, Eccentricity) {
  const KnowledgeGraph g = MakeStar(3);
  EXPECT_EQ(Eccentricity(g, 0), 1);
  EXPECT_EQ(Eccentricity(g, 1), 2);
}

TEST(BfsTest, DisconnectedUnreached) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 3);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRelatedTo, 1.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto hops = BfsHops(g, 0);
  EXPECT_EQ(hops[2], kUnreachedHops);
}

// --- Kruskal MST ----------------------------------------------------------------

TEST(KruskalTest, SimpleTriangle) {
  // Triangle with weights 1, 2, 3: MST takes the two cheapest.
  std::vector<MstEdge> edges = {{0, 1, 1.0, 10}, {1, 2, 2.0, 11},
                                {0, 2, 3.0, 12}};
  const auto selected = KruskalMst(3, edges);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 0u);
  EXPECT_EQ(selected[1], 1u);
}

TEST(KruskalTest, DisconnectedProducesForest) {
  std::vector<MstEdge> edges = {{0, 1, 1.0, 0}, {2, 3, 1.0, 1}};
  const auto selected = KruskalMst(4, edges);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(KruskalTest, EmptyInputs) {
  EXPECT_TRUE(KruskalMst(0, {}).empty());
  EXPECT_TRUE(KruskalMst(5, {}).empty());
}

TEST(KruskalTest, DeterministicTieBreaking) {
  std::vector<MstEdge> edges = {{0, 1, 1.0, 0}, {0, 1, 1.0, 1},
                                {1, 2, 1.0, 2}};
  const auto a = KruskalMst(3, edges);
  const auto b = KruskalMst(3, edges);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 0u);  // stable sort keeps input order on ties
}

TEST(KruskalTest, MstWeightMatchesBruteForceOnRandomGraphs) {
  // Compare Kruskal's total weight against exhaustive spanning-tree search
  // on tiny graphs (n = 5: check all edge subsets of size n-1).
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    const size_t n = 5;
    std::vector<MstEdge> edges;
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        edges.push_back({a, b, rng.UniformDouble(0.1, 5.0), edges.size()});
      }
    }
    const auto selected = KruskalMst(n, edges);
    double kruskal_weight = 0;
    for (size_t idx : selected) kruskal_weight += edges[idx].weight;

    double best = 1e300;
    const size_t m = edges.size();
    for (uint32_t mask = 0; mask < (1u << m); ++mask) {
      if (__builtin_popcount(mask) != static_cast<int>(n - 1)) continue;
      UnionFind uf(n);
      double w = 0;
      for (size_t e = 0; e < m; ++e) {
        if (mask & (1u << e)) {
          uf.Union(edges[e].a, edges[e].b);
          w += edges[e].weight;
        }
      }
      if (uf.num_sets() == 1) best = std::min(best, w);
    }
    EXPECT_NEAR(kruskal_weight, best, 1e-9);
  }
}

// --- connectivity ------------------------------------------------------------------

TEST(ConnectivityTest, SingleComponent) {
  const KnowledgeGraph g = MakeStar(5);
  const auto comps = WeaklyConnectedComponents(g);
  EXPECT_EQ(comps.num_components, 1u);
  EXPECT_EQ(comps.sizes[0], 6u);
  EXPECT_TRUE(IsWeaklyConnected(g));
}

TEST(ConnectivityTest, MultipleComponents) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 5);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRelatedTo, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3, Relation::kRelatedTo, 1.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto comps = WeaklyConnectedComponents(g);
  EXPECT_EQ(comps.num_components, 3u);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(comps.component[0], comps.component[1]);
  EXPECT_NE(comps.component[0], comps.component[2]);
  EXPECT_FALSE(IsWeaklyConnected(g));
}

TEST(ConnectivityTest, EmptyGraphIsConnected) {
  GraphBuilder builder;
  const KnowledgeGraph g = std::move(builder).Finalize();
  EXPECT_TRUE(IsWeaklyConnected(g));
}

}  // namespace
}  // namespace xsum::graph
