#include "graph/knowledge_graph.h"

#include <gtest/gtest.h>

#include "graph/types.h"

namespace xsum::graph {
namespace {

TEST(GraphBuilderTest, AddNodesAssignsSequentialIds) {
  GraphBuilder builder;
  EXPECT_EQ(builder.AddNode(NodeType::kUser), 0u);
  EXPECT_EQ(builder.AddNode(NodeType::kItem), 1u);
  EXPECT_EQ(builder.AddNodes(NodeType::kEntity, 3), 2u);
  EXPECT_EQ(builder.num_nodes(), 5u);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoints) {
  GraphBuilder builder;
  builder.AddNode(NodeType::kUser);
  auto r = builder.AddEdge(0, 5, Relation::kRated, 1.0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsSelfLoops) {
  GraphBuilder builder;
  builder.AddNode(NodeType::kUser);
  auto r = builder.AddEdge(0, 0, Relation::kRated, 1.0);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

KnowledgeGraph MakeTriangle() {
  // u0 - i1 - e2 - u0 (one edge each).
  GraphBuilder builder;
  builder.AddNode(NodeType::kUser);
  builder.AddNode(NodeType::kItem);
  builder.AddNode(NodeType::kEntity);
  EXPECT_TRUE(builder.AddEdge(0, 1, Relation::kRated, 5.0).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, Relation::kHasGenre, 0.0).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2, Relation::kUserAttribute, 0.5).ok());
  return std::move(builder).Finalize();
}

TEST(KnowledgeGraphTest, BasicCounts) {
  const KnowledgeGraph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.NumNodesOfType(NodeType::kUser), 1u);
  EXPECT_EQ(g.NumNodesOfType(NodeType::kItem), 1u);
  EXPECT_EQ(g.NumNodesOfType(NodeType::kEntity), 1u);
}

TEST(KnowledgeGraphTest, NodeTypePredicates) {
  const KnowledgeGraph g = MakeTriangle();
  EXPECT_TRUE(g.IsUser(0));
  EXPECT_TRUE(g.IsItem(1));
  EXPECT_TRUE(g.IsEntity(2));
  EXPECT_FALSE(g.IsUser(1));
}

TEST(KnowledgeGraphTest, UndirectedAdjacencyContainsBothDirections) {
  const KnowledgeGraph g = MakeTriangle();
  // Every node of the triangle has undirected degree 2.
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.Degree(v), 2u);
  // u0's neighbors are i1 and e2, sorted by id.
  const auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].neighbor, 1u);
  EXPECT_EQ(nbrs[1].neighbor, 2u);
}

TEST(KnowledgeGraphTest, FindEdgeSymmetric) {
  const KnowledgeGraph g = MakeTriangle();
  const EdgeId e = g.FindEdge(0, 1);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(g.FindEdge(1, 0), e);
  EXPECT_EQ(g.edge(e).relation, Relation::kRated);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 5.0);
}

TEST(KnowledgeGraphTest, FindEdgeMissing) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kUser, 4);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRated, 1.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  EXPECT_EQ(g.FindEdge(0, 2), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(2, 3), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 99), kInvalidEdge);
}

TEST(KnowledgeGraphTest, OtherEndpoint) {
  const KnowledgeGraph g = MakeTriangle();
  const EdgeId e = g.FindEdge(0, 1);
  EXPECT_EQ(g.OtherEndpoint(e, 0), 1u);
  EXPECT_EQ(g.OtherEndpoint(e, 1), 0u);
}

TEST(KnowledgeGraphTest, WeightVectorMatchesEdges) {
  const KnowledgeGraph g = MakeTriangle();
  const auto weights = g.WeightVector();
  ASSERT_EQ(weights.size(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(weights[e], g.edge_weight(e));
  }
}

TEST(KnowledgeGraphTest, NodesOfType) {
  const KnowledgeGraph g = MakeTriangle();
  EXPECT_EQ(g.NodesOfType(NodeType::kItem), std::vector<NodeId>{1});
}

TEST(KnowledgeGraphTest, MemoryFootprintPositive) {
  const KnowledgeGraph g = MakeTriangle();
  EXPECT_GT(g.MemoryFootprintBytes(), 0u);
}

TEST(KnowledgeGraphTest, EmptyGraph) {
  GraphBuilder builder;
  const KnowledgeGraph g = std::move(builder).Finalize();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(KnowledgeGraphTest, ParallelEdgesAreKept) {
  GraphBuilder builder;
  builder.AddNode(NodeType::kUser);
  builder.AddNode(NodeType::kItem);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRated, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRated, 2.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(0), 2u);
  // FindEdge returns one of the parallel edges.
  EXPECT_NE(g.FindEdge(0, 1), kInvalidEdge);
}

TEST(TypesTest, Names) {
  EXPECT_STREQ(NodeTypeToString(NodeType::kUser), "user");
  EXPECT_STREQ(NodeTypeToString(NodeType::kItem), "item");
  EXPECT_STREQ(NodeTypeToString(NodeType::kEntity), "entity");
  EXPECT_STREQ(RelationToString(Relation::kRated), "rated");
  EXPECT_STREQ(RelationToString(Relation::kDirectedBy), "directed_by");
  EXPECT_STREQ(RelationToString(Relation::kSungBy), "sung_by");
}

class GraphScaleSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(GraphScaleSweep, CsrInvariantsHold) {
  // A ring of n nodes: degree 2 everywhere, adjacency sorted.
  const size_t n = GetParam();
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(builder
                    .AddEdge(static_cast<NodeId>(i),
                             static_cast<NodeId>((i + 1) % n),
                             Relation::kRelatedTo, 1.0)
                    .ok());
  }
  const KnowledgeGraph g = std::move(builder).Finalize();
  EXPECT_EQ(g.num_edges(), n);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(g.Degree(v), 2u);
    const auto nbrs = g.Neighbors(v);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LE(nbrs[i - 1].neighbor, nbrs[i].neighbor);
    }
    for (const AdjEntry& a : nbrs) {
      EXPECT_EQ(g.OtherEndpoint(a.edge, a.neighbor), v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, GraphScaleSweep,
                         ::testing::Values(3, 8, 64, 501));

}  // namespace
}  // namespace xsum::graph
