/// Tests for the centrality measures behind the §VII future-work PCST
/// prize policy.

#include <gtest/gtest.h>

#include "core/pcst.h"
#include "graph/centrality.h"
#include "graph/knowledge_graph.h"

namespace xsum::graph {
namespace {

KnowledgeGraph MakeStar(size_t leaves) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, leaves + 1);
  for (size_t i = 1; i <= leaves; ++i) {
    EXPECT_TRUE(
        builder.AddEdge(0, static_cast<NodeId>(i), Relation::kRelatedTo, 1.0)
            .ok());
  }
  return std::move(builder).Finalize();
}

TEST(DegreeCentralityTest, StarCenterIsMaximal) {
  const KnowledgeGraph g = MakeStar(5);
  const auto c = DegreeCentrality(g);
  EXPECT_DOUBLE_EQ(c[0], 1.0);  // degree 5 / (6-1)
  for (NodeId v = 1; v <= 5; ++v) EXPECT_DOUBLE_EQ(c[v], 0.2);
}

TEST(DegreeCentralityTest, TrivialGraphs) {
  GraphBuilder empty;
  EXPECT_TRUE(DegreeCentrality(std::move(empty).Finalize()).empty());
  GraphBuilder one;
  one.AddNode(NodeType::kUser);
  const auto c = DegreeCentrality(std::move(one).Finalize());
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
}

TEST(HarmonicCentralityTest, StarCenterDominates) {
  const KnowledgeGraph g = MakeStar(8);
  const auto c = HarmonicCentrality(g, /*samples=*/9, /*seed=*/3);
  EXPECT_DOUBLE_EQ(c[0], 1.0);  // normalized max
  for (NodeId v = 1; v <= 8; ++v) EXPECT_LT(c[v], 1.0);
}

TEST(HarmonicCentralityTest, DeterministicForSeed) {
  const KnowledgeGraph g = MakeStar(8);
  EXPECT_EQ(HarmonicCentrality(g, 4, 7), HarmonicCentrality(g, 4, 7));
}

TEST(HarmonicCentralityTest, ZeroSamplesIsAllZero) {
  const KnowledgeGraph g = MakeStar(3);
  for (double v : HarmonicCentrality(g, 0)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CentralityPrizeTest, PolicyPullsTreeThroughHubs) {
  // Two leaves of a star plus a parallel 2-path around the hub: with
  // centrality prizes the hub (max degree) is preferred as the connector.
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 6);
  // Star: hub 0 with leaves 1..3.
  for (NodeId leaf = 1; leaf <= 3; ++leaf) {
    EXPECT_TRUE(builder.AddEdge(0, leaf, Relation::kRelatedTo, 1.0).ok());
  }
  // Alternate low-degree route 1-4-5-2? make it: 1-4, 4-2.
  EXPECT_TRUE(builder.AddEdge(1, 4, Relation::kRelatedTo, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(4, 2, Relation::kRelatedTo, 1.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();

  core::PcstOptions options;
  options.prize_policy = core::PcstOptions::PrizePolicy::kDegreeCentrality;
  const auto result = core::PcstSummary(g, g.WeightVector(), {1, 2}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.ContainsNode(0)) << "hub should be the connector";
}

}  // namespace
}  // namespace xsum::graph
