/// Unit tests of the reusable search workspace: the indexed 4-ary heap's
/// ordering and decrease-key semantics, the epoch union-find, the O(1)
/// epoch reset of every stamped facility, and equivalence of the
/// workspace-resident Dijkstra against the allocating wrapper under heavy
/// reuse across graphs of different sizes.

#include "graph/search_workspace.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "graph/cost_view.h"
#include "graph/dijkstra.h"
#include "graph/knowledge_graph.h"
#include "util/rng.h"

namespace xsum::graph {
namespace {

TEST(IndexedMinHeapTest, PopsInKeyOrder) {
  IndexedMinHeap heap;
  heap.Reset(16);
  const std::vector<double> keys = {5.0, 1.0, 9.0, 3.5, 0.5, 7.0};
  for (NodeId v = 0; v < keys.size(); ++v) {
    EXPECT_TRUE(heap.PushOrDecrease(v, keys[v]));
  }
  std::vector<double> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (double expected : sorted) {
    ASSERT_FALSE(heap.Empty());
    EXPECT_DOUBLE_EQ(heap.MinKey(), expected);
    heap.PopMin();
  }
  EXPECT_TRUE(heap.Empty());
}

TEST(IndexedMinHeapTest, DecreaseKeyReordersAndIncreaseIsIgnored) {
  IndexedMinHeap heap;
  heap.Reset(8);
  heap.PushOrDecrease(0, 4.0);
  heap.PushOrDecrease(1, 2.0);
  heap.PushOrDecrease(2, 3.0);
  EXPECT_FALSE(heap.PushOrDecrease(0, 5.0));  // increase: no-op
  EXPECT_TRUE(heap.PushOrDecrease(0, 1.0));   // decrease: moves to front
  EXPECT_DOUBLE_EQ(heap.KeyOf(0), 1.0);
  EXPECT_EQ(heap.PopMin(), 0u);
  EXPECT_EQ(heap.PopMin(), 1u);
  EXPECT_EQ(heap.PopMin(), 2u);
}

TEST(IndexedMinHeapTest, EachNodePopsAtMostOncePerReset) {
  IndexedMinHeap heap;
  heap.Reset(4);
  heap.PushOrDecrease(3, 1.0);
  EXPECT_EQ(heap.PopMin(), 3u);
  // Re-inserting a popped node is rejected until the next Reset.
  EXPECT_FALSE(heap.PushOrDecrease(3, 0.5));
  EXPECT_TRUE(heap.Empty());
  heap.Reset(4);
  EXPECT_TRUE(heap.PushOrDecrease(3, 0.5));
  EXPECT_EQ(heap.PopMin(), 3u);
}

TEST(IndexedMinHeapTest, RandomizedAgainstSort) {
  IndexedMinHeap heap;
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + rng.Uniform(200);
    heap.Reset(n);
    std::vector<double> best(n, -1.0);
    for (int op = 0; op < 400; ++op) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      const double key = static_cast<double>(rng.Uniform(1000));
      if (heap.PushOrDecrease(v, key)) {
        if (best[v] < 0.0 || key < best[v]) best[v] = key;
      }
    }
    double last = -1.0;
    while (!heap.Empty()) {
      const double key = heap.MinKey();
      const NodeId v = heap.PopMin();
      EXPECT_GE(key, last);
      EXPECT_DOUBLE_EQ(key, best[v]);
      last = key;
      best[v] = -1.0;
    }
    for (double b : best) EXPECT_LT(b, 0.0);  // everything queued popped
  }
}

TEST(BucketFrontierTest, PopsExactMinWithNodeIdTies) {
  BucketFrontier frontier;
  frontier.Reset(16, 0.0, 10.0);
  const std::vector<double> keys = {5.0, 1.0, 9.0, 3.5, 0.5, 7.0, 3.5};
  for (NodeId v = 0; v < keys.size(); ++v) {
    EXPECT_TRUE(frontier.PushOrDecrease(v, keys[v]));
  }
  // Exact key order; the 3.5 tie breaks by smaller node id (3 before 6).
  const std::vector<NodeId> expected = {4, 1, 3, 6, 0, 5, 2};
  for (NodeId want : expected) {
    ASSERT_FALSE(frontier.Empty());
    EXPECT_EQ(frontier.PopMin(), want);
  }
  EXPECT_TRUE(frontier.Empty());
}

TEST(BucketFrontierTest, DecreaseReordersPopRejectedAndOutOfRangeClamps) {
  BucketFrontier frontier;
  frontier.Reset(8, 1.0, 2.0);
  frontier.PushOrDecrease(0, 1.8);
  frontier.PushOrDecrease(1, 1.2);
  EXPECT_FALSE(frontier.PushOrDecrease(0, 1.9));  // increase: no-op
  EXPECT_TRUE(frontier.PushOrDecrease(0, 1.1));   // decrease: now ahead of 1
  // Keys outside the declared range still order correctly (clamped bucket,
  // exact within-bucket scan).
  frontier.PushOrDecrease(2, 0.25);  // below lo
  frontier.PushOrDecrease(3, 5.0);   // above hi
  EXPECT_EQ(frontier.PopMin(), 2u);
  EXPECT_EQ(frontier.PopMin(), 0u);
  // A popped node cannot re-enter until the next Reset.
  EXPECT_FALSE(frontier.PushOrDecrease(0, 0.1));
  EXPECT_EQ(frontier.PopMin(), 1u);
  EXPECT_EQ(frontier.PopMin(), 3u);
  EXPECT_TRUE(frontier.Empty());
  frontier.Reset(8, 1.0, 2.0);
  EXPECT_TRUE(frontier.PushOrDecrease(0, 0.1));
  EXPECT_EQ(frontier.PopMin(), 0u);
}

TEST(BucketFrontierTest, RandomizedMatchesIndexedHeapPopSequence) {
  // With distinct keys the bucket frontier must reproduce the indexed
  // heap's pop sequence exactly — the property the PCST growth's automatic
  // frontier selection relies on (DESIGN.md §4).
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + rng.Uniform(300);
    IndexedMinHeap heap;
    BucketFrontier frontier;
    heap.Reset(n);
    frontier.Reset(n, 0.0, 1.0);
    std::vector<double> best(n, -1.0);
    for (int op = 0; op < 500; ++op) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      // Distinct-by-construction keys: a fresh uniform double plus a
      // node-dependent offset far below the uniform's resolution.
      const double key =
          static_cast<double>(rng.Uniform(1 << 20)) / (1 << 20) +
          static_cast<double>(v) * 0x1.0p-40;
      const bool heap_changed = heap.PushOrDecrease(v, key);
      const bool frontier_changed = frontier.PushOrDecrease(v, key);
      EXPECT_EQ(heap_changed, frontier_changed);
      if (heap_changed) best[v] = key;
    }
    EXPECT_EQ(heap.size(), frontier.size());
    while (!heap.Empty()) {
      ASSERT_FALSE(frontier.Empty());
      const NodeId from_heap = heap.PopMin();
      const NodeId from_frontier = frontier.PopMin();
      EXPECT_EQ(from_heap, from_frontier);
      EXPECT_DOUBLE_EQ(best[from_heap], best[from_frontier]);
    }
    EXPECT_TRUE(frontier.Empty());
  }
}

TEST(DeltaSteppingFrontierTest, PopsExactMinWithNodeIdTies) {
  DeltaSteppingFrontier frontier;
  frontier.Reset(16, 0.0, 10.0, 2.0);
  const std::vector<double> keys = {5.0, 1.0, 9.0, 3.5, 0.5, 7.0, 3.5};
  for (NodeId v = 0; v < keys.size(); ++v) {
    EXPECT_TRUE(frontier.PushOrDecrease(v, keys[v]));
  }
  // Exact key order despite coarse buckets; 3.5 ties break by node id.
  const std::vector<NodeId> expected = {4, 1, 3, 6, 0, 5, 2};
  for (NodeId want : expected) {
    ASSERT_FALSE(frontier.Empty());
    EXPECT_EQ(frontier.PopMin(), want);
  }
  EXPECT_TRUE(frontier.Empty());
}

TEST(DeltaSteppingFrontierTest, DecreaseReordersPopRejectedAndClamps) {
  DeltaSteppingFrontier frontier;
  frontier.Reset(8, 1.0, 2.0, 0.25);
  frontier.PushOrDecrease(0, 1.8);
  frontier.PushOrDecrease(1, 1.2);
  EXPECT_FALSE(frontier.PushOrDecrease(0, 1.9));  // increase: no-op
  EXPECT_TRUE(frontier.PushOrDecrease(0, 1.1));   // decrease: now ahead of 1
  frontier.PushOrDecrease(2, 0.25);  // below lo: clamped bucket, exact scan
  frontier.PushOrDecrease(3, 5.0);   // above hi
  EXPECT_EQ(frontier.PopMin(), 2u);
  EXPECT_EQ(frontier.PopMin(), 0u);
  // A popped node cannot re-enter until the next Reset.
  EXPECT_FALSE(frontier.PushOrDecrease(0, 0.1));
  EXPECT_EQ(frontier.PopMin(), 1u);
  EXPECT_EQ(frontier.PopMin(), 3u);
  EXPECT_TRUE(frontier.Empty());
  frontier.Reset(8, 1.0, 2.0, 0.25);
  EXPECT_TRUE(frontier.PushOrDecrease(0, 0.1));
  EXPECT_EQ(frontier.PopMin(), 0u);
}

TEST(DeltaSteppingFrontierTest, DegenerateDeltaCollapsesToOneBucket) {
  // Non-positive or non-finite widths must stay correct (single bucket ==
  // a sorted-scan frontier), since CalibrateDelta can face lo == hi.
  for (double delta : {0.0, -3.0,
                       std::numeric_limits<double>::infinity()}) {
    DeltaSteppingFrontier frontier;
    frontier.Reset(8, 2.0, 2.0, delta);
    EXPECT_EQ(frontier.num_buckets(), 1u);
    frontier.PushOrDecrease(0, 3.0);
    frontier.PushOrDecrease(1, 1.0);
    frontier.PushOrDecrease(2, 2.0);
    EXPECT_EQ(frontier.PopMin(), 1u);
    EXPECT_EQ(frontier.PopMin(), 2u);
    EXPECT_EQ(frontier.PopMin(), 0u);
  }
}

TEST(DeltaSteppingFrontierTest, CalibrateDeltaKeepsBucketCountBounded) {
  // ~1 expected settle per bucket within the [1, kMaxBuckets] clamp.
  const double d = DeltaSteppingFrontier::CalibrateDelta(0.0, 100.0, 50);
  EXPECT_GT(d, 0.0);
  DeltaSteppingFrontier frontier;
  frontier.Reset(64, 0.0, 100.0, d);
  EXPECT_GE(frontier.num_buckets(), 32u);
  EXPECT_LE(frontier.num_buckets(), 128u);
  // Huge settle counts must clamp rather than explode the bucket array.
  const double tiny = DeltaSteppingFrontier::CalibrateDelta(0.0, 1.0,
                                                            1u << 30);
  frontier.Reset(64, 0.0, 1.0, tiny);
  EXPECT_LE(frontier.num_buckets(), size_t{1} << 14);
}

TEST(DeltaSteppingFrontierTest, RandomizedMatchesIndexedHeapPopSequence) {
  // Same exact-pop-sequence property the bucket frontier guarantees: the
  // delta-stepping buckets only bound how much one pop scans, never which
  // node pops, so with distinct keys the pop order matches the heap's.
  Rng rng(4321);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + rng.Uniform(300);
    IndexedMinHeap heap;
    DeltaSteppingFrontier frontier;
    heap.Reset(n);
    const double delta =
        DeltaSteppingFrontier::CalibrateDelta(0.0, 1.0, 1 + rng.Uniform(n));
    frontier.Reset(n, 0.0, 1.0, delta);
    std::vector<double> best(n, -1.0);
    for (int op = 0; op < 500; ++op) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      const double key =
          static_cast<double>(rng.Uniform(1 << 20)) / (1 << 20) +
          static_cast<double>(v) * 0x1.0p-40;
      const bool heap_changed = heap.PushOrDecrease(v, key);
      const bool frontier_changed = frontier.PushOrDecrease(v, key);
      EXPECT_EQ(heap_changed, frontier_changed);
      if (heap_changed) best[v] = key;
    }
    EXPECT_EQ(heap.size(), frontier.size());
    while (!heap.Empty()) {
      ASSERT_FALSE(frontier.Empty());
      const NodeId from_heap = heap.PopMin();
      const NodeId from_frontier = frontier.PopMin();
      EXPECT_EQ(from_heap, from_frontier);
      EXPECT_DOUBLE_EQ(best[from_heap], best[from_frontier]);
    }
    EXPECT_TRUE(frontier.Empty());
  }
}

TEST(EpochUnionFindTest, UnionsAndO1Reset) {
  EpochUnionFind uf;
  uf.Reset(10);
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 3));
  EXPECT_EQ(uf.Find(3), uf.Find(1));
  // Smaller id wins the union (deterministic merge rule).
  EXPECT_EQ(uf.Find(3), 1u);
  uf.Reset(10);
  EXPECT_NE(uf.Find(3), uf.Find(1));  // partition forgotten in O(1)
}

TEST(SearchWorkspaceTest, BeginInvalidatesAllStampedState) {
  SearchWorkspace ws;
  ws.Begin(8);
  ws.Relax(3, 1.5, 2, 7);
  ws.SetSettled(3);
  ws.Mark(4);
  ws.SetTag(5, 42);
  EXPECT_TRUE(ws.reached(3));
  EXPECT_DOUBLE_EQ(ws.dist(3), 1.5);
  EXPECT_EQ(ws.parent_node(3), 2u);
  EXPECT_EQ(ws.parent_edge(3), 7u);
  EXPECT_TRUE(ws.settled(3));
  EXPECT_TRUE(ws.marked(4));
  EXPECT_EQ(ws.TagOr(5, 0), 42u);

  ws.Begin(8);
  EXPECT_FALSE(ws.reached(3));
  EXPECT_EQ(ws.dist(3), kUnreachedDistance);
  EXPECT_EQ(ws.parent_node(3), kInvalidNode);
  EXPECT_FALSE(ws.settled(3));
  EXPECT_FALSE(ws.marked(4));
  EXPECT_EQ(ws.TagOr(5, 0), 0u);
}

TEST(SearchWorkspaceTest, SettlingUnreachedNodeKeepsUnreachedDistance) {
  SearchWorkspace ws;
  ws.Begin(4);
  ws.SetSettled(2);  // e.g. a PCST seed that was never relaxed
  EXPECT_TRUE(ws.settled(2));
  EXPECT_EQ(ws.dist(2), kUnreachedDistance);
}

TEST(SearchWorkspaceTest, CapacityGrowsAndNeverShrinks) {
  SearchWorkspace ws;
  ws.Begin(10);
  EXPECT_GE(ws.capacity(), 10u);
  ws.Begin(100);
  EXPECT_GE(ws.capacity(), 100u);
  ws.Begin(5);  // smaller graph reuses the larger arrays
  EXPECT_GE(ws.capacity(), 100u);
  ws.Relax(4, 2.0, 0, 0);
  EXPECT_DOUBLE_EQ(ws.dist(4), 2.0);
}

/// Random connected-ish graph for Dijkstra equivalence runs.
KnowledgeGraph RandomGraph(size_t n, size_t extra_edges, uint64_t seed,
                           std::vector<double>* costs) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  Rng rng(seed);
  costs->clear();
  auto add = [&](NodeId a, NodeId b) {
    if (a == b) return;
    auto result = builder.AddEdge(a, b, Relation::kRelatedTo, 1.0);
    if (result.ok()) costs->push_back(1.0 + rng.Uniform(8));
  };
  for (NodeId v = 1; v < n; ++v) {
    add(static_cast<NodeId>(rng.Uniform(v)), v);  // spanning backbone
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    add(static_cast<NodeId>(rng.Uniform(n)), static_cast<NodeId>(rng.Uniform(n)));
  }
  return std::move(builder).Finalize();
}

TEST(DijkstraWorkspaceTest, ReusedWorkspaceMatchesFreshAcrossGraphSizes) {
  SearchWorkspace reused;
  Rng rng(7);
  // Alternate between graphs of very different sizes; the reused
  // workspace must behave exactly like a fresh one every time.
  for (int round = 0; round < 6; ++round) {
    const size_t n = (round % 2 == 0) ? 50 : 400;
    std::vector<double> costs;
    const KnowledgeGraph g = RandomGraph(n, 2 * n, 1000 + round, &costs);
    const NodeId source = static_cast<NodeId>(rng.Uniform(n));
    std::vector<NodeId> targets;
    for (int t = 0; t < 5; ++t) {
      targets.push_back(static_cast<NodeId>(rng.Uniform(n)));
    }

    CostView view;
    view.Assign(g, costs);
    const ShortestPathTree fresh = Dijkstra(g, costs, source, targets);
    DijkstraInto(view, source, targets, reused);
    for (NodeId t : targets) {
      EXPECT_EQ(fresh.dist[t], reused.dist(t));
      const Path a = fresh.ExtractPath(t);
      const Path b = ExtractPath(reused, t);
      EXPECT_EQ(a.nodes, b.nodes);
      EXPECT_EQ(a.edges, b.edges);
    }

    // Full-sweep comparison (no targets): every node's distance matches.
    const ShortestPathTree full = Dijkstra(g, costs, source);
    DijkstraInto(view, source, {}, reused);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(full.dist[v], reused.dist(v)) << "node " << v;
    }

    // A recommitted view (fresh version, same costs) produces identical
    // results.
    CostView recommitted;
    recommitted.Assign(g, costs);
    EXPECT_NE(recommitted.version(), view.version());
    DijkstraInto(recommitted, source, {}, reused);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(full.dist[v], reused.dist(v)) << "node " << v;
    }
  }
}

TEST(DijkstraWorkspaceTest, MultiSourceReuseMatchesFresh) {
  SearchWorkspace reused;
  for (int round = 0; round < 4; ++round) {
    const size_t n = 120;
    std::vector<double> costs;
    const KnowledgeGraph g = RandomGraph(n, 3 * n, 2000 + round, &costs);
    Rng rng(30 + round);
    std::vector<NodeId> sources;
    for (int s = 0; s < 4; ++s) {
      sources.push_back(static_cast<NodeId>(rng.Uniform(n)));
    }
    CostView view;
    view.Assign(g, costs);
    const VoronoiResult fresh = MultiSourceDijkstra(g, costs, sources);
    MultiSourceDijkstraInto(view, sources, reused);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(fresh.dist[v], reused.dist(v));
      EXPECT_EQ(fresh.nearest_source[v], reused.origin(v));
      EXPECT_EQ(fresh.parent_node[v], reused.parent_node(v));
      EXPECT_EQ(fresh.parent_edge[v], reused.parent_edge(v));
    }
  }
}

}  // namespace
}  // namespace xsum::graph
