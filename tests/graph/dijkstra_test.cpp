#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include "graph/knowledge_graph.h"
#include "util/rng.h"

namespace xsum::graph {
namespace {

/// Builds a weighted path graph 0-1-2-...-(n-1) with the given costs.
KnowledgeGraph MakePathGraph(const std::vector<double>& edge_costs) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, edge_costs.size() + 1);
  for (size_t i = 0; i < edge_costs.size(); ++i) {
    EXPECT_TRUE(builder
                    .AddEdge(static_cast<NodeId>(i),
                             static_cast<NodeId>(i + 1), Relation::kRelatedTo,
                             edge_costs[i])
                    .ok());
  }
  return std::move(builder).Finalize();
}

TEST(DijkstraTest, PathGraphDistances) {
  const KnowledgeGraph g = MakePathGraph({1.0, 2.0, 3.0});
  const auto tree = Dijkstra(g, g.WeightVector(), 0);
  EXPECT_DOUBLE_EQ(tree.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 6.0);
}

TEST(DijkstraTest, ParentPointersFormShortestPath) {
  const KnowledgeGraph g = MakePathGraph({1.0, 1.0, 1.0});
  const auto tree = Dijkstra(g, g.WeightVector(), 0);
  const Path path = tree.ExtractPath(3);
  ASSERT_EQ(path.nodes.size(), 4u);
  EXPECT_EQ(path.nodes.front(), 0u);
  EXPECT_EQ(path.nodes.back(), 3u);
  EXPECT_EQ(path.edges.size(), 3u);
  EXPECT_TRUE(path.Validate(g, /*allow_hallucinated=*/false));
}

TEST(DijkstraTest, PicksCheaperOfTwoRoutes) {
  // 0-1 cost 10; 0-2 cost 1; 2-1 cost 2 => dist(1) = 3 via 2.
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 3);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRelatedTo, 10.0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, Relation::kRelatedTo, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1, Relation::kRelatedTo, 2.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto tree = Dijkstra(g, g.WeightVector(), 0);
  EXPECT_DOUBLE_EQ(tree.dist[1], 3.0);
  EXPECT_EQ(tree.parent_node[1], 2u);
}

TEST(DijkstraTest, UnreachableNodesStayInfinite) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, 4);
  ASSERT_TRUE(builder.AddEdge(0, 1, Relation::kRelatedTo, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3, Relation::kRelatedTo, 1.0).ok());
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto tree = Dijkstra(g, g.WeightVector(), 0);
  EXPECT_EQ(tree.dist[2], kInfDistance);
  EXPECT_EQ(tree.dist[3], kInfDistance);
  EXPECT_TRUE(tree.ExtractPath(3).Empty());
}

TEST(DijkstraTest, ExtractPathAtSourceIsSingleton) {
  const KnowledgeGraph g = MakePathGraph({1.0});
  const auto tree = Dijkstra(g, g.WeightVector(), 0);
  const Path path = tree.ExtractPath(0);
  ASSERT_EQ(path.nodes.size(), 1u);
  EXPECT_TRUE(path.edges.empty());
}

TEST(DijkstraTest, EarlyExitStillCorrectForTargets) {
  const KnowledgeGraph g = MakePathGraph({1.0, 1.0, 1.0, 1.0, 1.0});
  const auto full = Dijkstra(g, g.WeightVector(), 0);
  const auto early = Dijkstra(g, g.WeightVector(), 0, /*targets=*/{2});
  EXPECT_DOUBLE_EQ(early.dist[2], full.dist[2]);
  EXPECT_DOUBLE_EQ(early.dist[1], full.dist[1]);
}

TEST(DijkstraTest, ZeroCostEdgesAllowed) {
  const KnowledgeGraph g = MakePathGraph({0.0, 0.0});
  const auto tree = Dijkstra(g, g.WeightVector(), 0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 0.0);
}

TEST(MultiSourceDijkstraTest, AssignsNearestSource) {
  // Path 0-1-2-3-4, sources {0, 4}: Voronoi split at the middle.
  const KnowledgeGraph g = MakePathGraph({1.0, 1.0, 1.0, 1.0});
  const auto voronoi = MultiSourceDijkstra(g, g.WeightVector(), {0, 4});
  EXPECT_EQ(voronoi.nearest_source[0], 0u);
  EXPECT_EQ(voronoi.nearest_source[1], 0u);
  EXPECT_EQ(voronoi.nearest_source[3], 4u);
  EXPECT_EQ(voronoi.nearest_source[4], 4u);
  EXPECT_DOUBLE_EQ(voronoi.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(voronoi.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(voronoi.dist[3], 1.0);
}

TEST(MultiSourceDijkstraTest, SingleSourceEqualsDijkstra) {
  const KnowledgeGraph g = MakePathGraph({2.0, 3.0, 1.0});
  const auto single = Dijkstra(g, g.WeightVector(), 1);
  const auto multi = MultiSourceDijkstra(g, g.WeightVector(), {1});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(single.dist[v], multi.dist[v]);
    EXPECT_EQ(multi.nearest_source[v],
              single.dist[v] == kInfDistance ? kInvalidNode : 1u);
  }
}

/// Random-graph property sweep: multi-source distances equal the min over
/// per-source Dijkstra distances.
class DijkstraRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraRandomSweep, MultiSourceMatchesMinOfSingleSources) {
  Rng rng(GetParam());
  const size_t n = 40;
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  // Random connected-ish graph: ring + random chords.
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(builder
                    .AddEdge(static_cast<NodeId>(i),
                             static_cast<NodeId>((i + 1) % n),
                             Relation::kRelatedTo,
                             rng.UniformDouble(0.1, 2.0))
                    .ok());
  }
  for (int c = 0; c < 30; ++c) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    ASSERT_TRUE(builder
                    .AddEdge(a, b, Relation::kRelatedTo,
                             rng.UniformDouble(0.1, 2.0))
                    .ok());
  }
  const KnowledgeGraph g = std::move(builder).Finalize();
  const auto costs = g.WeightVector();

  const std::vector<NodeId> sources = {3, 17, 29};
  const auto voronoi = MultiSourceDijkstra(g, costs, sources);
  std::vector<ShortestPathTree> trees;
  for (NodeId s : sources) trees.push_back(Dijkstra(g, costs, s));
  for (NodeId v = 0; v < n; ++v) {
    double best = kInfDistance;
    for (const auto& tree : trees) best = std::min(best, tree.dist[v]);
    EXPECT_NEAR(voronoi.dist[v], best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace xsum::graph
