/// Bit-identity property tests of the multi-query lockstep kernel: every
/// lane of `MultiQueryDijkstra` must reproduce the sequential
/// `DijkstraInto` facts — distances, parent nodes, parent edges, settle
/// flags, reach flags, and extracted path edges — bit for bit, across
/// batch widths (including B = 1), duplicate sources with differing
/// target sets, full sweeps, and heavy workspace reuse over graphs of
/// very different sizes.

#include "graph/multi_query.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/cost_view.h"
#include "graph/dijkstra.h"
#include "graph/knowledge_graph.h"
#include "graph/search_workspace.h"
#include "util/rng.h"

namespace xsum::graph {
namespace {

KnowledgeGraph RandomGraph(size_t n, size_t extra_edges, uint64_t seed,
                           std::vector<double>* costs) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  Rng rng(seed);
  costs->clear();
  auto add = [&](NodeId a, NodeId b) {
    if (a == b) return;
    auto result = builder.AddEdge(a, b, Relation::kRelatedTo, 1.0);
    if (result.ok()) costs->push_back(1.0 + rng.Uniform(8));
  };
  for (NodeId v = 1; v < n; ++v) {
    add(static_cast<NodeId>(rng.Uniform(v)), v);  // spanning backbone
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    add(static_cast<NodeId>(rng.Uniform(n)),
        static_cast<NodeId>(rng.Uniform(n)));
  }
  return std::move(builder).Finalize();
}

/// Runs the sequential kernel for one query and checks the lane against it
/// node by node. Nodes the sequential search never reached must be
/// unreached in the lane too, so the comparison is exhaustive, not just
/// over targets.
void ExpectLaneMatchesSequential(const CostView& view,
                                 const MultiQueryWorkspace& mq, size_t q,
                                 NodeId source,
                                 const std::vector<NodeId>& targets,
                                 SearchWorkspace& scratch) {
  DijkstraInto(view, source, targets, scratch);
  const size_t n = view.graph().num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(mq.reached(q, v), scratch.reached(v))
        << "query " << q << " node " << v;
    if (!scratch.reached(v)) continue;
    ASSERT_EQ(mq.dist(q, v), scratch.dist(v))
        << "query " << q << " node " << v;
    ASSERT_EQ(mq.parent_node(q, v), scratch.parent_node(v))
        << "query " << q << " node " << v;
    ASSERT_EQ(mq.parent_edge(q, v), scratch.parent_edge(v))
        << "query " << q << " node " << v;
    ASSERT_EQ(mq.settled(q, v), scratch.settled(v))
        << "query " << q << " node " << v;
  }
  for (NodeId t : targets) {
    std::vector<EdgeId> lane_edges;
    AppendLanePathEdges(mq, q, t, &lane_edges);
    std::vector<EdgeId> seq_edges;
    AppendPathEdges(scratch, t, &seq_edges);
    ASSERT_EQ(lane_edges, seq_edges) << "query " << q << " target " << t;
  }
}

TEST(MultiQueryDijkstraTest, SingleQueryLaneIsBitIdenticalToSequential) {
  std::vector<double> costs;
  const KnowledgeGraph g = RandomGraph(300, 600, 11, &costs);
  CostView view;
  view.Assign(g, costs);

  const std::vector<NodeId> targets = {7, 42, 299};
  std::vector<MultiQuery> queries(1);
  queries[0].source = 3;
  queries[0].targets = targets;

  MultiQueryWorkspace mq;
  MultiQueryDijkstra(view, queries, mq);
  ASSERT_EQ(mq.width(), 1u);

  SearchWorkspace scratch;
  ExpectLaneMatchesSequential(view, mq, 0, 3, targets, scratch);
}

TEST(MultiQueryDijkstraTest, RandomizedBatchesMatchSequentialLaneByLane) {
  Rng rng(2025);
  MultiQueryWorkspace mq;  // reused across every wave on purpose
  SearchWorkspace scratch;
  for (int round = 0; round < 24; ++round) {
    const size_t n = 16 + rng.Uniform(400);
    std::vector<double> costs;
    const KnowledgeGraph g = RandomGraph(n, 2 * n, 5000 + round, &costs);
    CostView view;
    view.Assign(g, costs);

    const size_t width = 1 + rng.Uniform(16);
    std::vector<std::vector<NodeId>> target_sets(width);
    std::vector<MultiQuery> queries(width);
    for (size_t q = 0; q < width; ++q) {
      queries[q].source = static_cast<NodeId>(rng.Uniform(n));
      // Mix of early-exit target sets and full sweeps (empty targets).
      const size_t t_count = rng.Uniform(6);
      for (size_t t = 0; t < t_count; ++t) {
        target_sets[q].push_back(static_cast<NodeId>(rng.Uniform(n)));
      }
      queries[q].targets = target_sets[q];
    }

    MultiQueryDijkstra(view, queries, mq);
    ASSERT_EQ(mq.width(), width);
    for (size_t q = 0; q < width; ++q) {
      ExpectLaneMatchesSequential(view, mq, q, queries[q].source,
                                  target_sets[q], scratch);
    }
  }
}

TEST(MultiQueryDijkstraTest, DuplicateSourcesWithDifferentTargetsAgree) {
  // The wave layer dedups same-source queries behind one lane; the kernel
  // itself must still honour each query's own early-exit set, so the same
  // source appearing with different targets yields per-lane facts that
  // each match the sequential search with that lane's targets.
  std::vector<double> costs;
  const KnowledgeGraph g = RandomGraph(200, 500, 77, &costs);
  CostView view;
  view.Assign(g, costs);

  const std::vector<NodeId> near = {1, 2};
  const std::vector<NodeId> far = {180, 190, 199};
  const std::vector<NodeId> none;  // full sweep
  std::vector<MultiQuery> queries(3);
  queries[0] = {.source = 5, .targets = near};
  queries[1] = {.source = 5, .targets = far};
  queries[2] = {.source = 5, .targets = none};

  MultiQueryWorkspace mq;
  MultiQueryDijkstra(view, queries, mq);

  SearchWorkspace scratch;
  ExpectLaneMatchesSequential(view, mq, 0, 5, near, scratch);
  ExpectLaneMatchesSequential(view, mq, 1, 5, far, scratch);
  ExpectLaneMatchesSequential(view, mq, 2, 5, none, scratch);
}

TEST(MultiQueryDijkstraTest, FullSweepLaneMatchesAllocatingDijkstra) {
  std::vector<double> costs;
  const KnowledgeGraph g = RandomGraph(150, 400, 31, &costs);
  CostView view;
  view.Assign(g, costs);

  std::vector<MultiQuery> queries(2);
  queries[0].source = 0;
  queries[1].source = 149;

  MultiQueryWorkspace mq;
  MultiQueryDijkstra(view, queries, mq);

  for (size_t q = 0; q < queries.size(); ++q) {
    const ShortestPathTree tree = Dijkstra(g, costs, queries[q].source, {});
    for (NodeId v = 0; v < view.graph().num_nodes(); ++v) {
      ASSERT_EQ(mq.reached(q, v), tree.dist[v] != kInfDistance)
          << "query " << q << " node " << v;
      if (!mq.reached(q, v)) continue;
      ASSERT_EQ(mq.dist(q, v), tree.dist[v])
          << "query " << q << " node " << v;
    }
  }
}

TEST(MultiQueryDijkstraTest, WorkspaceReuseAcrossShrinkingAndGrowingWaves) {
  // Alternate widths and graph sizes so lane stamps from a wide wave
  // would poison a narrow one if epochs were mishandled.
  MultiQueryWorkspace mq;
  SearchWorkspace scratch;
  Rng rng(13);
  const size_t sizes[] = {512, 24, 300, 8, 700, 64};
  size_t round = 0;
  for (size_t n : sizes) {
    std::vector<double> costs;
    const KnowledgeGraph g = RandomGraph(n, 3 * n, 900 + round, &costs);
    CostView view;
    view.Assign(g, costs);
    const size_t width = (round % 2 == 0) ? 12 : 2;
    std::vector<std::vector<NodeId>> target_sets(width);
    std::vector<MultiQuery> queries(width);
    for (size_t q = 0; q < width; ++q) {
      queries[q].source = static_cast<NodeId>(rng.Uniform(n));
      for (int t = 0; t < 3; ++t) {
        target_sets[q].push_back(static_cast<NodeId>(rng.Uniform(n)));
      }
      queries[q].targets = target_sets[q];
    }
    MultiQueryDijkstra(view, queries, mq);
    for (size_t q = 0; q < width; ++q) {
      ExpectLaneMatchesSequential(view, mq, q, queries[q].source,
                                  target_sets[q], scratch);
    }
    ++round;
  }
}

TEST(MultiQueryWorkspaceTest, RequiredBytesMatchesFootprintAfterBegin) {
  MultiQueryWorkspace ws;
  ws.Begin(1000, 8);
  EXPECT_GE(ws.MemoryFootprintBytes(),
            MultiQueryWorkspace::RequiredBytes(1000, 8));
  EXPECT_EQ(ws.capacity_nodes(), 1000u);
  EXPECT_EQ(ws.width(), 8u);
}

}  // namespace
}  // namespace xsum::graph
