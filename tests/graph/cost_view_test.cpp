/// Unit tests of `graph::CostView`: interleaved slots mirror the adjacency,
/// EdgeId-indexed costs and the cost range are exact, every commit stamps a
/// fresh globally unique version, and in-place rebuilds leave no stale
/// state behind.

#include "graph/cost_view.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/knowledge_graph.h"
#include "util/rng.h"

namespace xsum::graph {
namespace {

KnowledgeGraph SmallGraph(size_t n, size_t extra_edges, uint64_t seed,
                          std::vector<double>* costs) {
  GraphBuilder builder;
  builder.AddNodes(NodeType::kEntity, n);
  Rng rng(seed);
  costs->clear();
  auto add = [&](NodeId a, NodeId b) {
    if (a == b) return;
    auto result = builder.AddEdge(a, b, Relation::kRelatedTo, 1.0);
    if (result.ok()) costs->push_back(1.0 + 0.125 * rng.Uniform(8));
  };
  for (NodeId v = 1; v < n; ++v) {
    add(static_cast<NodeId>(rng.Uniform(v)), v);
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    add(static_cast<NodeId>(rng.Uniform(n)),
        static_cast<NodeId>(rng.Uniform(n)));
  }
  return std::move(builder).Finalize();
}

TEST(CostViewTest, SlotsMirrorAdjacencyWithInterleavedCosts) {
  std::vector<double> costs;
  const KnowledgeGraph g = SmallGraph(60, 120, 5, &costs);
  CostView view;
  view.Assign(g, costs);

  ASSERT_TRUE(view.valid());
  EXPECT_EQ(&view.graph(), &g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(view.cost(e), costs[e]);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto adj = g.Neighbors(v);
    const auto slots = view.Neighbors(v);
    ASSERT_EQ(adj.size(), slots.size());
    for (size_t k = 0; k < adj.size(); ++k) {
      EXPECT_EQ(slots[k].neighbor, adj[k].neighbor);
      EXPECT_EQ(slots[k].edge, adj[k].edge);
      EXPECT_EQ(slots[k].cost, costs[adj[k].edge]);
    }
  }
  const auto [min_it, max_it] = std::minmax_element(costs.begin(), costs.end());
  EXPECT_EQ(view.min_cost(), *min_it);
  EXPECT_EQ(view.max_cost(), *max_it);
  EXPECT_TRUE(view.has_bounded_costs());
}

TEST(CostViewTest, VersionsAreUniqueAndRebuildLeavesNoStaleState) {
  std::vector<double> costs_a;
  const KnowledgeGraph a = SmallGraph(40, 60, 6, &costs_a);
  std::vector<double> costs_b;
  const KnowledgeGraph b = SmallGraph(90, 200, 7, &costs_b);

  CostView view;
  view.Assign(a, costs_a);
  const uint64_t v1 = view.version();
  EXPECT_GT(v1, 0u);

  // Rebuild in place for a different (larger) graph: slots, costs, range,
  // and graph binding all switch over; the version moves strictly forward.
  view.Assign(b, costs_b);
  EXPECT_GT(view.version(), v1);
  EXPECT_EQ(&view.graph(), &b);
  ASSERT_EQ(view.edge_costs().size(), b.num_edges());
  for (NodeId v = 0; v < b.num_nodes(); ++v) {
    const auto adj = b.Neighbors(v);
    const auto slots = view.Neighbors(v);
    ASSERT_EQ(adj.size(), slots.size());
    for (size_t k = 0; k < adj.size(); ++k) {
      EXPECT_EQ(slots[k].edge, adj[k].edge);
      EXPECT_EQ(slots[k].cost, costs_b[adj[k].edge]);
    }
  }

  // Two distinct views never share a version either.
  CostView other;
  other.Assign(a, costs_a);
  EXPECT_NE(other.version(), view.version());
}

TEST(CostViewTest, UnitViewAndInPlaceProtocol) {
  std::vector<double> costs;
  const KnowledgeGraph g = SmallGraph(30, 40, 8, &costs);

  CostView unit;
  unit.AssignUnit(g);
  EXPECT_EQ(unit.min_cost(), 1.0);
  EXPECT_EQ(unit.max_cost(), 1.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(unit.cost(e), 1.0);

  // StartAssign/Commit: write per-edge costs straight into the view.
  CostView staged;
  std::vector<double>& out = staged.StartAssign(g);
  ASSERT_EQ(out.size(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) out[e] = costs[e];
  staged.Commit();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(staged.cost(e), costs[e]);
  }
  EXPECT_GE(staged.MemoryFootprintBytes(), CostView::RequiredBytes(g));
}

}  // namespace
}  // namespace xsum::graph
