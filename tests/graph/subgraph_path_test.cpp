/// Tests for the Subgraph and Path types (the carriers of summary
/// explanations and individual explanations, respectively).

#include <gtest/gtest.h>

#include "graph/knowledge_graph.h"
#include "graph/path.h"
#include "graph/subgraph.h"

namespace xsum::graph {
namespace {

/// Path graph u0 - i1 - e2 - i3 - u4 plus a chord e2 - u4.
KnowledgeGraph MakeFixture() {
  GraphBuilder builder;
  builder.AddNode(NodeType::kUser);    // 0
  builder.AddNode(NodeType::kItem);    // 1
  builder.AddNode(NodeType::kEntity);  // 2
  builder.AddNode(NodeType::kItem);    // 3
  builder.AddNode(NodeType::kUser);    // 4
  EXPECT_TRUE(builder.AddEdge(0, 1, Relation::kRated, 4.0).ok());      // e0
  EXPECT_TRUE(builder.AddEdge(1, 2, Relation::kHasGenre, 0.0).ok());   // e1
  EXPECT_TRUE(builder.AddEdge(3, 2, Relation::kHasGenre, 0.0).ok());   // e2
  EXPECT_TRUE(builder.AddEdge(4, 3, Relation::kRated, 2.0).ok());      // e3
  EXPECT_TRUE(builder.AddEdge(4, 2, Relation::kUserAttribute, 0.0).ok());  // e4
  return std::move(builder).Finalize();
}

// --- Subgraph -----------------------------------------------------------------

TEST(SubgraphTest, FromEdgesDerivesNodes) {
  const KnowledgeGraph g = MakeFixture();
  const Subgraph s = Subgraph::FromEdges(g, {0, 1});
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_EQ(s.nodes(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(s.ContainsNode(1));
  EXPECT_FALSE(s.ContainsNode(3));
  EXPECT_TRUE(s.ContainsEdge(0));
  EXPECT_FALSE(s.ContainsEdge(3));
}

TEST(SubgraphTest, DeduplicatesEdges) {
  const KnowledgeGraph g = MakeFixture();
  const Subgraph s = Subgraph::FromEdges(g, {0, 0, 1, 1, 1});
  EXPECT_EQ(s.num_edges(), 2u);
}

TEST(SubgraphTest, ExtraNodesIncluded) {
  const KnowledgeGraph g = MakeFixture();
  const Subgraph s = Subgraph::FromEdges(g, {0}, {4});
  EXPECT_TRUE(s.ContainsNode(4));
  EXPECT_EQ(s.num_nodes(), 3u);  // 0, 1, 4
}

TEST(SubgraphTest, EmptySubgraph) {
  const KnowledgeGraph g = MakeFixture();
  const Subgraph s;
  EXPECT_TRUE(s.Empty());
  EXPECT_TRUE(s.IsWeaklyConnected(g));
  EXPECT_TRUE(s.IsTree(g));
}

TEST(SubgraphTest, CountNodesOfType) {
  const KnowledgeGraph g = MakeFixture();
  const Subgraph s = Subgraph::FromEdges(g, {0, 1, 2, 3});
  EXPECT_EQ(s.CountNodesOfType(g, NodeType::kUser), 2u);
  EXPECT_EQ(s.CountNodesOfType(g, NodeType::kItem), 2u);
  EXPECT_EQ(s.CountNodesOfType(g, NodeType::kEntity), 1u);
}

TEST(SubgraphTest, TotalWeight) {
  const KnowledgeGraph g = MakeFixture();
  const Subgraph s = Subgraph::FromEdges(g, {0, 3});
  EXPECT_DOUBLE_EQ(s.TotalWeight(g.WeightVector()), 6.0);
}

TEST(SubgraphTest, ConnectivityChecks) {
  const KnowledgeGraph g = MakeFixture();
  const Subgraph connected = Subgraph::FromEdges(g, {0, 1, 2});
  EXPECT_TRUE(connected.IsWeaklyConnected(g));
  EXPECT_TRUE(connected.IsTree(g));

  const Subgraph disconnected = Subgraph::FromEdges(g, {0, 3});
  EXPECT_FALSE(disconnected.IsWeaklyConnected(g));
  EXPECT_FALSE(disconnected.IsTree(g));

  // Cycle 1-2-4-3-...: edges e1, e2, e3, e4 form the cycle 1-2-4-3? No:
  // e1=1-2, e4=4-2, e3=4-3, e2=3-2 -> nodes {1,2,3,4}, edges 4 > nodes-1.
  const Subgraph cyclic = Subgraph::FromEdges(g, {1, 2, 3, 4});
  EXPECT_TRUE(cyclic.IsWeaklyConnected(g));
  EXPECT_FALSE(cyclic.IsTree(g));
}

TEST(SubgraphTest, PruneLeavesNotInKeepsRequired) {
  const KnowledgeGraph g = MakeFixture();
  // Chain 0-1-2-3-4 (edges e0,e1,e2,e3); required = {0, 2}.
  Subgraph s = Subgraph::FromEdges(g, {0, 1, 2, 3});
  s.PruneLeavesNotIn(g, {0, 2});
  // Leaves 4 then 3 get pruned; 0 and 2 stay; 1 is interior.
  EXPECT_EQ(s.nodes(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(s.edges(), (std::vector<EdgeId>{0, 1}));
}

TEST(SubgraphTest, PruneKeepsRequiredLeaf) {
  const KnowledgeGraph g = MakeFixture();
  Subgraph s = Subgraph::FromEdges(g, {0, 1, 2, 3});
  s.PruneLeavesNotIn(g, {0, 4});
  // Both endpoints required: nothing pruned.
  EXPECT_EQ(s.num_edges(), 4u);
}

TEST(SubgraphTest, PruneAllWhenNothingRequired) {
  const KnowledgeGraph g = MakeFixture();
  Subgraph s = Subgraph::FromEdges(g, {0, 1});
  s.PruneLeavesNotIn(g, {});
  EXPECT_EQ(s.num_edges(), 0u);
}

TEST(SubgraphTest, MemoryFootprint) {
  const KnowledgeGraph g = MakeFixture();
  const Subgraph s = Subgraph::FromEdges(g, {0, 1});
  EXPECT_GT(s.MemoryFootprintBytes(), 0u);
}

// --- Path ----------------------------------------------------------------------

TEST(PathTest, EmptyPath) {
  const KnowledgeGraph g = MakeFixture();
  const Path p;
  EXPECT_TRUE(p.Empty());
  EXPECT_EQ(p.Length(), 0u);
  EXPECT_TRUE(p.Validate(g));
  EXPECT_TRUE(p.IsFaithful());
}

TEST(PathTest, ValidThreeHop) {
  const KnowledgeGraph g = MakeFixture();
  Path p;
  p.nodes = {0, 1, 2, 3};
  p.edges = {0, 1, 2};
  EXPECT_TRUE(p.Validate(g, /*allow_hallucinated=*/false));
  EXPECT_TRUE(p.IsFaithful());
  EXPECT_EQ(p.Length(), 3u);
  EXPECT_EQ(p.Source(), 0u);
  EXPECT_EQ(p.Target(), 3u);
}

TEST(PathTest, HallucinatedHopDetected) {
  const KnowledgeGraph g = MakeFixture();
  Path p;
  p.nodes = {0, 3};  // no edge 0-3 exists
  p.edges = {kInvalidEdge};
  EXPECT_FALSE(p.IsFaithful());
  EXPECT_TRUE(p.Validate(g, /*allow_hallucinated=*/true));
  EXPECT_FALSE(p.Validate(g, /*allow_hallucinated=*/false));
}

TEST(PathTest, WrongEdgeRejected) {
  const KnowledgeGraph g = MakeFixture();
  Path p;
  p.nodes = {0, 2};  // edge 0 joins 0-1, not 0-2
  p.edges = {0};
  EXPECT_FALSE(p.Validate(g));
}

TEST(PathTest, CountMismatchRejected) {
  const KnowledgeGraph g = MakeFixture();
  Path p;
  p.nodes = {0, 1};
  p.edges = {};
  EXPECT_FALSE(p.Validate(g));
}

TEST(PathTest, OutOfRangeNodeRejected) {
  const KnowledgeGraph g = MakeFixture();
  Path p;
  p.nodes = {0, 99};
  p.edges = {0};
  EXPECT_FALSE(p.Validate(g));
}

TEST(PathTest, RepeatedNodeInHopRejected) {
  const KnowledgeGraph g = MakeFixture();
  Path p;
  p.nodes = {1, 1};
  p.edges = {0};
  EXPECT_FALSE(p.Validate(g));
}

TEST(PathTest, ToStringMentionsTypesAndHallucination) {
  const KnowledgeGraph g = MakeFixture();
  Path p;
  p.nodes = {0, 1, 2};
  p.edges = {0, kInvalidEdge};
  const std::string s = p.ToString(g);
  EXPECT_NE(s.find("u0"), std::string::npos);
  EXPECT_NE(s.find("i1"), std::string::npos);
  EXPECT_NE(s.find("~>"), std::string::npos);
}

}  // namespace
}  // namespace xsum::graph
