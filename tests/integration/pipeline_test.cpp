/// End-to-end property tests of the full pipeline: synthetic dataset →
/// knowledge graph → recommender → scenario task → summarizer → metrics.
/// Swept over seeds, scenarios, and methods.

#include <gtest/gtest.h>
#include <set>

#include "core/scenario.h"
#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "rec/recommender.h"
#include "rec/sampler.h"

namespace xsum {
namespace {

struct PipelineCase {
  uint64_t seed;
  core::SummaryMethod method;
  double lambda;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineSweep, SummariesSatisfyPaperInvariants) {
  const PipelineCase param = GetParam();
  const auto ds =
      data::MakeSyntheticDataset(data::Ml1mConfig(0.02, param.seed));
  auto built = data::BuildRecGraph(ds);
  ASSERT_TRUE(built.ok());
  const data::RecGraph& rg = *built;
  const auto recommender = rec::MakeRecommender(rec::RecommenderKind::kPgpr,
                                                rg, param.seed, {});
  const auto users = rec::SampleUsersByGender(ds, 3, param.seed);
  ASSERT_FALSE(users.empty());

  core::SummarizerOptions options;
  options.method = param.method;
  options.lambda = param.lambda;

  for (uint32_t user : users) {
    core::UserRecs ur;
    ur.user = user;
    ur.recs = recommender->Recommend(user, 10);
    if (ur.recs.empty()) continue;

    for (int k : {1, 5, 10}) {
      const auto task = core::MakeUserCentricTask(rg, ur, k);
      const auto summary = core::Summarize(rg, task, options);
      ASSERT_TRUE(summary.ok()) << summary.status().ToString();

      // Problem-definition invariants (§III): terminals ⊆ V_S and S is
      // weakly connected over the reached terminals.
      for (graph::NodeId t : task.terminals) {
        EXPECT_TRUE(summary->subgraph.ContainsNode(t) ||
                    !summary->unreached_terminals.empty());
      }
      if (param.method != core::SummaryMethod::kBaseline &&
          summary->unreached_terminals.empty()) {
        EXPECT_TRUE(summary->subgraph.IsWeaklyConnected(rg.graph()));
      }

      // All metrics are finite and within their ranges.
      const auto view = metrics::MakeView(rg.graph(), *summary);
      const double comp = metrics::Comprehensibility(view);
      EXPECT_GE(comp, 0.0);
      EXPECT_LE(comp, 1.0);
      const double act = metrics::Actionability(rg.graph(), view);
      EXPECT_GE(act, 0.0);
      EXPECT_LE(act, 1.0);
      const double div = metrics::Diversity(view);
      EXPECT_GE(div, 0.0);
      EXPECT_LE(div, 1.0);
      const double red = metrics::Redundancy(view);
      EXPECT_GE(red, 0.0);
      EXPECT_LT(red, 1.0);
      const double priv = metrics::Privacy(rg.graph(), view);
      EXPECT_GE(priv, 0.0);
      EXPECT_LE(priv, 1.0);
      EXPECT_GE(metrics::Relevance(view, rg.base_weights()), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PipelineSweep,
    ::testing::Values(
        PipelineCase{11, core::SummaryMethod::kBaseline, 0.0},
        PipelineCase{11, core::SummaryMethod::kSteiner, 0.01},
        PipelineCase{11, core::SummaryMethod::kSteiner, 1.0},
        PipelineCase{11, core::SummaryMethod::kSteiner, 100.0},
        PipelineCase{11, core::SummaryMethod::kPcst, 0.0},
        PipelineCase{23, core::SummaryMethod::kSteiner, 1.0},
        PipelineCase{23, core::SummaryMethod::kPcst, 0.0},
        PipelineCase{37, core::SummaryMethod::kSteiner, 1.0}),
    [](const ::testing::TestParamInfo<PipelineCase>& param_info) {
      std::string name = "seed";
      name += std::to_string(param_info.param.seed);
      name += core::SummaryMethodToString(param_info.param.method);
      if (param_info.param.method == core::SummaryMethod::kSteiner) {
        name += "l";
        const double l = param_info.param.lambda;
        name += l < 0.1 ? "001" : (l < 10 ? "1" : "100");
      }
      return name;
    });

TEST(PipelineShapeTest, SteinerSummaryIsSmallerThanBaselinePaths) {
  // The headline claim of the paper (Table I / Fig. 2): the ST summary has
  // fewer edges than the union of the individual paths.
  const auto ds = data::MakeSyntheticDataset(data::Ml1mConfig(0.02, 3));
  auto built = data::BuildRecGraph(ds);
  ASSERT_TRUE(built.ok());
  const data::RecGraph& rg = *built;
  const auto recommender =
      rec::MakeRecommender(rec::RecommenderKind::kPgpr, rg, 3, {});

  size_t st_smaller = 0;
  size_t comparisons = 0;
  for (uint32_t user = 0; user < 12; ++user) {
    core::UserRecs ur;
    ur.user = user;
    ur.recs = recommender->Recommend(user, 10);
    if (ur.recs.size() < 5) continue;
    const auto task = core::MakeUserCentricTask(rg, ur, 10);

    core::SummarizerOptions st;
    st.method = core::SummaryMethod::kSteiner;
    const auto summary = core::Summarize(rg, task, st);
    ASSERT_TRUE(summary.ok());

    size_t path_edges = 0;
    for (const auto& p : task.paths) path_edges += p.edges.size();
    ++comparisons;
    if (summary->subgraph.num_edges() < path_edges) ++st_smaller;
  }
  ASSERT_GT(comparisons, 0u);
  // ST compresses in (nearly) every case.
  EXPECT_GE(st_smaller * 10, comparisons * 9);
}

TEST(PipelineShapeTest, PcstLargerThanSteiner) {
  // The paper's §V-B-1 observation: PCST summaries are larger than ST's.
  const auto ds = data::MakeSyntheticDataset(data::Ml1mConfig(0.02, 5));
  auto built = data::BuildRecGraph(ds);
  ASSERT_TRUE(built.ok());
  const data::RecGraph& rg = *built;
  const auto recommender =
      rec::MakeRecommender(rec::RecommenderKind::kPgpr, rg, 5, {});

  double st_total = 0;
  double pcst_total = 0;
  for (uint32_t user = 0; user < 10; ++user) {
    core::UserRecs ur;
    ur.user = user;
    ur.recs = recommender->Recommend(user, 10);
    if (ur.recs.size() < 5) continue;
    const auto task = core::MakeUserCentricTask(rg, ur, 10);

    core::SummarizerOptions st;
    st.method = core::SummaryMethod::kSteiner;
    core::SummarizerOptions pcst;
    pcst.method = core::SummaryMethod::kPcst;
    const auto s1 = core::Summarize(rg, task, st);
    const auto s2 = core::Summarize(rg, task, pcst);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    st_total += static_cast<double>(s1->subgraph.num_edges());
    pcst_total += static_cast<double>(s2->subgraph.num_edges());
  }
  EXPECT_GT(pcst_total, st_total);
}

TEST(PipelineShapeTest, LambdaIncreasesPathOverlap) {
  // Eq. (1): larger lambda pins the summary to the input paths.
  const auto ds = data::MakeSyntheticDataset(data::Ml1mConfig(0.02, 7));
  auto built = data::BuildRecGraph(ds);
  ASSERT_TRUE(built.ok());
  const data::RecGraph& rg = *built;
  const auto recommender =
      rec::MakeRecommender(rec::RecommenderKind::kPgpr, rg, 7, {});

  double overlap_low = 0;
  double overlap_high = 0;
  size_t counted = 0;
  for (uint32_t user = 0; user < 10; ++user) {
    core::UserRecs ur;
    ur.user = user;
    ur.recs = recommender->Recommend(user, 10);
    if (ur.recs.size() < 5) continue;
    const auto task = core::MakeUserCentricTask(rg, ur, 10);

    std::set<graph::EdgeId> path_edges;
    for (const auto& p : task.paths) {
      for (graph::EdgeId e : p.edges) {
        if (e != graph::kInvalidEdge) path_edges.insert(e);
      }
    }
    auto overlap_for = [&](double lambda) {
      core::SummarizerOptions options;
      options.method = core::SummaryMethod::kSteiner;
      options.lambda = lambda;
      const auto summary = core::Summarize(rg, task, options);
      EXPECT_TRUE(summary.ok());
      size_t hits = 0;
      for (graph::EdgeId e : summary->subgraph.edges()) {
        if (path_edges.count(e) > 0) ++hits;
      }
      return summary->subgraph.num_edges() == 0
                 ? 0.0
                 : static_cast<double>(hits) /
                       static_cast<double>(summary->subgraph.num_edges());
    };
    overlap_low += overlap_for(0.0);
    overlap_high += overlap_for(100.0);
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(overlap_high, overlap_low);
}

}  // namespace
}  // namespace xsum
