/// Cross-product property sweep: every scenario × every method on a
/// realistic synthetic graph, checking the §III problem-definition
/// invariants and cross-method orderings the paper reports.

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "metrics/metrics.h"

namespace xsum {
namespace {

struct SweepCase {
  core::Scenario scenario;
  core::SummaryMethod method;
};

class ScenarioMethodSweep : public ::testing::TestWithParam<SweepCase> {
 public:
  static const eval::ExperimentRunner& Runner() {
    static eval::ExperimentRunner* runner = [] {
      eval::ExperimentConfig config;
      config.scale = 0.03;
      config.users_per_gender = 5;
      config.items_popular = 4;
      config.items_unpopular = 4;
      config.user_group_size = 5;
      config.item_group_size = 4;
      auto* r = new eval::ExperimentRunner(config);
      EXPECT_TRUE(r->Init().ok());
      return r;
    }();
    return *runner;
  }

  static const eval::BaselineData& Data() {
    static eval::BaselineData* data = [] {
      auto result = Runner().ComputeBaseline(rec::RecommenderKind::kCafe);
      EXPECT_TRUE(result.ok());
      return new eval::BaselineData(std::move(result).ValueOrDie());
    }();
    return *data;
  }
};

TEST_P(ScenarioMethodSweep, SummariesHonourProblemDefinition) {
  const SweepCase param = GetParam();
  const auto& runner = Runner();
  const auto& data = Data();

  std::vector<core::SummaryTask> tasks;
  switch (param.scenario) {
    case core::Scenario::kUserCentric:
      for (const auto& ur : data.users) {
        tasks.push_back(core::MakeUserCentricTask(runner.rec_graph(), ur, 10));
      }
      break;
    case core::Scenario::kItemCentric:
      for (const auto& ia : data.items) {
        tasks.push_back(core::MakeItemCentricTask(runner.rec_graph(), ia.item,
                                                  ia.audience, 10));
      }
      break;
    case core::Scenario::kUserGroup:
      for (const auto& group : data.user_groups) {
        tasks.push_back(core::MakeUserGroupTask(runner.rec_graph(), group, 10));
      }
      break;
    case core::Scenario::kItemGroup:
      for (const auto& group : data.item_groups) {
        tasks.push_back(core::MakeItemGroupTask(runner.rec_graph(), group, 10));
      }
      break;
  }
  ASSERT_FALSE(tasks.empty());

  core::SummarizerOptions options;
  options.method = param.method;
  for (const auto& task : tasks) {
    const auto summary = core::Summarize(runner.rec_graph(), task, options);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    EXPECT_EQ(summary->scenario, param.scenario);

    // §III: T ⊆ V_S (unreached terminals may remain as isolated nodes).
    for (graph::NodeId t : task.terminals) {
      EXPECT_TRUE(summary->subgraph.ContainsNode(t));
    }
    // §III: the summary is weakly connected whenever all terminals are
    // reachable from each other.
    if (param.method != core::SummaryMethod::kBaseline &&
        summary->unreached_terminals.empty()) {
      EXPECT_TRUE(summary->subgraph.IsWeaklyConnected(runner.rec_graph()
                                                          .graph()));
    }
    // Every summary edge is a real KG edge.
    for (graph::EdgeId e : summary->subgraph.edges()) {
      EXPECT_LT(e, runner.rec_graph().graph().num_edges());
    }
    EXPECT_GE(summary->elapsed_ms, 0.0);
  }
}

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = core::ScenarioToString(info.param.scenario);
  name += "_";
  name += core::SummaryMethodToString(info.param.method);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    All, ScenarioMethodSweep,
    ::testing::Values(
        SweepCase{core::Scenario::kUserCentric, core::SummaryMethod::kBaseline},
        SweepCase{core::Scenario::kUserCentric, core::SummaryMethod::kSteiner},
        SweepCase{core::Scenario::kUserCentric, core::SummaryMethod::kPcst},
        SweepCase{core::Scenario::kItemCentric, core::SummaryMethod::kBaseline},
        SweepCase{core::Scenario::kItemCentric, core::SummaryMethod::kSteiner},
        SweepCase{core::Scenario::kItemCentric, core::SummaryMethod::kPcst},
        SweepCase{core::Scenario::kUserGroup, core::SummaryMethod::kBaseline},
        SweepCase{core::Scenario::kUserGroup, core::SummaryMethod::kSteiner},
        SweepCase{core::Scenario::kUserGroup, core::SummaryMethod::kPcst},
        SweepCase{core::Scenario::kItemGroup, core::SummaryMethod::kBaseline},
        SweepCase{core::Scenario::kItemGroup, core::SummaryMethod::kSteiner},
        SweepCase{core::Scenario::kItemGroup, core::SummaryMethod::kPcst}),
    CaseName);

TEST(CrossMethodOrderingTest, SteinerBeatsBaselineComprehensibilityEverywhere) {
  // The paper's headline Fig. 2 ordering, asserted as a test over the
  // user-centric units.
  const auto& runner = ScenarioMethodSweep::Runner();
  const auto& data = ScenarioMethodSweep::Data();
  double baseline_total = 0.0;
  double st_total = 0.0;
  size_t counted = 0;
  core::SummarizerOptions baseline;
  baseline.method = core::SummaryMethod::kBaseline;
  core::SummarizerOptions st;
  st.method = core::SummaryMethod::kSteiner;
  for (const auto& ur : data.users) {
    if (ur.recs.size() < 5) continue;
    const auto task = core::MakeUserCentricTask(runner.rec_graph(), ur, 10);
    const auto b = core::Summarize(runner.rec_graph(), task, baseline);
    const auto s = core::Summarize(runner.rec_graph(), task, st);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(s.ok());
    baseline_total += metrics::Comprehensibility(
        metrics::MakeView(runner.rec_graph().graph(), *b));
    st_total += metrics::Comprehensibility(
        metrics::MakeView(runner.rec_graph().graph(), *s));
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(st_total, baseline_total);
}

}  // namespace
}  // namespace xsum
