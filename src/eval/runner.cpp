#include "eval/runner.h"

#include <algorithm>
#include <functional>
#include <map>

#include "core/batch.h"
#include "core/incremental.h"
#include "metrics/metrics.h"
#include "service/service.h"
#include "service/snapshot_registry.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace xsum::eval {

namespace {

constexpr int kMaxK = 10;

}  // namespace

const char* MetricKindToString(MetricKind metric) {
  switch (metric) {
    case MetricKind::kComprehensibility:
      return "comprehensibility";
    case MetricKind::kActionability:
      return "actionability";
    case MetricKind::kDiversity:
      return "diversity";
    case MetricKind::kRedundancy:
      return "redundancy";
    case MetricKind::kConsistency:
      return "consistency";
    case MetricKind::kRelevance:
      return "relevance";
    case MetricKind::kPrivacy:
      return "privacy";
    case MetricKind::kTimeMs:
      return "time (ms)";
    case MetricKind::kMemoryMb:
      return "memory (MiB)";
  }
  return "?";
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)) {}

ExperimentRunner::~ExperimentRunner() = default;

ExperimentRunner::ExperimentRunner(ExperimentRunner&& other)
    : config_(std::move(other.config_)),
      dataset_(std::move(other.dataset_)),
      rec_graph_(std::move(other.rec_graph_)),
      sampled_users_(std::move(other.sampled_users_)),
      initialized_(other.initialized_) {
  // The moved-from runner's engine/service reference its moved-out graph;
  // drop them so a re-Init()ed source cannot serve through stale state.
  other.batch_.reset();
  other.service_.reset();
  other.registry_.reset();
}

ExperimentRunner& ExperimentRunner::operator=(ExperimentRunner&& other) {
  config_ = std::move(other.config_);
  dataset_ = std::move(other.dataset_);
  rec_graph_ = std::move(other.rec_graph_);
  sampled_users_ = std::move(other.sampled_users_);
  initialized_ = other.initialized_;
  batch_.reset();
  other.batch_.reset();
  service_.reset();
  registry_.reset();
  other.service_.reset();
  other.registry_.reset();
  return *this;
}

core::BatchSummarizer& ExperimentRunner::batch() const {
  if (batch_ == nullptr) {
    const size_t workers = config_.num_workers != 0
                               ? config_.num_workers
                               : ThreadPool::DefaultWorkers();
    batch_ = std::make_unique<core::BatchSummarizer>(rec_graph_, workers);
  }
  return *batch_;
}

service::SummaryService* ExperimentRunner::service() const {
  if (!config_.use_summary_cache) return nullptr;
  if (service_ == nullptr) {
    registry_ = std::make_unique<service::GraphSnapshotRegistry>();
    // The runner owns its graph for its lifetime; publish a non-owning
    // alias rather than copying the whole graph into the registry.
    registry_->Publish(service::GraphSnapshotRegistry::Alias(rec_graph_));
    service::ServiceOptions options;
    options.num_workers = config_.num_workers != 0
                              ? config_.num_workers
                              : ThreadPool::DefaultWorkers();
    // Clamp before shifting so an absurd XSUM_CACHE_MB cannot wrap the
    // byte budget to ~0 (which would reject every insert).
    options.cache.max_bytes =
        std::min<size_t>(config_.cache_mb, size_t{1} << 24) << 20;
    service_ =
        std::make_unique<service::SummaryService>(registry_.get(), options);
  }
  return service_.get();
}

uint64_t ExperimentRunner::panel_cache_hits() const {
  return service_ == nullptr ? 0 : service_->cache_stats().hits;
}

uint64_t ExperimentRunner::panel_cache_misses() const {
  return service_ == nullptr ? 0 : service_->cache_stats().misses;
}

Status ExperimentRunner::Init() {
  data::SyntheticConfig synth =
      config_.dataset == DatasetKind::kMl1m
          ? data::Ml1mConfig(config_.scale, config_.seed)
          : data::Lfm1mConfig(config_.scale, config_.seed);
  dataset_ = data::MakeSyntheticDataset(synth);

  data::WeightParams params = config_.weight_params;
  if (params.t0 == 0) params.t0 = dataset_.t0;
  XSUM_ASSIGN_OR_RETURN(rec_graph_, data::BuildRecGraph(dataset_, params));

  sampled_users_ = rec::SampleUsersByGender(dataset_, config_.users_per_gender,
                                            config_.seed + 1);
  if (sampled_users_.empty()) {
    return Status::FailedPrecondition("no users sampled");
  }
  initialized_ = true;
  return Status::OK();
}

Result<BaselineData> ExperimentRunner::ComputeBaseline(
    rec::RecommenderKind kind) const {
  if (!initialized_) {
    return Status::FailedPrecondition("runner not initialized");
  }
  BaselineData data;
  data.kind = kind;
  data.label = rec::RecommenderKindToString(kind);

  const auto recommender =
      rec::MakeRecommender(kind, rec_graph_, config_.seed + 17,
                           config_.rec_options);
  if (recommender == nullptr) {
    return Status::Internal("failed to construct recommender");
  }

  // --- user-centric units ------------------------------------------------
  // Recommender calls are fanned across the worker pool. Thread-safety
  // audit: `Recommend` is const on every simulator, all randomness comes
  // from a function-local `Rng` seeded by (master seed, method tag, user),
  // and the only precomputed state (PGPR's item-mass prior) is built in
  // the constructor — concurrent calls over distinct users share nothing
  // mutable. Per-user results land in index-addressed slots and are merged
  // in sampled-user order below, so the output is bit-identical to the
  // serial loop for every worker count.
  std::vector<core::UserRecs> user_slots(sampled_users_.size());
  batch().pool().ParallelFor(
      sampled_users_.size(), [&](size_t /*worker*/, size_t i) {
        user_slots[i].user = sampled_users_[i];
        user_slots[i].recs = recommender->Recommend(sampled_users_[i], kMaxK);
      });
  for (core::UserRecs& ur : user_slots) {
    if (ur.recs.empty()) continue;  // isolated user: nothing to explain
    data.users.push_back(std::move(ur));
  }
  if (data.users.empty()) {
    return Status::FailedPrecondition(
        StrCat(data.label, " produced no recommendations at this scale"));
  }

  // --- item-centric units: invert recommendations into audiences ----------
  // audience[i] = ranked list of (score, user, path) who received item i.
  std::map<uint32_t, std::vector<std::pair<double, core::AudienceEntry>>>
      audience;
  for (const core::UserRecs& ur : data.users) {
    for (const rec::Recommendation& rec : ur.recs) {
      core::AudienceEntry entry;
      entry.user = ur.user;
      entry.path = rec.path;
      audience[rec.item].push_back({rec.score, std::move(entry)});
    }
  }
  // §V-A split: among recommended items, the most vs least
  // catalogue-popular halves.
  const std::vector<uint32_t> popularity = dataset_.ItemPopularity();
  std::vector<uint32_t> recommended_items;
  recommended_items.reserve(audience.size());
  for (const auto& [item, entries] : audience) {
    recommended_items.push_back(item);
  }
  std::stable_sort(recommended_items.begin(), recommended_items.end(),
                   [&](uint32_t a, uint32_t b) {
                     if (popularity[a] != popularity[b]) {
                       return popularity[a] > popularity[b];
                     }
                     return a < b;
                   });
  const size_t take_pop =
      std::min(config_.items_popular, recommended_items.size());
  const size_t take_unpop = std::min(
      config_.items_unpopular, recommended_items.size() - take_pop);
  std::vector<std::pair<uint32_t, bool>> chosen;  // (item, is_popular)
  for (size_t i = 0; i < take_pop; ++i) {
    chosen.push_back({recommended_items[i], true});
  }
  for (size_t i = 0; i < take_unpop; ++i) {
    chosen.push_back(
        {recommended_items[recommended_items.size() - 1 - i], false});
  }
  for (const auto& [item, is_popular] : chosen) {
    auto& entries = audience[item];
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first != b.first) return a.first > b.first;
                       return a.second.user < b.second.user;
                     });
    core::ItemAudience ia;
    ia.item = item;
    ia.audience.reserve(entries.size());
    for (auto& [score, entry] : entries) {
      ia.audience.push_back(std::move(entry));
    }
    data.items.push_back(std::move(ia));
    data.item_is_popular.push_back(is_popular ? 1 : 0);
  }

  // --- groups -------------------------------------------------------------
  {
    std::vector<uint32_t> users_with_recs;
    users_with_recs.reserve(data.users.size());
    std::map<uint32_t, const core::UserRecs*> by_user;
    for (const core::UserRecs& ur : data.users) {
      users_with_recs.push_back(ur.user);
      by_user[ur.user] = &ur;
    }
    for (const auto& group :
         rec::MakeGroups(users_with_recs, config_.user_group_size)) {
      std::vector<core::UserRecs> members;
      members.reserve(group.size());
      for (uint32_t user : group) members.push_back(*by_user.at(user));
      data.user_groups.push_back(std::move(members));
    }
  }
  for (size_t begin = 0; begin < data.items.size();
       begin += config_.item_group_size) {
    const size_t end =
        std::min(data.items.size(), begin + config_.item_group_size);
    data.item_groups.emplace_back(data.items.begin() + begin,
                                  data.items.begin() + end);
  }
  return data;
}

Result<std::vector<SeriesResult>> ExperimentRunner::RunPanel(
    const BaselineData& data, const PanelSpec& spec) const {
  if (!initialized_) {
    return Status::FailedPrecondition("runner not initialized");
  }
  const graph::KnowledgeGraph& g = rec_graph_.graph();

  // Enumerate units and their task builders.
  std::vector<std::function<core::SummaryTask(int)>> units;
  switch (spec.scenario) {
    case core::Scenario::kUserCentric:
      for (const core::UserRecs& ur : data.users) {
        units.push_back([this, &ur](int k) {
          return core::MakeUserCentricTask(rec_graph_, ur, k);
        });
      }
      break;
    case core::Scenario::kItemCentric:
      for (size_t i = 0; i < data.items.size(); ++i) {
        if (spec.item_popularity_filter >= 0 &&
            data.item_is_popular[i] !=
                static_cast<char>(spec.item_popularity_filter)) {
          continue;
        }
        const core::ItemAudience& ia = data.items[i];
        units.push_back([this, &ia](int k) {
          return core::MakeItemCentricTask(rec_graph_, ia.item, ia.audience,
                                           k);
        });
      }
      break;
    case core::Scenario::kUserGroup:
      for (const auto& group : data.user_groups) {
        units.push_back([this, &group](int k) {
          return core::MakeUserGroupTask(rec_graph_, group, k);
        });
      }
      break;
    case core::Scenario::kItemGroup:
      for (const auto& group : data.item_groups) {
        units.push_back([this, &group](int k) {
          return core::MakeItemGroupTask(rec_graph_, group, k);
        });
      }
      break;
  }
  if (units.empty()) {
    return Status::FailedPrecondition("panel has no evaluation units");
  }

  // Units are independent: fan them across the worker pool (one summarize
  // context per worker), collect per-unit metric values into index-addressed
  // slots, and fold them into the accumulators in unit order afterwards.
  // The series is therefore bit-identical for every worker count — except
  // the wall-clock metric, which is a measurement rather than a computed
  // value: timing panels run serially so concurrent workers cannot
  // contend with (and inflate) the very quantity being measured.
  const bool timing_panel = spec.metric == MetricKind::kTimeMs;
  core::BatchSummarizer& engine = batch();
  // Timing panels always compute — a cached wall-clock number would be a
  // replay of an old measurement, not a measurement.
  service::SummaryService* cache_service = timing_panel ? nullptr : service();
  std::vector<SeriesResult> series;
  for (const MethodSpec& method : spec.methods) {
    std::vector<std::vector<double>> unit_values(units.size());
    std::vector<Status> unit_status(units.size(), Status::OK());
    const auto process_unit = [&](size_t worker, size_t i) {
      std::vector<double>& values = unit_values[i];
      values.assign(spec.ks.size(), 0.0);
      // Summarize the unit's whole k-axis first, walking the ks in
      // ascending order through one summarization chain (the sweep path,
      // core/incremental.h): the k-prefix tasks nest, so each step can
      // reuse the previous one's closure state where provably safe.
      // Cached, chained, and fresh results are all bit-identical (the
      // chain resets itself whenever reuse would not be exact), so the
      // routing below cannot change any *derived* series value. The
      // wall-clock series is the exception — elapsed_ms IS its value —
      // so timing panels keep the per-k from-scratch path below, for the
      // same reason they bypass the cache: time(k) must measure a (unit,
      // k) summarization, not the cost of extending the k−1 chain.
      std::vector<std::shared_ptr<const core::Summary>> summaries(
          spec.ks.size());
      if (timing_panel) {
        for (size_t ki = 0; ki < spec.ks.size(); ++ki) {
          Result<core::Summary> result =
              engine.RunWith(worker, units[i](spec.ks[ki]), method.options);
          if (!result.ok()) {
            unit_status[i] = result.status();
            return;
          }
          summaries[ki] =
              std::make_shared<core::Summary>(std::move(*result));
        }
      } else if (cache_service != nullptr) {
        // Service route: consecutive ascending ks name their predecessor,
        // so a (task, k) miss is summarized incrementally from the cached
        // (task, k−1) entry's chain checkpoint.
        const std::vector<size_t> order = core::AscendingKOrder(spec.ks);
        core::SummaryTask prev_task;
        bool has_prev = false;
        for (size_t idx : order) {
          core::SummaryTask task = units[i](spec.ks[idx]);
          Result<std::shared_ptr<const core::Summary>> result =
              cache_service->Summarize(task, method.options,
                                       has_prev ? &prev_task : nullptr);
          if (!result.ok()) {
            unit_status[i] = result.status();
            return;
          }
          summaries[idx] = std::move(*result);
          prev_task = std::move(task);
          has_prev = true;
        }
      } else {
        std::vector<Result<core::Summary>> results =
            engine.RunSweep(worker, units[i], spec.ks, method.options);
        for (size_t idx = 0; idx < results.size(); ++idx) {
          if (!results[idx].ok()) {
            unit_status[i] = results[idx].status();
            return;
          }
          summaries[idx] =
              std::make_shared<core::Summary>(std::move(*results[idx]));
        }
      }
      // Metric evaluation keeps the caller's ks order (the consistency
      // metric folds views cumulatively in that order).
      std::vector<metrics::ExplanationView> views;  // for consistency
      for (size_t ki = 0; ki < spec.ks.size(); ++ki) {
        const core::Summary& summary = *summaries[ki];
        double value = 0.0;
        switch (spec.metric) {
          case MetricKind::kTimeMs:
            value = summary.elapsed_ms;
            break;
          case MetricKind::kMemoryMb:
            value = static_cast<double>(summary.memory_bytes) /
                    (1024.0 * 1024.0);
            break;
          case MetricKind::kConsistency: {
            views.push_back(metrics::MakeView(g, summary));
            value = metrics::Consistency(views);
            break;
          }
          default: {
            const metrics::ExplanationView view = metrics::MakeView(g, summary);
            switch (spec.metric) {
              case MetricKind::kComprehensibility:
                value = metrics::Comprehensibility(view);
                break;
              case MetricKind::kActionability:
                value = metrics::Actionability(g, view);
                break;
              case MetricKind::kDiversity:
                value = metrics::Diversity(view);
                break;
              case MetricKind::kRedundancy:
                value = metrics::Redundancy(view);
                break;
              case MetricKind::kRelevance:
                value = metrics::Relevance(view, rec_graph_.base_weights());
                break;
              case MetricKind::kPrivacy:
                value = metrics::Privacy(g, view);
                break;
              default:
                break;
            }
            break;
          }
        }
        values[ki] = value;
      }
    };
    if (timing_panel) {
      for (size_t i = 0; i < units.size(); ++i) process_unit(0, i);
    } else {
      engine.pool().ParallelFor(units.size(), process_unit);
    }
    for (const Status& status : unit_status) {
      XSUM_RETURN_NOT_OK(status);
    }
    std::vector<StatAccumulator> acc(spec.ks.size());
    for (const std::vector<double>& values : unit_values) {
      for (size_t ki = 0; ki < values.size(); ++ki) acc[ki].Add(values[ki]);
    }
    SeriesResult row;
    row.label = method.label;
    row.values.reserve(spec.ks.size());
    for (const StatAccumulator& a : acc) row.values.push_back(a.Mean());
    series.push_back(std::move(row));
  }
  return series;
}

}  // namespace xsum::eval
