/// \file csv_export.h
/// \brief CSV export of figure panels, for downstream plotting. Every
/// bench prints aligned text tables; pointing `XSUM_CSV_DIR` at a
/// directory makes them also emit one CSV per panel via this helper.

#ifndef XSUM_EVAL_CSV_EXPORT_H_
#define XSUM_EVAL_CSV_EXPORT_H_

#include <string>
#include <vector>

#include "eval/runner.h"
#include "util/status.h"

namespace xsum::eval {

/// \brief Writes one panel (rows = methods, columns = k) as CSV.
/// The first column is "method", remaining columns "k=<v>".
Status WritePanelCsv(const std::string& path, const std::vector<int>& ks,
                     const std::vector<SeriesResult>& series);

/// \brief If the env var `XSUM_CSV_DIR` is set, writes the panel to
/// `<dir>/<slug>.csv` (slug: lowercased, non-alphanumerics → '_') and
/// returns the path; returns empty string when the env var is unset.
/// Failures are logged, not fatal (benches should not die on export).
std::string MaybeExportPanelCsv(const std::string& slug,
                                const std::vector<int>& ks,
                                const std::vector<SeriesResult>& series);

}  // namespace xsum::eval

#endif  // XSUM_EVAL_CSV_EXPORT_H_
