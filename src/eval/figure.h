/// \file figure.h
/// \brief Printing helpers that render panels the way the paper's figures
/// report them (methods as rows, k = 1..10 as columns), plus the shared
/// driver for the eight-panel quality figures (Figs. 2-9).

#ifndef XSUM_EVAL_FIGURE_H_
#define XSUM_EVAL_FIGURE_H_

#include <ostream>
#include <string>
#include <vector>

#include "eval/runner.h"

namespace xsum::eval {

/// Prints one panel as an aligned table: header "method | k=1 ... k=10".
void PrintPanel(std::ostream& os, const std::string& title,
                const std::vector<int>& ks,
                const std::vector<SeriesResult>& series, int precision = 4);

/// \brief Drives one full quality figure: for every baseline × scenario
/// panel, runs the standard method lineup and prints the series.
/// Mirrors the paper's panel naming ("(a) User-centric PGPR", ...).
Status RunQualityFigure(const ExperimentRunner& runner,
                        const std::vector<rec::RecommenderKind>& baselines,
                        const std::vector<core::Scenario>& scenarios,
                        MetricKind metric, const std::string& figure_title,
                        std::ostream& os);

}  // namespace xsum::eval

#endif  // XSUM_EVAL_FIGURE_H_
