#include "eval/experiment.h"

#include "util/env.h"
#include "util/string_util.h"

namespace xsum::eval {

const char* DatasetKindToString(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMl1m:
      return "ML1M";
    case DatasetKind::kLfm1m:
      return "LFM1M";
  }
  return "?";
}

std::vector<MethodSpec> StandardMethods(
    const std::string& baseline_label,
    core::SteinerOptions::Variant variant) {
  std::vector<MethodSpec> methods;

  MethodSpec baseline;
  baseline.label = baseline_label;
  baseline.options.method = core::SummaryMethod::kBaseline;
  methods.push_back(baseline);

  for (double lambda : {0.01, 1.0, 100.0}) {
    MethodSpec st;
    st.options.method = core::SummaryMethod::kSteiner;
    st.options.lambda = lambda;
    st.options.steiner.variant = variant;
    st.label = st.options.Label();
    methods.push_back(st);
  }

  MethodSpec pcst;
  pcst.options.method = core::SummaryMethod::kPcst;
  pcst.label = "PCST";
  methods.push_back(pcst);
  return methods;
}

ExperimentConfig ExperimentConfig::FromEnv() {
  return FromEnv(ExperimentConfig{});
}

ExperimentConfig ExperimentConfig::FromEnv(ExperimentConfig defaults) {
  ExperimentConfig config = defaults;
  config.scale = GetEnvDouble("XSUM_SCALE", config.scale);
  config.seed = static_cast<uint64_t>(
      GetEnvInt("XSUM_SEED", static_cast<int64_t>(config.seed)));
  const int64_t users = GetEnvNonNegativeInt(
      "XSUM_USERS", static_cast<int64_t>(config.users_per_gender * 2));
  config.users_per_gender = static_cast<size_t>(users) / 2;
  const int64_t items = GetEnvNonNegativeInt(
      "XSUM_ITEMS",
      static_cast<int64_t>(config.items_popular + config.items_unpopular));
  config.items_popular = static_cast<size_t>(items) / 2;
  config.items_unpopular = static_cast<size_t>(items) -
                           config.items_popular;
  // 0 = auto (one worker per hardware thread); negative or garbage values
  // warn inside GetEnvNonNegativeInt and keep the default.
  const int64_t workers = GetEnvNonNegativeInt(
      "XSUM_WORKERS", static_cast<int64_t>(config.num_workers));
  config.num_workers = static_cast<size_t>(workers);
  config.use_summary_cache =
      GetEnvNonNegativeInt("XSUM_CACHE", config.use_summary_cache ? 1 : 0) !=
      0;
  config.cache_mb = static_cast<size_t>(GetEnvNonNegativeInt(
      "XSUM_CACHE_MB", static_cast<int64_t>(config.cache_mb)));
  return config;
}

std::string ExperimentConfig::Describe() const {
  return StrCat(DatasetKindToString(dataset), " scale=", FormatDouble(scale, 3),
                " users=", users_per_gender * 2,
                " items=", items_popular + items_unpopular, " seed=", seed,
                " (override via XSUM_SCALE / XSUM_USERS / XSUM_ITEMS /",
                " XSUM_SEED; XSUM_SCALE=1.0 XSUM_USERS=200 XSUM_ITEMS=100",
                " = paper protocol)");
}

}  // namespace xsum::eval
