#include "eval/csv_export.h"

#include <cctype>
#include <fstream>

#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace xsum::eval {

Status WritePanelCsv(const std::string& path, const std::vector<int>& ks,
                     const std::vector<SeriesResult>& series) {
  std::vector<std::string> headers = {"method"};
  for (int k : ks) headers.push_back(StrCat("k=", k));
  TextTable table(std::move(headers));
  for (const SeriesResult& row : series) {
    std::vector<std::string> cells = {row.label};
    for (double v : row.values) cells.push_back(FormatDouble(v, 6));
    table.AddRow(std::move(cells));
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << table.ToCsv();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string MaybeExportPanelCsv(const std::string& slug,
                                const std::vector<int>& ks,
                                const std::vector<SeriesResult>& series) {
  const std::string dir = GetEnvString("XSUM_CSV_DIR", "");
  if (dir.empty()) return "";
  std::string clean;
  for (char c : slug) {
    clean += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::tolower(c))
                 : '_';
  }
  const std::string path = dir + "/" + clean + ".csv";
  const Status status = WritePanelCsv(path, ks, series);
  if (!status.ok()) {
    XSUM_LOG_WARN << "CSV export failed: " << status.ToString();
    return "";
  }
  return path;
}

}  // namespace xsum::eval
