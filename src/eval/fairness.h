/// \file fairness.h
/// \brief Explanation-fairness analysis across groups (paper §VII:
/// "explore explanation summaries to assess explanation fairness across
/// user demographic and item category groups"; §V's popularity-bias
/// probe, Fig. 17).
///
/// Given a partition of evaluation units into named groups (male/female
/// users, popular/unpopular items, ...), computes each group's mean
/// explanation quality under a summarization method and reports the
/// between-group gaps. A method is explanation-fair for a metric when its
/// gap is small relative to the metric's scale — the paper's finding is
/// that the ST/PCST summaries are far more even across item-popularity
/// groups than the raw baseline paths.

#ifndef XSUM_EVAL_FAIRNESS_H_
#define XSUM_EVAL_FAIRNESS_H_

#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "eval/runner.h"
#include "util/status.h"

namespace xsum::eval {

/// \brief One named group of user-centric evaluation units.
struct FairnessGroup {
  std::string label;
  std::vector<core::UserRecs> units;
};

/// \brief Per-group mean and the resulting gap for one metric.
struct FairnessRow {
  MetricKind metric = MetricKind::kComprehensibility;
  /// Mean metric value per group, parallel to the input groups.
  std::vector<double> group_means;
  /// max − min over groups.
  double gap = 0.0;
  /// gap / max(|mean|): scale-free disparity in [0, ...]; 0 = perfectly
  /// even.
  double relative_gap = 0.0;
};

/// \brief A full fairness report: one row per requested metric.
struct FairnessReport {
  std::vector<std::string> group_labels;
  std::vector<FairnessRow> rows;

  /// Renders as an aligned table (groups as columns, metrics as rows).
  std::string ToString(const std::string& title) const;
};

/// \brief Evaluates \p method on every group at the given \p k and
/// reports per-group means and gaps for \p metrics.
///
/// Only subgraph-quality metrics are supported (time/memory and
/// consistency are not meaningful per-unit here).
Result<FairnessReport> AnalyzeUserGroupFairness(
    const data::RecGraph& rec_graph, const std::vector<FairnessGroup>& groups,
    const core::SummarizerOptions& method, int k,
    const std::vector<MetricKind>& metrics);

}  // namespace xsum::eval

#endif  // XSUM_EVAL_FAIRNESS_H_
