/// \file runner.h
/// \brief The experiment runner: builds the dataset and graph, computes the
/// baseline recommendations once per recommender, and evaluates metric
/// panels (one panel = one sub-figure of the paper: a scenario × baseline
/// pair, methods as rows, k on the x-axis).

#ifndef XSUM_EVAL_RUNNER_H_
#define XSUM_EVAL_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/summarizer.h"
#include "data/graph_stats.h"
#include "data/kg_builder.h"
#include "eval/experiment.h"
#include "rec/recommender.h"
#include "rec/sampler.h"
#include "util/status.h"

namespace xsum {
namespace core {
class BatchSummarizer;
}  // namespace core
namespace service {
class GraphSnapshotRegistry;
class SummaryService;
}  // namespace service
}  // namespace xsum

namespace xsum::eval {

/// \brief Which quantity a panel reports.
enum class MetricKind : uint8_t {
  kComprehensibility = 0,
  kActionability = 1,
  kDiversity = 2,
  kRedundancy = 3,
  kConsistency = 4,
  kRelevance = 5,
  kPrivacy = 6,
  kTimeMs = 7,
  kMemoryMb = 8,
};

const char* MetricKindToString(MetricKind metric);

/// \brief Cached recommendations of one baseline recommender over the
/// sampled users, in all four scenario shapes.
struct BaselineData {
  rec::RecommenderKind kind = rec::RecommenderKind::kPgpr;
  std::string label;
  /// Per sampled user: ranked top-10 recommendations (k-prefix property).
  std::vector<core::UserRecs> users;
  /// Per sampled item: ranked audience (users who received it).
  std::vector<core::ItemAudience> items;
  /// Item indices of `items` that are catalogue-popular (for Fig. 17).
  std::vector<char> item_is_popular;
  /// Group partitions.
  std::vector<std::vector<core::UserRecs>> user_groups;
  std::vector<std::vector<core::ItemAudience>> item_groups;
};

/// \brief One figure row: method label + mean metric value per k.
struct SeriesResult {
  std::string label;
  std::vector<double> values;  ///< parallel to the panel's ks
};

/// \brief A sub-figure specification.
struct PanelSpec {
  core::Scenario scenario = core::Scenario::kUserCentric;
  MetricKind metric = MetricKind::kComprehensibility;
  std::vector<int> ks;
  std::vector<MethodSpec> methods;
  /// Restrict item-centric panels to popular (1) / unpopular (0) items;
  /// -1 = no filter. Used by the Fig. 17 popularity-bias experiment.
  int item_popularity_filter = -1;
};

/// \brief Builds graph + baselines and evaluates panels.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config);
  ~ExperimentRunner();
  /// Movable; the lazily-created batch engine and service front end are
  /// dropped on move (they hold references to the moved-from graph) and
  /// recreated on next use.
  ExperimentRunner(ExperimentRunner&& other);
  ExperimentRunner& operator=(ExperimentRunner&& other);

  /// Generates the dataset and knowledge graph. Must be called first.
  Status Init();

  const ExperimentConfig& config() const { return config_; }
  const data::Dataset& dataset() const { return dataset_; }
  const data::RecGraph& rec_graph() const { return rec_graph_; }
  const std::vector<uint32_t>& sampled_users() const { return sampled_users_; }

  /// Runs the recommender over the sampled users and assembles all four
  /// scenario unit sets.
  Result<BaselineData> ComputeBaseline(rec::RecommenderKind kind) const;

  /// Evaluates one panel: mean metric value per (method, k) over the
  /// scenario's units.
  ///
  /// Units run across `config().num_workers` threads through the batch
  /// summarization engine (one reusable search workspace per worker);
  /// per-unit values are merged in unit order, so every value-derived
  /// series — down to the last floating-point bit — does not depend on
  /// the worker count. The wall-clock metric (kTimeMs) is a measurement,
  /// not a derived value: those panels run serially so other workers
  /// cannot contend with the quantity being measured.
  ///
  /// When `config().use_summary_cache` is set (default), non-timing panels
  /// route through the service-layer result cache (`service::SummaryService`)
  /// so repeated (method, unit, k) tasks — the same summaries recur across
  /// metric panels — are answered from the LRU. Cached summaries are
  /// bit-identical to fresh ones, leaving every series unchanged; timing
  /// panels always compute.
  Result<std::vector<SeriesResult>> RunPanel(const BaselineData& data,
                                             const PanelSpec& spec) const;

  /// Counters of the panel result cache (zeros when caching is disabled).
  /// Exposed for benches and tests; see `service::SummaryService::Stats`.
  uint64_t panel_cache_hits() const;
  uint64_t panel_cache_misses() const;

 private:
  /// The lazily-created batch engine shared by all panels (its workspaces
  /// amortize across panels; recreated only if the worker count changes).
  core::BatchSummarizer& batch() const;

  /// The lazily-created service front end (registry + sharded summary
  /// cache) panels route through; nullptr when caching is disabled.
  service::SummaryService* service() const;

  ExperimentConfig config_;
  data::Dataset dataset_;
  data::RecGraph rec_graph_;
  std::vector<uint32_t> sampled_users_;
  bool initialized_ = false;
  mutable std::unique_ptr<core::BatchSummarizer> batch_;
  mutable std::unique_ptr<service::GraphSnapshotRegistry> registry_;
  mutable std::unique_ptr<service::SummaryService> service_;
};

}  // namespace xsum::eval

#endif  // XSUM_EVAL_RUNNER_H_
