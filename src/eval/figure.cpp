#include "eval/figure.h"

#include "eval/csv_export.h"
#include "util/string_util.h"
#include "util/table.h"

namespace xsum::eval {

void PrintPanel(std::ostream& os, const std::string& title,
                const std::vector<int>& ks,
                const std::vector<SeriesResult>& series, int precision) {
  std::vector<std::string> headers = {"method"};
  for (int k : ks) headers.push_back(StrCat("k=", k));
  TextTable table(std::move(headers));
  for (const SeriesResult& row : series) {
    table.AddDoubleRow(row.label, row.values, precision);
  }
  os << title << "\n" << table.ToString() << "\n";
}

Status RunQualityFigure(const ExperimentRunner& runner,
                        const std::vector<rec::RecommenderKind>& baselines,
                        const std::vector<core::Scenario>& scenarios,
                        MetricKind metric, const std::string& figure_title,
                        std::ostream& os) {
  os << figure_title << "\n";
  os << "config: " << runner.config().Describe() << "\n\n";

  char panel_letter = 'a';
  for (rec::RecommenderKind kind : baselines) {
    XSUM_ASSIGN_OR_RETURN(BaselineData data, runner.ComputeBaseline(kind));
    for (core::Scenario scenario : scenarios) {
      PanelSpec spec;
      spec.scenario = scenario;
      spec.metric = metric;
      spec.ks = runner.config().ks;
      spec.methods =
          StandardMethods(data.label, runner.config().steiner_variant);
      XSUM_ASSIGN_OR_RETURN(std::vector<SeriesResult> series,
                            runner.RunPanel(data, spec));
      const std::string title =
          StrCat("(", panel_letter, ") ", core::ScenarioToString(scenario),
                 " ", data.label, " - ", MetricKindToString(metric));
      PrintPanel(os, title, spec.ks, series);
      // Optional machine-readable export (XSUM_CSV_DIR).
      MaybeExportPanelCsv(StrCat(figure_title, "_", title), spec.ks, series);
      ++panel_letter;
    }
  }
  return Status::OK();
}

}  // namespace xsum::eval
