#include "eval/eval_stats.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "core/scenario.h"
#include "metrics/metrics.h"

namespace xsum::eval {

namespace {

constexpr uint64_t kLimbMask = 0xFFFFFFFFull;
constexpr int kTraceVersion = 1;

net::JsonValue LimbsToJson(const std::array<uint64_t, ExactSum::kLimbs>& limbs) {
  int top = -1;
  for (int i = 0; i < ExactSum::kLimbs; ++i) {
    if (limbs[i] != 0) top = i;
  }
  net::JsonValue array = net::JsonValue::Array();
  for (int i = 0; i <= top; ++i) {
    array.Append(net::JsonValue(static_cast<int64_t>(limbs[i])));
  }
  return array;
}

Status LimbsFromJson(const net::JsonValue* value, const char* key,
                     std::array<uint64_t, ExactSum::kLimbs>* out) {
  if (value == nullptr || !value->is_array()) {
    return Status::InvalidArgument(std::string("ExactSum requires a '") +
                                   key + "' array");
  }
  if (value->items().size() > static_cast<size_t>(ExactSum::kLimbs)) {
    return Status::InvalidArgument(std::string("ExactSum '") + key +
                                   "' has too many limbs");
  }
  out->fill(0);
  for (size_t i = 0; i < value->items().size(); ++i) {
    const net::JsonValue& limb = value->items()[i];
    if (!limb.is_int() || limb.AsInt() < 0 ||
        limb.AsInt() > static_cast<int64_t>(kLimbMask)) {
      return Status::InvalidArgument(std::string("ExactSum '") + key +
                                     "' limbs must be integers in "
                                     "[0, 2^32)");
    }
    (*out)[i] = static_cast<uint64_t>(limb.AsInt());
  }
  return Status::OK();
}

}  // namespace

bool ExactSum::Add(double value) {
  if (!std::isfinite(value)) return false;
  if (value == 0.0) return true;  // ±0 contributes nothing to either sign
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  const bool negative = (bits >> 63) != 0;
  const int exponent = static_cast<int>((bits >> 52) & 0x7FF);
  const uint64_t fraction = bits & ((uint64_t{1} << 52) - 1);
  // value = mantissa · 2^(shift − 1074): subnormals sit at shift 0 (one
  // limb-0 unit is the smallest subnormal), normals restore the implicit
  // leading bit.
  uint64_t mantissa = fraction;
  int shift = 0;
  if (exponent != 0) {
    mantissa |= uint64_t{1} << 52;
    shift = exponent - 1;
  }
  AddMagnitude(negative ? neg_ : pos_, mantissa, shift);
  return true;
}

void ExactSum::AddMagnitude(Limbs& limbs, uint64_t mantissa, int shift) {
  size_t index = static_cast<size_t>(shift) >> 5;
  const int offset = shift & 31;
  // A 53-bit mantissa shifted by < 32 spans at most three limbs; the
  // carry ripple beyond them terminates fast (limbs rarely saturate).
  unsigned __int128 wide = static_cast<unsigned __int128>(mantissa)
                           << offset;
  uint64_t carry = 0;
  while ((wide != 0 || carry != 0) && index < limbs.size()) {
    const uint64_t chunk = static_cast<uint64_t>(wide & kLimbMask);
    wide >>= 32;
    const uint64_t acc = limbs[index] + chunk + carry;
    limbs[index] = acc & kLimbMask;
    carry = acc >> 32;
    ++index;
  }
  // index == kLimbs is unreachable: the top finite-double bit is 2097 and
  // the 64 bits of limb headroom absorb any feasible addend count.
}

void ExactSum::MergeInto(Limbs& lhs, const Limbs& rhs) {
  uint64_t carry = 0;
  for (size_t i = 0; i < lhs.size(); ++i) {
    const uint64_t acc = lhs[i] + rhs[i] + carry;
    lhs[i] = acc & kLimbMask;
    carry = acc >> 32;
  }
}

ExactSum& ExactSum::operator+=(const ExactSum& rhs) {
  MergeInto(pos_, rhs.pos_);
  MergeInto(neg_, rhs.neg_);
  return *this;
}

bool ExactSum::IsZero() const {
  for (int i = 0; i < kLimbs; ++i) {
    if (pos_[i] != 0 || neg_[i] != 0) return false;
  }
  return true;
}

double ExactSum::ToDouble() const {
  // Signed result = pos − neg; compare magnitudes from the top.
  int cmp = 0;
  for (int i = kLimbs - 1; i >= 0 && cmp == 0; --i) {
    if (pos_[i] != neg_[i]) cmp = pos_[i] > neg_[i] ? 1 : -1;
  }
  if (cmp == 0) return 0.0;
  const Limbs& big = cmp > 0 ? pos_ : neg_;
  const Limbs& small = cmp > 0 ? neg_ : pos_;
  Limbs diff{};
  uint64_t borrow = 0;
  for (size_t i = 0; i < diff.size(); ++i) {
    const uint64_t take = small[i] + borrow;
    if (big[i] >= take) {
      diff[i] = big[i] - take;
      borrow = 0;
    } else {
      diff[i] = big[i] + (uint64_t{1} << 32) - take;
      borrow = 1;
    }
  }
  int top_limb = kLimbs - 1;
  while (diff[top_limb] == 0) --top_limb;
  const int64_t msb =
      static_cast<int64_t>(top_limb) * 32 + (std::bit_width(diff[top_limb]) - 1);
  const auto bit_at = [&diff](int64_t position) -> int {
    if (position < 0) return 0;
    return static_cast<int>(
        (diff[static_cast<size_t>(position) >> 5] >> (position & 31)) & 1);
  };
  // Round the exact magnitude to 53 mantissa bits, half to even. When the
  // mantissa window reaches below bit 0 the value is exact already (bit 0
  // is the smallest subnormal) and no rounding applies.
  int64_t lo = msb - 52;
  uint64_t mantissa = 0;
  for (int i = 0; i < 53; ++i) {
    if (bit_at(lo + i) != 0) mantissa |= uint64_t{1} << i;
  }
  if (lo > 0) {
    const bool guard = bit_at(lo - 1) != 0;
    bool sticky = false;
    for (int64_t position = lo - 2; position >= 0 && !sticky; --position) {
      sticky = bit_at(position) != 0;
    }
    if (guard && (sticky || (mantissa & 1) != 0)) {
      ++mantissa;
      if (mantissa == (uint64_t{1} << 53)) {
        mantissa >>= 1;
        ++lo;
      }
    }
  }
  const double magnitude = std::ldexp(static_cast<double>(mantissa),
                                      static_cast<int>(lo) - 1074);
  return cmp > 0 ? magnitude : -magnitude;
}

net::JsonValue ExactSum::ToJson() const {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("pos", LimbsToJson(pos_));
  json.Set("neg", LimbsToJson(neg_));
  return json;
}

Result<ExactSum> ExactSumFromJson(const net::JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("ExactSum must be a JSON object");
  }
  ExactSum sum;
  XSUM_RETURN_NOT_OK(LimbsFromJson(json.Find("pos"), "pos", &sum.pos_));
  XSUM_RETURN_NOT_OK(LimbsFromJson(json.Find("neg"), "neg", &sum.neg_));
  return sum;
}

void MetricStats::Add(double value) {
  const double squared = value * value;
  if (!std::isfinite(value) || !std::isfinite(squared)) {
    ++non_finite;
    return;
  }
  sum.Add(value);
  sum_squares.Add(squared);
  ++count;
}

MetricStats& MetricStats::operator+=(const MetricStats& rhs) {
  sum += rhs.sum;
  sum_squares += rhs.sum_squares;
  count += rhs.count;
  non_finite += rhs.non_finite;
  return *this;
}

double MetricStats::Mean() const {
  return count == 0 ? 0.0 : sum.ToDouble() / static_cast<double>(count);
}

net::JsonValue MetricStats::ToJson() const {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("count", static_cast<int64_t>(count));
  json.Set("non_finite", static_cast<int64_t>(non_finite));
  json.Set("sum", sum.ToJson());
  json.Set("sum_sq", sum_squares.ToJson());
  return json;
}

Result<MetricStats> MetricStatsFromJson(const net::JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("MetricStats must be a JSON object");
  }
  MetricStats stats;
  const net::JsonValue* count = json.Find("count");
  if (count == nullptr || !count->is_int() || count->AsInt() < 0) {
    return Status::InvalidArgument(
        "MetricStats requires a non-negative integer 'count'");
  }
  stats.count = static_cast<uint64_t>(count->AsInt());
  const net::JsonValue* non_finite = json.Find("non_finite");
  if (non_finite == nullptr || !non_finite->is_int() ||
      non_finite->AsInt() < 0) {
    return Status::InvalidArgument(
        "MetricStats requires a non-negative integer 'non_finite'");
  }
  stats.non_finite = static_cast<uint64_t>(non_finite->AsInt());
  const net::JsonValue* sum = json.Find("sum");
  if (sum == nullptr) {
    return Status::InvalidArgument("MetricStats requires 'sum'");
  }
  auto parsed_sum = ExactSumFromJson(*sum);
  XSUM_RETURN_NOT_OK(parsed_sum.status());
  stats.sum = *parsed_sum;
  const net::JsonValue* sum_sq = json.Find("sum_sq");
  if (sum_sq == nullptr) {
    return Status::InvalidArgument("MetricStats requires 'sum_sq'");
  }
  auto parsed_sq = ExactSumFromJson(*sum_sq);
  XSUM_RETURN_NOT_OK(parsed_sq.status());
  stats.sum_squares = *parsed_sq;
  return stats;
}

EvalStatsSnapshot& EvalStatsSnapshot::operator+=(
    const EvalStatsSnapshot& rhs) {
  summaries += rhs.summaries;
  skipped += rhs.skipped;
  for (const auto& [name, stats] : rhs.metrics) {
    metrics[name] += stats;
  }
  for (const auto& [group, per_metric] : rhs.groups) {
    auto& mine = groups[group];
    for (const auto& [name, stats] : per_metric) {
      mine[name] += stats;
    }
  }
  return *this;
}

net::JsonValue EvalStatsSnapshot::ToJson() const {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("v", static_cast<int64_t>(kTraceVersion));
  json.Set("summaries", static_cast<int64_t>(summaries));
  json.Set("skipped", static_cast<int64_t>(skipped));
  net::JsonValue metric_obj = net::JsonValue::Object();
  for (const auto& [name, stats] : metrics) {
    metric_obj.Set(name, stats.ToJson());
  }
  json.Set("metrics", std::move(metric_obj));
  net::JsonValue group_obj = net::JsonValue::Object();
  for (const auto& [group, per_metric] : groups) {
    net::JsonValue inner = net::JsonValue::Object();
    for (const auto& [name, stats] : per_metric) {
      inner.Set(name, stats.ToJson());
    }
    group_obj.Set(group, std::move(inner));
  }
  json.Set("groups", std::move(group_obj));
  // Derived means are a read-time convenience, not merge state: the
  // parser skips them, and they are a pure function of the stats above so
  // determinism is preserved.
  net::JsonValue means = net::JsonValue::Object();
  for (const auto& [name, stats] : metrics) {
    means.Set(name, stats.Mean());
  }
  json.Set("means", std::move(means));
  return json;
}

namespace {

Status ParseMetricMap(const net::JsonValue& value,
                      std::map<std::string, MetricStats>* out) {
  if (!value.is_object()) {
    return Status::InvalidArgument("metric map must be a JSON object");
  }
  for (const auto& [name, stats_json] : value.members()) {
    auto stats = MetricStatsFromJson(stats_json);
    XSUM_RETURN_NOT_OK(stats.status());
    (*out)[name] = *std::move(stats);
  }
  return Status::OK();
}

}  // namespace

Result<EvalStatsSnapshot> EvalStatsSnapshotFromJson(
    const net::JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("eval stats must be a JSON object");
  }
  const net::JsonValue* version = json.Find("v");
  if (version == nullptr || !version->is_int() ||
      version->AsInt() != kTraceVersion) {
    return Status::InvalidArgument("unsupported eval stats version");
  }
  EvalStatsSnapshot snapshot;
  const net::JsonValue* summaries = json.Find("summaries");
  if (summaries == nullptr || !summaries->is_int() ||
      summaries->AsInt() < 0) {
    return Status::InvalidArgument(
        "eval stats requires a non-negative integer 'summaries'");
  }
  snapshot.summaries = static_cast<uint64_t>(summaries->AsInt());
  const net::JsonValue* skipped = json.Find("skipped");
  if (skipped == nullptr || !skipped->is_int() || skipped->AsInt() < 0) {
    return Status::InvalidArgument(
        "eval stats requires a non-negative integer 'skipped'");
  }
  snapshot.skipped = static_cast<uint64_t>(skipped->AsInt());
  const net::JsonValue* metrics = json.Find("metrics");
  if (metrics == nullptr) {
    return Status::InvalidArgument("eval stats requires 'metrics'");
  }
  XSUM_RETURN_NOT_OK(ParseMetricMap(*metrics, &snapshot.metrics));
  const net::JsonValue* groups = json.Find("groups");
  if (groups == nullptr || !groups->is_object()) {
    return Status::InvalidArgument("eval stats requires a 'groups' object");
  }
  for (const auto& [group, per_metric] : groups->members()) {
    XSUM_RETURN_NOT_OK(
        ParseMetricMap(per_metric, &snapshot.groups[group]));
  }
  return snapshot;
}

const std::vector<std::string>& MetricNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "comprehensibility", "actionability", "diversity",
      "redundancy",        "relevance",     "privacy"};
  return *names;
}

SummaryMetricValues ComputeSummaryMetrics(const data::RecGraph& rec_graph,
                                          const core::Summary& summary) {
  const metrics::ExplanationView view =
      metrics::MakeView(rec_graph.graph(), summary);
  SummaryMetricValues values;
  values.comprehensibility = metrics::Comprehensibility(view);
  values.actionability = metrics::Actionability(rec_graph.graph(), view);
  values.diversity = metrics::Diversity(view);
  values.redundancy = metrics::Redundancy(view);
  values.relevance = metrics::Relevance(view, rec_graph.base_weights());
  values.privacy = metrics::Privacy(rec_graph.graph(), view);
  return values;
}

void EvalAccumulator::RecordSummary(const data::RecGraph& rec_graph,
                                    const core::Summary& summary) {
  const SummaryMetricValues values =
      ComputeSummaryMetrics(rec_graph, summary);
  RecordValues(values,
               std::string("method:") +
                   core::SummaryMethodToString(summary.method),
               std::string("scenario:") +
                   core::ScenarioToString(summary.scenario));
}

void EvalAccumulator::RecordValues(const SummaryMetricValues& values,
                                   std::string_view method_group,
                                   std::string_view scenario_group) {
  const std::vector<std::string>& names = MetricNames();
  const double ordered[] = {values.comprehensibility, values.actionability,
                            values.diversity,         values.redundancy,
                            values.relevance,         values.privacy};
  sync::MutexLock lock(mu_);
  ++stats_.summaries;
  auto& method_stats = stats_.groups[std::string(method_group)];
  auto& scenario_stats = stats_.groups[std::string(scenario_group)];
  for (size_t i = 0; i < names.size(); ++i) {
    stats_.metrics[names[i]].Add(ordered[i]);
    method_stats[names[i]].Add(ordered[i]);
    scenario_stats[names[i]].Add(ordered[i]);
  }
}

void EvalAccumulator::RecordSkipped() {
  sync::MutexLock lock(mu_);
  ++stats_.skipped;
}

EvalStatsSnapshot EvalAccumulator::Snapshot() const {
  sync::MutexLock lock(mu_);
  return stats_;
}

}  // namespace xsum::eval
