/// \file eval_stats.h
/// \brief Mergeable sufficient statistics for the paper's figure/fairness
/// metrics (DESIGN.md §10): shards accumulate per-served-summary metric
/// values, the router merges shard snapshots on `/evalstats`, and the
/// merged state is **bit-identical** to a single process that evaluated
/// the whole stream — the same exact-merge contract `obs/metrics.h` gives
/// counters and histograms, extended to double-valued metric sums.
///
/// Integer bucket counts merge exactly for free; double sums do not —
/// floating-point addition is not associative, so `(a+b)+c` on one shard
/// and `a+(b+c)` across two generally differ in the last ulp, and any
/// naive partial-sum design fails the shard-split property. `ExactSum`
/// fixes this with a Kulisch-style fixed-point accumulator: every double
/// is decomposed into an integer mantissa and added (exactly) into a wide
/// base-2^32 limb vector spanning the full double range, with separate
/// positive/negative magnitude vectors so accumulation never cancels.
/// Integer addition *is* associative and commutative, so the accumulator
/// state after any partition/merge order equals the single-stream state
/// bit for bit (property-tested in tests/eval/eval_stats_test.cpp), and
/// `ToDouble()` — a pure function of that state — rounds the exact sum to
/// the nearest double once, at read time, instead of once per add.
///
/// Layering: depends on core/metrics/data only (no service types), so the
/// handler, the router, the replay drivers, and the tests all consume the
/// same accumulator. The per-summary metric set is the paper's §V-B
/// suite minus Consistency, which is defined over *consecutive-k pairs*
/// of explanations and therefore has no per-request sufficient statistic
/// (eval/figure.h keeps computing it offline over full k-sweeps).

#ifndef XSUM_EVAL_EVAL_STATS_H_
#define XSUM_EVAL_EVAL_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "net/json.h"
#include "util/status.h"
#include "util/sync.h"

namespace xsum::eval {

/// \brief Exact accumulator for sums of doubles: a fixed-point integer
/// covering the entire finite-double range in base-2^32 limbs.
///
/// Limb i holds bits [32i, 32i+32) of the magnitude scaled by 2^1074
/// (so one unit in limb 0 is the smallest subnormal). 68 limbs cover the
/// largest finite double (bit 2097) plus 64 bits of carry headroom, so
/// even 2^64 max-magnitude additions cannot overflow. Positive and
/// negative inputs accumulate into separate magnitude vectors — each is
/// then an exact, order-independent integer sum, which is what makes
/// `operator+=` (element-wise add with carry) associative, commutative,
/// and bit-reproducible across any shard partition.
class ExactSum {
 public:
  static constexpr int kLimbs = 68;

  /// Adds \p value exactly. Non-finite values are rejected (returns
  /// false, state unchanged) — callers count them separately so the
  /// rejection itself stays mergeable.
  bool Add(double value);

  /// Element-wise integer merge; exact for any order and grouping.
  ExactSum& operator+=(const ExactSum& rhs);
  bool operator==(const ExactSum&) const = default;

  /// The accumulated sum rounded once to the nearest double (ties to
  /// even). Deterministic: identical state yields identical bits.
  double ToDouble() const;

  bool IsZero() const;

  /// Lossless JSON form: `{"pos": [...], "neg": [...]}`, each array the
  /// limbs from least significant up, trailing zero limbs trimmed (the
  /// canonical form — every limb is < 2^32 and fits the int64 JSON lane).
  net::JsonValue ToJson() const;

 private:
  friend Result<ExactSum> ExactSumFromJson(const net::JsonValue& json);

  using Limbs = std::array<uint64_t, kLimbs>;

  static void AddMagnitude(Limbs& limbs, uint64_t mantissa, int shift);
  static void MergeInto(Limbs& lhs, const Limbs& rhs);

  Limbs pos_{};
  Limbs neg_{};
};

/// Strict parse of `ExactSum::ToJson` output (fleet scrape path).
Result<ExactSum> ExactSumFromJson(const net::JsonValue& json);

/// \brief Sufficient statistics of one metric over a request stream:
/// exact sum, exact sum of squares, and counts. `a += b` yields exactly
/// the state of one accumulator that saw both streams.
struct MetricStats {
  ExactSum sum;
  ExactSum sum_squares;
  uint64_t count = 0;
  /// Non-finite samples rejected (kept out of the sums).
  uint64_t non_finite = 0;

  void Add(double value);
  MetricStats& operator+=(const MetricStats& rhs);
  bool operator==(const MetricStats&) const = default;

  /// Deterministic mean: the exact sum rounded once, divided once.
  double Mean() const;

  net::JsonValue ToJson() const;
};

Result<MetricStats> MetricStatsFromJson(const net::JsonValue& json);

/// \brief Value snapshot of a whole evaluation accumulator (or a merge of
/// many): per-metric overall stats plus per-group breakdowns (the
/// fairness axes — `method:*`, `scenario:*`). Sorted maps keep every
/// exposition deterministic; `operator+=` merges name-wise with the exact
/// integer adds above, so fleet-merged == single-process bit for bit.
struct EvalStatsSnapshot {
  /// Served summaries folded in (each contributes one sample per metric).
  uint64_t summaries = 0;
  /// Summaries skipped (e.g. a snapshot-version race during a hot swap).
  uint64_t skipped = 0;
  std::map<std::string, MetricStats> metrics;
  std::map<std::string, std::map<std::string, MetricStats>> groups;

  EvalStatsSnapshot& operator+=(const EvalStatsSnapshot& rhs);
  bool operator==(const EvalStatsSnapshot&) const = default;

  /// Canonical lossless JSON (`{"v": 1, "summaries": ..., "skipped": ...,
  /// "metrics": {...}, "groups": {...}}`), `EvalStatsSnapshotFromJson`'s
  /// dual. Derived conveniences (per-metric means) ride under a separate
  /// "means" member that the parser ignores — the sufficient statistics
  /// alone are the merge contract.
  net::JsonValue ToJson() const;
};

/// Strict parse of `EvalStatsSnapshot::ToJson` output (the router's
/// `/evalstats` scrape). Unknown versions and malformed members are
/// errors, never silent partial merges.
Result<EvalStatsSnapshot> EvalStatsSnapshotFromJson(
    const net::JsonValue& json);

/// \brief One summary's per-request metric values (paper §V-B, minus the
/// consecutive-k Consistency), in the fixed order `MetricNames()` lists.
struct SummaryMetricValues {
  double comprehensibility = 0.0;
  double actionability = 0.0;
  double diversity = 0.0;
  double redundancy = 0.0;
  double relevance = 0.0;
  double privacy = 0.0;
};

/// The per-request metric names, index-aligned with
/// `SummaryMetricValues` fields.
const std::vector<std::string>& MetricNames();

/// Evaluates \p summary against \p rec_graph. Pure and deterministic:
/// every shard computes identical values for an identical summary, the
/// precondition for the fleet-merge bit-identity.
SummaryMetricValues ComputeSummaryMetrics(const data::RecGraph& rec_graph,
                                          const core::Summary& summary);

/// \brief Thread-safe live accumulator one serving process owns; the
/// handler records every served summary, `/evalstats` snapshots it.
class EvalAccumulator {
 public:
  /// Evaluates and folds in one served summary, tagged into the
  /// `method:*` and `scenario:*` fairness groups.
  void RecordSummary(const data::RecGraph& rec_graph,
                     const core::Summary& summary);

  /// Folds pre-computed values (test and replay-driver entry).
  void RecordValues(const SummaryMetricValues& values,
                    std::string_view method_group,
                    std::string_view scenario_group);

  /// Counts a summary the caller could not evaluate (version race).
  void RecordSkipped();

  EvalStatsSnapshot Snapshot() const;

 private:
  mutable sync::Mutex mu_;
  EvalStatsSnapshot stats_ XSUM_GUARDED_BY(mu_);
};

}  // namespace xsum::eval

#endif  // XSUM_EVAL_EVAL_STATS_H_
