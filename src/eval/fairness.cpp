#include "eval/fairness.h"

#include <algorithm>
#include <cmath>

#include "metrics/metrics.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace xsum::eval {

namespace {

Result<double> MetricValue(const data::RecGraph& rec_graph,
                           MetricKind metric,
                           const metrics::ExplanationView& view) {
  const graph::KnowledgeGraph& g = rec_graph.graph();
  switch (metric) {
    case MetricKind::kComprehensibility:
      return metrics::Comprehensibility(view);
    case MetricKind::kActionability:
      return metrics::Actionability(g, view);
    case MetricKind::kDiversity:
      return metrics::Diversity(view);
    case MetricKind::kRedundancy:
      return metrics::Redundancy(view);
    case MetricKind::kRelevance:
      return metrics::Relevance(view, rec_graph.base_weights());
    case MetricKind::kPrivacy:
      return metrics::Privacy(g, view);
    default:
      return Status::InvalidArgument(
          StrCat("metric '", MetricKindToString(metric),
                 "' not supported in fairness analysis"));
  }
}

}  // namespace

Result<FairnessReport> AnalyzeUserGroupFairness(
    const data::RecGraph& rec_graph, const std::vector<FairnessGroup>& groups,
    const core::SummarizerOptions& method, int k,
    const std::vector<MetricKind>& metrics_wanted) {
  if (groups.size() < 2) {
    return Status::InvalidArgument("fairness needs at least two groups");
  }
  FairnessReport report;
  for (const FairnessGroup& group : groups) {
    if (group.units.empty()) {
      return Status::InvalidArgument("empty fairness group: " + group.label);
    }
    report.group_labels.push_back(group.label);
  }

  // Per (metric, group) accumulators over the groups' units.
  std::vector<std::vector<StatAccumulator>> acc(
      metrics_wanted.size(), std::vector<StatAccumulator>(groups.size()));

  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (const core::UserRecs& unit : groups[gi].units) {
      const auto task = core::MakeUserCentricTask(rec_graph, unit, k);
      XSUM_ASSIGN_OR_RETURN(core::Summary summary,
                            core::Summarize(rec_graph, task, method));
      const auto view = metrics::MakeView(rec_graph.graph(), summary);
      for (size_t mi = 0; mi < metrics_wanted.size(); ++mi) {
        XSUM_ASSIGN_OR_RETURN(
            const double value,
            MetricValue(rec_graph, metrics_wanted[mi], view));
        acc[mi][gi].Add(value);
      }
    }
  }

  for (size_t mi = 0; mi < metrics_wanted.size(); ++mi) {
    FairnessRow row;
    row.metric = metrics_wanted[mi];
    double lo = 1e300;
    double hi = -1e300;
    double max_abs = 0.0;
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      const double mean = acc[mi][gi].Mean();
      row.group_means.push_back(mean);
      lo = std::min(lo, mean);
      hi = std::max(hi, mean);
      max_abs = std::max(max_abs, std::fabs(mean));
    }
    row.gap = hi - lo;
    row.relative_gap = max_abs > 0.0 ? row.gap / max_abs : 0.0;
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string FairnessReport::ToString(const std::string& title) const {
  std::vector<std::string> headers = {"metric"};
  for (const std::string& label : group_labels) headers.push_back(label);
  headers.push_back("gap");
  headers.push_back("relative gap");
  TextTable table(std::move(headers));
  for (const FairnessRow& row : rows) {
    std::vector<std::string> cells = {MetricKindToString(row.metric)};
    for (double mean : row.group_means) {
      cells.push_back(FormatDouble(mean, 4));
    }
    cells.push_back(FormatDouble(row.gap, 4));
    cells.push_back(FormatDouble(row.relative_gap, 4));
    table.AddRow(std::move(cells));
  }
  return title + "\n" + table.ToString();
}

}  // namespace xsum::eval
