/// \file experiment.h
/// \brief Experiment configuration shared by all bench binaries: which
/// dataset, at what scale, how many sampled users/items (paper §V-A), which
/// k range, and which summarization methods.
///
/// Paper-scale defaults are expensive (the full ML1M graph has 1.13M
/// edges); benches therefore default to a reduced scale that preserves all
/// trends, and every knob can be raised via environment variables
/// (XSUM_SCALE=1.0 XSUM_USERS=200 reproduces the paper's exact protocol).

#ifndef XSUM_EVAL_EXPERIMENT_H_
#define XSUM_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/steiner.h"
#include "core/summarizer.h"
#include "data/synthetic.h"
#include "data/weights.h"
#include "rec/recommender.h"

namespace xsum::eval {

/// \brief Which calibrated dataset to generate.
enum class DatasetKind : uint8_t { kMl1m = 0, kLfm1m = 1 };

const char* DatasetKindToString(DatasetKind kind);

/// \brief One summarization method under evaluation (a figure row).
struct MethodSpec {
  std::string label;
  core::SummarizerOptions options;
};

/// \brief The paper's method lineup: baseline paths, ST with
/// λ ∈ {0.01, 1, 100}, and PCST. \p baseline_label names the baseline row
/// after the path source ("PGPR", "CAFE", ...).
std::vector<MethodSpec> StandardMethods(
    const std::string& baseline_label,
    core::SteinerOptions::Variant variant =
        core::SteinerOptions::Variant::kMehlhorn);

/// \brief Full experiment configuration.
struct ExperimentConfig {
  DatasetKind dataset = DatasetKind::kMl1m;
  /// Dataset scale; 1.0 = the paper's Table II graph.
  double scale = 0.08;
  uint64_t seed = 42;

  /// §V-A sampling: users per gender (paper: 100) and item split
  /// (paper: 50 + 50).
  size_t users_per_gender = 15;
  size_t items_popular = 12;
  size_t items_unpopular = 12;

  /// Group sizes for the group scenarios of the quality figures.
  size_t user_group_size = 10;
  size_t item_group_size = 8;

  /// k range (paper: 1..10).
  std::vector<int> ks = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  /// Worker threads for panel evaluation (0 = one per hardware thread;
  /// XSUM_WORKERS <= 0 also means auto). Value-derived panel results are
  /// deterministic and identical for every worker count: units are
  /// summarized independently (one search workspace per worker) and
  /// merged in unit order. Wall-clock (kTimeMs) panels always run
  /// serially to stay uncontended.
  size_t num_workers = 0;

  /// Route panel summarization through the service-layer result cache
  /// (src/service/): panels whose (method, unit, k) tasks repeat — across
  /// metrics and overlapping k-prefixes — are answered from the sharded
  /// LRU instead of recomputed. Cached results are bit-identical to fresh
  /// ones, so every series is unchanged; wall-clock (kTimeMs) panels
  /// always bypass the cache so the measurement stays a measurement.
  /// XSUM_CACHE=0 disables; XSUM_CACHE_MB sizes the budget.
  bool use_summary_cache = true;
  size_t cache_mb = 64;

  /// §III weight function (paper default: β1=1, β2=0, wA=0).
  data::WeightParams weight_params;

  rec::RecommenderOptions rec_options;

  /// ST construction used by quality panels. Mehlhorn (one multi-source
  /// Dijkstra) and KMB (the paper's Algorithm 1) share the 2-approximation
  /// guarantee; performance benches use KMB to exhibit the |T|-scaling the
  /// paper reports.
  core::SteinerOptions::Variant steiner_variant =
      core::SteinerOptions::Variant::kMehlhorn;

  /// Reads XSUM_SCALE / XSUM_USERS / XSUM_ITEMS / XSUM_SEED / XSUM_WORKERS
  /// / XSUM_CACHE / XSUM_CACHE_MB on top of the given defaults. Garbage or
  /// negative values warn and keep the defaults (util/env.h).
  static ExperimentConfig FromEnv(ExperimentConfig defaults);
  /// FromEnv over the built-in defaults.
  static ExperimentConfig FromEnv();

  /// One-line description for bench output headers.
  std::string Describe() const;
};

}  // namespace xsum::eval

#endif  // XSUM_EVAL_EXPERIMENT_H_
