/// \file sync.h
/// \brief Capability-annotated synchronization primitives (DESIGN.md §9).
///
/// Every lock in the tree goes through this header. The wrappers carry
/// clang Thread Safety Analysis attributes (Hutchins et al., "C/C++
/// Thread Safety Analysis", CGO 2014 — the Abseil GUARDED_BY/REQUIRES
/// idiom), so `-Wthread-safety` proves on *every* compile that:
///
///   - fields marked `XSUM_GUARDED_BY(mu)` are only touched with `mu` held,
///   - helpers marked `XSUM_REQUIRES(mu)` are only called with `mu` held,
///   - locks declared `XSUM_ACQUIRED_BEFORE(other)` are never taken in the
///     reverse order (deadlock ordering as a compile error, under
///     `-Wthread-safety-beta`).
///
/// The attributes compile to nothing on non-clang toolchains, so gcc
/// builds are byte-for-byte the same code without the contracts.
/// ThreadSanitizer remains the dynamic backstop: TSan finds bad
/// interleavings a run happens to explore; the static analysis proves
/// lock discipline on all paths, including ones no test exercises.
///
/// Condition-variable integration: clang's analysis cannot see through
/// the predicate lambda of `cv.wait(lock, pred)` (the lambda is analyzed
/// as a separate function with no capability context), so `MutexLock`
/// exposes `Wait`/`WaitFor`/`WaitUntil` and call sites spell the loop:
///
///   xsum::sync::MutexLock lock(mutex_);
///   while (!done_) lock.Wait(cv_);
///
/// The explicit loop keeps the guarded reads inside the locked scope
/// where the analysis can check them.
///
/// Repo invariant (tools/lint_invariants.py): naked `std::mutex`,
/// `std::lock_guard`, `std::unique_lock`, `std::shared_mutex` et al.
/// are banned everywhere outside this header.

#ifndef XSUM_UTIL_SYNC_H_
#define XSUM_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --- attribute macros ------------------------------------------------------
//
// Gated on __has_attribute so the header is inert on gcc/MSVC and on
// clang versions that predate a given attribute.

#if defined(__clang__) && defined(__has_attribute)
#define XSUM_TSA_HAS(x) __has_attribute(x)
#else
#define XSUM_TSA_HAS(x) 0
#endif

#if XSUM_TSA_HAS(capability)
#define XSUM_TSA(x) __attribute__((x))
#else
#define XSUM_TSA(x)
#endif

/// Marks a type as a capability ("mutex" in diagnostics).
#define XSUM_CAPABILITY(x) XSUM_TSA(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define XSUM_SCOPED_CAPABILITY XSUM_TSA(scoped_lockable)

/// Field may only be accessed while holding `x`.
#define XSUM_GUARDED_BY(x) XSUM_TSA(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define XSUM_PT_GUARDED_BY(x) XSUM_TSA(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define XSUM_REQUIRES(...) \
  XSUM_TSA(requires_capability(__VA_ARGS__))
#define XSUM_REQUIRES_SHARED(...) \
  XSUM_TSA(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities.
#define XSUM_ACQUIRE(...) XSUM_TSA(acquire_capability(__VA_ARGS__))
#define XSUM_ACQUIRE_SHARED(...) \
  XSUM_TSA(acquire_shared_capability(__VA_ARGS__))
#define XSUM_RELEASE(...) XSUM_TSA(release_capability(__VA_ARGS__))
#define XSUM_RELEASE_SHARED(...) \
  XSUM_TSA(release_shared_capability(__VA_ARGS__))
#define XSUM_TRY_ACQUIRE(...) XSUM_TSA(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (catches self-deadlock on non-reentrant locks).
#define XSUM_EXCLUDES(...) XSUM_TSA(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations; violations warn under -Wthread-safety-beta.
#define XSUM_ACQUIRED_BEFORE(...) XSUM_TSA(acquired_before(__VA_ARGS__))
#define XSUM_ACQUIRED_AFTER(...) XSUM_TSA(acquired_after(__VA_ARGS__))

/// Getter that returns (a reference to) the capability guarding other
/// state; usable inside other attribute expressions.
#define XSUM_RETURN_CAPABILITY(x) XSUM_TSA(lock_returned(x))

/// Assert-at-runtime that the capability is held (for callbacks that
/// cannot carry the static proof).
#define XSUM_ASSERT_CAPABILITY(x) XSUM_TSA(assert_capability(x))

/// Opt a function out of the analysis. Every use must carry a comment
/// explaining why the access is safe (see DESIGN.md §9.4).
#define XSUM_NO_THREAD_SAFETY_ANALYSIS \
  XSUM_TSA(no_thread_safety_analysis)

namespace xsum {
namespace sync {

/// \brief Exclusive mutex carrying the "mutex" capability.
///
/// Thin wrapper over std::mutex; prefer the RAII `MutexLock` over the
/// manual Lock/Unlock pair.
class XSUM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XSUM_ACQUIRE() { mu_.lock(); }
  void Unlock() XSUM_RELEASE() { mu_.unlock(); }
  bool TryLock() XSUM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Underlying handle for condition_variable integration; only
  /// MutexLock may touch it.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief Reader/writer mutex carrying the "mutex" capability.
class XSUM_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() XSUM_ACQUIRE() { mu_.lock(); }
  void Unlock() XSUM_RELEASE() { mu_.unlock(); }
  void LockShared() XSUM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() XSUM_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock over `Mutex`, with condition-variable
/// helpers (see file comment for the explicit-loop wait idiom).
class XSUM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XSUM_ACQUIRE(mu)
      : lock_(mu.native_handle()) {}
  ~MutexLock() XSUM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Blocks until notified. Spurious wakeups happen: always call from a
  /// `while (!condition)` loop over guarded state.
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

  /// Blocks until notified or `timeout` elapses.
  template <class Rep, class Period>
  std::cv_status WaitFor(std::condition_variable& cv,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv.wait_for(lock_, timeout);
  }

  /// Blocks until notified or `deadline` passes.
  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      std::condition_variable& cv,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv.wait_until(lock_, deadline);
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// \brief RAII shared (reader) lock over `SharedMutex`.
class XSUM_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) XSUM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() XSUM_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief RAII exclusive (writer) lock over `SharedMutex`.
class XSUM_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) XSUM_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() XSUM_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace sync
}  // namespace xsum

#endif  // XSUM_UTIL_SYNC_H_
