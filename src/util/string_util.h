/// \file string_util.h
/// \brief Small string helpers shared across the library.

#ifndef XSUM_UTIL_STRING_UTIL_H_
#define XSUM_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace xsum {

/// Joins \p parts with \p sep ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits \p s on character \p sep; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// True iff \p s starts with \p prefix.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True iff \p s ends with \p suffix.
bool EndsWith(const std::string& s, const std::string& suffix);

/// Lower-cases ASCII letters in \p s.
std::string ToLower(const std::string& s);

/// Formats a double with \p precision significant digits after the point.
std::string FormatDouble(double value, int precision = 4);

/// Formats a byte count with a binary unit suffix ("1.50 MiB").
std::string FormatBytes(int64_t bytes);

/// Formats a count with thousands separators ("1,125,631").
std::string FormatCount(int64_t value);

/// Streams all arguments into one string (StrCat-style).
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}

}  // namespace xsum

#endif  // XSUM_UTIL_STRING_UTIL_H_
