#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace xsum {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatBytes(int64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (std::fabs(v) >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatCount(int64_t value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (negative) out += '-';
  return std::string(out.rbegin(), out.rend());
}

}  // namespace xsum
