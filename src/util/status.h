/// \file status.h
/// \brief Error model for the xsum library: `Status` and `Result<T>`.
///
/// The public API never throws. Fallible operations return `Status` (or
/// `Result<T>` when they also produce a value), following the Arrow/RocksDB
/// idiom. Convenience macros `XSUM_RETURN_NOT_OK` and `XSUM_ASSIGN_OR_RETURN`
/// keep call sites terse.

#ifndef XSUM_UTIL_STATUS_H_
#define XSUM_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace xsum {

/// \brief Machine-readable category of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
};

/// \brief Human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error states allocate a small state
/// object. `Status` is cheap to move and to copy-when-OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument error with \p message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a NotFound error with \p message.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns an OutOfRange error with \p message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns a FailedPrecondition error with \p message.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns an AlreadyExists error with \p message.
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  /// Returns an Unimplemented error with \p message.
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  /// Returns an Internal error with \p message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns an IOError with \p message.
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }

  /// True iff the status is OK.
  bool ok() const { return state_ == nullptr; }
  /// The status code; kOk when `ok()`.
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// The error message; empty when `ok()`.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prepends \p context to the error message; no-op on OK statuses.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code(), context + ": " + message());
  }

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error `Status`.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding \p value.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a Result holding the error \p status (must not be OK).
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Const access to the value; requires `ok()`.
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(payload_);
  }
  /// Mutable access to the value; requires `ok()`.
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(payload_);
  }
  /// Moves the value out; requires `ok()`.
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(std::move(payload_));
  }

  /// Shorthand accessors mirroring std::optional.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or \p fallback if this Result is an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define XSUM_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::xsum::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define XSUM_CONCAT_IMPL(a, b) a##b
#define XSUM_CONCAT(a, b) XSUM_CONCAT_IMPL(a, b)

/// Assigns the value of a Result-returning expression to `lhs`, or
/// propagates its error out of the enclosing function.
#define XSUM_ASSIGN_OR_RETURN(lhs, expr)                          \
  XSUM_ASSIGN_OR_RETURN_IMPL(XSUM_CONCAT(_res_, __LINE__), lhs, expr)

#define XSUM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

}  // namespace xsum

#endif  // XSUM_UTIL_STATUS_H_
