#include "util/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xsum {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void HexTraceId(uint64_t id, char out[17]) {
  static const char kHex[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[id & 0xf];
    id >>= 4;
  }
  out[16] = '\0';
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void InitLogLevelFromEnv() {
  const char* raw = std::getenv("XSUM_LOG_LEVEL");
  if (raw == nullptr || *raw == '\0') return;
  std::string value(raw);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug" || value == "0") {
    SetLogLevel(LogLevel::kDebug);
  } else if (value == "info" || value == "1") {
    SetLogLevel(LogLevel::kInfo);
  } else if (value == "warn" || value == "warning" || value == "2") {
    SetLogLevel(LogLevel::kWarning);
  } else if (value == "error" || value == "3") {
    SetLogLevel(LogLevel::kError);
  } else if (value == "off" || value == "4") {
    SetLogLevel(LogLevel::kOff);
  }
  // Anything else: keep the default rather than guessing.
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[xsum %s] %s\n", LevelName(level), message.c_str());
}

void LogMessage(LogLevel level, const char* component, uint64_t trace_id,
                const std::string& message) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  const char* name = (component != nullptr && *component != '\0')
                         ? component
                         : "-";
  if (trace_id != 0) {
    char hex[17];
    HexTraceId(trace_id, hex);
    std::fprintf(stderr, "[xsum %s %s trace=%s] %s\n", LevelName(level), name,
                 hex, message.c_str());
  } else {
    std::fprintf(stderr, "[xsum %s %s] %s\n", LevelName(level), name,
                 message.c_str());
  }
}

bool LogRateLimiter::Allow() {
  const auto now = std::chrono::steady_clock::now();
  sync::MutexLock lock(mu_);
  if (!started_) {
    started_ = true;
    last_ = now;
  }
  const double elapsed =
      std::chrono::duration<double>(now - last_).count();
  last_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * per_sec_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  ++suppressed_;
  return false;
}

uint64_t LogRateLimiter::suppressed() const {
  sync::MutexLock lock(mu_);
  return suppressed_;
}

}  // namespace xsum
