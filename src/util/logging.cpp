#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace xsum {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[xsum %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace xsum
