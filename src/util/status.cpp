#include "util/status.h"

namespace xsum {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace xsum
