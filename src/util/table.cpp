#include "util/table.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace xsum {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddDoubleRow(const std::string& label,
                             const std::vector<double>& vals, int precision) {
  std::vector<std::string> cells;
  cells.reserve(vals.size() + 1);
  cells.push_back(label);
  for (double v : vals) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      if (c + 1 < headers_.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out = Join(headers_, ",") + "\n";
  for (const auto& row : rows_) out += Join(row, ",") + "\n";
  return out;
}

void TextTable::Print(std::ostream& os) const { os << ToString(); }

}  // namespace xsum
