/// \file env.h
/// \brief Environment-variable knobs for the benchmark harness.
///
/// All bench binaries honour:
///  - `XSUM_SCALE`  (double, default bench-specific): dataset scale factor,
///    1.0 = paper-scale graphs.
///  - `XSUM_USERS`  (int): number of sampled users (paper: 200).
///  - `XSUM_ITEMS`  (int): number of sampled items (paper: 100).
///  - `XSUM_SEED`   (uint64): master seed.

#ifndef XSUM_UTIL_ENV_H_
#define XSUM_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace xsum {

/// Reads env var \p name as double; returns \p fallback if unset. A set but
/// unparseable value (garbage, or trailing junk after the number) logs a
/// warning and returns \p fallback — never a silent partial parse.
double GetEnvDouble(const std::string& name, double fallback);

/// Reads env var \p name as int64 with the same strictness as
/// `GetEnvDouble`: garbage warns and falls back.
int64_t GetEnvInt(const std::string& name, int64_t fallback);

/// `GetEnvInt` for count-like knobs (worker counts, request counts): a
/// negative value warns and returns \p fallback instead of being clamped
/// or wrapped through an unsigned conversion.
int64_t GetEnvNonNegativeInt(const std::string& name, int64_t fallback);

/// Reads env var \p name as string; returns \p fallback if unset.
std::string GetEnvString(const std::string& name, const std::string& fallback);

}  // namespace xsum

#endif  // XSUM_UTIL_ENV_H_
