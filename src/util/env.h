/// \file env.h
/// \brief Environment-variable knobs for the benchmark harness.
///
/// All bench binaries honour:
///  - `XSUM_SCALE`  (double, default bench-specific): dataset scale factor,
///    1.0 = paper-scale graphs.
///  - `XSUM_USERS`  (int): number of sampled users (paper: 200).
///  - `XSUM_ITEMS`  (int): number of sampled items (paper: 100).
///  - `XSUM_SEED`   (uint64): master seed.

#ifndef XSUM_UTIL_ENV_H_
#define XSUM_UTIL_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xsum {

/// Reads env var \p name as double; returns \p fallback if unset. A set but
/// unparseable value (garbage, or trailing junk after the number) logs a
/// warning and returns \p fallback — never a silent partial parse.
double GetEnvDouble(const std::string& name, double fallback);

/// Reads env var \p name as int64 with the same strictness as
/// `GetEnvDouble`: garbage warns and falls back.
int64_t GetEnvInt(const std::string& name, int64_t fallback);

/// `GetEnvInt` for count-like knobs (worker counts, request counts): a
/// negative value warns and returns \p fallback instead of being clamped
/// or wrapped through an unsigned conversion.
int64_t GetEnvNonNegativeInt(const std::string& name, int64_t fallback);

/// Reads env var \p name as string; returns \p fallback if unset.
std::string GetEnvString(const std::string& name, const std::string& fallback);

/// \brief One documented `XSUM_*` environment knob.
///
/// The catalog below is the single source of truth for the operator
/// surface: `docs/OPERATIONS.md`'s table is cross-checked against it by
/// `tests/util/env_docs_test.cpp` (exact name set, matching types and
/// defaults), and the same test greps the source tree so no binary can
/// read an `XSUM_*` variable the catalog does not list. Adding a knob
/// therefore means adding it here *and* to the table, or the tier-1 suite
/// fails.
struct EnvVarInfo {
  const char* name;         ///< e.g. "XSUM_SCALE"
  const char* type;         ///< "double" | "int" | "string"
  const char* default_str;  ///< human-readable default, e.g. "0.08"
  const char* range;        ///< valid range, e.g. ">= 0"
  const char* consumers;    ///< which binaries honour it
  const char* description;  ///< one line
};

/// All documented `XSUM_*` knobs, in display order.
const std::vector<EnvVarInfo>& EnvVarCatalog();

}  // namespace xsum

#endif  // XSUM_UTIL_ENV_H_
