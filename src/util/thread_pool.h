/// \file thread_pool.h
/// \brief A small fixed-size worker pool built around one primitive:
/// `ParallelFor(count, fn)`, which runs `fn(worker, index)` for every index
/// in [0, count) across the workers and blocks until all are done.
///
/// Design notes (see DESIGN.md §2.3):
///  - The calling thread participates as worker 0, so a pool of size 1
///    spawns no threads and runs strictly inline — the reference ordering
///    for the determinism guarantees of the evaluation runner.
///  - Worker ids are stable and dense in [0, num_workers): callers key
///    per-worker scratch state (e.g. a `SearchWorkspace`) off them.
///  - Indices are handed out through an atomic counter (dynamic load
///    balancing); callers that need deterministic *output* must write to
///    index-addressed slots and merge in index order afterwards, never
///    accumulate in completion order.
///  - The library is exception-free (Status-based); `fn` must not throw.

#ifndef XSUM_UTIL_THREAD_POOL_H_
#define XSUM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace xsum {

class ThreadPool {
 public:
  /// Creates a pool of \p num_workers (clamped to >= 1); spawns
  /// `num_workers - 1` threads, since the caller of ParallelFor is
  /// worker 0.
  explicit ThreadPool(size_t num_workers)
      : num_workers_(num_workers < 1 ? 1 : num_workers) {
    threads_.reserve(num_workers_ - 1);
    for (size_t w = 1; w < num_workers_; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~ThreadPool() {
    {
      sync::MutexLock lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return num_workers_; }

  /// A sensible default worker count for this machine.
  static size_t DefaultWorkers() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// Runs `fn(worker, index)` for every index in [0, count); returns when
  /// all indices completed. Must be called from the owning thread only
  /// (no nesting, not re-entrant).
  void ParallelFor(size_t count,
                   const std::function<void(size_t, size_t)>& fn) {
    if (count == 0) return;
    if (num_workers_ == 1 || count == 1) {
      for (size_t i = 0; i < count; ++i) fn(0, i);
      return;
    }
    {
      sync::MutexLock lock(mutex_);
      fn_ = &fn;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      pending_workers_ = num_workers_ - 1;
      ++generation_;
    }
    work_cv_.notify_all();
    RunIndices(0, fn, count);
    sync::MutexLock lock(mutex_);
    while (pending_workers_ != 0) lock.Wait(done_cv_);
    fn_ = nullptr;
  }

 private:
  /// Drains indices from the shared atomic counter. The batch's fn/count
  /// are passed by value-copied-under-the-lock (see WorkerLoop) rather
  /// than read from `fn_`/`count_` here, so every access to the guarded
  /// members stays inside a locked region the analysis can check.
  void RunIndices(size_t worker, const std::function<void(size_t, size_t)>& fn,
                  size_t count) {
    while (true) {
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(worker, i);
    }
  }

  void WorkerLoop(size_t worker) {
    uint64_t seen_generation = 0;
    while (true) {
      const std::function<void(size_t, size_t)>* fn = nullptr;
      size_t count = 0;
      {
        sync::MutexLock lock(mutex_);
        while (!shutdown_ && generation_ == seen_generation) {
          lock.Wait(work_cv_);
        }
        if (shutdown_) return;
        seen_generation = generation_;
        fn = fn_;
        count = count_;
      }
      RunIndices(worker, *fn, count);
      {
        sync::MutexLock lock(mutex_);
        --pending_workers_;
      }
      done_cv_.notify_one();
    }
  }

  const size_t num_workers_;
  std::vector<std::thread> threads_;

  sync::Mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  /// Borrowed pointer to the caller's fn for the current batch; the
  /// ParallelFor caller keeps the referent alive until every worker has
  /// decremented pending_workers_, which happens-after its last use.
  const std::function<void(size_t, size_t)>* fn_ XSUM_GUARDED_BY(mutex_) =
      nullptr;
  size_t count_ XSUM_GUARDED_BY(mutex_) = 0;
  /// Lock-free work counter (DESIGN.md §9.4): index handout is the inner
  /// loop of every parallel kernel; a relaxed fetch_add is the whole
  /// point of the dynamic load-balancing design. Batch visibility is
  /// ordered by the generation handshake under mutex_, not by next_.
  std::atomic<size_t> next_{0};
  size_t pending_workers_ XSUM_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ XSUM_GUARDED_BY(mutex_) = 0;
  bool shutdown_ XSUM_GUARDED_BY(mutex_) = false;
};

}  // namespace xsum

#endif  // XSUM_UTIL_THREAD_POOL_H_
