/// \file memory.h
/// \brief Memory accounting for the performance metrics (Figures 9-11).
///
/// Two complementary mechanisms:
///  - `MemoryCounter`: an explicit byte counter the summarizers charge for
///    their materialized data structures (deterministic, what the figures
///    report as "memory").
///  - `CurrentRssBytes()`: the process resident set, read from
///    /proc/self/status, used as a sanity reference in scalability benches.

#ifndef XSUM_UTIL_MEMORY_H_
#define XSUM_UTIL_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace xsum {

/// \brief Deterministic byte counter with peak tracking.
class MemoryCounter {
 public:
  /// Charges \p bytes to the counter.
  void Add(size_t bytes) {
    current_ += static_cast<int64_t>(bytes);
    if (current_ > peak_) peak_ = current_;
  }

  /// Releases \p bytes from the counter (clamped at zero).
  void Sub(size_t bytes) {
    current_ -= static_cast<int64_t>(bytes);
    if (current_ < 0) current_ = 0;
  }

  /// Resets both current and peak to zero.
  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

  /// Currently charged bytes.
  int64_t current_bytes() const { return current_; }
  /// High-water mark since the last Reset().
  int64_t peak_bytes() const { return peak_; }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

/// \brief Resident-set size of this process in bytes (0 if unavailable).
int64_t CurrentRssBytes();

/// \brief Peak resident-set size of this process in bytes (0 if unavailable).
int64_t PeakRssBytes();

}  // namespace xsum

#endif  // XSUM_UTIL_MEMORY_H_
