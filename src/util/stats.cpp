#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace xsum {

void StatAccumulator::Add(double value) {
  ++count_;
  sum_ += value;
  if (window_ == 0 || values_.size() < window_) {
    values_.push_back(value);
  } else {
    values_[next_] = value;
    next_ = (next_ + 1) % window_;
  }
}

double StatAccumulator::Mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double StatAccumulator::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double StatAccumulator::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double StatAccumulator::StdDev() const {
  if (values_.size() < 2) return 0.0;
  // Mean of the retained sample (== Mean() when unwindowed).
  double mean = 0.0;
  for (double v : values_) mean += v;
  mean /= static_cast<double>(values_.size());
  double ss = 0.0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double StatAccumulator::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void StatAccumulator::Reset() {
  values_.clear();
  next_ = 0;
  count_ = 0;
  sum_ = 0.0;
}

}  // namespace xsum
