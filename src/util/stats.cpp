#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace xsum {

void StatAccumulator::Add(double value) {
  values_.push_back(value);
  sum_ += value;
}

double StatAccumulator::Mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double StatAccumulator::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double StatAccumulator::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double StatAccumulator::StdDev() const {
  if (values_.size() < 2) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double StatAccumulator::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void StatAccumulator::Reset() {
  values_.clear();
  sum_ = 0.0;
}

}  // namespace xsum
