/// \file timer.h
/// \brief Elapsed-time utilities used by the performance metrics
/// (paper §V-B-8, Figures 9-11) and the observability layer.
///
/// Every latency measurement in the tree goes through `WallTimer`, which
/// is pinned to `std::chrono::steady_clock` — monotonic, immune to NTP
/// steps and wall-clock adjustments. This is a hard requirement for the
/// obs layer: trace spans and histogram samples must never go negative
/// or jump because the host's civil time moved. Audited PR 7: no
/// `system_clock`/`gettimeofday`/`time()` calls exist in any timing
/// path; new code must measure via this file, not raw clocks.

#ifndef XSUM_UTIL_TIMER_H_
#define XSUM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xsum {

/// \brief Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  /// Starts (or restarts) the stopwatch.
  void Start() { start_ = Clock::now(); }

  /// Elapsed time since Start() in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time since Start() in microseconds.
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }

  /// Elapsed time since Start() in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// Elapsed time since Start() in seconds (fractional).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
};

/// \brief Accumulates elapsed nanoseconds into a counter on destruction.
class ScopedTimer {
 public:
  /// \p accumulator_ns receives the elapsed time when the scope exits.
  explicit ScopedTimer(int64_t* accumulator_ns)
      : accumulator_ns_(accumulator_ns) {
    timer_.Start();
  }
  ~ScopedTimer() { *accumulator_ns_ += timer_.ElapsedNanos(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* accumulator_ns_;
  WallTimer timer_;
};

}  // namespace xsum

#endif  // XSUM_UTIL_TIMER_H_
