#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace xsum {

namespace {

// Reads a "VmXXX:  <kb> kB" field from /proc/self/status.
int64_t ReadProcStatusKb(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      long long value = 0;
      if (std::sscanf(line + field_len, " %lld", &value) == 1) {
        kb = static_cast<int64_t>(value);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

int64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS:") * 1024; }

int64_t PeakRssBytes() { return ReadProcStatusKb("VmHWM:") * 1024; }

}  // namespace xsum
