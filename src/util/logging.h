/// \file logging.h
/// \brief Minimal leveled, structured logging for library diagnostics.
///
/// Lines carry an optional *component* (dotted subsystem name, e.g.
/// "net.router") and *trace ID* (the obs-layer request trace, printed as
/// 16 hex digits) so one request can be grepped across a fleet's stderr:
///
///     [xsum WARN net.router trace=00f3a9…] attempt 127.0.0.1:9101 failed
///
/// The default minimum level is Warning; binaries honour the
/// `XSUM_LOG_LEVEL` env knob via `InitLogLevelFromEnv()`. Messages go to
/// stderr so bench stdout stays parseable.
///
/// Hot-path call sites (per-request failure paths, accept loops) must
/// not flood stderr under load: gate them with a `LogRateLimiter`, a
/// token bucket that admits a bounded burst and a steady per-second
/// rate, counting what it suppressed.

#ifndef XSUM_UTIL_LOGGING_H_
#define XSUM_UTIL_LOGGING_H_

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>

#include "util/sync.h"

namespace xsum {

/// \brief Severity levels, ordered.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Applies `XSUM_LOG_LEVEL` (debug|info|warn|error|off, or 0–4) to the
/// global level; unset or unparseable values leave the default alone.
void InitLogLevelFromEnv();

/// Emits \p message at \p level if enabled.
void LogMessage(LogLevel level, const std::string& message);

/// Structured form: \p component names the subsystem ("net.router");
/// \p trace_id, when nonzero, appends `trace=<16 hex>` so one request's
/// lines correlate across processes.
void LogMessage(LogLevel level, const char* component, uint64_t trace_id,
                const std::string& message);

/// \brief Token-bucket gate for hot-path log sites. Thread-safe.
///
/// Admits up to \p burst lines instantly, refilling at \p per_sec lines
/// per second (steady clock); everything else is counted, not printed.
/// Declare one `static` per call site.
class LogRateLimiter {
 public:
  LogRateLimiter(double per_sec, double burst)
      : per_sec_(per_sec), burst_(burst), tokens_(burst) {}

  /// True when this line may print; false increments `suppressed()`.
  bool Allow();

  /// Lines swallowed since construction (report periodically if needed).
  uint64_t suppressed() const;

 private:
  const double per_sec_;
  const double burst_;
  mutable sync::Mutex mu_;
  double tokens_ XSUM_GUARDED_BY(mu_);
  bool started_ XSUM_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point last_ XSUM_GUARDED_BY(mu_){};
  uint64_t suppressed_ XSUM_GUARDED_BY(mu_) = 0;
};

namespace internal {

/// \brief Stream-style log line; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level, const char* component = nullptr,
                     uint64_t trace_id = 0)
      : level_(level), component_(component), trace_id_(trace_id) {}
  ~LogStream() {
    if (component_ != nullptr || trace_id_ != 0) {
      LogMessage(level_, component_, trace_id_, oss_.str());
    } else {
      LogMessage(level_, oss_.str());
    }
  }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  uint64_t trace_id_;
  std::ostringstream oss_;
};

}  // namespace internal

#define XSUM_LOG_DEBUG ::xsum::internal::LogStream(::xsum::LogLevel::kDebug)
#define XSUM_LOG_INFO ::xsum::internal::LogStream(::xsum::LogLevel::kInfo)
#define XSUM_LOG_WARN ::xsum::internal::LogStream(::xsum::LogLevel::kWarning)
#define XSUM_LOG_ERROR ::xsum::internal::LogStream(::xsum::LogLevel::kError)

/// Structured variants: `XSUM_CLOG_WARN("net.router", trace_id) << …`.
/// Pass 0 for trace_id on lines not tied to a request.
#define XSUM_CLOG_DEBUG(component, trace_id) \
  ::xsum::internal::LogStream(::xsum::LogLevel::kDebug, (component), (trace_id))
#define XSUM_CLOG_INFO(component, trace_id) \
  ::xsum::internal::LogStream(::xsum::LogLevel::kInfo, (component), (trace_id))
#define XSUM_CLOG_WARN(component, trace_id)                         \
  ::xsum::internal::LogStream(::xsum::LogLevel::kWarning, (component), \
                              (trace_id))
#define XSUM_CLOG_ERROR(component, trace_id) \
  ::xsum::internal::LogStream(::xsum::LogLevel::kError, (component), (trace_id))

}  // namespace xsum

#endif  // XSUM_UTIL_LOGGING_H_
