/// \file logging.h
/// \brief Minimal leveled logging for library diagnostics.
///
/// Logging is off by default at Debug level; benches raise verbosity via
/// `SetLogLevel`. Messages go to stderr so bench stdout stays parseable.

#ifndef XSUM_UTIL_LOGGING_H_
#define XSUM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace xsum {

/// \brief Severity levels, ordered.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Emits \p message at \p level if enabled.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// \brief Stream-style log line; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, oss_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace internal

#define XSUM_LOG_DEBUG ::xsum::internal::LogStream(::xsum::LogLevel::kDebug)
#define XSUM_LOG_INFO ::xsum::internal::LogStream(::xsum::LogLevel::kInfo)
#define XSUM_LOG_WARN ::xsum::internal::LogStream(::xsum::LogLevel::kWarning)
#define XSUM_LOG_ERROR ::xsum::internal::LogStream(::xsum::LogLevel::kError)

}  // namespace xsum

#endif  // XSUM_UTIL_LOGGING_H_
