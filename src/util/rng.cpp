#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace xsum {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfTable table(n, s);
  return table.Sample(this);
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k > n / 3) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      const uint64_t j = i + Uniform(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    // Sparse case: rejection with a hash set.
    std::unordered_set<uint64_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      const uint64_t v = Uniform(n);
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfTable::ZipfTable(uint64_t n, double s) {
  assert(n > 0);
  cum_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cum_[i] = total;
  }
  for (auto& c : cum_) c /= total;
  cum_.back() = 1.0;  // guard against floating-point shortfall
}

uint64_t ZipfTable::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  if (it == cum_.end()) return cum_.size() - 1;
  return static_cast<uint64_t>(it - cum_.begin());
}

double ZipfTable::Pmf(uint64_t i) const {
  assert(i < cum_.size());
  if (i == 0) return cum_[0];
  return cum_[i] - cum_[i - 1];
}

}  // namespace xsum
