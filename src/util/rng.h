/// \file rng.h
/// \brief Deterministic pseudo-random number generation for xsum.
///
/// Every stochastic component in the library (dataset generators, simulated
/// recommenders, samplers) takes an explicit seed and draws from `Rng`, a
/// xoshiro256++ generator seeded via SplitMix64. This guarantees bit-exact
/// reproducibility of experiments across runs and platforms.

#ifndef XSUM_UTIL_RNG_H_
#define XSUM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xsum {

/// \brief SplitMix64 step; used to expand seeds and as a cheap hash.
uint64_t SplitMix64(uint64_t* state);

/// \brief xoshiro256++ pseudo-random generator with sampling helpers.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  uint64_t operator()() { return Next64(); }
  /// Next raw 64-bit output.
  uint64_t Next64();

  /// Uniform integer in [0, bound). \p bound must be > 0.
  uint64_t Uniform(uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double UniformDouble();
  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);
  /// Bernoulli draw with success probability \p p (clamped to [0,1]).
  bool Bernoulli(double p);
  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);
  /// Exponential with rate \p lambda (> 0).
  double Exponential(double lambda);

  /// Zipf-distributed integer in [0, n) with skew \p s (s >= 0).
  ///
  /// Uses inverse-CDF over precomputed cumulative weights when a
  /// `ZipfTable` is supplied; this method builds a one-off table and is
  /// O(n) — prefer `ZipfTable` for repeated draws.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle of \p v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples \p k distinct indices from [0, n) (k <= n), in random order.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Picks one index in [0, weights.size()) proportionally to weights.
  /// All weights must be >= 0 and sum > 0; O(n) per draw.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// \brief Precomputed cumulative table for fast repeated Zipf draws.
///
/// P(i) ∝ 1/(i+1)^s for i in [0, n). Draws are O(log n).
class ZipfTable {
 public:
  /// Builds the table for support size \p n and skew \p s.
  ZipfTable(uint64_t n, double s);

  /// Draws one Zipf-distributed index in [0, n).
  uint64_t Sample(Rng* rng) const;

  /// Support size.
  uint64_t size() const { return cum_.size(); }

  /// Probability mass of index \p i.
  double Pmf(uint64_t i) const;

 private:
  std::vector<double> cum_;  // normalized cumulative distribution
};

}  // namespace xsum

#endif  // XSUM_UTIL_RNG_H_
