/// \file table.h
/// \brief Aligned-column table printer used by every bench binary to emit
/// the rows/series the paper's tables and figures report.

#ifndef XSUM_UTIL_TABLE_H_
#define XSUM_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace xsum {

/// \brief Collects rows of string cells and prints them column-aligned.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty, extra cells are an
  /// error caught by assert.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: row of doubles formatted with \p precision.
  void AddDoubleRow(const std::string& label, const std::vector<double>& vals,
                    int precision = 4);

  /// Number of data rows.
  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a header rule.
  std::string ToString() const;

  /// Renders as CSV (no alignment padding).
  std::string ToCsv() const;

  /// Prints ToString() to \p os.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xsum

#endif  // XSUM_UTIL_TABLE_H_
