#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/logging.h"

namespace xsum {

namespace {

/// True iff \p rest is empty or all ASCII whitespace (a parse that stopped
/// here consumed the whole meaningful value).
bool OnlyTrailingSpace(const char* rest) {
  for (; *rest != '\0'; ++rest) {
    if (!std::isspace(static_cast<unsigned char>(*rest))) return false;
  }
  return true;
}

void WarnInvalid(const std::string& name, const char* raw,
                 const char* expected) {
  XSUM_LOG_WARN << name << "=\"" << raw << "\" is not a valid " << expected
                << "; ignoring it and using the default";
}

}  // namespace

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw, &end);
  // ERANGE: the digits parsed but the value saturated (inf / 0) — treat
  // it as invalid rather than silently serving the saturated value.
  if (end == raw || !OnlyTrailingSpace(end) || errno == ERANGE) {
    WarnInvalid(name, raw, "number");
    return fallback;
  }
  return v;
}

int64_t GetEnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || !OnlyTrailingSpace(end) || errno == ERANGE) {
    WarnInvalid(name, raw, "integer");
    return fallback;
  }
  return static_cast<int64_t>(v);
}

int64_t GetEnvNonNegativeInt(const std::string& name, int64_t fallback) {
  const int64_t v = GetEnvInt(name, fallback);
  if (v < 0) {
    const char* raw = std::getenv(name.c_str());
    XSUM_LOG_WARN << name << "=" << (raw != nullptr ? raw : "") << " is "
                  << "negative; ignoring it and using the default ("
                  << fallback << ")";
    return fallback;
  }
  return v;
}

std::string GetEnvString(const std::string& name,
                         const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  return raw;
}

}  // namespace xsum
