#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/logging.h"

namespace xsum {

namespace {

/// True iff \p rest is empty or all ASCII whitespace (a parse that stopped
/// here consumed the whole meaningful value).
bool OnlyTrailingSpace(const char* rest) {
  for (; *rest != '\0'; ++rest) {
    if (!std::isspace(static_cast<unsigned char>(*rest))) return false;
  }
  return true;
}

void WarnInvalid(const std::string& name, const char* raw,
                 const char* expected) {
  XSUM_LOG_WARN << name << "=\"" << raw << "\" is not a valid " << expected
                << "; ignoring it and using the default";
}

}  // namespace

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw, &end);
  // ERANGE: the digits parsed but the value saturated (inf / 0) — treat
  // it as invalid rather than silently serving the saturated value.
  if (end == raw || !OnlyTrailingSpace(end) || errno == ERANGE) {
    WarnInvalid(name, raw, "number");
    return fallback;
  }
  return v;
}

int64_t GetEnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || !OnlyTrailingSpace(end) || errno == ERANGE) {
    WarnInvalid(name, raw, "integer");
    return fallback;
  }
  return static_cast<int64_t>(v);
}

int64_t GetEnvNonNegativeInt(const std::string& name, int64_t fallback) {
  const int64_t v = GetEnvInt(name, fallback);
  if (v < 0) {
    const char* raw = std::getenv(name.c_str());
    XSUM_LOG_WARN << name << "=" << (raw != nullptr ? raw : "") << " is "
                  << "negative; ignoring it and using the default ("
                  << fallback << ")";
    return fallback;
  }
  return v;
}

std::string GetEnvString(const std::string& name,
                         const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  return raw;
}

const std::vector<EnvVarInfo>& EnvVarCatalog() {
  // Display order == docs/OPERATIONS.md table order: dataset knobs,
  // engine knobs, serving knobs, network knobs, output knobs.
  static const std::vector<EnvVarInfo> catalog = {
      {"XSUM_SCALE", "double", "bench-specific (0.08 eval, 0.03 serving)",
       "> 0", "all benches, examples",
       "dataset scale factor; 1.0 = the paper's Table II graphs"},
      {"XSUM_USERS", "int", "bench-specific (30 eval, 12 serving)", ">= 0",
       "all benches, examples",
       "sampled users (paper: 200; eval splits them per gender)"},
      {"XSUM_ITEMS", "int", "24", ">= 0", "eval benches",
       "sampled items for item-centric panels (paper: 100)"},
      {"XSUM_SEED", "int", "42", ">= 0", "all benches, examples",
       "master RNG seed; every derived stream is seeded from it"},
      {"XSUM_WORKERS", "int", "0 (auto)", ">= 0",
       "eval benches, examples (panel evaluation)",
       "worker threads for panel evaluation; 0 = one per hardware thread"},
      {"XSUM_FRONTIER", "string", "auto",
       "auto, heap, bucket, or delta", "PCST growth (core/pcst)",
       "frontier structure override for PCST growth; auto picks by "
       "search volume (heap < 20k nodes, bucket < 64k, delta above)"},
      {"XSUM_CACHE", "int", "1", "0 or 1", "eval benches, xsum_server",
       "route panel/service summarization through the summary cache"},
      {"XSUM_CACHE_MB", "int", "64", ">= 0", "eval benches, xsum_server",
       "summary-cache byte budget in MiB"},
      {"XSUM_BATCH_WINDOW_US", "int", "0 (off)", ">= 0",
       "xsum_server, bench_service",
       "service micro-batching window in microseconds: concurrent "
       "cache-miss computes coalesce into one multi-query kernel wave"},
      {"XSUM_BATCH_MAX", "int", "8", ">= 2",
       "xsum_server, bench_service",
       "requests per wave at which the micro-batching window closes early"},
      {"XSUM_REQUESTS", "int", "bench-specific (2000 bench_service, "
       "400 xsum_server, 300 bench_net)", ">= 0",
       "bench_service, bench_net, xsum_server",
       "total requests replayed per serving arm/phase"},
      {"XSUM_CLIENTS", "int", "2", ">= 1", "bench_net, bench_service, xsum_server",
       "concurrent client threads driving the request stream"},
      {"XSUM_ZIPF", "double", "1.1", ">= 0",
       "bench_service, bench_net, xsum_server",
       "Zipf skew of the synthetic task mix (0 = uniform)"},
      {"XSUM_PORT", "int", "8080", "0..65535 (0 = ephemeral)",
       "xsum_server serve",
       "HTTP listen port of the serving process"},
      {"XSUM_SHARDS", "string", "\"\" (no shards: run as a plain shard)",
       "comma-separated host:port list", "xsum_server serve",
       "backend shard endpoints; non-empty makes the process a router"},
      {"XSUM_NET_WORKERS", "int", "4", ">= 1",
       "xsum_server serve, bench_net",
       "HTTP server worker threads (connection-serving pool)"},
      {"XSUM_LOCAL_FALLBACK", "int", "1", "0 or 1", "xsum_server serve",
       "router answers from its in-process engine when all shards are down"},
      {"XSUM_REPLICAS", "int", "2", ">= 1", "xsum_server serve",
       "replica-set size: ring successors eligible to serve each unit"},
      {"XSUM_MAX_FAILOVER", "int", "2", ">= 0", "xsum_server serve",
       "transport failures tolerated per routed request before giving up"},
      {"XSUM_HEDGE", "int", "1", "0 or 1", "xsum_server serve",
       "hedge slow requests to a second replica after the adaptive delay"},
      {"XSUM_HEDGE_MS", "int", "20", ">= 1", "xsum_server serve",
       "floor of the adaptive (p99-driven) hedge delay, in milliseconds"},
      {"XSUM_EJECT_MS", "int", "500", ">= 1", "xsum_server serve",
       "base reinstatement backoff after an ejection; doubles per failed "
       "probe"},
      {"XSUM_MAX_QUEUE", "int", "256", ">= 0 (0 = unbounded)",
       "xsum_server serve",
       "accepted-connection queue bound; overflow sheds 503 + Retry-After"},
      {"XSUM_QUEUE_MS", "int", "250", ">= 0 (0 = off)", "xsum_server serve",
       "queue-age budget: connections that waited longer are shed unread"},
      {"XSUM_LOG_LEVEL", "string", "warn",
       "debug, info, warn, error, off, or 0..4",
       "xsum_server, all benches",
       "minimum stderr log level (util/logging structured lines)"},
      {"XSUM_TRACE", "int", "1", "0 or 1", "xsum_server serve",
       "per-request tracing: X-Xsum-Trace propagation, spans, /traces log"},
      {"XSUM_EVAL_STATS", "int", "1", "0 or 1", "xsum_server serve",
       "evaluate every served summary into the mergeable /evalstats "
       "sufficient statistics (eval/eval_stats.h)"},
      {"XSUM_TRACE_RECORD", "string", "\"\" (disabled)", "file path",
       "xsum_server serve",
       "record every answered /summarize to this replay-trace JSONL file"},
      {"XSUM_TARGET", "string", "\"\" (in-process)", "host:port",
       "xsum_server record/replay",
       "serving endpoint the record/replay drivers issue against; empty "
       "answers from a fresh in-process stack"},
      {"XSUM_SCENARIO", "string", "hotkey",
       "diurnal, hotkey, tenants, or recency", "xsum_server record",
       "synthetic workload generator for recorded traces (src/replay)"},
      {"XSUM_GAP_US", "int", "1000", ">= 0", "xsum_server record",
       "mean inter-arrival gap of the generated scenario, in microseconds"},
      {"XSUM_REPLAY_SPEED", "double", "1.0", "> 0", "xsum_server replay",
       "replay speed as a multiple of the recorded inter-arrival gaps"},
      {"XSUM_FAULT", "int", "0", "0 or 1", "bench_net",
       "run the fault-injection arm: kill one shard of a replicated fleet "
       "mid-stream, rejoin it, report per-phase latency"},
      {"XSUM_JSON", "string", "\"\" (disabled)", "file path or \"-\"",
       "all benches",
       "append machine-readable perf records here (\"-\" = stdout)"},
      {"XSUM_CSV_DIR", "string", "\"\" (disabled)", "directory path",
       "eval benches", "export per-panel CSV series into this directory"},
  };
  return catalog;
}

}  // namespace xsum
