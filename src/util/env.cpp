#include "util/env.h"

#include <cstdlib>

namespace xsum {

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

int64_t GetEnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int64_t>(v);
}

std::string GetEnvString(const std::string& name,
                         const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  return raw;
}

}  // namespace xsum
