/// \file stats.h
/// \brief Streaming statistics accumulator used by the evaluation harness to
/// aggregate per-user / per-item metric values into the series the paper's
/// figures plot.

#ifndef XSUM_UTIL_STATS_H_
#define XSUM_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace xsum {

/// \brief Accumulates observations; reports mean/min/max/stddev/percentiles.
///
/// With a \p window, only the most recent `window` observations are
/// retained (ring buffer) — the mode long-running consumers (the summary
/// service's latency tracking) use so memory stays bounded. Count, Sum,
/// and Mean always cover the full history; the sample statistics
/// (Min/Max/StdDev/Percentile) cover the retained window.
class StatAccumulator {
 public:
  /// \p window = 0 retains every observation; \p window > 0 retains only
  /// the most recent `window` of them for the sample statistics.
  explicit StatAccumulator(size_t window = 0) : window_(window) {}

  /// Adds one observation.
  void Add(double value);

  /// Number of observations ever added.
  size_t count() const { return count_; }
  /// True iff no observations have been added.
  bool empty() const { return count_ == 0; }

  /// Arithmetic mean over all observations (0 when empty).
  double Mean() const;
  /// Minimum of the retained sample (0 when empty).
  double Min() const;
  /// Maximum of the retained sample (0 when empty).
  double Max() const;
  /// Sum of all observations.
  double Sum() const { return sum_; }
  /// Sample standard deviation of the retained sample (0 when count < 2).
  double StdDev() const;
  /// Percentile in [0,100] over the sorted retained sample, linearly
  /// interpolated between adjacent ranks (0 if empty).
  double Percentile(double p) const;
  /// Median, i.e. Percentile(50).
  double Median() const { return Percentile(50.0); }

  /// Clears all state.
  void Reset();

 private:
  std::vector<double> values_;  ///< all (window 0) or a ring of the last W
  size_t window_ = 0;
  size_t next_ = 0;     ///< ring write position once the window is full
  size_t count_ = 0;    ///< observations ever added
  double sum_ = 0.0;
};

}  // namespace xsum

#endif  // XSUM_UTIL_STATS_H_
