/// \file stats.h
/// \brief Streaming statistics accumulator used by the evaluation harness to
/// aggregate per-user / per-item metric values into the series the paper's
/// figures plot.

#ifndef XSUM_UTIL_STATS_H_
#define XSUM_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace xsum {

/// \brief Accumulates observations; reports mean/min/max/stddev/percentiles.
class StatAccumulator {
 public:
  /// Adds one observation.
  void Add(double value);

  /// Number of observations.
  size_t count() const { return values_.size(); }
  /// True iff no observations have been added.
  bool empty() const { return values_.empty(); }

  /// Arithmetic mean (0 when empty).
  double Mean() const;
  /// Minimum (0 when empty).
  double Min() const;
  /// Maximum (0 when empty).
  double Max() const;
  /// Sum of all observations.
  double Sum() const { return sum_; }
  /// Sample standard deviation (0 when count < 2).
  double StdDev() const;
  /// Percentile in [0,100] by nearest-rank on the sorted sample (0 if empty).
  double Percentile(double p) const;
  /// Median, i.e. Percentile(50).
  double Median() const { return Percentile(50.0); }

  /// Clears all state.
  void Reset();

 private:
  std::vector<double> values_;
  double sum_ = 0.0;
};

}  // namespace xsum

#endif  // XSUM_UTIL_STATS_H_
