/// \file metrics.h
/// \brief The paper's §V-B explanation-quality metrics, generalized (as in
/// the paper) from paths to arbitrary explanation subgraphs.
///
/// Baseline explanations are multisets of separate paths (duplicates count:
/// the Table I example has "total length 13"); summaries are subgraphs with
/// unique nodes/edges. `ExplanationView` normalizes both into the multiset
/// representation every metric consumes, so one metric implementation
/// serves baselines and summaries alike.

#ifndef XSUM_METRICS_METRICS_H_
#define XSUM_METRICS_METRICS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/summarizer.h"
#include "data/kg_builder.h"
#include "graph/path.h"
#include "graph/subgraph.h"

namespace xsum::metrics {

/// \brief Normalized explanation content for metric computation.
struct ExplanationView {
  /// Every edge occurrence as an endpoint pair. Baselines keep one entry
  /// per path hop (duplicates across paths remain); summaries have one
  /// entry per subgraph edge. Hallucinated hops (no KG edge) still appear
  /// as node pairs.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edge_occurrences;
  /// Real KG edge ids behind the occurrences (hallucinated hops omitted),
  /// with duplicates for baselines.
  std::vector<graph::EdgeId> edge_ids;
  /// Every node occurrence. Baselines: concatenated path node sequences.
  /// Summaries: the subgraph's (unique) node set.
  std::vector<graph::NodeId> node_occurrences;
  /// Deduplicated node set.
  std::vector<graph::NodeId> unique_nodes;
};

/// Builds the view of a path multiset (the baseline representation).
ExplanationView MakeViewFromPaths(const std::vector<graph::Path>& paths);

/// Builds the view of a summary subgraph.
ExplanationView MakeViewFromSubgraph(const graph::KnowledgeGraph& graph,
                                     const graph::Subgraph& subgraph);

/// Dispatches on the summary's method: baselines view their input paths,
/// ST/PCST view their subgraph.
ExplanationView MakeView(const graph::KnowledgeGraph& graph,
                         const core::Summary& summary);

/// \brief Comprehensibility C(S) = 1 / |E_S| (§V-B-1). Higher = briefer.
/// Empty explanations score 0 by convention.
double Comprehensibility(const ExplanationView& view);

/// \brief Actionability A(S) = #item nodes / |V_S| over unique nodes
/// (§V-B-2). Item nodes are the only actionable ones.
double Actionability(const graph::KnowledgeGraph& graph,
                     const ExplanationView& view);

/// \brief Diversity D(S) = mean over edge pairs of (1 − Jaccard of their
/// endpoint sets) (§V-B-3). Explanations with < 2 edges score 0.
///
/// Exact up to \p max_pairs edge pairs; larger views are estimated on a
/// deterministic sample of pairs (documented in EXPERIMENTS.md).
double Diversity(const ExplanationView& view, size_t max_pairs = 200000,
                 uint64_t seed = 13);

/// \brief Redundancy R(S) = duplicate node occurrences / total occurrences
/// (§V-B-4). Subgraph summaries have unique node sets, so their redundancy
/// is 0 by construction; baselines repeat nodes across paths.
double Redundancy(const ExplanationView& view);

/// \brief Consistency C(S) = mean Jaccard similarity of the node sets of
/// consecutive-k explanations (§V-B-5). \p per_k holds the view at each k
/// (k = 1..K in order).
double Consistency(const std::vector<ExplanationView>& per_k);

/// \brief Relevance R(S) = Σ wM(e) over the explanation's edges (§V-B-6),
/// using the *base* (unadjusted) interaction weights. Baselines count
/// duplicates, matching "total weight of its paths".
double Relevance(const ExplanationView& view,
                 const std::vector<double>& base_weights);

/// \brief Privacy P(S) = 1 − #user nodes / |V_S| over unique nodes
/// (§V-B-7). Higher = fewer user nodes exposed.
double Privacy(const graph::KnowledgeGraph& graph,
               const ExplanationView& view);

}  // namespace xsum::metrics

#endif  // XSUM_METRICS_METRICS_H_
