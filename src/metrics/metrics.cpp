#include "metrics/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace xsum::metrics {

namespace {

using graph::NodeId;

std::vector<NodeId> SortedUnique(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Jaccard similarity of the endpoint sets of two edges. Endpoint sets
/// have exactly two (distinct) members, so the result is one of
/// {0, 1/3, 1}.
double EdgeJaccard(const std::pair<NodeId, NodeId>& a,
                   const std::pair<NodeId, NodeId>& b) {
  int shared = 0;
  if (a.first == b.first || a.first == b.second) ++shared;
  if (a.second == b.first || a.second == b.second) ++shared;
  const int union_size = 4 - shared;
  return union_size == 0 ? 1.0
                         : static_cast<double>(shared) /
                               static_cast<double>(union_size);
}

}  // namespace

ExplanationView MakeViewFromPaths(const std::vector<graph::Path>& paths) {
  ExplanationView view;
  for (const graph::Path& path : paths) {
    for (size_t i = 0; i < path.edges.size(); ++i) {
      view.edge_occurrences.push_back({path.nodes[i], path.nodes[i + 1]});
      if (path.edges[i] != graph::kInvalidEdge) {
        view.edge_ids.push_back(path.edges[i]);
      }
    }
    view.node_occurrences.insert(view.node_occurrences.end(),
                                 path.nodes.begin(), path.nodes.end());
  }
  view.unique_nodes = SortedUnique(view.node_occurrences);
  return view;
}

ExplanationView MakeViewFromSubgraph(const graph::KnowledgeGraph& graph,
                                     const graph::Subgraph& subgraph) {
  ExplanationView view;
  view.edge_occurrences.reserve(subgraph.num_edges());
  view.edge_ids.reserve(subgraph.num_edges());
  for (graph::EdgeId e : subgraph.edges()) {
    const graph::EdgeRecord& r = graph.edge(e);
    view.edge_occurrences.push_back({r.src, r.dst});
    view.edge_ids.push_back(e);
  }
  view.node_occurrences = subgraph.nodes();
  view.unique_nodes = subgraph.nodes();
  return view;
}

ExplanationView MakeView(const graph::KnowledgeGraph& graph,
                         const core::Summary& summary) {
  if (summary.method == core::SummaryMethod::kBaseline) {
    return MakeViewFromPaths(summary.input_paths);
  }
  return MakeViewFromSubgraph(graph, summary.subgraph);
}

double Comprehensibility(const ExplanationView& view) {
  if (view.edge_occurrences.empty()) return 0.0;
  return 1.0 / static_cast<double>(view.edge_occurrences.size());
}

double Actionability(const graph::KnowledgeGraph& graph,
                     const ExplanationView& view) {
  if (view.unique_nodes.empty()) return 0.0;
  size_t items = 0;
  for (NodeId v : view.unique_nodes) {
    if (graph.IsItem(v)) ++items;
  }
  return static_cast<double>(items) /
         static_cast<double>(view.unique_nodes.size());
}

double Diversity(const ExplanationView& view, size_t max_pairs,
                 uint64_t seed) {
  const size_t m = view.edge_occurrences.size();
  if (m < 2) return 0.0;
  const size_t total_pairs = m * (m - 1) / 2;
  double sum = 0.0;
  size_t counted = 0;
  if (total_pairs <= max_pairs) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        sum += 1.0 - EdgeJaccard(view.edge_occurrences[i],
                                 view.edge_occurrences[j]);
        ++counted;
      }
    }
  } else {
    Rng rng(seed);
    for (size_t s = 0; s < max_pairs; ++s) {
      const size_t i = rng.Uniform(m);
      size_t j = rng.Uniform(m - 1);
      if (j >= i) ++j;
      sum += 1.0 - EdgeJaccard(view.edge_occurrences[i],
                               view.edge_occurrences[j]);
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double Redundancy(const ExplanationView& view) {
  if (view.node_occurrences.empty()) return 0.0;
  const size_t total = view.node_occurrences.size();
  const size_t unique = view.unique_nodes.size();
  return static_cast<double>(total - unique) / static_cast<double>(total);
}

double Consistency(const std::vector<ExplanationView>& per_k) {
  if (per_k.size() < 2) return 1.0;
  double sum = 0.0;
  for (size_t k = 0; k + 1 < per_k.size(); ++k) {
    const auto& a = per_k[k].unique_nodes;
    const auto& b = per_k[k + 1].unique_nodes;
    // Both vectors are sorted; set intersection by merge.
    size_t i = 0;
    size_t j = 0;
    size_t shared = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] == b[j]) {
        ++shared;
        ++i;
        ++j;
      } else if (a[i] < b[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    const size_t union_size = a.size() + b.size() - shared;
    sum += union_size == 0 ? 1.0
                           : static_cast<double>(shared) /
                                 static_cast<double>(union_size);
  }
  return sum / static_cast<double>(per_k.size() - 1);
}

double Relevance(const ExplanationView& view,
                 const std::vector<double>& base_weights) {
  double total = 0.0;
  for (graph::EdgeId e : view.edge_ids) total += base_weights[e];
  return total;
}

double Privacy(const graph::KnowledgeGraph& graph,
               const ExplanationView& view) {
  if (view.unique_nodes.empty()) return 1.0;
  size_t users = 0;
  for (NodeId v : view.unique_nodes) {
    if (graph.IsUser(v)) ++users;
  }
  return 1.0 - static_cast<double>(users) /
                   static_cast<double>(view.unique_nodes.size());
}

}  // namespace xsum::metrics
