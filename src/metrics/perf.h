/// \file perf.h
/// \brief Performance metric recording (paper §V-B-8, Figures 9-11):
/// execution time and working memory of summarization calls, aggregated
/// per configuration.

#ifndef XSUM_METRICS_PERF_H_
#define XSUM_METRICS_PERF_H_

#include <cstdint>
#include <string>

#include "util/stats.h"

namespace xsum::metrics {

/// \brief Accumulates (time, memory) samples for one configuration.
class PerfRecorder {
 public:
  /// Records one summarization call.
  void Record(double elapsed_ms, size_t memory_bytes) {
    time_ms_.Add(elapsed_ms);
    memory_bytes_.Add(static_cast<double>(memory_bytes));
  }

  /// Mean wall time in milliseconds.
  double MeanTimeMs() const { return time_ms_.Mean(); }
  /// Mean working memory in bytes.
  double MeanMemoryBytes() const { return memory_bytes_.Mean(); }
  /// p95 wall time in milliseconds.
  double P95TimeMs() const { return time_ms_.Percentile(95.0); }
  /// Number of samples.
  size_t count() const { return time_ms_.count(); }

  const StatAccumulator& times() const { return time_ms_; }
  const StatAccumulator& memory() const { return memory_bytes_; }

 private:
  StatAccumulator time_ms_;
  StatAccumulator memory_bytes_;
};

}  // namespace xsum::metrics

#endif  // XSUM_METRICS_PERF_H_
