/// \file connectivity.h
/// \brief Weakly connected components of the knowledge graph.

#ifndef XSUM_GRAPH_CONNECTIVITY_H_
#define XSUM_GRAPH_CONNECTIVITY_H_

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"

namespace xsum::graph {

/// \brief Component labelling of all nodes.
struct ComponentResult {
  /// component[v] in [0, num_components).
  std::vector<uint32_t> component;
  uint32_t num_components = 0;
  /// Size of each component.
  std::vector<size_t> sizes;
};

/// Computes weakly connected components over the undirected view.
ComponentResult WeaklyConnectedComponents(const KnowledgeGraph& graph);

/// True iff the whole graph is one weak component (empty graph: true).
bool IsWeaklyConnected(const KnowledgeGraph& graph);

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_CONNECTIVITY_H_
