/// \file bfs.h
/// \brief Hop-based traversal: hop-limited BFS (path generation, average
/// path length and diameter estimation for the Table II statistics).

#ifndef XSUM_GRAPH_BFS_H_
#define XSUM_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/types.h"

namespace xsum::graph {

/// Hop distance meaning "unreached".
inline constexpr int32_t kUnreachedHops = -1;

/// \brief BFS hop distances from \p source, optionally capped at
/// \p max_hops (negative = unlimited). Unreached nodes get kUnreachedHops.
std::vector<int32_t> BfsHops(const KnowledgeGraph& graph, NodeId source,
                             int32_t max_hops = -1);

/// \brief BFS from \p source recording one predecessor per node, for
/// hop-shortest path extraction.
struct BfsTree {
  NodeId source = kInvalidNode;
  std::vector<int32_t> hops;
  std::vector<NodeId> parent_node;
  std::vector<EdgeId> parent_edge;
};

/// Runs BFS from \p source up to \p max_hops (negative = unlimited).
BfsTree Bfs(const KnowledgeGraph& graph, NodeId source, int32_t max_hops = -1);

/// \brief Eccentricity of \p source: max finite hop distance.
int32_t Eccentricity(const KnowledgeGraph& graph, NodeId source);

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_BFS_H_
