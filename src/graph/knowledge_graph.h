/// \file knowledge_graph.h
/// \brief The knowledge-based graph G = (V, E, w) of paper §III.
///
/// Edges are *stored* directed (source → target, as generated from the
/// rating matrix and the KG triples), but the paper's summaries are weakly
/// connected subgraphs, so all traversal algorithms run over the undirected
/// view. `KnowledgeGraph` therefore finalizes into a CSR structure that
/// indexes, for every node, all incident edges regardless of direction.
///
/// Construction is two-phase: populate a `GraphBuilder`, then `Finalize()`
/// into an immutable `KnowledgeGraph`. Edge weights live in a plain
/// `std::vector<double>` indexed by EdgeId so that algorithms can run with
/// *overlay* weights (e.g. the Eq. (1) path-frequency adjustment) without
/// copying the topology.

#ifndef XSUM_GRAPH_KNOWLEDGE_GRAPH_H_
#define XSUM_GRAPH_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace xsum::graph {

/// \brief One stored (directed) edge.
struct EdgeRecord {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Relation relation = Relation::kRelatedTo;
  double weight = 0.0;  ///< wM for rated edges, wA for knowledge edges
};

/// \brief (neighbor, incident edge) entry in the undirected adjacency.
struct AdjEntry {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

class KnowledgeGraph;

/// \brief Mutable accumulator for nodes and edges; finalizes into a
/// `KnowledgeGraph`.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a node of the given type; returns its dense id.
  NodeId AddNode(NodeType type);

  /// Adds \p count nodes of the given type; returns the first id.
  NodeId AddNodes(NodeType type, size_t count);

  /// Adds a directed edge; endpoints must already exist.
  /// Self-loops are rejected (the KG has none; they would corrupt the
  /// undirected adjacency).
  Result<EdgeId> AddEdge(NodeId src, NodeId dst, Relation relation,
                         double weight);

  /// Number of nodes added so far.
  size_t num_nodes() const { return node_types_.size(); }
  /// Number of edges added so far.
  size_t num_edges() const { return edges_.size(); }

  /// Builds the immutable CSR graph. The builder is consumed.
  KnowledgeGraph Finalize() &&;

 private:
  std::vector<NodeType> node_types_;
  std::vector<EdgeRecord> edges_;
};

/// \brief Immutable CSR knowledge graph with an undirected adjacency view.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  /// Number of nodes |V|.
  size_t num_nodes() const { return node_types_.size(); }
  /// Number of stored edges |E| (each undirected incidence pair counts 1).
  size_t num_edges() const { return edges_.size(); }

  /// Type of node \p v.
  NodeType node_type(NodeId v) const { return node_types_[v]; }
  bool IsUser(NodeId v) const { return node_type(v) == NodeType::kUser; }
  bool IsItem(NodeId v) const { return node_type(v) == NodeType::kItem; }
  bool IsEntity(NodeId v) const { return node_type(v) == NodeType::kEntity; }

  /// Count of nodes with the given type.
  size_t NumNodesOfType(NodeType type) const {
    return type_counts_[static_cast<int>(type)];
  }

  /// Full record of edge \p e.
  const EdgeRecord& edge(EdgeId e) const { return edges_[e]; }

  /// Stored (directed) weight of edge \p e.
  double edge_weight(EdgeId e) const { return edges_[e].weight; }

  /// All incident edges of \p v in the undirected view, sorted by neighbor.
  std::span<const AdjEntry> Neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// The flat undirected adjacency array (every node's Neighbors span
  /// concatenated). Search kernels use it to keep per-slot side data (e.g.
  /// adjacency-ordered edge costs) that streams sequentially with the scan
  /// instead of gathering by EdgeId.
  std::span<const AdjEntry> adjacency() const { return adj_; }

  /// Start of \p v's Neighbors span within `adjacency()`.
  size_t adjacency_offset(NodeId v) const { return offsets_[v]; }

  /// Undirected degree of \p v.
  size_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Finds an edge incident to both \p u and \p v (either direction);
  /// returns kInvalidEdge if none. O(log deg(u)).
  EdgeId FindEdge(NodeId u, NodeId v) const;

  /// Given edge \p e and one endpoint \p v, returns the other endpoint.
  NodeId OtherEndpoint(EdgeId e, NodeId v) const {
    const EdgeRecord& r = edges_[e];
    return r.src == v ? r.dst : r.src;
  }

  /// Copy of all stored edge weights, indexed by EdgeId. This is the
  /// canonical "wM/wA" vector that weight overlays start from.
  std::vector<double> WeightVector() const;

  /// Ids of all nodes of the given type, ascending.
  std::vector<NodeId> NodesOfType(NodeType type) const;

  /// Estimated resident bytes of the CSR structure (for perf reporting).
  size_t MemoryFootprintBytes() const;

 private:
  friend class GraphBuilder;

  std::vector<NodeType> node_types_;
  std::vector<EdgeRecord> edges_;
  std::vector<size_t> offsets_;  // size num_nodes+1
  std::vector<AdjEntry> adj_;    // size 2*num_edges, sorted per node
  size_t type_counts_[3] = {0, 0, 0};
};

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_KNOWLEDGE_GRAPH_H_
