/// \file multi_query.h
/// \brief Cross-request search batching: `MultiQueryDijkstra` runs B
/// independent single-source searches in lockstep over one interleaved
/// `CostView`, with per-query distance/parent lanes in a reusable
/// `MultiQueryWorkspace` (DESIGN.md §8).
///
/// The serving fleet funnels Zipf traffic into per-request single-source
/// searches over the *same* immutable CSR: the dominant cost of a
/// cache-miss burst is redundant memory traffic over one shared adjacency
/// structure. This kernel amortizes it two ways:
///
///  - **Lockstep edge-scan sharing.** Queries advance round-robin, one
///    settle per live query per round. Concurrent searches over one graph
///    explore overlapping (Zipf-hot) regions at nearby times, so a CSR row
///    pulled into cache by one query is typically still resident when a
///    sibling scans it — B queries pay ~1 memory sweep instead of B.
///  - **SoA lane layout.** Per-node search state is stored lane-major:
///    node v's B lane records are contiguous (`lane[v*B + q]`), so the B
///    16-byte distance records of one node span ⌈B/4⌉ cache lines and
///    SIMD-width groups of queries touching the same neighbor share line
///    fills. The layout mirrors `SearchWorkspace`'s one-record-per-node
///    discipline, widened by a query axis.
///
/// **Bit-identity.** Lane q's state transitions are *exactly* those of
/// `DijkstraInto(costs, queries[q].source, queries[q].targets, ws)`: each
/// query owns a private `IndexedMinHeap`, pops in the same order, relaxes
/// under the same strict compare, and early-exits on the same settled-
/// target count. Queries share no mutable state, so the interleaving
/// cannot affect any lane — distances, parents, and settle flags of every
/// lane equal the sequential kernel's bit-for-bit (property-tested in
/// tests/graph/multi_query_test.cpp). That is the invariant that lets the
/// batch engine substitute a wave for per-task searches without perturbing
/// a single rendered summary byte.
///
/// Callers that batch across *tasks* (core::BatchSummarizer waves)
/// additionally deduplicate sources before building the query list: two
/// tasks searching from the same terminal merge into one query whose
/// target set is the union — settled-node facts are independent of how
/// long a search runs (the settled-prefix lemma of DESIGN.md §5), so the
/// merged query serves both tasks' rows bit-identically. That dedup, not
/// the lockstep, is the dominant win on repeated-terminal traffic.

#ifndef XSUM_GRAPH_MULTI_QUERY_H_
#define XSUM_GRAPH_MULTI_QUERY_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/cost_view.h"
#include "graph/search_workspace.h"
#include "graph/types.h"

namespace xsum::graph {

/// \brief One search of a wave: a source and the targets whose settled
/// distances/paths the caller needs (empty = full sweep, no early exit).
struct MultiQuery {
  NodeId source = kInvalidNode;
  std::span<const NodeId> targets;
};

/// \brief Reusable lane state for `MultiQueryDijkstra`: per-(node, query)
/// distance/parent/mark lanes plus one private `IndexedMinHeap` per query,
/// epoch-stamped like `SearchWorkspace` so `Begin` is O(B) regardless of
/// how many lanes earlier waves dirtied.
///
/// Lane-major layout: the record of (node v, query q) lives at index
/// `v * width + q`, where `width` is the wave width passed to `Begin`.
/// Not thread-safe; one workspace per worker, reused across waves.
class MultiQueryWorkspace {
 public:
  /// Begins a new wave of \p width queries over node ids [0, n):
  /// invalidates all lanes (epoch bump) and resets the first \p width
  /// heaps. Capacity grows monotonically and is never returned.
  void Begin(size_t n, size_t width);

  size_t width() const { return width_; }
  size_t capacity_nodes() const { return nodes_; }

  // --- lane accessors (mirror SearchWorkspace's, plus a query axis) ------

  bool reached(size_t q, NodeId v) const {
    return lane_state_[Lane(q, v)].stamp == epoch_;
  }
  double dist(size_t q, NodeId v) const {
    const LaneState& s = lane_state_[Lane(q, v)];
    return s.stamp == epoch_ ? s.dist : kUnreachedDistance;
  }
  NodeId parent_node(size_t q, NodeId v) const {
    return reached(q, v) ? lane_parent_[Lane(q, v)].node : kInvalidNode;
  }
  EdgeId parent_edge(size_t q, NodeId v) const {
    return reached(q, v) ? lane_parent_[Lane(q, v)].edge : kInvalidEdge;
  }
  bool settled(size_t q, NodeId v) const {
    const LaneState& s = lane_state_[Lane(q, v)];
    return s.stamp == epoch_ && s.settled != 0;
  }

  /// Records an improved path to \p v in lane \p q (same contract as
  /// `SearchWorkspace::Relax`: never called on a settled lane entry).
  void Relax(size_t q, NodeId v, double d, NodeId parent, EdgeId via) {
    lane_state_[Lane(q, v)] = LaneState{d, epoch_, 0};
    lane_parent_[Lane(q, v)] = ParentLink{parent, via};
  }
  void SetSettled(size_t q, NodeId v) {
    LaneState& s = lane_state_[Lane(q, v)];
    if (s.stamp != epoch_) {
      // Settling an unreached lane entry: a valid record with an
      // unreached distance (mirrors `SearchWorkspace::SetSettled`).
      s.dist = kUnreachedDistance;
      s.stamp = epoch_;
    }
    s.settled = 1;
  }

  // --- per-query target marks (independent stamp lane, like the
  //     workspace's mark set) ---------------------------------------------

  bool marked(size_t q, NodeId v) const {
    return lane_mark_[Lane(q, v)] == epoch_;
  }
  /// Marks (q, v); returns true iff it was not already marked.
  bool Mark(size_t q, NodeId v) {
    uint32_t& stamp = lane_mark_[Lane(q, v)];
    if (stamp == epoch_) return false;
    stamp = epoch_;
    return true;
  }
  void Unmark(size_t q, NodeId v) { lane_mark_[Lane(q, v)] = epoch_ - 1; }

  /// Query q's private frontier heap.
  IndexedMinHeap& heap(size_t q) { return heaps_[q]; }

  /// Per-query scratch counters sized to the wave width by `Begin`.
  std::vector<size_t>& targets_remaining() { return targets_remaining_; }
  std::vector<uint8_t>& active() { return active_; }

  /// Resident bytes of all retained lanes and heaps.
  size_t MemoryFootprintBytes() const;

  /// Deterministic footprint of a workspace sized exactly for (\p n nodes,
  /// \p width queries): the lane arrays plus \p width per-node heaps.
  static size_t RequiredBytes(size_t n, size_t width) {
    return n * width *
               (sizeof(LaneState) + sizeof(ParentLink) + sizeof(uint32_t)) +
           width * n *
               (sizeof(double) + sizeof(NodeId) + 2 * sizeof(uint32_t));
  }

 private:
  struct LaneState {
    double dist;
    uint32_t stamp;
    uint32_t settled;
  };
  struct ParentLink {
    NodeId node;
    EdgeId edge;
  };

  size_t Lane(size_t q, NodeId v) const {
    assert(q < width_ && v < nodes_);
    return static_cast<size_t>(v) * width_ + q;
  }

  std::vector<LaneState> lane_state_;
  std::vector<ParentLink> lane_parent_;
  std::vector<uint32_t> lane_mark_;
  std::vector<IndexedMinHeap> heaps_;
  std::vector<size_t> targets_remaining_;
  std::vector<uint8_t> active_;
  size_t nodes_ = 0;
  size_t width_ = 0;
  uint32_t epoch_ = 0;
};

/// \brief Runs all \p queries over \p costs in lockstep; on return lane q
/// holds exactly the state `DijkstraInto(costs, queries[q].source,
/// queries[q].targets, <fresh workspace>)` would leave behind. A query
/// with targets early-exits once all its targets settle; an empty target
/// span sweeps the source's component. B = queries.size() may be any
/// value ≥ 0 (B = 1 degenerates to the sequential kernel; the caller
/// chunks very wide waves to bound the O(|V|·B) lane memory).
void MultiQueryDijkstra(const CostView& costs,
                        std::span<const MultiQuery> queries,
                        MultiQueryWorkspace& ws);

/// `AppendPathEdges` over lane \p q: pushes the parent-edge chain of
/// \p target (nearest-to-target first), stopping at the source. Identical
/// output to the single-query helper on the matching search.
void AppendLanePathEdges(const MultiQueryWorkspace& ws, size_t q,
                         NodeId target, std::vector<EdgeId>* out);

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_MULTI_QUERY_H_
