/// \file types.h
/// \brief Fundamental identifiers and enums for the knowledge-based graph
/// G = (V, E, w) of the paper's §III: users, items, and external
/// (knowledge) entities connected by typed, weighted edges.

#ifndef XSUM_GRAPH_TYPES_H_
#define XSUM_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace xsum::graph {

/// Dense node identifier.
using NodeId = uint32_t;
/// Dense edge identifier.
using EdgeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
/// Sentinel for "no edge". Also used by PLM-style recommenders to mark a
/// hallucinated hop that does not exist in the KG.
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// \brief Role of a node in the knowledge-based graph (paper §III).
enum class NodeType : uint8_t {
  kUser = 0,    ///< u ∈ U
  kItem = 1,    ///< i ∈ I
  kEntity = 2,  ///< external knowledge node a ∈ V_A (genre, director, ...)
};

/// Human-readable node-type name ("user"/"item"/"entity").
const char* NodeTypeToString(NodeType type);

/// \brief Relation labels on edges; covers the ML1M (movie) and LFM1M
/// (music) flavours used in the paper's experiments.
enum class Relation : uint8_t {
  kRated = 0,          ///< user –(rated/watched/listened)– item; carries wM
  kDirectedBy = 1,     ///< item – director entity
  kActedBy = 2,        ///< item – actor entity
  kHasGenre = 3,       ///< item – genre entity
  kComposedBy = 4,     ///< item – composer entity
  kProducedBy = 5,     ///< item – producer entity
  kWrittenBy = 6,      ///< item – writer entity
  kEditedBy = 7,       ///< item – editor entity
  kCinematography = 8, ///< item – cinematographer entity
  kSungBy = 9,         ///< track – artist entity (LFM1M)
  kInAlbum = 10,       ///< track – album entity (LFM1M)
  kRelatedTo = 11,     ///< generic DBpedia relatedness
  kUserAttribute = 12, ///< user – attribute entity (e.g. demographic)
};

/// Human-readable relation name ("rated", "directed_by", ...).
const char* RelationToString(Relation relation);

/// Number of distinct Relation values.
inline constexpr int kNumRelations = 13;

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_TYPES_H_
