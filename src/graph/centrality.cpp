#include "graph/centrality.h"

#include <algorithm>

#include "graph/bfs.h"
#include "util/rng.h"

namespace xsum::graph {

std::vector<double> DegreeCentrality(const KnowledgeGraph& graph) {
  const size_t n = graph.num_nodes();
  std::vector<double> centrality(n, 0.0);
  if (n <= 1) return centrality;
  const double denom = static_cast<double>(n - 1);
  for (NodeId v = 0; v < n; ++v) {
    centrality[v] = static_cast<double>(graph.Degree(v)) / denom;
  }
  return centrality;
}

std::vector<double> HarmonicCentrality(const KnowledgeGraph& graph,
                                       size_t samples, uint64_t seed) {
  const size_t n = graph.num_nodes();
  std::vector<double> centrality(n, 0.0);
  if (n <= 1 || samples == 0) return centrality;

  Rng rng(seed);
  const size_t draws = std::min(samples, n);
  for (uint64_t s : rng.SampleWithoutReplacement(n, draws)) {
    const auto hops = BfsHops(graph, static_cast<NodeId>(s));
    for (NodeId v = 0; v < n; ++v) {
      if (v == s || hops[v] == kUnreachedHops) continue;
      centrality[v] += 1.0 / static_cast<double>(hops[v]);
    }
  }
  const double max_value =
      *std::max_element(centrality.begin(), centrality.end());
  if (max_value > 0.0) {
    for (double& c : centrality) c /= max_value;
  }
  return centrality;
}

}  // namespace xsum::graph
