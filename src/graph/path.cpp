#include "graph/path.h"

#include "graph/knowledge_graph.h"
#include "util/string_util.h"

namespace xsum::graph {

bool Path::IsFaithful() const {
  for (EdgeId e : edges) {
    if (e == kInvalidEdge) return false;
  }
  return true;
}

bool Path::Validate(const KnowledgeGraph& graph,
                    bool allow_hallucinated) const {
  if (nodes.empty()) return edges.empty();
  if (edges.size() + 1 != nodes.size()) return false;
  for (NodeId v : nodes) {
    if (v >= graph.num_nodes()) return false;
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    const NodeId a = nodes[i];
    const NodeId b = nodes[i + 1];
    if (a == b) return false;
    const EdgeId e = edges[i];
    if (e == kInvalidEdge) {
      if (!allow_hallucinated) return false;
      continue;
    }
    if (e >= graph.num_edges()) return false;
    const EdgeRecord& r = graph.edge(e);
    const bool joins = (r.src == a && r.dst == b) || (r.src == b && r.dst == a);
    if (!joins) return false;
  }
  return true;
}

std::string Path::ToString(const KnowledgeGraph& graph) const {
  std::vector<std::string> parts;
  parts.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeId v = nodes[i];
    const char* prefix = "?";
    switch (graph.node_type(v)) {
      case NodeType::kUser:
        prefix = "u";
        break;
      case NodeType::kItem:
        prefix = "i";
        break;
      case NodeType::kEntity:
        prefix = "e";
        break;
    }
    std::string token = StrCat(prefix, v);
    if (i < edges.size() && edges[i] == kInvalidEdge) token += " ~>";
    parts.push_back(std::move(token));
  }
  return Join(parts, " -> ");
}

}  // namespace xsum::graph
