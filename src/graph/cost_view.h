/// \file cost_view.h
/// \brief `CostView` — the one cost representation every search kernel
/// consumes (DESIGN.md §4).
///
/// The summarizers derive per-edge costs from weights (the §1.4(3)
/// transform, the Eq. (1) overlay, PCST's unit costs) and then run many
/// searches under them. Before this layer each kernel re-gathered
/// `costs[edge]` per relaxation — a random access into an |E| array for
/// every adjacency slot scanned — and one caller (KMB phase 1) maintained
/// a private slot-ordered copy (`BuildAdjacencyCosts`) as a side-channel.
///
/// A `CostView` is that idea promoted to the canonical interface: an
/// interleaved `(neighbor, edge, cost)` CSR built once per (graph, cost
/// vector) and shared by reference by every kernel, so the scan loop
/// streams one sequential array instead of gathering. The view also keeps
/// the EdgeId-indexed costs (for closure/MST/objective code that works per
/// edge) and the cost range (so the PCST growth can pick a bucket frontier
/// when the range is bounded — see search_workspace.h).
///
/// Views are *logically immutable*: kernels take `const CostView&` and a
/// committed view never changes under them. Rebuild-in-place is the only
/// mutation (`StartAssign`/`Commit`, reusing capacity for the batch
/// engine's per-task overlay views); every commit stamps a fresh globally
/// unique version, so caches that hold a view can detect any rebuild with
/// one integer compare. Long-lived shared views (graph snapshots, the
/// batch engine's per-mode base views) are built once and handed out as
/// `shared_ptr<const CostView>`-style references; per-task overlay views
/// live in the per-worker `SummarizeContext`.

#ifndef XSUM_GRAPH_COST_VIEW_H_
#define XSUM_GRAPH_COST_VIEW_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/types.h"

namespace xsum::graph {

/// \brief One interleaved adjacency slot: the neighbor, the incident edge,
/// and that edge's cost, all on one 16-byte record so a relax touches a
/// single sequential stream.
struct CostSlot {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  double cost = 0.0;
};

/// \brief Interleaved, versioned cost CSR over a `KnowledgeGraph` (see the
/// file comment). Not thread-safe to rebuild; safe to share read-only.
class CostView {
 public:
  CostView() = default;

  /// A committed view refers to a graph; default-constructed views do not.
  bool valid() const { return graph_ != nullptr; }
  /// The graph this view was committed against. Requires `valid()`.
  const KnowledgeGraph& graph() const { return *graph_; }

  /// Globally unique, monotonically increasing commit stamp (never 0 for a
  /// committed view). Two views (or two commits of one view) never share a
  /// version, so holding a version is holding proof of *which* build of
  /// *which* cost vector a cached result was computed under.
  uint64_t version() const { return version_; }

  /// Cost of edge \p e (EdgeId-indexed, for per-edge consumers: closure
  /// rows, cleanup MSTs, the PCST objective).
  double cost(EdgeId e) const { return edge_costs_[e]; }
  const std::vector<double>& edge_costs() const { return edge_costs_; }

  /// Interleaved incident slots of \p v (the streaming mirror of
  /// `graph().Neighbors(v)`).
  std::span<const CostSlot> Neighbors(NodeId v) const {
    const size_t begin = graph_->adjacency_offset(v);
    return {slots_.data() + begin, graph_->Degree(v)};
  }

  /// Smallest / largest edge cost (+inf / -inf for an edgeless graph).
  double min_cost() const { return min_cost_; }
  double max_cost() const { return max_cost_; }

  /// True iff every cost is finite (so `max_cost - min_cost` is a usable
  /// bounded range for a bucket frontier). Edgeless graphs qualify.
  bool has_bounded_costs() const {
    return edge_costs_.empty() ||
           (min_cost_ > -std::numeric_limits<double>::infinity() &&
            max_cost_ < std::numeric_limits<double>::infinity());
  }

  /// Builds the view from EdgeId-indexed \p edge_costs (one entry per
  /// `graph.num_edges()`). Costs may be any finite values; search kernels
  /// additionally require non-negativity (validated by their public
  /// entry points via `min_cost()`).
  void Assign(const KnowledgeGraph& graph, std::span<const double> edge_costs);

  /// Builds the all-ones view (PCST's default and `CostMode::kUnit`).
  void AssignUnit(const KnowledgeGraph& graph);

  /// In-place rebuild protocol for zero-allocation steady state: write the
  /// per-edge costs into the returned buffer (pre-sized to
  /// `graph.num_edges()`), then `Commit()`. The view is invalid (mustn't
  /// be read) between the two calls.
  std::vector<double>& StartAssign(const KnowledgeGraph& graph);
  void Commit();

  /// Resident bytes of the cost arrays (the interleaved slots plus the
  /// EdgeId-indexed mirror).
  size_t MemoryFootprintBytes() const {
    return slots_.capacity() * sizeof(CostSlot) +
           edge_costs_.capacity() * sizeof(double);
  }

  /// Deterministic footprint of a view sized exactly for \p graph (memory
  /// metrics report this so results never depend on buffer history).
  static size_t RequiredBytes(const KnowledgeGraph& graph) {
    return graph.adjacency().size() * sizeof(CostSlot) +
           graph.num_edges() * sizeof(double);
  }

 private:
  const KnowledgeGraph* graph_ = nullptr;
  std::vector<double> edge_costs_;  // EdgeId-indexed
  std::vector<CostSlot> slots_;     // parallel to graph().adjacency()
  double min_cost_ = std::numeric_limits<double>::infinity();
  double max_cost_ = -std::numeric_limits<double>::infinity();
  uint64_t version_ = 0;
};

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_COST_VIEW_H_
