#include "graph/bfs.h"

#include <algorithm>
#include <queue>

namespace xsum::graph {

std::vector<int32_t> BfsHops(const KnowledgeGraph& graph, NodeId source,
                             int32_t max_hops) {
  return Bfs(graph, source, max_hops).hops;
}

BfsTree Bfs(const KnowledgeGraph& graph, NodeId source, int32_t max_hops) {
  const size_t n = graph.num_nodes();
  BfsTree tree;
  tree.source = source;
  tree.hops.assign(n, kUnreachedHops);
  tree.parent_node.assign(n, kInvalidNode);
  tree.parent_edge.assign(n, kInvalidEdge);

  std::queue<NodeId> queue;
  tree.hops[source] = 0;
  queue.push(source);

  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    const int32_t h = tree.hops[u];
    if (max_hops >= 0 && h >= max_hops) continue;
    for (const AdjEntry& a : graph.Neighbors(u)) {
      if (tree.hops[a.neighbor] != kUnreachedHops) continue;
      tree.hops[a.neighbor] = h + 1;
      tree.parent_node[a.neighbor] = u;
      tree.parent_edge[a.neighbor] = a.edge;
      queue.push(a.neighbor);
    }
  }
  return tree;
}

int32_t Eccentricity(const KnowledgeGraph& graph, NodeId source) {
  const std::vector<int32_t> hops = BfsHops(graph, source);
  int32_t ecc = 0;
  for (int32_t h : hops) ecc = std::max(ecc, h);
  return ecc;
}

}  // namespace xsum::graph
