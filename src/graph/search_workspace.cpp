#include "graph/search_workspace.h"

#include <algorithm>

namespace xsum::graph {

namespace {

/// Bumps an epoch counter, clearing the given stamp arrays on the (once in
/// 2^32 queries) wraparound so stale stamps can never alias a new epoch.
template <typename... StampVecs>
uint32_t BumpEpoch(uint32_t epoch, StampVecs&... stamps) {
  if (epoch == std::numeric_limits<uint32_t>::max()) {
    (std::fill(stamps.begin(), stamps.end(), 0u), ...);
    return 1;
  }
  return epoch + 1;
}

}  // namespace

// --- IndexedMinHeap --------------------------------------------------------

void IndexedMinHeap::Reset(size_t n) {
  if (n > pos_.size()) {
    pos_.resize(n, 0);
    pos_epoch_.resize(n, 0);
    keys_.resize(n);
    nodes_.resize(n);
  }
  epoch_ = BumpEpoch(epoch_, pos_epoch_);
  size_ = 0;
}

bool IndexedMinHeap::PushOrDecrease(NodeId v, double key) {
  if (pos_epoch_[v] == epoch_) {
    if (pos_[v] == kPopped) return false;  // already extracted this search
    const uint32_t slot = pos_[v];
    if (key >= keys_[slot]) return false;
    keys_[slot] = key;
    SiftUp(slot);
    return true;
  }
  const size_t slot = size_++;
  Place(slot, key, v);
  SiftUp(slot);
  return true;
}

NodeId IndexedMinHeap::PopMin() {
  assert(size_ > 0);
  const NodeId top = nodes_[0];
  pos_[top] = kPopped;
  --size_;
  if (size_ > 0) {
    MoveTo(0, keys_[size_], nodes_[size_]);
    SiftDown(0);
  }
  return top;
}

void IndexedMinHeap::SiftUp(size_t i) {
  const double key = keys_[i];
  const NodeId v = nodes_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (keys_[parent] <= key) break;
    MoveTo(i, keys_[parent], nodes_[parent]);
    i = parent;
  }
  MoveTo(i, key, v);
}

void IndexedMinHeap::SiftDown(size_t i) {
  const double key = keys_[i];
  const NodeId v = nodes_[i];
  while (true) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= size_) break;
    const size_t last_child = std::min(first_child + 4, size_);
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (keys_[c] < keys_[best]) best = c;
    }
    if (keys_[best] >= key) break;
    MoveTo(i, keys_[best], nodes_[best]);
    i = best;
  }
  MoveTo(i, key, v);
}

// --- EpochUnionFind --------------------------------------------------------

void EpochUnionFind::Reset(size_t n) {
  if (n > parent_.size()) {
    parent_.resize(n, 0);
    stamp_.resize(n, 0);
  }
  epoch_ = BumpEpoch(epoch_, stamp_);
  touched_ = 0;
}

NodeId EpochUnionFind::Find(NodeId x) {
  if (stamp_[x] != epoch_) {
    stamp_[x] = epoch_;
    parent_[x] = x;
    ++touched_;
    return x;
  }
  NodeId root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {  // path compression
    const NodeId next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

// --- SearchWorkspace -------------------------------------------------------

void SearchWorkspace::Begin(size_t n) {
  if (n > state_.size()) {
    state_.resize(n, NodeState{0.0, 0, 0});
    parent_.resize(n);
    origin_.resize(n);
    tag_.resize(n);
    mark_stamp_.resize(n, 0);
    tag_stamp_.resize(n, 0);
  }
  if (epoch_ == std::numeric_limits<uint32_t>::max()) {
    for (NodeState& s : state_) s.stamp = 0;
    std::fill(mark_stamp_.begin(), mark_stamp_.end(), 0u);
    std::fill(tag_stamp_.begin(), tag_stamp_.end(), 0u);
    epoch_ = 1;
  } else {
    ++epoch_;
  }
  heap_.Reset(n);
}

size_t SearchWorkspace::MemoryFootprintBytes() const {
  return state_.capacity() * sizeof(NodeState) +
         parent_.capacity() * sizeof(ParentLink) +
         origin_.capacity() * sizeof(NodeId) +
         tag_.capacity() * sizeof(uint32_t) +
         (mark_stamp_.capacity() + tag_stamp_.capacity()) * sizeof(uint32_t) +
         heap_.MemoryFootprintBytes() + union_find_.MemoryFootprintBytes() +
         node_scratch_.capacity() * sizeof(NodeId) +
         edge_scratch_.capacity() * sizeof(EdgeId) +
         (value_scratch_.capacity() + adj_cost_scratch_.capacity()) *
             sizeof(double);
}

}  // namespace xsum::graph
