#include "graph/search_workspace.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace xsum::graph {

namespace {

/// Bumps an epoch counter, clearing the given stamp arrays on the (once in
/// 2^32 queries) wraparound so stale stamps can never alias a new epoch.
template <typename... StampVecs>
uint32_t BumpEpoch(uint32_t epoch, StampVecs&... stamps) {
  if (epoch == std::numeric_limits<uint32_t>::max()) {
    (std::fill(stamps.begin(), stamps.end(), 0u), ...);
    return 1;
  }
  return epoch + 1;
}

}  // namespace

// --- IndexedMinHeap --------------------------------------------------------

void IndexedMinHeap::Reset(size_t n) {
  if (n > pos_.size()) {
    pos_.resize(n, 0);
    pos_epoch_.resize(n, 0);
    keys_.resize(n);
    nodes_.resize(n);
  }
  epoch_ = BumpEpoch(epoch_, pos_epoch_);
  size_ = 0;
}

bool IndexedMinHeap::PushOrDecrease(NodeId v, double key) {
  if (pos_epoch_[v] == epoch_) {
    if (pos_[v] == kPopped) return false;  // already extracted this search
    const uint32_t slot = pos_[v];
    if (key >= keys_[slot]) return false;
    keys_[slot] = key;
    SiftUp(slot);
    return true;
  }
  const size_t slot = size_++;
  Place(slot, key, v);
  SiftUp(slot);
  return true;
}

NodeId IndexedMinHeap::PopMin() {
  assert(size_ > 0);
  const NodeId top = nodes_[0];
  pos_[top] = kPopped;
  --size_;
  if (size_ > 0) {
    MoveTo(0, keys_[size_], nodes_[size_]);
    SiftDown(0);
  }
  return top;
}

void IndexedMinHeap::SiftUp(size_t i) {
  const double key = keys_[i];
  const NodeId v = nodes_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (keys_[parent] <= key) break;
    MoveTo(i, keys_[parent], nodes_[parent]);
    i = parent;
  }
  MoveTo(i, key, v);
}

void IndexedMinHeap::SiftDown(size_t i) {
  const double key = keys_[i];
  const NodeId v = nodes_[i];
  while (true) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= size_) break;
    const size_t last_child = std::min(first_child + 4, size_);
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (keys_[c] < keys_[best]) best = c;
    }
    if (keys_[best] >= key) break;
    MoveTo(i, keys_[best], nodes_[best]);
    i = best;
  }
  MoveTo(i, key, v);
}

// --- BucketFrontier --------------------------------------------------------

void BucketFrontier::Reset(size_t n, double lo, double hi) {
  if (buckets_.empty()) {
    buckets_.resize(kNumBuckets);
    sorted_.resize(kNumBuckets, 0);
  }
  for (size_t w = 0; w < kBitmapWords; ++w) {
    uint64_t word = occupied_[w];
    while (word != 0) {
      const size_t b = 64 * w + static_cast<size_t>(std::countr_zero(word));
      buckets_[b].clear();
      sorted_[b] = 0;
      word &= word - 1;
    }
    occupied_[w] = 0;
  }
  if (n > node_state_.size()) {
    node_state_.resize(n, NodeState{0.0, 0, 0});
  }
  if (epoch_ == std::numeric_limits<uint32_t>::max()) {
    for (NodeState& s : node_state_) s.stamp = 0;
    epoch_ = 1;
  } else {
    ++epoch_;
  }
  lo_ = lo;
  const double range = hi - lo;
  // Map [lo, hi] onto [0, kNumBuckets); a degenerate (or inverted) range
  // collapses everything into bucket 0, which stays correct because pops
  // scan the bucket for the exact minimum.
  bucket_scale_ =
      range > 0.0 ? static_cast<double>(kNumBuckets - 1) / range : 0.0;
  size_ = 0;
}

size_t BucketFrontier::BucketOf(double key) const {
  const double offset = (key - lo_) * bucket_scale_;
  if (!(offset > 0.0)) return 0;  // below range (or NaN): clamp down
  const size_t b = static_cast<size_t>(offset);
  return b >= kNumBuckets ? kNumBuckets - 1 : b;  // above range: clamp up
}

bool BucketFrontier::PushOrDecrease(NodeId v, double key) {
  NodeState& s = node_state_[v];
  if (s.stamp == epoch_) {
    if (s.popped == epoch_) return false;  // already extracted this reset
    if (key >= s.key) return false;
  } else {
    s.stamp = epoch_;
    s.popped = epoch_ - 1;
    ++size_;
  }
  s.key = key;  // the old entry (if any) is now stale
  const size_t b = BucketOf(key);
  buckets_[b].push_back(Entry{key, v});
  occupied_[b / 64] |= uint64_t{1} << (b % 64);
  return true;
}

NodeId BucketFrontier::PopMin() {
  assert(size_ > 0);
  size_t w = 0;
  while (true) {
    while (occupied_[w] == 0) {
      ++w;
      assert(w < kBitmapWords && "PopMin on a frontier with no live entry");
    }
    const size_t b =
        64 * w + static_cast<size_t>(std::countr_zero(occupied_[w]));
    std::vector<Entry>& bucket = buckets_[b];
    // Lower buckets hold no live entry — their bits are cleared when they
    // drain, and a decrease republishes into its (lower) bucket and
    // re-sets that bit — so this bucket's minimum is the global minimum.
    if (bucket.size() != sorted_[b]) {
      // Entries were appended since the last sort: compact stale ones
      // (popped nodes, superseded keys) and re-sort so the exact minimum
      // sits at the back.
      size_t live = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        const Entry e = bucket[i];
        const NodeState& s = node_state_[e.node];
        if (s.popped == epoch_ || e.key != s.key) continue;
        bucket[live++] = e;
      }
      bucket.resize(live);
      std::sort(bucket.begin(), bucket.end(),
                [](const Entry& lhs, const Entry& rhs) {
                  if (lhs.key != rhs.key) return lhs.key > rhs.key;
                  // equal keys: smaller id pops first
                  return lhs.node > rhs.node;
                });
      sorted_[b] = static_cast<uint32_t>(live);
    }
    while (!bucket.empty()) {
      const Entry e = bucket.back();
      bucket.pop_back();
      sorted_[b] = static_cast<uint32_t>(bucket.size());
      // Entries sorted before a decrease can still be stale; skip them.
      NodeState& s = node_state_[e.node];
      if (s.popped == epoch_ || e.key != s.key) continue;
      if (bucket.empty()) occupied_[w] &= ~(uint64_t{1} << (b % 64));
      s.popped = epoch_;
      --size_;
      return e.node;
    }
    occupied_[w] &= ~(uint64_t{1} << (b % 64));
  }
}

size_t BucketFrontier::MemoryFootprintBytes() const {
  size_t bytes = buckets_.capacity() * sizeof(std::vector<Entry>) +
                 sorted_.capacity() * sizeof(uint32_t) +
                 node_state_.capacity() * sizeof(NodeState);
  for (const std::vector<Entry>& bucket : buckets_) {
    bytes += bucket.capacity() * sizeof(Entry);
  }
  return bytes;
}

// --- DeltaSteppingFrontier -------------------------------------------------

void DeltaSteppingFrontier::Reset(size_t n, double lo, double hi,
                                  double delta) {
  // Clear only the buckets the previous search dirtied (bitmap scan, like
  // BucketFrontier) before resizing the bucket array for the new width.
  for (size_t w = 0; w < occupied_.size(); ++w) {
    uint64_t word = occupied_[w];
    while (word != 0) {
      const size_t b = 64 * w + static_cast<size_t>(std::countr_zero(word));
      buckets_[b].clear();
      sorted_[b] = 0;
      word &= word - 1;
    }
    occupied_[w] = 0;
  }
  const double range = hi - lo;
  size_t want = 1;
  if (range > 0.0 && delta > 0.0 && std::isfinite(range / delta)) {
    const double count = range / delta + 1.0;
    want = count >= static_cast<double>(kMaxBuckets)
               ? kMaxBuckets
               : static_cast<size_t>(count);
    if (want == 0) want = 1;
  }
  if (want > buckets_.size()) {
    buckets_.resize(want);
    sorted_.resize(want, 0);
  }
  occupied_.assign((want + 63) / 64, 0);
  num_buckets_ = want;
  if (n > node_state_.size()) {
    node_state_.resize(n, NodeState{0.0, 0, 0});
  }
  if (epoch_ == std::numeric_limits<uint32_t>::max()) {
    for (NodeState& s : node_state_) s.stamp = 0;
    epoch_ = 1;
  } else {
    ++epoch_;
  }
  lo_ = lo;
  bucket_scale_ =
      range > 0.0 ? static_cast<double>(num_buckets_ - 1) / range : 0.0;
  size_ = 0;
}

double DeltaSteppingFrontier::CalibrateDelta(double lo, double hi,
                                             size_t expected_settles) {
  const double range = hi - lo;
  if (!(range > 0.0) || !std::isfinite(range)) return 1.0;
  const size_t buckets =
      std::clamp<size_t>(expected_settles, size_t{1}, kMaxBuckets);
  return range / static_cast<double>(buckets);
}

size_t DeltaSteppingFrontier::BucketOf(double key) const {
  const double offset = (key - lo_) * bucket_scale_;
  if (!(offset > 0.0)) return 0;  // below range (or NaN): clamp down
  const size_t b = static_cast<size_t>(offset);
  return b >= num_buckets_ ? num_buckets_ - 1 : b;  // above range: clamp up
}

bool DeltaSteppingFrontier::PushOrDecrease(NodeId v, double key) {
  NodeState& s = node_state_[v];
  if (s.stamp == epoch_) {
    if (s.popped == epoch_) return false;  // already extracted this reset
    if (key >= s.key) return false;
  } else {
    s.stamp = epoch_;
    s.popped = epoch_ - 1;
    ++size_;
  }
  s.key = key;  // the old entry (if any) is now stale
  const size_t b = BucketOf(key);
  buckets_[b].push_back(Entry{key, v});
  occupied_[b / 64] |= uint64_t{1} << (b % 64);
  return true;
}

NodeId DeltaSteppingFrontier::PopMin() {
  assert(size_ > 0);
  size_t w = 0;
  while (true) {
    while (occupied_[w] == 0) {
      ++w;
      assert(w < occupied_.size() && "PopMin on a frontier with no live entry");
    }
    const size_t b =
        64 * w + static_cast<size_t>(std::countr_zero(occupied_[w]));
    std::vector<Entry>& bucket = buckets_[b];
    // Lower buckets hold no live entry (their bits clear as they drain and
    // decreases republish downward), so this bucket's exact minimum is the
    // global minimum — same argument as BucketFrontier::PopMin.
    if (bucket.size() != sorted_[b]) {
      size_t live = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        const Entry e = bucket[i];
        const NodeState& s = node_state_[e.node];
        if (s.popped == epoch_ || e.key != s.key) continue;
        bucket[live++] = e;
      }
      bucket.resize(live);
      std::sort(bucket.begin(), bucket.end(),
                [](const Entry& lhs, const Entry& rhs) {
                  if (lhs.key != rhs.key) return lhs.key > rhs.key;
                  // equal keys: smaller id pops first
                  return lhs.node > rhs.node;
                });
      sorted_[b] = static_cast<uint32_t>(live);
    }
    while (!bucket.empty()) {
      const Entry e = bucket.back();
      bucket.pop_back();
      sorted_[b] = static_cast<uint32_t>(bucket.size());
      NodeState& s = node_state_[e.node];
      if (s.popped == epoch_ || e.key != s.key) continue;
      if (bucket.empty()) occupied_[w] &= ~(uint64_t{1} << (b % 64));
      s.popped = epoch_;
      --size_;
      return e.node;
    }
    occupied_[w] &= ~(uint64_t{1} << (b % 64));
  }
}

size_t DeltaSteppingFrontier::MemoryFootprintBytes() const {
  size_t bytes = buckets_.capacity() * sizeof(std::vector<Entry>) +
                 sorted_.capacity() * sizeof(uint32_t) +
                 occupied_.capacity() * sizeof(uint64_t) +
                 node_state_.capacity() * sizeof(NodeState);
  for (const std::vector<Entry>& bucket : buckets_) {
    bytes += bucket.capacity() * sizeof(Entry);
  }
  return bytes;
}

// --- EpochUnionFind --------------------------------------------------------

void EpochUnionFind::Reset(size_t n) {
  if (n > parent_.size()) {
    parent_.resize(n, 0);
    stamp_.resize(n, 0);
  }
  epoch_ = BumpEpoch(epoch_, stamp_);
  touched_ = 0;
}

NodeId EpochUnionFind::Find(NodeId x) {
  if (stamp_[x] != epoch_) {
    stamp_[x] = epoch_;
    parent_[x] = x;
    ++touched_;
    return x;
  }
  NodeId root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {  // path compression
    const NodeId next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

// --- SearchWorkspace -------------------------------------------------------

void SearchWorkspace::Begin(size_t n) {
  if (n > state_.size()) {
    state_.resize(n, NodeState{0.0, 0, 0});
    parent_.resize(n);
    origin_.resize(n);
    tag_.resize(n);
    mark_stamp_.resize(n, 0);
    tag_stamp_.resize(n, 0);
  }
  if (epoch_ == std::numeric_limits<uint32_t>::max()) {
    for (NodeState& s : state_) s.stamp = 0;
    std::fill(mark_stamp_.begin(), mark_stamp_.end(), 0u);
    std::fill(tag_stamp_.begin(), tag_stamp_.end(), 0u);
    epoch_ = 1;
  } else {
    ++epoch_;
  }
  heap_.Reset(n);
}

size_t SearchWorkspace::MemoryFootprintBytes() const {
  return state_.capacity() * sizeof(NodeState) +
         parent_.capacity() * sizeof(ParentLink) +
         origin_.capacity() * sizeof(NodeId) +
         tag_.capacity() * sizeof(uint32_t) +
         (mark_stamp_.capacity() + tag_stamp_.capacity()) * sizeof(uint32_t) +
         heap_.MemoryFootprintBytes() + bucket_frontier_.MemoryFootprintBytes() +
         delta_frontier_.MemoryFootprintBytes() +
         union_find_.MemoryFootprintBytes() +
         node_scratch_.capacity() * sizeof(NodeId) +
         edge_scratch_.capacity() * sizeof(EdgeId) +
         value_scratch_.capacity() * sizeof(double);
}

}  // namespace xsum::graph
