/// \file subgraph.h
/// \brief Summary explanations are weakly connected subgraphs of G
/// (paper §III). `Subgraph` references its parent graph by node/edge ids
/// and offers the invariant checks the summarizers and tests rely on.

#ifndef XSUM_GRAPH_SUBGRAPH_H_
#define XSUM_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/types.h"

namespace xsum::graph {

/// \brief An edge-induced subgraph: sorted unique edge ids plus the sorted
/// unique node set they span (isolated extra nodes may also be included,
/// e.g. a PCST solution that collects a terminal without connecting it).
class Subgraph {
 public:
  Subgraph() = default;

  /// Builds from edge ids; nodes are derived from edge endpoints plus
  /// \p extra_nodes. Duplicate ids are deduplicated.
  static Subgraph FromEdges(const KnowledgeGraph& graph,
                            std::vector<EdgeId> edges,
                            std::vector<NodeId> extra_nodes = {});

  /// Sorted unique node ids.
  const std::vector<NodeId>& nodes() const { return nodes_; }
  /// Sorted unique edge ids.
  const std::vector<EdgeId>& edges() const { return edges_; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  bool Empty() const { return nodes_.empty(); }

  /// O(log n) membership tests.
  bool ContainsNode(NodeId v) const;
  bool ContainsEdge(EdgeId e) const;

  /// Number of contained nodes with the given type.
  size_t CountNodesOfType(const KnowledgeGraph& graph, NodeType type) const;

  /// Sum of \p weights over contained edges.
  double TotalWeight(const std::vector<double>& weights) const;

  /// True iff every pair of contained nodes is connected using only
  /// contained edges (ignoring direction) — the paper's weak-connectivity
  /// requirement. The empty subgraph is connected.
  bool IsWeaklyConnected(const KnowledgeGraph& graph) const;

  /// True iff acyclic and weakly connected (|E| == |V|−1 and connected).
  bool IsTree(const KnowledgeGraph& graph) const;

  /// Repeatedly removes degree-1 nodes (and their edge) that are not in
  /// \p required; standard Steiner-tree cleanup so every leaf is a terminal.
  void PruneLeavesNotIn(const KnowledgeGraph& graph,
                        const std::vector<NodeId>& required);

  /// Estimated bytes held by this subgraph (for the memory metric).
  size_t MemoryFootprintBytes() const {
    return nodes_.size() * sizeof(NodeId) + edges_.size() * sizeof(EdgeId);
  }

 private:
  std::vector<NodeId> nodes_;
  std::vector<EdgeId> edges_;
};

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_SUBGRAPH_H_
