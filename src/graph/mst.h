/// \file mst.h
/// \brief Minimum spanning tree over explicit edge lists (Kruskal). Used by
/// Algorithm 1 twice: on the terminal metric closure, and as the final
/// cleanup MST over the expanded subgraph.

#ifndef XSUM_GRAPH_MST_H_
#define XSUM_GRAPH_MST_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace xsum::graph {

/// \brief An abstract weighted edge for MST computation; `a` and `b` are
/// arbitrary dense ids (not necessarily KnowledgeGraph NodeIds).
struct MstEdge {
  size_t a = 0;
  size_t b = 0;
  double weight = 0.0;
  /// Caller-provided payload (e.g. index into a path table).
  size_t tag = 0;
};

/// \brief Kruskal MST over \p edges with \p num_vertices dense vertices.
///
/// Returns indices into \p edges of the selected edges. If the input is
/// disconnected, returns a minimum spanning forest. Ties broken by input
/// order (stable sort), keeping results deterministic.
std::vector<size_t> KruskalMst(size_t num_vertices,
                               const std::vector<MstEdge>& edges);

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_MST_H_
