#include "graph/knowledge_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace xsum::graph {

NodeId GraphBuilder::AddNode(NodeType type) {
  node_types_.push_back(type);
  return static_cast<NodeId>(node_types_.size() - 1);
}

NodeId GraphBuilder::AddNodes(NodeType type, size_t count) {
  const NodeId first = static_cast<NodeId>(node_types_.size());
  node_types_.insert(node_types_.end(), count, type);
  return first;
}

Result<EdgeId> GraphBuilder::AddEdge(NodeId src, NodeId dst,
                                     Relation relation, double weight) {
  if (src >= node_types_.size() || dst >= node_types_.size()) {
    return Status::InvalidArgument(
        StrCat("edge endpoint out of range: ", src, " -> ", dst, " with ",
               node_types_.size(), " nodes"));
  }
  if (src == dst) {
    return Status::InvalidArgument(StrCat("self-loop rejected at node ", src));
  }
  edges_.push_back(EdgeRecord{src, dst, relation, weight});
  return static_cast<EdgeId>(edges_.size() - 1);
}

KnowledgeGraph GraphBuilder::Finalize() && {
  KnowledgeGraph g;
  g.node_types_ = std::move(node_types_);
  g.edges_ = std::move(edges_);

  for (NodeType t : g.node_types_) {
    ++g.type_counts_[static_cast<int>(t)];
  }

  const size_t n = g.node_types_.size();
  // Counting sort of undirected incidences into CSR.
  std::vector<size_t> degree(n, 0);
  for (const EdgeRecord& e : g.edges_) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  g.offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.adj_.resize(g.offsets_[n]);

  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const EdgeRecord& r = g.edges_[e];
    g.adj_[cursor[r.src]++] = AdjEntry{r.dst, e};
    g.adj_[cursor[r.dst]++] = AdjEntry{r.src, e};
  }

  // Sort each node's incidence list by neighbor id for O(log d) lookup.
  for (size_t v = 0; v < n; ++v) {
    std::sort(g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]),
              g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]),
              [](const AdjEntry& a, const AdjEntry& b) {
                if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
                return a.edge < b.edge;
              });
  }
  return g;
}

EdgeId KnowledgeGraph::FindEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return kInvalidEdge;
  // Search the smaller incidence list.
  if (Degree(v) < Degree(u)) std::swap(u, v);
  const auto nbrs = Neighbors(u);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const AdjEntry& a, NodeId target) { return a.neighbor < target; });
  if (it != nbrs.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

std::vector<double> KnowledgeGraph::WeightVector() const {
  std::vector<double> w(edges_.size());
  for (size_t e = 0; e < edges_.size(); ++e) w[e] = edges_[e].weight;
  return w;
}

std::vector<NodeId> KnowledgeGraph::NodesOfType(NodeType type) const {
  std::vector<NodeId> out;
  out.reserve(NumNodesOfType(type));
  for (NodeId v = 0; v < node_types_.size(); ++v) {
    if (node_types_[v] == type) out.push_back(v);
  }
  return out;
}

size_t KnowledgeGraph::MemoryFootprintBytes() const {
  return node_types_.size() * sizeof(NodeType) +
         edges_.size() * sizeof(EdgeRecord) +
         offsets_.size() * sizeof(size_t) + adj_.size() * sizeof(AdjEntry);
}

}  // namespace xsum::graph
