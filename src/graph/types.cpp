#include "graph/types.h"

namespace xsum::graph {

const char* NodeTypeToString(NodeType type) {
  switch (type) {
    case NodeType::kUser:
      return "user";
    case NodeType::kItem:
      return "item";
    case NodeType::kEntity:
      return "entity";
  }
  return "?";
}

const char* RelationToString(Relation relation) {
  switch (relation) {
    case Relation::kRated:
      return "rated";
    case Relation::kDirectedBy:
      return "directed_by";
    case Relation::kActedBy:
      return "acted_by";
    case Relation::kHasGenre:
      return "has_genre";
    case Relation::kComposedBy:
      return "composed_by";
    case Relation::kProducedBy:
      return "produced_by";
    case Relation::kWrittenBy:
      return "written_by";
    case Relation::kEditedBy:
      return "edited_by";
    case Relation::kCinematography:
      return "cinematography";
    case Relation::kSungBy:
      return "sung_by";
    case Relation::kInAlbum:
      return "in_album";
    case Relation::kRelatedTo:
      return "related_to";
    case Relation::kUserAttribute:
      return "user_attribute";
  }
  return "?";
}

}  // namespace xsum::graph
