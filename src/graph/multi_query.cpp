#include "graph/multi_query.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xsum::graph {

void MultiQueryWorkspace::Begin(size_t n, size_t width) {
  const size_t lanes = n * width;
  if (lane_state_.size() < lanes) {
    lane_state_.resize(lanes, LaneState{0.0, 0, 0});
    lane_parent_.resize(lanes);
    lane_mark_.resize(lanes, 0);
  }
  if (heaps_.size() < width) heaps_.resize(width);
  targets_remaining_.assign(width, 0);
  active_.assign(width, 0);
  nodes_ = n;
  width_ = width;
  if (epoch_ == std::numeric_limits<uint32_t>::max()) {
    // Stamp wraparound: clear every lane so stale stamps from epochs long
    // past cannot alias the restarted epoch (same idiom as BumpEpoch).
    for (LaneState& s : lane_state_) s.stamp = 0;
    std::fill(lane_mark_.begin(), lane_mark_.end(), 0u);
    epoch_ = 1;
  } else {
    ++epoch_;
  }
  for (size_t q = 0; q < width; ++q) heaps_[q].Reset(n);
}

size_t MultiQueryWorkspace::MemoryFootprintBytes() const {
  size_t bytes = lane_state_.capacity() * sizeof(LaneState) +
                 lane_parent_.capacity() * sizeof(ParentLink) +
                 lane_mark_.capacity() * sizeof(uint32_t) +
                 targets_remaining_.capacity() * sizeof(size_t) +
                 active_.capacity() * sizeof(uint8_t);
  for (const IndexedMinHeap& heap : heaps_) {
    bytes += heap.MemoryFootprintBytes();
  }
  return bytes;
}

void MultiQueryDijkstra(const CostView& costs,
                        std::span<const MultiQuery> queries,
                        MultiQueryWorkspace& ws) {
  assert(costs.valid());
  assert(costs.min_cost() >= 0.0 && "Dijkstra requires non-negative costs");
  const size_t n = costs.graph().num_nodes();
  const size_t width = queries.size();
  ws.Begin(n, width);
  if (width == 0) return;

  std::vector<size_t>& targets_remaining = ws.targets_remaining();
  std::vector<uint8_t>& active = ws.active();

  // Per-query initialization — the exact prologue of `DijkstraInto`: mark
  // targets (deduplicated via the mark lane), seed the source at distance 0.
  for (size_t q = 0; q < width; ++q) {
    const MultiQuery& query = queries[q];
    for (const NodeId t : query.targets) {
      if (ws.Mark(q, t)) ++targets_remaining[q];
    }
    ws.Relax(q, query.source, 0.0, kInvalidNode, kInvalidEdge);
    ws.heap(q).PushOrDecrease(query.source, 0.0);
    active[q] = 1;
  }

  // Lockstep rounds: one settle per live query per round. Each lane's
  // pop/relax sequence is exactly the sequential kernel's — queries share
  // no mutable state, so the round-robin interleaving cannot perturb a
  // lane, only decide which query's CSR row is scanned next.
  size_t live = width;
  while (live > 0) {
    for (size_t q = 0; q < width; ++q) {
      if (!active[q]) continue;
      IndexedMinHeap& heap = ws.heap(q);
      if (heap.Empty()) {
        active[q] = 0;
        --live;
        continue;
      }
      const NodeId u = heap.PopMin();
      ws.SetSettled(q, u);

      if (targets_remaining[q] > 0 && ws.marked(q, u)) {
        ws.Unmark(q, u);
        if (--targets_remaining[q] == 0) {
          active[q] = 0;
          --live;
          continue;
        }
      }

      const double du = ws.dist(q, u);
      for (const CostSlot& s : costs.Neighbors(u)) {
        const double nd = du + s.cost;
        // No settled check: the strict compare rejects settled neighbors,
        // exactly as in the single-query loop.
        if (nd < ws.dist(q, s.neighbor)) {
          ws.Relax(q, s.neighbor, nd, u, s.edge);
          heap.PushOrDecrease(s.neighbor, nd);
        }
      }
    }
  }
}

void AppendLanePathEdges(const MultiQueryWorkspace& ws, size_t q,
                         NodeId target, std::vector<EdgeId>* out) {
  if (target >= ws.capacity_nodes() || !ws.reached(q, target)) return;
  NodeId v = target;
  while (ws.parent_edge(q, v) != kInvalidEdge) {
    out->push_back(ws.parent_edge(q, v));
    v = ws.parent_node(q, v);
  }
}

}  // namespace xsum::graph
