#include "graph/cost_view.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace xsum::graph {

namespace {

/// Commit stamps are process-global so no two committed views (or two
/// commits of one view) ever share a version.
std::atomic<uint64_t> g_next_version{1};

}  // namespace

void CostView::Assign(const KnowledgeGraph& graph,
                      std::span<const double> edge_costs) {
  assert(edge_costs.size() >= graph.num_edges());
  std::vector<double>& out = StartAssign(graph);
  std::copy_n(edge_costs.begin(), graph.num_edges(), out.begin());
  Commit();
}

void CostView::AssignUnit(const KnowledgeGraph& graph) {
  StartAssign(graph).assign(graph.num_edges(), 1.0);
  Commit();
}

std::vector<double>& CostView::StartAssign(const KnowledgeGraph& graph) {
  graph_ = &graph;
  version_ = 0;  // invalid until Commit
  edge_costs_.resize(graph.num_edges());
  return edge_costs_;
}

void CostView::Commit() {
  assert(graph_ != nullptr && "Commit without StartAssign");
  // Interleave: every slot record is rewritten (not just the cost field),
  // so a committed view is consistent with the bound graph even when the
  // buffers were last used for a different one.
  const std::span<const AdjEntry> adj = graph_->adjacency();
  slots_.resize(adj.size());
  for (size_t i = 0; i < adj.size(); ++i) {
    slots_[i] = CostSlot{adj[i].neighbor, adj[i].edge,
                         edge_costs_[adj[i].edge]};
  }
  min_cost_ = std::numeric_limits<double>::infinity();
  max_cost_ = -std::numeric_limits<double>::infinity();
  for (double c : edge_costs_) {
    min_cost_ = std::min(min_cost_, c);
    max_cost_ = std::max(max_cost_, c);
  }
  version_ = g_next_version.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace xsum::graph
