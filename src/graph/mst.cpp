#include "graph/mst.h"

#include <algorithm>
#include <numeric>

#include "graph/union_find.h"

namespace xsum::graph {

std::vector<size_t> KruskalMst(size_t num_vertices,
                               const std::vector<MstEdge>& edges) {
  std::vector<size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return edges[x].weight < edges[y].weight;
  });

  UnionFind uf(num_vertices);
  std::vector<size_t> selected;
  selected.reserve(num_vertices > 0 ? num_vertices - 1 : 0);
  for (size_t idx : order) {
    const MstEdge& e = edges[idx];
    if (uf.Union(e.a, e.b)) {
      selected.push_back(idx);
      if (selected.size() + 1 == num_vertices) break;
    }
  }
  return selected;
}

}  // namespace xsum::graph
