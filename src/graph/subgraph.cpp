#include "graph/subgraph.h"

#include <algorithm>
#include <unordered_map>

#include "graph/union_find.h"

namespace xsum::graph {

namespace {

template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

Subgraph Subgraph::FromEdges(const KnowledgeGraph& graph,
                             std::vector<EdgeId> edges,
                             std::vector<NodeId> extra_nodes) {
  Subgraph s;
  SortUnique(&edges);
  s.edges_ = std::move(edges);
  s.nodes_ = std::move(extra_nodes);
  s.nodes_.reserve(s.nodes_.size() + 2 * s.edges_.size());
  for (EdgeId e : s.edges_) {
    const EdgeRecord& r = graph.edge(e);
    s.nodes_.push_back(r.src);
    s.nodes_.push_back(r.dst);
  }
  SortUnique(&s.nodes_);
  return s;
}

bool Subgraph::ContainsNode(NodeId v) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), v);
}

bool Subgraph::ContainsEdge(EdgeId e) const {
  return std::binary_search(edges_.begin(), edges_.end(), e);
}

size_t Subgraph::CountNodesOfType(const KnowledgeGraph& graph,
                                  NodeType type) const {
  size_t count = 0;
  for (NodeId v : nodes_) {
    if (graph.node_type(v) == type) ++count;
  }
  return count;
}

double Subgraph::TotalWeight(const std::vector<double>& weights) const {
  double total = 0.0;
  for (EdgeId e : edges_) total += weights[e];
  return total;
}

bool Subgraph::IsWeaklyConnected(const KnowledgeGraph& graph) const {
  if (nodes_.size() <= 1) return true;
  // Local union-find over the subgraph's node positions.
  std::unordered_map<NodeId, size_t> index;
  index.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) index[nodes_[i]] = i;
  UnionFind uf(nodes_.size());
  for (EdgeId e : edges_) {
    const EdgeRecord& r = graph.edge(e);
    uf.Union(index.at(r.src), index.at(r.dst));
  }
  return uf.num_sets() == 1;
}

bool Subgraph::IsTree(const KnowledgeGraph& graph) const {
  if (nodes_.empty()) return true;
  return edges_.size() + 1 == nodes_.size() && IsWeaklyConnected(graph);
}

void Subgraph::PruneLeavesNotIn(const KnowledgeGraph& graph,
                                const std::vector<NodeId>& required) {
  std::unordered_map<NodeId, int> degree;
  degree.reserve(nodes_.size());
  for (EdgeId e : edges_) {
    const EdgeRecord& r = graph.edge(e);
    ++degree[r.src];
    ++degree[r.dst];
  }
  std::vector<char> removed_edge(edges_.size(), 0);
  std::vector<NodeId> frontier;
  auto is_required = [&](NodeId v) {
    return std::find(required.begin(), required.end(), v) != required.end();
  };
  for (NodeId v : nodes_) {
    if (degree[v] <= 1 && !is_required(v)) frontier.push_back(v);
  }

  // Each round removes current non-required leaves; their neighbors may
  // become new leaves.
  std::unordered_map<NodeId, char> node_removed;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId leaf : frontier) {
      if (node_removed[leaf]) continue;
      node_removed[leaf] = 1;
      for (size_t idx = 0; idx < edges_.size(); ++idx) {
        if (removed_edge[idx]) continue;
        const EdgeRecord& r = graph.edge(edges_[idx]);
        if (r.src != leaf && r.dst != leaf) continue;
        removed_edge[idx] = 1;
        const NodeId other = r.src == leaf ? r.dst : r.src;
        if (--degree[other] <= 1 && !is_required(other) &&
            !node_removed[other]) {
          next.push_back(other);
        }
      }
    }
    frontier = std::move(next);
  }

  std::vector<EdgeId> kept_edges;
  kept_edges.reserve(edges_.size());
  for (size_t idx = 0; idx < edges_.size(); ++idx) {
    if (!removed_edge[idx]) kept_edges.push_back(edges_[idx]);
  }
  std::vector<NodeId> kept_nodes;
  kept_nodes.reserve(nodes_.size());
  for (NodeId v : nodes_) {
    if (!node_removed[v]) kept_nodes.push_back(v);
  }
  edges_ = std::move(kept_edges);
  nodes_ = std::move(kept_nodes);
}

}  // namespace xsum::graph
