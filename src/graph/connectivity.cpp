#include "graph/connectivity.h"

#include <queue>

namespace xsum::graph {

ComponentResult WeaklyConnectedComponents(const KnowledgeGraph& graph) {
  const size_t n = graph.num_nodes();
  ComponentResult out;
  out.component.assign(n, UINT32_MAX);

  for (NodeId start = 0; start < n; ++start) {
    if (out.component[start] != UINT32_MAX) continue;
    const uint32_t comp = out.num_components++;
    size_t size = 0;
    std::queue<NodeId> queue;
    out.component[start] = comp;
    queue.push(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      ++size;
      for (const AdjEntry& a : graph.Neighbors(u)) {
        if (out.component[a.neighbor] == UINT32_MAX) {
          out.component[a.neighbor] = comp;
          queue.push(a.neighbor);
        }
      }
    }
    out.sizes.push_back(size);
  }
  return out;
}

bool IsWeaklyConnected(const KnowledgeGraph& graph) {
  if (graph.num_nodes() == 0) return true;
  return WeaklyConnectedComponents(graph).num_components == 1;
}

}  // namespace xsum::graph
