/// \file union_find.h
/// \brief Disjoint-set forest with union-by-rank and path halving. Used by
/// Kruskal MST, PCST growth (Algorithm 2's D.make_set/find/union), and
/// weak-connectivity checks.

#ifndef XSUM_GRAPH_UNION_FIND_H_
#define XSUM_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace xsum::graph {

/// \brief Disjoint-set forest over dense ids [0, n).
class UnionFind {
 public:
  /// Creates \p n singleton sets.
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of the set containing \p x (with path halving).
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of \p a and \p b; returns false if already merged.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --num_sets_;
    return true;
  }

  /// True iff \p a and \p b are in the same set.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Number of disjoint sets remaining.
  size_t num_sets() const { return num_sets_; }

  /// Number of elements.
  size_t size() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_sets_;
};

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_UNION_FIND_H_
