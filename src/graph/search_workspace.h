/// \file search_workspace.h
/// \brief Reusable, epoch-stamped scratch state for graph searches — the
/// allocation-free engine under Dijkstra, multi-source Dijkstra, and the
/// PCST growth loop.
///
/// The seed implementation re-allocated (and `assign`-filled) O(|V|)
/// dist/parent/settled arrays on every query, which dominates the cost of
/// searches that settle only a small neighbourhood (every early-exiting
/// terminal-closure Dijkstra, every PCST growth that stops once the
/// terminals connect). A `SearchWorkspace` keeps those arrays alive across
/// queries and resets them in O(1) by bumping an epoch counter: a per-node
/// value is valid only if its stamp equals the current epoch, so stale
/// entries from earlier queries read as "unset" without ever being
/// touched. See DESIGN.md §2 for the full invariants.
///
/// Facilities (each with an independent stamp array, all sharing the
/// workspace epoch bumped by `Begin`):
///  - shortest-path state: dist / parent_node / parent_edge / origin
///  - a settled-node flag set
///  - a mark set (terminal / target membership tests)
///  - a u32 tag map (dense node→index translations, small counters)
///  - an indexed 4-ary min-heap with decrease-key (`IndexedMinHeap`)
///  - a Dial-style bounded-range bucket frontier (`BucketFrontier`,
///    self-resetting; selected by the PCST growth when its `CostView`
///    reports a bounded cost range — DESIGN.md §4)
///  - a calibrated-width delta-stepping frontier (`DeltaSteppingFrontier`,
///    self-resetting; selected for wide weighted key ranges where the
///    fixed 512-bucket Dial array degenerates — DESIGN.md §8)
///  - an epoch-stamped union-find (`EpochUnionFind`, self-resetting)
///  - unstamped scratch vectors callers clear themselves
///
/// A workspace may be reused across graphs of different sizes: `Begin(n)`
/// grows capacity as needed and never shrinks. Workspaces are not
/// thread-safe; use one per worker thread.

#ifndef XSUM_GRAPH_SEARCH_WORKSPACE_H_
#define XSUM_GRAPH_SEARCH_WORKSPACE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/types.h"

namespace xsum::graph {

/// Distance value meaning "unreached" (mirrors dijkstra.h; re-declared here
/// to keep this header dependency-free).
inline constexpr double kUnreachedDistance =
    std::numeric_limits<double>::infinity();

/// \brief Indexed 4-ary min-heap over dense node ids with decrease-key.
///
/// Four-way layout halves the tree depth of a binary heap and keeps the
/// children of a node on one cache line, which benchmarks faster for the
/// relax-heavy workloads here. Each node appears at most once; a cheaper
/// re-insertion is a sift-up instead of a duplicate entry, so a node pops
/// exactly once per search and no stale-entry checks are needed.
///
/// Slot-position lookups are epoch-stamped: `Reset` is O(1) and leaves the
/// slot arrays' capacity in place.
class IndexedMinHeap {
 public:
  /// Prepares the heap for ids in [0, n). O(1) amortized.
  void Reset(size_t n);

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// True iff \p v is currently queued.
  bool Contains(NodeId v) const {
    return pos_epoch_[v] == epoch_ && pos_[v] != kPopped;
  }

  /// Key of a queued node; requires `Contains(v)`.
  double KeyOf(NodeId v) const { return keys_[pos_[v]]; }

  /// Inserts \p v with \p key, or lowers its key if already queued with a
  /// larger one. Returns true iff the heap changed (insert or decrease).
  bool PushOrDecrease(NodeId v, double key);

  /// Removes and returns the node with the smallest key; requires
  /// `!Empty()`. Ties broken by heap layout (deterministic).
  NodeId PopMin();

  /// Smallest key; requires `!Empty()`.
  double MinKey() const { return keys_[0]; }

  size_t MemoryFootprintBytes() const {
    return keys_.capacity() * sizeof(double) +
           nodes_.capacity() * sizeof(NodeId) +
           pos_.capacity() * sizeof(uint32_t) +
           pos_epoch_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kPopped = std::numeric_limits<uint32_t>::max();

  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void Place(size_t slot, double key, NodeId v) {
    MoveTo(slot, key, v);
    pos_epoch_[v] = epoch_;
  }
  /// Place for a node already stamped this epoch (all sift moves).
  void MoveTo(size_t slot, double key, NodeId v) {
    keys_[slot] = key;
    nodes_[slot] = v;
    pos_[v] = static_cast<uint32_t>(slot);
  }

  std::vector<double> keys_;    // heap slots, parallel to nodes_
  std::vector<NodeId> nodes_;   // heap slots
  std::vector<uint32_t> pos_;   // node -> slot; valid iff pos_epoch_ matches
  std::vector<uint32_t> pos_epoch_;
  uint32_t epoch_ = 0;
  size_t size_ = 0;
};

/// \brief Dial-style bucket frontier over dense node ids for priorities in
/// a known bounded range.
///
/// The PCST growth loop (the one unit-cost-shaped kernel here) assigns
/// each frontier node a *static* key — edge cost minus prize plus slack —
/// whose range is known before the sweep starts: the `CostView` reports
/// the cost range and the prize policy bounds the rest. For such keys a
/// bucket array beats a heap: push and decrease-key are O(1) appends, and
/// pop scans only the lowest non-empty bucket. Keys outside the declared
/// range are clamped into the boundary buckets, so the bounds affect only
/// performance, never correctness.
///
/// Pops are *exact*: the globally smallest key wins every pop (the active
/// bucket is scanned for its minimum), with ties broken by smaller node
/// id. The growth's automatic frontier selection only engages when keys
/// are tie-free (see DESIGN.md §4), which makes the bucket pop sequence
/// provably identical to the indexed heap's — bit-identical summaries.
///
/// Same contract as `IndexedMinHeap`: each node pops at most once per
/// `Reset`; a push for a popped node is rejected; a push with a key not
/// smaller than the node's current one is rejected. Decreases leave a
/// stale entry behind (lazy deletion), which pops skip.
class BucketFrontier {
 public:
  /// Prepares the frontier for ids in [0, n) and keys in [\p lo, \p hi].
  /// O(#buckets) plus O(1) amortized growth.
  void Reset(size_t n, double lo, double hi);

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Inserts \p v with \p key, or lowers its key if already queued with a
  /// larger one. Returns true iff the frontier changed.
  bool PushOrDecrease(NodeId v, double key);

  /// Removes and returns the node with the smallest key (ties: smallest
  /// node id); requires `!Empty()`.
  NodeId PopMin();

  size_t MemoryFootprintBytes() const;

 private:
  /// Bucket resolution. 512 spans the [1, 2]-cost regimes here at ~2e-3
  /// key granularity; resolution only affects how many entries one pop
  /// scans, never which node pops.
  static constexpr size_t kNumBuckets = 512;

  struct Entry {
    double key;
    NodeId node;
  };

  static constexpr size_t kBitmapWords = kNumBuckets / 64;

  /// Per-node frontier state on one 16-byte record (one random memory
  /// access per offer): the current key, its validity stamp, and the
  /// popped stamp (valid only while `stamp == epoch`).
  struct NodeState {
    double key;
    uint32_t stamp;
    uint32_t popped;
  };

  size_t BucketOf(double key) const;

  std::vector<std::vector<Entry>> buckets_;
  /// Number of leading entries of each bucket that are compacted and
  /// sorted descending by (key, node id) — pops read the exact minimum off
  /// the back in O(1). A push appends past the watermark; the next pop of
  /// that bucket recompacts and re-sorts (rare: a push lands in the
  /// currently-draining bucket only when its key falls within the active
  /// 1/kNumBuckets slice of the range).
  std::vector<uint32_t> sorted_;
  /// One bit per non-empty bucket: pops find the lowest candidate bucket
  /// with a find-first-set over 8 words instead of walking empty buckets,
  /// and Reset clears only the buckets whose bit is set.
  uint64_t occupied_[kBitmapWords] = {};
  std::vector<NodeState> node_state_;
  double lo_ = 0.0;
  double bucket_scale_ = 0.0;  // buckets per key unit
  size_t size_ = 0;            // queued (not yet popped) nodes
  uint32_t epoch_ = 0;
};

/// \brief Calibrated-width bucket frontier for weight-aware key regimes —
/// the Meyer–Sanders delta-stepping bucket structure with exact-min pops.
///
/// `BucketFrontier` maps the key range onto a *fixed* 512-bucket array,
/// which works when the range is a couple of cost units (the unit-cost
/// PCST regimes) but degrades on wide weighted ranges: hundreds of frontier
/// nodes collapse into one bucket and every pop re-sorts it. This frontier
/// instead takes an explicit bucket width Δ (classically: the light-edge
/// threshold) and sizes the bucket array to ⌈range/Δ⌉, so per-bucket
/// occupancy stays O(1) regardless of the range — push/decrease stay O(1)
/// appends and pops scan a handful of entries.
///
/// Unlike textbook delta-stepping, pops are *exact*: the globally smallest
/// key wins every pop (ties: smaller node id), identical to
/// `BucketFrontier` and — on tie-free keys — to `IndexedMinHeap`. True
/// bucket-at-a-time relaxation would reorder settles within a bucket and
/// perturb parent choices, breaking the bit-identity contract every
/// summary path is gated on (DESIGN.md §8); the calibrated width already
/// recovers the O(1) bucket operations that motivate delta-stepping.
///
/// Same contract as the other frontiers: each node pops at most once per
/// `Reset`; stale entries (popped nodes, superseded keys) are skipped
/// lazily.
class DeltaSteppingFrontier {
 public:
  /// Prepares the frontier for ids in [0, n), keys in [\p lo, \p hi], and
  /// bucket width \p delta (> 0; non-positive or non-finite collapses to a
  /// single bucket). Bucket count is clamped to `kMaxBuckets`.
  void Reset(size_t n, double lo, double hi, double delta);

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t num_buckets() const { return num_buckets_; }

  /// Inserts \p v with \p key, or lowers its key if already queued with a
  /// larger one. Returns true iff the frontier changed.
  bool PushOrDecrease(NodeId v, double key);

  /// Removes and returns the node with the smallest key (ties: smallest
  /// node id); requires `!Empty()`.
  NodeId PopMin();

  /// Width that targets ~1 expected settle per bucket: range divided by
  /// the expected number of settles, clamped so the bucket count stays in
  /// [1, kMaxBuckets]. The width only affects how many entries one pop
  /// scans, never which node pops.
  static double CalibrateDelta(double lo, double hi, size_t expected_settles);

  size_t MemoryFootprintBytes() const;

 private:
  /// Upper bound on the bucket array (64 KiB of bucket headers): past this
  /// the per-bucket occupancy target is abandoned in favor of bounded
  /// reset cost.
  static constexpr size_t kMaxBuckets = size_t{1} << 14;

  struct Entry {
    double key;
    NodeId node;
  };
  struct NodeState {
    double key;
    uint32_t stamp;
    uint32_t popped;
  };

  size_t BucketOf(double key) const;

  std::vector<std::vector<Entry>> buckets_;
  std::vector<uint32_t> sorted_;      // per-bucket compacted+sorted watermark
  std::vector<uint64_t> occupied_;    // one bit per non-empty bucket
  std::vector<NodeState> node_state_;
  double lo_ = 0.0;
  double bucket_scale_ = 0.0;  // buckets per key unit (1/Δ)
  size_t num_buckets_ = 0;
  size_t size_ = 0;
  uint32_t epoch_ = 0;
};

/// \brief Epoch-stamped disjoint-set forest over dense node ids.
///
/// Replaces the seed's `unordered_map`-backed sparse union-find in the PCST
/// growth loop: `Reset` is O(1), `Find` lazily initializes a node to its own
/// singleton on first touch. The smaller root id wins a union, matching the
/// seed's deterministic merge rule.
class EpochUnionFind {
 public:
  /// Starts a fresh partition over ids [0, n). O(1) amortized.
  void Reset(size_t n);

  NodeId Find(NodeId x);

  /// Merges the sets of \p a and \p b; returns false if already merged.
  bool Union(NodeId a, NodeId b) {
    NodeId ra = Find(a);
    NodeId rb = Find(b);
    if (ra == rb) return false;
    if (ra > rb) std::swap(ra, rb);
    parent_[rb] = ra;
    return true;
  }

  /// Number of nodes touched since the last Reset.
  size_t touched() const { return touched_; }

  size_t MemoryFootprintBytes() const {
    return parent_.capacity() * sizeof(NodeId) +
           stamp_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  size_t touched_ = 0;
};

/// \brief Reusable per-thread search state (see file comment).
class SearchWorkspace {
 public:
  /// Begins a new logical search over node ids [0, n): invalidates all
  /// stamped state and resets the heap. O(1) unless capacity grows.
  void Begin(size_t n);

  /// Current id capacity (the largest n passed to Begin so far).
  size_t capacity() const { return state_.size(); }

  // --- shortest-path state (one 16-byte record per node) -----------------
  //
  // dist, its validity stamp, and the settled flag share one cache-line
  // record: the Dijkstra scan loop touches a neighbor's entire search
  // state with a single random memory access (the dominant cost on dense
  // graphs). Parent node+edge live in one 8-byte record written once per
  // relax.

  /// True iff \p v was relaxed in the current search.
  bool reached(NodeId v) const { return state_[v].stamp == epoch_; }
  double dist(NodeId v) const {
    const NodeState& s = state_[v];
    return s.stamp == epoch_ ? s.dist : kUnreachedDistance;
  }
  NodeId parent_node(NodeId v) const {
    return reached(v) ? parent_[v].node : kInvalidNode;
  }
  EdgeId parent_edge(NodeId v) const {
    return reached(v) ? parent_[v].edge : kInvalidEdge;
  }
  /// The search source \p v is assigned to (multi-source searches; written
  /// only by `RelaxFrom`).
  NodeId origin(NodeId v) const { return reached(v) ? origin_[v] : kInvalidNode; }

  /// Records an improved path to \p v. Must not be called on a settled
  /// node (Dijkstra never improves one under non-negative costs).
  void Relax(NodeId v, double d, NodeId parent, EdgeId via) {
    state_[v] = NodeState{d, epoch_, 0};
    parent_[v] = ParentLink{parent, via};
  }

  /// Relax for multi-source searches: also records the origin cell.
  void RelaxFrom(NodeId v, double d, NodeId parent, EdgeId via,
                 NodeId source) {
    Relax(v, d, parent, via);
    origin_[v] = source;
  }

  // --- settled flags (stored inside the node state record) ---------------

  bool settled(NodeId v) const {
    const NodeState& s = state_[v];
    return s.stamp == epoch_ && s.settled != 0;
  }
  void SetSettled(NodeId v) {
    NodeState& s = state_[v];
    if (s.stamp != epoch_) {
      // Settling an unreached node (e.g. a PCST seed): give it a valid
      // record with an unreached distance.
      s.dist = kUnreachedDistance;
      s.stamp = epoch_;
    }
    s.settled = 1;
  }

  // --- marks (stamp: mark_stamp_) ----------------------------------------

  bool marked(NodeId v) const { return mark_stamp_[v] == epoch_; }
  /// Marks \p v; returns true iff it was not already marked.
  bool Mark(NodeId v) {
    if (marked(v)) return false;
    mark_stamp_[v] = epoch_;
    return true;
  }
  void Unmark(NodeId v) { mark_stamp_[v] = epoch_ - 1; }

  // --- u32 tags (stamp: tag_stamp_) --------------------------------------

  bool has_tag(NodeId v) const { return tag_stamp_[v] == epoch_; }
  /// Tag of \p v, or \p fallback when unset this epoch.
  uint32_t TagOr(NodeId v, uint32_t fallback) const {
    return has_tag(v) ? tag_[v] : fallback;
  }
  void SetTag(NodeId v, uint32_t t) {
    tag_[v] = t;
    tag_stamp_[v] = epoch_;
  }

  // --- sub-structures ----------------------------------------------------

  IndexedMinHeap& heap() { return heap_; }
  /// Self-resetting: call `bucket_frontier().Reset(n, lo, hi)` before each
  /// use (the key range is query-specific, so `Begin` cannot reset it).
  BucketFrontier& bucket_frontier() { return bucket_frontier_; }
  /// Self-resetting: call `delta_frontier().Reset(n, lo, hi, delta)` before
  /// each use.
  DeltaSteppingFrontier& delta_frontier() { return delta_frontier_; }
  /// Self-resetting: call `union_find().Reset(n)` before each use.
  EpochUnionFind& union_find() { return union_find_; }

  /// Unstamped scratch buffers; callers clear() before use (capacity is
  /// retained across queries).
  std::vector<NodeId>& node_scratch() { return node_scratch_; }
  std::vector<EdgeId>& edge_scratch() { return edge_scratch_; }
  std::vector<double>& value_scratch() { return value_scratch_; }

  /// Resident bytes of all retained arrays (the "peak workspace" number
  /// reported by the perf benches). History-dependent: capacity only
  /// grows, so a reused workspace reports its high-water mark.
  size_t MemoryFootprintBytes() const;

  /// Deterministic per-query footprint: the bytes a workspace sized
  /// exactly for \p n ids holds (node state + parents + origins + tags +
  /// stamps + heap + union-find). Query-path memory metrics report this
  /// so results never depend on the workspace's history or the worker
  /// count that served the query.
  static size_t RequiredBytes(size_t n) {
    return n * (sizeof(NodeState) + sizeof(ParentLink) +
                2 * sizeof(NodeId) +        // origin + union-find parents
                5 * sizeof(uint32_t) +      // tag + 2 stamps + uf stamp + heap pos
                sizeof(double) + sizeof(NodeId) +  // heap key/node slots
                sizeof(uint32_t));          // heap pos epoch
  }

 private:
  struct NodeState {
    double dist;
    uint32_t stamp;
    uint32_t settled;
  };
  struct ParentLink {
    NodeId node;
    EdgeId edge;
  };

  std::vector<NodeState> state_;
  std::vector<ParentLink> parent_;
  std::vector<NodeId> origin_;
  std::vector<uint32_t> tag_;
  std::vector<uint32_t> mark_stamp_;
  std::vector<uint32_t> tag_stamp_;
  uint32_t epoch_ = 0;

  IndexedMinHeap heap_;
  BucketFrontier bucket_frontier_;
  DeltaSteppingFrontier delta_frontier_;
  EpochUnionFind union_find_;

  std::vector<NodeId> node_scratch_;
  std::vector<EdgeId> edge_scratch_;
  std::vector<double> value_scratch_;
};

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_SEARCH_WORKSPACE_H_
