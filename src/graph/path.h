/// \file path.h
/// \brief Explanation path E(u,i) = (u, v1, ..., vk, i) from paper §III.
///
/// A `Path` holds the node sequence plus the edge id of every hop. A hop
/// whose edge id is `kInvalidEdge` is a *hallucinated* hop: a transition the
/// PLM-style recommender emitted even though no such edge exists in the KG
/// (paper §II: "PLM-Rec generates novel paths beyond the static KG
/// topology"). `IsFaithful()` distinguishes PEARLM-style faithful paths.

#ifndef XSUM_GRAPH_PATH_H_
#define XSUM_GRAPH_PATH_H_

#include <string>
#include <vector>

#include "graph/types.h"

namespace xsum::graph {

class KnowledgeGraph;

/// \brief A walk through the knowledge graph with per-hop edge ids.
struct Path {
  /// Visited nodes in order; size = Length() + 1 when non-empty.
  std::vector<NodeId> nodes;
  /// edges[i] connects nodes[i] and nodes[i+1]; kInvalidEdge marks a
  /// hallucinated hop.
  std::vector<EdgeId> edges;

  /// Number of hops.
  size_t Length() const { return edges.size(); }

  /// True iff the path has no nodes.
  bool Empty() const { return nodes.empty(); }

  /// First node (user end); requires non-empty.
  NodeId Source() const { return nodes.front(); }
  /// Last node (item end); requires non-empty.
  NodeId Target() const { return nodes.back(); }

  /// True iff every hop uses a real KG edge.
  bool IsFaithful() const;

  /// Structural validation: node/edge counts consistent, every real edge
  /// actually joins its adjacent node pair in \p graph, node ids in range.
  /// Hallucinated hops are allowed iff \p allow_hallucinated.
  bool Validate(const KnowledgeGraph& graph,
                bool allow_hallucinated = true) const;

  /// "u12 -> i7 -> e3 -> i9" style debug string.
  std::string ToString(const KnowledgeGraph& graph) const;
};

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_PATH_H_
