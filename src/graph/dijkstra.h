/// \file dijkstra.h
/// \brief Shortest-path machinery over the undirected view of the knowledge
/// graph. This is the inner loop of the ST summarizer (Algorithm 1 computes
/// the metric closure over terminals with repeated Dijkstra runs).
///
/// Costs must be non-negative. The ST summarizer guarantees this by mapping
/// the paper's maximize-weight objective through the order-preserving
/// transform in `core/cost_transform.h` instead of the paper's literal
/// "multiply weights by −1" (which would produce negative costs Dijkstra
/// cannot handle); see DESIGN.md §1.4(3).

#ifndef XSUM_GRAPH_DIJKSTRA_H_
#define XSUM_GRAPH_DIJKSTRA_H_

#include <limits>
#include <vector>

#include "graph/knowledge_graph.h"
#include "graph/path.h"
#include "graph/types.h"

namespace xsum::graph {

/// Distance value meaning "unreached".
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// \brief Result of a single-source Dijkstra run.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  /// dist[v] = cost of the cheapest path source→v, or kInfDistance.
  std::vector<double> dist;
  /// parent_node[v] = predecessor of v on that path (kInvalidNode at source
  /// and unreached nodes).
  std::vector<NodeId> parent_node;
  /// parent_edge[v] = edge used to reach v (kInvalidEdge at source and
  /// unreached nodes).
  std::vector<EdgeId> parent_edge;

  /// Reconstructs the source→target path; empty path (no nodes) if
  /// target is unreached.
  Path ExtractPath(NodeId target) const;
};

/// \brief Runs Dijkstra from \p source using per-edge \p costs
/// (indexed by EdgeId; all entries must be >= 0).
///
/// If \p targets is non-empty, the search stops once all targets are
/// settled (early exit). Costs vector must cover every edge id.
ShortestPathTree Dijkstra(const KnowledgeGraph& graph,
                          const std::vector<double>& costs, NodeId source,
                          const std::vector<NodeId>& targets = {});

/// \brief Voronoi-style multi-source Dijkstra (Mehlhorn's construction).
struct VoronoiResult {
  /// dist[v] = cost from the nearest source.
  std::vector<double> dist;
  /// nearest_source[v] = the source v is assigned to.
  std::vector<NodeId> nearest_source;
  /// parent_node/parent_edge trace back toward the assigned source.
  std::vector<NodeId> parent_node;
  std::vector<EdgeId> parent_edge;
};

/// \brief Runs Dijkstra simultaneously from all \p sources, partitioning the
/// graph into shortest-path Voronoi cells. Used by the Mehlhorn ST variant.
VoronoiResult MultiSourceDijkstra(const KnowledgeGraph& graph,
                                  const std::vector<double>& costs,
                                  const std::vector<NodeId>& sources);

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_DIJKSTRA_H_
