/// \file dijkstra.h
/// \brief Shortest-path machinery over the undirected view of the knowledge
/// graph. This is the inner loop of the ST summarizer (Algorithm 1 computes
/// the metric closure over terminals with repeated Dijkstra runs).
///
/// All workspace-resident kernels consume a `CostView` (graph/cost_view.h):
/// the interleaved (neighbor, edge, cost) CSR built once per cost vector and
/// shared across searches, so the scan loop streams one sequential array
/// instead of gathering `costs[edge]` per relaxation. Costs must be
/// non-negative. The ST summarizer guarantees this by mapping the paper's
/// maximize-weight objective through the order-preserving transform in
/// `core/cost_transform.h` instead of the paper's literal "multiply weights
/// by −1" (which would produce negative costs Dijkstra cannot handle); see
/// DESIGN.md §1.4(3) and §4.

#ifndef XSUM_GRAPH_DIJKSTRA_H_
#define XSUM_GRAPH_DIJKSTRA_H_

#include <limits>
#include <span>
#include <vector>

#include "graph/cost_view.h"
#include "graph/knowledge_graph.h"
#include "graph/path.h"
#include "graph/search_workspace.h"
#include "graph/types.h"

namespace xsum::graph {

/// Distance value meaning "unreached".
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// \brief Result of a single-source Dijkstra run.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  /// dist[v] = cost of the cheapest path source→v, or kInfDistance.
  std::vector<double> dist;
  /// parent_node[v] = predecessor of v on that path (kInvalidNode at source
  /// and unreached nodes).
  std::vector<NodeId> parent_node;
  /// parent_edge[v] = edge used to reach v (kInvalidEdge at source and
  /// unreached nodes).
  std::vector<EdgeId> parent_edge;

  /// Reconstructs the source→target path; empty path (no nodes) if
  /// target is unreached.
  Path ExtractPath(NodeId target) const;
};

/// \brief Runs Dijkstra from \p source using per-edge \p costs
/// (indexed by EdgeId; all entries must be >= 0).
///
/// If \p targets is non-empty, the search stops once all targets are
/// settled (early exit; duplicates are counted once). Costs vector must
/// cover every edge id.
///
/// Allocates a fresh ShortestPathTree (and a throwaway `CostView`) per
/// call; hot paths should prefer `DijkstraInto` with a reused workspace
/// and a prebuilt view.
ShortestPathTree Dijkstra(const KnowledgeGraph& graph,
                          const std::vector<double>& costs, NodeId source,
                          const std::vector<NodeId>& targets = {});

/// \brief Workspace-resident Dijkstra over \p costs: runs into \p ws
/// (calling `ws.Begin()` internally) with zero steady-state allocation.
/// After the call, `ws.dist/parent_node/parent_edge` hold the
/// shortest-path tree; the state stays valid until the next `ws.Begin()`.
void DijkstraInto(const CostView& costs, NodeId source,
                  std::span<const NodeId> targets, SearchWorkspace& ws);

/// \brief Reconstructs the path to \p target from workspace-resident search
/// state (single- or multi-source); empty path if \p target is unreached.
Path ExtractPath(const SearchWorkspace& ws, NodeId target);

/// \brief Appends the edges of the workspace-resident path to \p target
/// onto \p out (in target→source order); no-op if unreached.
void AppendPathEdges(const SearchWorkspace& ws, NodeId target,
                     std::vector<EdgeId>* out);

/// \brief Voronoi-style multi-source Dijkstra (Mehlhorn's construction).
struct VoronoiResult {
  /// dist[v] = cost from the nearest source.
  std::vector<double> dist;
  /// nearest_source[v] = the source v is assigned to.
  std::vector<NodeId> nearest_source;
  /// parent_node/parent_edge trace back toward the assigned source.
  std::vector<NodeId> parent_node;
  std::vector<EdgeId> parent_edge;
};

/// \brief Runs Dijkstra simultaneously from all \p sources, partitioning the
/// graph into shortest-path Voronoi cells. Used by the Mehlhorn ST variant.
///
/// Allocates a fresh VoronoiResult (and a throwaway `CostView`) per call;
/// hot paths should prefer `MultiSourceDijkstraInto`.
VoronoiResult MultiSourceDijkstra(const KnowledgeGraph& graph,
                                  const std::vector<double>& costs,
                                  const std::vector<NodeId>& sources);

/// \brief Workspace-resident multi-source Dijkstra over \p costs. After the
/// call, `ws.origin(v)` is the nearest source of v (the Voronoi cell) and
/// `ws.dist/parent_node/parent_edge` trace back toward it.
void MultiSourceDijkstraInto(const CostView& costs,
                             std::span<const NodeId> sources,
                             SearchWorkspace& ws);

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_DIJKSTRA_H_
