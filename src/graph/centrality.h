/// \file centrality.h
/// \brief Node centrality measures. The paper's §VII names "incorporating
/// node centrality measures" into the PCST prize assignment as future
/// work; this module provides the measures and `core::PcstOptions`
/// exposes the corresponding prize policy.

#ifndef XSUM_GRAPH_CENTRALITY_H_
#define XSUM_GRAPH_CENTRALITY_H_

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"

namespace xsum::graph {

/// \brief Degree centrality: deg(v) / (|V| − 1), in [0, 1].
std::vector<double> DegreeCentrality(const KnowledgeGraph& graph);

/// \brief Approximate harmonic centrality via sampled BFS:
/// H(v) ≈ (|V|/samples) · Σ_{s ∈ sample} 1/d(s, v), normalized to [0, 1]
/// by the maximum observed value. Deterministic in \p seed.
std::vector<double> HarmonicCentrality(const KnowledgeGraph& graph,
                                       size_t samples = 32,
                                       uint64_t seed = 19);

}  // namespace xsum::graph

#endif  // XSUM_GRAPH_CENTRALITY_H_
