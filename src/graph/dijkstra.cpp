#include "graph/dijkstra.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace xsum::graph {

namespace {

struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& other) const { return dist > other.dist; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

Path ShortestPathTree::ExtractPath(NodeId target) const {
  Path path;
  if (target >= dist.size() || dist[target] == kInfDistance) return path;
  NodeId v = target;
  while (v != kInvalidNode) {
    path.nodes.push_back(v);
    if (parent_edge[v] != kInvalidEdge) path.edges.push_back(parent_edge[v]);
    v = parent_node[v];
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

ShortestPathTree Dijkstra(const KnowledgeGraph& graph,
                          const std::vector<double>& costs, NodeId source,
                          const std::vector<NodeId>& targets) {
  assert(costs.size() >= graph.num_edges());
  const size_t n = graph.num_nodes();
  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(n, kInfDistance);
  tree.parent_node.assign(n, kInvalidNode);
  tree.parent_edge.assign(n, kInvalidEdge);

  std::vector<char> settled(n, 0);
  std::vector<char> is_target(targets.empty() ? 0 : n, 0);
  for (NodeId t : targets) is_target[t] = 1;
  size_t targets_remaining = targets.size();

  MinHeap heap;
  tree.dist[source] = 0.0;
  heap.push(HeapEntry{0.0, source});

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const NodeId u = top.node;
    if (settled[u]) continue;
    settled[u] = 1;

    if (targets_remaining > 0 && is_target[u]) {
      if (--targets_remaining == 0) break;
    }

    const double du = tree.dist[u];
    for (const AdjEntry& a : graph.Neighbors(u)) {
      if (settled[a.neighbor]) continue;
      const double c = costs[a.edge];
      assert(c >= 0.0 && "Dijkstra requires non-negative costs");
      const double nd = du + c;
      if (nd < tree.dist[a.neighbor]) {
        tree.dist[a.neighbor] = nd;
        tree.parent_node[a.neighbor] = u;
        tree.parent_edge[a.neighbor] = a.edge;
        heap.push(HeapEntry{nd, a.neighbor});
      }
    }
  }
  return tree;
}

VoronoiResult MultiSourceDijkstra(const KnowledgeGraph& graph,
                                  const std::vector<double>& costs,
                                  const std::vector<NodeId>& sources) {
  assert(costs.size() >= graph.num_edges());
  const size_t n = graph.num_nodes();
  VoronoiResult out;
  out.dist.assign(n, kInfDistance);
  out.nearest_source.assign(n, kInvalidNode);
  out.parent_node.assign(n, kInvalidNode);
  out.parent_edge.assign(n, kInvalidEdge);

  std::vector<char> settled(n, 0);
  MinHeap heap;
  for (NodeId s : sources) {
    out.dist[s] = 0.0;
    out.nearest_source[s] = s;
    heap.push(HeapEntry{0.0, s});
  }

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const NodeId u = top.node;
    if (settled[u]) continue;
    settled[u] = 1;

    const double du = out.dist[u];
    for (const AdjEntry& a : graph.Neighbors(u)) {
      if (settled[a.neighbor]) continue;
      const double c = costs[a.edge];
      assert(c >= 0.0 && "Dijkstra requires non-negative costs");
      const double nd = du + c;
      if (nd < out.dist[a.neighbor]) {
        out.dist[a.neighbor] = nd;
        out.nearest_source[a.neighbor] = out.nearest_source[u];
        out.parent_node[a.neighbor] = u;
        out.parent_edge[a.neighbor] = a.edge;
        heap.push(HeapEntry{nd, a.neighbor});
      }
    }
  }
  return out;
}

}  // namespace xsum::graph
