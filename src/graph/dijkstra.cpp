#include "graph/dijkstra.h"

#include <algorithm>
#include <cassert>

namespace xsum::graph {

Path ShortestPathTree::ExtractPath(NodeId target) const {
  Path path;
  if (target >= dist.size() || dist[target] == kInfDistance) return path;
  NodeId v = target;
  while (v != kInvalidNode) {
    path.nodes.push_back(v);
    if (parent_edge[v] != kInvalidEdge) path.edges.push_back(parent_edge[v]);
    v = parent_node[v];
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

void DijkstraInto(const CostView& costs, NodeId source,
                  std::span<const NodeId> targets, SearchWorkspace& ws) {
  assert(costs.valid());
  assert(costs.min_cost() >= 0.0 && "Dijkstra requires non-negative costs");
  const KnowledgeGraph& graph = costs.graph();
  ws.Begin(graph.num_nodes());

  size_t targets_remaining = 0;
  for (NodeId t : targets) {
    if (ws.Mark(t)) ++targets_remaining;
  }

  IndexedMinHeap& heap = ws.heap();
  ws.Relax(source, 0.0, kInvalidNode, kInvalidEdge);
  heap.PushOrDecrease(source, 0.0);

  while (!heap.Empty()) {
    const NodeId u = heap.PopMin();
    ws.SetSettled(u);

    if (targets_remaining > 0 && ws.marked(u)) {
      ws.Unmark(u);
      if (--targets_remaining == 0) break;
    }

    const double du = ws.dist(u);
    for (const CostSlot& s : costs.Neighbors(u)) {
      const double nd = du + s.cost;
      // No settled check: a settled neighbor's distance is final and
      // nd = du + cost >= du >= dist(neighbor), so the strict compare
      // already rejects it (the indexed heap re-admits nothing popped).
      if (nd < ws.dist(s.neighbor)) {
        ws.Relax(s.neighbor, nd, u, s.edge);
        heap.PushOrDecrease(s.neighbor, nd);
      }
    }
  }
}

Path ExtractPath(const SearchWorkspace& ws, NodeId target) {
  Path path;
  if (target >= ws.capacity() || !ws.reached(target)) return path;
  NodeId v = target;
  while (v != kInvalidNode) {
    path.nodes.push_back(v);
    if (ws.parent_edge(v) != kInvalidEdge) path.edges.push_back(ws.parent_edge(v));
    v = ws.parent_node(v);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

void AppendPathEdges(const SearchWorkspace& ws, NodeId target,
                     std::vector<EdgeId>* out) {
  if (target >= ws.capacity() || !ws.reached(target)) return;
  NodeId v = target;
  while (ws.parent_edge(v) != kInvalidEdge) {
    out->push_back(ws.parent_edge(v));
    v = ws.parent_node(v);
  }
}

ShortestPathTree Dijkstra(const KnowledgeGraph& graph,
                          const std::vector<double>& costs, NodeId source,
                          const std::vector<NodeId>& targets) {
  assert(costs.size() >= graph.num_edges());
  CostView view;
  view.Assign(graph, costs);
  SearchWorkspace ws;
  DijkstraInto(view, source, targets, ws);

  const size_t n = graph.num_nodes();
  ShortestPathTree tree;
  tree.source = source;
  tree.dist.resize(n);
  tree.parent_node.resize(n);
  tree.parent_edge.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    tree.dist[v] = ws.dist(v);
    tree.parent_node[v] = ws.parent_node(v);
    tree.parent_edge[v] = ws.parent_edge(v);
  }
  return tree;
}

void MultiSourceDijkstraInto(const CostView& costs,
                             std::span<const NodeId> sources,
                             SearchWorkspace& ws) {
  assert(costs.valid());
  assert(costs.min_cost() >= 0.0 && "Dijkstra requires non-negative costs");
  const KnowledgeGraph& graph = costs.graph();
  ws.Begin(graph.num_nodes());

  IndexedMinHeap& heap = ws.heap();
  for (NodeId s : sources) {
    ws.RelaxFrom(s, 0.0, kInvalidNode, kInvalidEdge, s);
    heap.PushOrDecrease(s, 0.0);
  }

  while (!heap.Empty()) {
    const NodeId u = heap.PopMin();
    ws.SetSettled(u);

    const double du = ws.dist(u);
    const NodeId su = ws.origin(u);
    for (const CostSlot& s : costs.Neighbors(u)) {
      const double nd = du + s.cost;
      // Settled neighbors are rejected by the strict compare (see the
      // single-source loop).
      if (nd < ws.dist(s.neighbor)) {
        ws.RelaxFrom(s.neighbor, nd, u, s.edge, su);
        heap.PushOrDecrease(s.neighbor, nd);
      }
    }
  }
}

VoronoiResult MultiSourceDijkstra(const KnowledgeGraph& graph,
                                  const std::vector<double>& costs,
                                  const std::vector<NodeId>& sources) {
  assert(costs.size() >= graph.num_edges());
  CostView view;
  view.Assign(graph, costs);
  SearchWorkspace ws;
  MultiSourceDijkstraInto(view, sources, ws);

  const size_t n = graph.num_nodes();
  VoronoiResult out;
  out.dist.resize(n);
  out.nearest_source.resize(n);
  out.parent_node.resize(n);
  out.parent_edge.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.dist[v] = ws.dist(v);
    out.nearest_source[v] = ws.origin(v);
    out.parent_node[v] = ws.parent_node(v);
    out.parent_edge[v] = ws.parent_edge(v);
  }
  return out;
}

}  // namespace xsum::graph
