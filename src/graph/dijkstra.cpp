#include "graph/dijkstra.h"

#include <algorithm>
#include <cassert>

namespace xsum::graph {

Path ShortestPathTree::ExtractPath(NodeId target) const {
  Path path;
  if (target >= dist.size() || dist[target] == kInfDistance) return path;
  NodeId v = target;
  while (v != kInvalidNode) {
    path.nodes.push_back(v);
    if (parent_edge[v] != kInvalidEdge) path.edges.push_back(parent_edge[v]);
    v = parent_node[v];
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

namespace {

/// Shared single-source loop; \p cost_at maps (adjacency slot, edge id) to
/// the edge cost, letting callers choose EdgeId-indexed or slot-indexed
/// storage without a branch in the scan.
template <typename CostAt>
void DijkstraIntoImpl(const KnowledgeGraph& graph, NodeId source,
                      std::span<const NodeId> targets, SearchWorkspace& ws,
                      const CostAt& cost_at) {
  ws.Begin(graph.num_nodes());

  size_t targets_remaining = 0;
  for (NodeId t : targets) {
    if (ws.Mark(t)) ++targets_remaining;
  }

  IndexedMinHeap& heap = ws.heap();
  ws.Relax(source, 0.0, kInvalidNode, kInvalidEdge);
  heap.PushOrDecrease(source, 0.0);

  while (!heap.Empty()) {
    const NodeId u = heap.PopMin();
    ws.SetSettled(u);

    if (targets_remaining > 0 && ws.marked(u)) {
      ws.Unmark(u);
      if (--targets_remaining == 0) break;
    }

    const double du = ws.dist(u);
    const std::span<const AdjEntry> nbrs = graph.Neighbors(u);
    const size_t slot_base = graph.adjacency_offset(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const AdjEntry& a = nbrs[k];
      const double c = cost_at(slot_base + k, a.edge);
      assert(c >= 0.0 && "Dijkstra requires non-negative costs");
      const double nd = du + c;
      // No settled check: a settled neighbor's distance is final and
      // nd = du + c >= du >= dist(neighbor), so the strict compare
      // already rejects it (the indexed heap re-admits nothing popped).
      if (nd < ws.dist(a.neighbor)) {
        ws.Relax(a.neighbor, nd, u, a.edge);
        heap.PushOrDecrease(a.neighbor, nd);
      }
    }
  }
}

}  // namespace

void DijkstraInto(const KnowledgeGraph& graph, const std::vector<double>& costs,
                  NodeId source, std::span<const NodeId> targets,
                  SearchWorkspace& ws) {
  assert(costs.size() >= graph.num_edges());
  DijkstraIntoImpl(graph, source, targets, ws,
                   [&costs](size_t, EdgeId e) { return costs[e]; });
}

void BuildAdjacencyCosts(const KnowledgeGraph& graph,
                         const std::vector<double>& costs,
                         std::vector<double>* adj_costs) {
  assert(costs.size() >= graph.num_edges());
  const std::span<const AdjEntry> adj = graph.adjacency();
  adj_costs->resize(adj.size());
  for (size_t slot = 0; slot < adj.size(); ++slot) {
    (*adj_costs)[slot] = costs[adj[slot].edge];
  }
}

void DijkstraIntoAdj(const KnowledgeGraph& graph,
                     std::span<const double> adj_costs, NodeId source,
                     std::span<const NodeId> targets, SearchWorkspace& ws) {
  assert(adj_costs.size() >= graph.adjacency().size());
  DijkstraIntoImpl(graph, source, targets, ws,
                   [adj_costs](size_t slot, EdgeId) { return adj_costs[slot]; });
}

Path ExtractPath(const SearchWorkspace& ws, NodeId target) {
  Path path;
  if (target >= ws.capacity() || !ws.reached(target)) return path;
  NodeId v = target;
  while (v != kInvalidNode) {
    path.nodes.push_back(v);
    if (ws.parent_edge(v) != kInvalidEdge) path.edges.push_back(ws.parent_edge(v));
    v = ws.parent_node(v);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

void AppendPathEdges(const SearchWorkspace& ws, NodeId target,
                     std::vector<EdgeId>* out) {
  if (target >= ws.capacity() || !ws.reached(target)) return;
  NodeId v = target;
  while (ws.parent_edge(v) != kInvalidEdge) {
    out->push_back(ws.parent_edge(v));
    v = ws.parent_node(v);
  }
}

ShortestPathTree Dijkstra(const KnowledgeGraph& graph,
                          const std::vector<double>& costs, NodeId source,
                          const std::vector<NodeId>& targets) {
  SearchWorkspace ws;
  DijkstraInto(graph, costs, source, targets, ws);

  const size_t n = graph.num_nodes();
  ShortestPathTree tree;
  tree.source = source;
  tree.dist.resize(n);
  tree.parent_node.resize(n);
  tree.parent_edge.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    tree.dist[v] = ws.dist(v);
    tree.parent_node[v] = ws.parent_node(v);
    tree.parent_edge[v] = ws.parent_edge(v);
  }
  return tree;
}

void MultiSourceDijkstraInto(const KnowledgeGraph& graph,
                             const std::vector<double>& costs,
                             std::span<const NodeId> sources,
                             SearchWorkspace& ws) {
  assert(costs.size() >= graph.num_edges());
  ws.Begin(graph.num_nodes());

  IndexedMinHeap& heap = ws.heap();
  for (NodeId s : sources) {
    ws.RelaxFrom(s, 0.0, kInvalidNode, kInvalidEdge, s);
    heap.PushOrDecrease(s, 0.0);
  }

  while (!heap.Empty()) {
    const NodeId u = heap.PopMin();
    ws.SetSettled(u);

    const double du = ws.dist(u);
    const NodeId su = ws.origin(u);
    for (const AdjEntry& a : graph.Neighbors(u)) {
      const double c = costs[a.edge];
      assert(c >= 0.0 && "Dijkstra requires non-negative costs");
      const double nd = du + c;
      // Settled neighbors are rejected by the strict compare (see the
      // single-source loop).
      if (nd < ws.dist(a.neighbor)) {
        ws.RelaxFrom(a.neighbor, nd, u, a.edge, su);
        heap.PushOrDecrease(a.neighbor, nd);
      }
    }
  }
}

VoronoiResult MultiSourceDijkstra(const KnowledgeGraph& graph,
                                  const std::vector<double>& costs,
                                  const std::vector<NodeId>& sources) {
  SearchWorkspace ws;
  MultiSourceDijkstraInto(graph, costs, sources, ws);

  const size_t n = graph.num_nodes();
  VoronoiResult out;
  out.dist.resize(n);
  out.nearest_source.resize(n);
  out.parent_node.resize(n);
  out.parent_edge.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.dist[v] = ws.dist(v);
    out.nearest_source[v] = ws.origin(v);
    out.parent_node[v] = ws.parent_node(v);
    out.parent_edge[v] = ws.parent_edge(v);
  }
  return out;
}

}  // namespace xsum::graph
