#include "service/snapshot_registry.h"

#include <utility>

namespace xsum::service {

uint64_t GraphSnapshotRegistry::Publish(
    std::shared_ptr<const data::RecGraph> graph) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_.version = next_version_++;
  current_.graph = std::move(graph);
  return current_.version;
}

uint64_t GraphSnapshotRegistry::Publish(data::RecGraph graph) {
  return Publish(
      std::make_shared<const data::RecGraph>(std::move(graph)));
}

GraphSnapshot GraphSnapshotRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

uint64_t GraphSnapshotRegistry::current_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_.version;
}

uint64_t GraphSnapshotRegistry::num_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_version_ - 1;
}

}  // namespace xsum::service
