#include "service/snapshot_registry.h"

#include <utility>

namespace xsum::service {

uint64_t GraphSnapshotRegistry::Publish(
    std::shared_ptr<const data::RecGraph> graph) {
  // Build the view holder outside the lock; the views themselves
  // materialize lazily on first use, so Publish stays O(1).
  std::shared_ptr<core::SharedCostViews> views;
  if (graph != nullptr) {
    views = std::make_shared<core::SharedCostViews>(*graph);
  }
  sync::WriterLock lock(mutex_);
  current_.version = next_version_++;
  current_.graph = std::move(graph);
  current_.views = std::move(views);
  return current_.version;
}

uint64_t GraphSnapshotRegistry::Publish(data::RecGraph graph) {
  return Publish(
      std::make_shared<const data::RecGraph>(std::move(graph)));
}

GraphSnapshot GraphSnapshotRegistry::Current() const {
  sync::ReaderLock lock(mutex_);
  return current_;
}

uint64_t GraphSnapshotRegistry::current_version() const {
  sync::ReaderLock lock(mutex_);
  return current_.version;
}

uint64_t GraphSnapshotRegistry::num_published() const {
  sync::ReaderLock lock(mutex_);
  return next_version_ - 1;
}

}  // namespace xsum::service
