/// \file handler.h
/// \brief `service::SummaryHandler` — the transport-facing edge of the
/// summary service (DESIGN.md §6): translates JSON requests into
/// `SummaryService::Summarize` calls and renders summaries and stats back
/// as JSON.
///
/// The handler is deliberately transport-agnostic: it consumes
/// `net::HttpRequest` values and produces `net::HttpResponse` values but
/// never touches a socket, so the same object serves an `net::HttpServer`,
/// the shard router's in-process fallback, the `oneshot` CLI mode the CI
/// smoke test diffs against, and the in-process arm of `bench_net`. That
/// one-object-many-transports design is what makes the routing invariant
/// (routed bytes == in-process bytes) testable at all.
///
/// Wire protocol (all bodies JSON):
///   POST /summarize  {scenario, user|item, k, method, lambda?, cost_mode?,
///                     variant?, prev_k?}        -> summary document
///   GET  /stats                                  -> ServiceStats document
///   GET  /healthz                                -> liveness + version
///   GET  /readyz                                 -> readiness (503 while
///                                                   draining / unpublished)
///   POST /snapshot                               -> hot-swap publish
///   POST /drain      {wait_ms?}                  -> readiness off, wait out
///                                                   in-flight, export chains
///   POST /undrain                                -> readiness back on
///   POST /chains     {chains: [...]}             -> import a drained peer's
///                                                   chain checkpoints
///   GET  /metrics                                -> Prometheus text
///                                                   exposition (obs registry)
///   GET  /metrics.json                           -> the same snapshot in its
///                                                   lossless JSON form (what
///                                                   the router scrapes+merges)
///   GET  /evalstats                              -> mergeable evaluation
///                                                   sufficient statistics
///                                                   (eval/eval_stats.h; the
///                                                   router scrapes+merges
///                                                   these bit-exactly)
///   GET  /traces                                 -> recent request traces
///
/// `/summarize` responses contain only *deterministic* fields (subgraph,
/// terminals, anchors, version) — never timings — so two processes that
/// computed the same task return byte-identical bodies. Trace IDs
/// therefore ride exclusively in the `X-Xsum-Trace` header: adopted from
/// the request when present (the router propagates one ID across every
/// attempt), minted here otherwise, echoed on every response.

#ifndef XSUM_SERVICE_HANDLER_H_
#define XSUM_SERVICE_HANDLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scenario.h"
#include "core/summarizer.h"
#include "eval/eval_stats.h"
#include "net/http.h"
#include "net/json.h"
#include "service/service.h"
#include "util/status.h"

namespace xsum::service {

/// \brief The wire form of one summarization call: the task-fingerprint
/// fields a client supplies. The handler resolves them to a full
/// `core::SummaryTask` through the `TaskCatalog`.
struct SummaryRequest {
  core::Scenario scenario = core::Scenario::kUserCentric;
  /// The unit id: the user id for user-centric/user-group requests, the
  /// item id for item-centric/item-group ones.
  uint32_t unit = 0;
  /// Recommendation-prefix size (>= 1).
  int k = 1;
  core::SummaryMethod method = core::SummaryMethod::kSteiner;
  double lambda = 1.0;
  core::CostMode cost_mode = core::CostMode::kWeightAwareLog;
  core::SteinerOptions::Variant variant =
      core::SteinerOptions::Variant::kMehlhorn;
  /// Optional chain-predecessor hint: the same unit's k−1 (or any earlier
  /// k) whose cached checkpoint the service may extend incrementally.
  /// 0 = no hint.
  int prev_k = 0;
};

/// Parses the `/summarize` body. Unknown members are ignored (forward
/// compatibility); missing or ill-typed required members, unknown enum
/// strings, and out-of-range values are InvalidArgument.
Result<SummaryRequest> ParseSummaryRequest(const net::JsonValue& json);

/// Renders \p request back to its wire form (the inverse of
/// `ParseSummaryRequest`; used by the router benches and drivers).
net::JsonValue SummaryRequestToJson(const SummaryRequest& request);

/// The engine options a request resolves to.
core::SummarizerOptions RequestOptions(const SummaryRequest& request);

/// \brief Pre-resolved task universe: (scenario, unit, k) -> SummaryTask.
///
/// Task construction needs the recommender outputs (`core::UserRecs`,
/// audiences) which exist only at graph-build time, so the serving binary
/// resolves its unit universe once and the handler answers lookups from
/// this immutable catalog. Shard determinism: two processes built from
/// the same dataset env knobs construct identical catalogs, which is the
/// precondition for routed == in-process responses.
class TaskCatalog {
 public:
  /// Registers \p task under (scenario, unit, k); last insert wins.
  void Add(core::Scenario scenario, uint32_t unit, int k,
           core::SummaryTask task);

  /// Convenience: registers the user-centric tasks for every k-prefix
  /// 1..max_k of \p recs.
  void AddUserCentric(const data::RecGraph& rec_graph,
                      const core::UserRecs& recs, int max_k);

  /// Lookup; nullptr when the triple is unknown.
  const core::SummaryTask* Find(core::Scenario scenario, uint32_t unit,
                                int k) const;

  /// Distinct (scenario, unit, k) triples registered.
  size_t size() const { return tasks_.size(); }

  /// \brief One registered triple (enumeration for drivers and benches,
  /// in insertion order).
  struct Entry {
    core::Scenario scenario;
    uint32_t unit;
    int k;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  static uint64_t Key(core::Scenario scenario, uint32_t unit, int k) {
    return (static_cast<uint64_t>(scenario) << 56) |
           (static_cast<uint64_t>(unit) << 24) |
           (static_cast<uint64_t>(k) & 0xFFFFFF);
  }

  std::unordered_map<uint64_t, core::SummaryTask> tasks_;
  std::vector<Entry> entries_;
};

/// \brief HTTP-facing request handler over one `SummaryService`.
/// Thread-safe: called concurrently by every server worker.
class SummaryHandler {
 public:
  /// Publishes a new graph snapshot on POST /snapshot; wired by the
  /// serving binary (e.g. "rebuild with refreshed weights"). Returns the
  /// new version.
  using PublishFn = std::function<Result<uint64_t>()>;

  /// Appends process-level fields (server queue depth, shed count) into
  /// the `/stats` document; wired by the serving binary which owns the
  /// `net::HttpServer`.
  using ExtraStatsFn = std::function<void(net::JsonValue*)>;

  /// \p service and \p catalog must outlive the handler.
  SummaryHandler(SummaryService* service, const TaskCatalog* catalog,
                 PublishFn publish = nullptr);

  /// Full endpoint dispatch (the `net::HttpServer` handler). Adopts or
  /// mints the request's trace ID, echoes it as an `X-Xsum-Trace`
  /// response header, and records completed `/summarize` traces in
  /// `trace_log()`.
  net::HttpResponse Handle(const net::HttpRequest& request);

  /// The `/summarize` core without HTTP envelope parsing — the entry the
  /// shard router's local fallback, the oneshot CLI, and the in-process
  /// bench arm call directly. \p trace (optional) collects service spans.
  net::HttpResponse Summarize(const SummaryRequest& request,
                              obs::Trace* trace = nullptr);

  /// Draining: readiness reports 503 and the router stops selecting this
  /// shard, but in-flight and straggler `/summarize` requests still
  /// answer (they finish the byte-identical way, DESIGN.md §7.4).
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  void set_draining(bool draining) {
    draining_.store(draining, std::memory_order_relaxed);
  }

  void set_extra_stats(ExtraStatsFn fn) { extra_stats_ = std::move(fn); }

  /// Tracing toggle (the `XSUM_TRACE` env knob): off skips trace
  /// allocation, spans, the response header echo, and the trace log.
  bool trace_enabled() const {
    return trace_enabled_.load(std::memory_order_relaxed);
  }
  void set_trace_enabled(bool enabled) {
    trace_enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Recent completed `/summarize` traces on this endpoint.
  const obs::TraceLog& trace_log() const { return trace_log_; }

  /// Evaluation-statistics toggle (the `XSUM_EVAL_STATS` env knob): when
  /// on (the default), every served summary is evaluated against the
  /// snapshot it was computed on and folded into the mergeable
  /// accumulator `/evalstats` exposes.
  bool eval_enabled() const {
    return eval_enabled_.load(std::memory_order_relaxed);
  }
  void set_eval_enabled(bool enabled) {
    eval_enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// This endpoint's evaluation sufficient statistics (the `/evalstats`
  /// document before serialization; the router merges these).
  eval::EvalStatsSnapshot EvalSnapshot() const {
    return eval_stats_.Snapshot();
  }

  const TaskCatalog& catalog() const { return *catalog_; }
  SummaryService* service() const { return service_; }

 private:
  net::HttpResponse Dispatch(const net::HttpRequest& request,
                             obs::Trace* trace);
  net::HttpResponse HandleSummarizeBody(const std::string& body,
                                        obs::Trace* trace);
  net::HttpResponse HandleStats();
  net::HttpResponse HandleMetrics(bool json_form);
  net::HttpResponse HandleEvalStats();
  net::HttpResponse HandleTraces();
  net::HttpResponse HandleHealthz();
  net::HttpResponse HandleReadyz();
  net::HttpResponse HandleSnapshot();
  net::HttpResponse HandleDrain(const std::string& body);
  net::HttpResponse HandleUndrain();
  net::HttpResponse HandleChains(const std::string& body);

  SummaryService* service_;
  const TaskCatalog* catalog_;
  PublishFn publish_;
  ExtraStatsFn extra_stats_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> trace_enabled_{true};
  std::atomic<bool> eval_enabled_{true};
  obs::TraceLog trace_log_;
  eval::EvalAccumulator eval_stats_;
};

/// Renders \p summary as the deterministic `/summarize` response document
/// (sorted subgraph ids, no timing fields).
std::string SummaryToJson(const core::Summary& summary,
                          uint64_t snapshot_version);

/// Renders \p stats as the `/stats` document.
std::string ServiceStatsToJson(const ServiceStats& stats);

/// The `/stats` document as a JSON value (callers that merge additional
/// sections before dumping — the handler itself, the router's fleet
/// view).
net::JsonValue ServiceStatsToJsonValue(const ServiceStats& stats);

/// JSON error envelope `{"error": ...}` with the given HTTP status.
net::HttpResponse JsonError(int status, const std::string& message);

}  // namespace xsum::service

#endif  // XSUM_SERVICE_HANDLER_H_
