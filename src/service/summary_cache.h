/// \file summary_cache.h
/// \brief Sharded, task-keyed LRU cache of computed `Summary` objects — the
/// result store of the summary service layer (DESIGN.md §3).
///
/// The paper's workloads are inherently repetitive: the same user/group
/// task recurs across metric panels, λ values, and overlapping k-prefixes,
/// and a serving deployment sees the same hot users over and over (Zipf
/// traffic). Recomputing a Steiner/PCST summary costs graph searches; a
/// cache hit costs one hash and one shard-local list splice.
///
/// Keying. A cache key is the pair (graph snapshot version, 128-bit task
/// fingerprint). The fingerprint covers *everything* that determines the
/// summary bits: scenario, anchors, terminal set, explanation paths, |S|,
/// method, λ, cost mode, and the Steiner/PCST option blocks. Entries for a
/// superseded graph version are invalidated *by construction* — their keys
/// can never match a request carrying the new version — and age out under
/// LRU pressure; no scan ever walks the cache (see
/// `GraphSnapshotRegistry`).
///
/// Sharding. Keys are distributed over `num_shards` independent shards
/// (shard = fingerprint-low bits), each with its own mutex, LRU list, and
/// slice of the byte budget, so concurrent requests for different tasks do
/// not serialize on one lock. Values are `shared_ptr<const Summary>`:
/// readers share the stored object; eviction never invalidates a summary a
/// caller already holds.
///
/// Budget. `Options::max_bytes` bounds the *accounted* resident size — the
/// `SummaryFootprintBytes` of every cached value plus per-entry bookkeeping
/// — enforced per shard (budget / num_shards each); inserting past the
/// budget evicts least-recently-used entries first. A value larger than a
/// whole shard budget is simply not retained.

#ifndef XSUM_SERVICE_SUMMARY_CACHE_H_
#define XSUM_SERVICE_SUMMARY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/summarizer.h"
#include "util/sync.h"

namespace xsum::core {
struct SummaryChain;  // incremental.h
}  // namespace xsum::core

namespace xsum::service {

/// \brief Cache key: graph snapshot version + 128-bit task fingerprint.
struct CacheKey {
  uint64_t snapshot_version = 0;
  uint64_t fp_hi = 0;
  uint64_t fp_lo = 0;

  bool operator==(const CacheKey& other) const {
    return snapshot_version == other.snapshot_version &&
           fp_hi == other.fp_hi && fp_lo == other.fp_lo;
  }
};

/// \brief Hash functor for `CacheKey` (the fingerprint already is a hash).
struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    return static_cast<size_t>(key.fp_lo ^ (key.snapshot_version * 0x9E3779B97F4A7C15ULL));
  }
};

/// Computes the 128-bit fingerprint of (task, options): two independently
/// seeded SplitMix64 chains over the task's scenario/anchors/terminals/
/// paths/|S| and the full option block (method, λ bits, cost mode, Steiner
/// variant+cleanup, PCST policy/flags/slack). Collisions between distinct
/// tasks need both 64-bit lanes to collide simultaneously (~2^-128).
void FingerprintTask(const core::SummaryTask& task,
                     const core::SummarizerOptions& options, uint64_t* fp_hi,
                     uint64_t* fp_lo);

/// Accounted resident bytes of a cached summary (subgraph + paths +
/// terminal/anchor vectors + the struct itself).
size_t SummaryFootprintBytes(const core::Summary& summary);

/// \brief Aggregated cache counters (summed over shards).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;     ///< LRU evictions (budget pressure)
  uint64_t rejected = 0;      ///< values larger than a whole shard budget
  size_t entries = 0;         ///< currently resident entries
  size_t bytes = 0;           ///< currently accounted bytes
  size_t max_bytes = 0;       ///< configured budget

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief The sharded LRU cache. All methods are thread-safe.
class SummaryCache {
 public:
  struct Options {
    /// Total byte budget across all shards.
    size_t max_bytes = 64ull << 20;
    /// Shard count; rounded up to a power of two, min 1.
    size_t num_shards = 8;
  };

  SummaryCache();
  explicit SummaryCache(const Options& options);

  /// Returns the cached summary for \p key and marks it most-recently-used,
  /// or nullptr on miss.
  std::shared_ptr<const core::Summary> Lookup(const CacheKey& key);

  /// Returns the chain checkpoint stored alongside \p key's summary, or
  /// nullptr when the key is absent or was inserted without one. Does not
  /// touch the hit/miss counters or the LRU order: this is the internal
  /// assist the service uses to summarize a (task, k) miss incrementally
  /// from the (task, k−1) entry, not a cache answer.
  std::shared_ptr<const core::SummaryChain> LookupChain(const CacheKey& key);

  /// Inserts \p summary under \p key (no-op if the key already holds a
  /// summary — first writer wins, so concurrent single-flight losers
  /// don't churn the LRU list; a chain-only placeholder from a drain
  /// handoff *is* upgraded in place, keeping its imported chain when the
  /// writer brings none). Evicts LRU entries until the shard fits its
  /// budget slice. \p chain optionally attaches the summarization chain
  /// checkpoint that produced the summary (its footprint counts against
  /// the byte budget); \p route_key tags the entry with its routing
  /// fingerprint (`UnitFingerprint`) so a drain can hand the chain to
  /// the ring inheritor (0 = untagged, not exportable).
  void Insert(const CacheKey& key,
              std::shared_ptr<const core::Summary> summary,
              std::shared_ptr<const core::SummaryChain> chain = nullptr,
              uint64_t route_key = 0);

  /// Inserts \p chain as a summary-less placeholder entry (a drained
  /// peer's checkpoint import): `Lookup` misses it, `LookupChain` serves
  /// it, and the next computed summary for the key upgrades it in place.
  /// An existing entry that already carries a chain wins over the import.
  void InsertChainOnly(const CacheKey& key,
                       std::shared_ptr<const core::SummaryChain> chain,
                       uint64_t route_key);

  /// \brief One exportable chain checkpoint (drain handoff wire unit).
  struct ChainExport {
    CacheKey key;
    uint64_t route_key = 0;
    std::shared_ptr<const core::SummaryChain> chain;
  };

  /// Every resident entry that carries both a chain checkpoint and a
  /// route key — the state worth handing to ring inheritors on drain.
  std::vector<ChainExport> ExportChains() const;

  /// Drops every entry (counters are kept).
  void Clear();

  /// Aggregated counters over all shards.
  CacheStats stats() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    CacheKey key;
    /// Null for a chain-only placeholder (imported drain checkpoint).
    std::shared_ptr<const core::Summary> summary;
    /// Chain checkpoint of the chained-summarization path (may be null).
    std::shared_ptr<const core::SummaryChain> chain;
    /// `UnitFingerprint` of the request that produced the entry; 0 when
    /// unknown (entries inserted outside the routed path).
    uint64_t route_key = 0;
    size_t bytes = 0;
  };
  /// One independently locked LRU slice; front = most recently used.
  /// The shard mutex is a leaf capability: nothing else is ever acquired
  /// under it (DESIGN.md §9.3 lock hierarchy).
  struct Shard {
    mutable sync::Mutex mutex;
    std::list<Entry> lru XSUM_GUARDED_BY(mutex);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map
        XSUM_GUARDED_BY(mutex);
    size_t bytes XSUM_GUARDED_BY(mutex) = 0;
    uint64_t hits XSUM_GUARDED_BY(mutex) = 0;
    uint64_t misses XSUM_GUARDED_BY(mutex) = 0;
    uint64_t insertions XSUM_GUARDED_BY(mutex) = 0;
    uint64_t evictions XSUM_GUARDED_BY(mutex) = 0;
    uint64_t rejected XSUM_GUARDED_BY(mutex) = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    return *shards_[key.fp_lo & shard_mask_];
  }

  /// Budget check + LRU eviction + front insertion of \p entry (bytes
  /// already computed). Caller holds the shard lock and has removed any
  /// previous entry for the key.
  void EmplaceLocked(Shard& shard, Entry entry) XSUM_REQUIRES(shard.mutex);

  size_t max_bytes_;
  size_t shard_budget_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace xsum::service

#endif  // XSUM_SERVICE_SUMMARY_CACHE_H_
