#include "service/endpoint_health.h"

#include <algorithm>

namespace xsum::service {

bool EndpointHealth::Selectable() const {
  sync::MutexLock lock(mutex_);
  return !draining_ && state_ != State::kEjected;
}

EndpointHealth::State EndpointHealth::state() const {
  sync::MutexLock lock(mutex_);
  return state_;
}

bool EndpointHealth::draining() const {
  sync::MutexLock lock(mutex_);
  return draining_;
}

void EndpointHealth::set_draining(bool draining) {
  sync::MutexLock lock(mutex_);
  draining_ = draining;
}

bool EndpointHealth::RecordSuccess(double latency_ms) {
  sync::MutexLock lock(mutex_);
  const bool reinstated = state_ == State::kEjected;
  state_ = State::kHealthy;
  failures_ = 0;
  backoff_ms_ = 0;
  ewma_ms_ = ewma_ms_ == 0.0
                 ? latency_ms
                 : (1.0 - options_.ewma_alpha) * ewma_ms_ +
                       options_.ewma_alpha * latency_ms;
  return reinstated;
}

bool EndpointHealth::RecordFailureLocked(TimePoint now) {
  ++failures_;
  if (state_ == State::kEjected) {
    // Already out: each further failure doubles the quiet period, so a
    // long-dead shard converges to one probe per max_backoff_ms.
    backoff_ms_ = std::min(options_.max_backoff_ms,
                           std::max(backoff_ms_, 1) * 2);
    ejected_until_ = now + std::chrono::milliseconds(backoff_ms_);
    return false;
  }
  if (failures_ >= options_.failure_threshold) {
    state_ = State::kEjected;
    backoff_ms_ = std::max(1, options_.base_backoff_ms);
    ejected_until_ = now + std::chrono::milliseconds(backoff_ms_);
    return true;
  }
  state_ = State::kSuspect;
  return false;
}

bool EndpointHealth::RecordFailure(TimePoint now) {
  sync::MutexLock lock(mutex_);
  return RecordFailureLocked(now);
}

bool EndpointHealth::ShouldProbe(TimePoint now,
                                 int liveness_interval_ms) const {
  sync::MutexLock lock(mutex_);
  if (draining_) return false;
  if (state_ == State::kEjected) return now >= ejected_until_;
  if (liveness_interval_ms <= 0) return false;
  return now - last_probe_ >= std::chrono::milliseconds(liveness_interval_ms);
}

bool EndpointHealth::OnProbeResult(bool ok, TimePoint now) {
  sync::MutexLock lock(mutex_);
  last_probe_ = now;
  if (ok) {
    const bool reinstated = state_ == State::kEjected;
    state_ = State::kHealthy;
    failures_ = 0;
    backoff_ms_ = 0;
    return reinstated;
  }
  RecordFailureLocked(now);
  return false;
}

double EndpointHealth::ewma_ms() const {
  sync::MutexLock lock(mutex_);
  return ewma_ms_;
}

int EndpointHealth::consecutive_failures() const {
  sync::MutexLock lock(mutex_);
  return failures_;
}

EndpointHealth::Snapshot EndpointHealth::snapshot() const {
  sync::MutexLock lock(mutex_);
  Snapshot snap;
  snap.state = state_;
  snap.draining = draining_;
  snap.consecutive_failures = failures_;
  snap.ewma_ms = ewma_ms_;
  return snap;
}

const char* EndpointStateName(EndpointHealth::State state) {
  switch (state) {
    case EndpointHealth::State::kHealthy:
      return "healthy";
    case EndpointHealth::State::kSuspect:
      return "suspect";
    case EndpointHealth::State::kEjected:
      return "ejected";
  }
  return "healthy";
}

}  // namespace xsum::service
