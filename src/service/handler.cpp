#include "service/handler.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "net/http_server.h"
#include "obs/trace.h"
#include "service/chain_transfer.h"
#include "service/shard_router.h"
#include "util/timer.h"

namespace xsum::service {

namespace {

Status ParseScenario(const std::string& s, core::Scenario* out) {
  if (s == "user-centric") {
    *out = core::Scenario::kUserCentric;
  } else if (s == "item-centric") {
    *out = core::Scenario::kItemCentric;
  } else if (s == "user-group") {
    *out = core::Scenario::kUserGroup;
  } else if (s == "item-group") {
    *out = core::Scenario::kItemGroup;
  } else {
    return Status::InvalidArgument("unknown scenario: " + s);
  }
  return Status::OK();
}

Status ParseMethod(const std::string& s, core::SummaryMethod* out) {
  if (s == "baseline") {
    *out = core::SummaryMethod::kBaseline;
  } else if (s == "ST") {
    *out = core::SummaryMethod::kSteiner;
  } else if (s == "PCST") {
    *out = core::SummaryMethod::kPcst;
  } else {
    return Status::InvalidArgument("unknown method: " + s);
  }
  return Status::OK();
}

Status ParseCostMode(const std::string& s, core::CostMode* out) {
  if (s == "log") {
    *out = core::CostMode::kWeightAwareLog;
  } else if (s == "linear") {
    *out = core::CostMode::kWeightAware;
  } else if (s == "unit") {
    *out = core::CostMode::kUnit;
  } else {
    return Status::InvalidArgument("unknown cost_mode: " + s);
  }
  return Status::OK();
}

Status ParseVariant(const std::string& s,
                    core::SteinerOptions::Variant* out) {
  if (s == "kmb") {
    *out = core::SteinerOptions::Variant::kKmb;
  } else if (s == "mehlhorn") {
    *out = core::SteinerOptions::Variant::kMehlhorn;
  } else {
    return Status::InvalidArgument("unknown variant: " + s);
  }
  return Status::OK();
}

const char* CostModeToString(core::CostMode mode) {
  switch (mode) {
    case core::CostMode::kWeightAwareLog:
      return "log";
    case core::CostMode::kWeightAware:
      return "linear";
    case core::CostMode::kUnit:
      return "unit";
  }
  return "log";
}

const char* VariantToString(core::SteinerOptions::Variant variant) {
  return variant == core::SteinerOptions::Variant::kKmb ? "kmb" : "mehlhorn";
}

bool UnitIsUser(core::Scenario scenario) {
  return scenario == core::Scenario::kUserCentric ||
         scenario == core::Scenario::kUserGroup;
}

template <typename T>
net::JsonValue IdArray(const std::vector<T>& ids) {
  net::JsonValue array = net::JsonValue::Array();
  for (const T id : ids) {
    array.Append(net::JsonValue(static_cast<int64_t>(id)));
  }
  return array;
}

}  // namespace

Result<SummaryRequest> ParseSummaryRequest(const net::JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  SummaryRequest request;
  if (const net::JsonValue* scenario = json.Find("scenario")) {
    if (!scenario->is_string()) {
      return Status::InvalidArgument("scenario must be a string");
    }
    XSUM_RETURN_NOT_OK(ParseScenario(scenario->AsString(), &request.scenario));
  }
  const char* unit_key = UnitIsUser(request.scenario) ? "user" : "item";
  const net::JsonValue* unit = json.Find(unit_key);
  if (unit == nullptr || !unit->is_int() || unit->AsInt() < 0) {
    return Status::InvalidArgument(
        std::string("request requires a non-negative integer '") + unit_key +
        "'");
  }
  request.unit = static_cast<uint32_t>(unit->AsInt());
  const net::JsonValue* k = json.Find("k");
  if (k == nullptr || !k->is_int() || k->AsInt() < 1 || k->AsInt() > 1000) {
    return Status::InvalidArgument("k must be an integer in [1, 1000]");
  }
  request.k = static_cast<int>(k->AsInt());
  if (const net::JsonValue* method = json.Find("method")) {
    if (!method->is_string()) {
      return Status::InvalidArgument("method must be a string");
    }
    XSUM_RETURN_NOT_OK(ParseMethod(method->AsString(), &request.method));
  }
  if (const net::JsonValue* lambda = json.Find("lambda")) {
    if (!lambda->is_number()) {
      return Status::InvalidArgument("lambda must be a number");
    }
    request.lambda = lambda->AsDouble();
    if (request.lambda < 0.0) {
      return Status::InvalidArgument("lambda must be >= 0");
    }
  }
  if (const net::JsonValue* mode = json.Find("cost_mode")) {
    if (!mode->is_string()) {
      return Status::InvalidArgument("cost_mode must be a string");
    }
    XSUM_RETURN_NOT_OK(ParseCostMode(mode->AsString(), &request.cost_mode));
  }
  if (const net::JsonValue* variant = json.Find("variant")) {
    if (!variant->is_string()) {
      return Status::InvalidArgument("variant must be a string");
    }
    XSUM_RETURN_NOT_OK(ParseVariant(variant->AsString(), &request.variant));
  }
  if (const net::JsonValue* prev = json.Find("prev_k")) {
    if (!prev->is_int() || prev->AsInt() < 0 || prev->AsInt() >= request.k) {
      return Status::InvalidArgument("prev_k must be an integer in [0, k)");
    }
    request.prev_k = static_cast<int>(prev->AsInt());
  }
  return request;
}

net::JsonValue SummaryRequestToJson(const SummaryRequest& request) {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("scenario", core::ScenarioToString(request.scenario));
  json.Set(UnitIsUser(request.scenario) ? "user" : "item",
           static_cast<int64_t>(request.unit));
  json.Set("k", static_cast<int64_t>(request.k));
  json.Set("method", core::SummaryMethodToString(request.method));
  json.Set("lambda", request.lambda);
  json.Set("cost_mode", CostModeToString(request.cost_mode));
  json.Set("variant", VariantToString(request.variant));
  if (request.prev_k > 0) {
    json.Set("prev_k", static_cast<int64_t>(request.prev_k));
  }
  return json;
}

core::SummarizerOptions RequestOptions(const SummaryRequest& request) {
  core::SummarizerOptions options;
  options.method = request.method;
  options.lambda = request.lambda;
  options.cost_mode = request.cost_mode;
  options.steiner.variant = request.variant;
  return options;
}

void TaskCatalog::Add(core::Scenario scenario, uint32_t unit, int k,
                      core::SummaryTask task) {
  const uint64_t key = Key(scenario, unit, k);
  if (tasks_.find(key) == tasks_.end()) {
    entries_.push_back(Entry{scenario, unit, k});
  }
  tasks_[key] = std::move(task);
}

void TaskCatalog::AddUserCentric(const data::RecGraph& rec_graph,
                                 const core::UserRecs& recs, int max_k) {
  for (int k = 1; k <= max_k; ++k) {
    Add(core::Scenario::kUserCentric, recs.user, k,
        core::MakeUserCentricTask(rec_graph, recs, k));
  }
}

const core::SummaryTask* TaskCatalog::Find(core::Scenario scenario,
                                           uint32_t unit, int k) const {
  const auto it = tasks_.find(Key(scenario, unit, k));
  return it == tasks_.end() ? nullptr : &it->second;
}

SummaryHandler::SummaryHandler(SummaryService* service,
                               const TaskCatalog* catalog, PublishFn publish)
    : service_(service), catalog_(catalog), publish_(std::move(publish)) {}

net::HttpResponse JsonError(int status, const std::string& message) {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("error", message);
  net::HttpResponse response;
  response.status = status;
  response.body = json.Dump();
  return response;
}

net::HttpResponse SummaryHandler::Handle(const net::HttpRequest& request) {
  if (!trace_enabled()) return Dispatch(request, nullptr);
  // Adopt the caller's trace ID (the router propagates one ID across
  // every replica attempt) or mint a fresh one at this edge.
  uint64_t trace_id = 0;
  if (const std::string* header =
          request.FindHeader(obs::kTraceHeaderLower)) {
    obs::ParseTraceId(*header, &trace_id);
  }
  if (trace_id == 0) trace_id = obs::NewTraceId();
  obs::Trace trace(trace_id);
  // The server stamps how long the connection queued for a worker; that
  // wait happened *before* the trace was born, so anchor it at 0.
  if (const std::string* wait = request.FindHeader(net::kQueueWaitHeader)) {
    trace.AddSpan("queue.wait", 0.0, std::strtod(wait->c_str(), nullptr));
  }
  net::HttpResponse response = Dispatch(request, &trace);
  response.extra_headers.emplace_back(obs::kTraceHeader,
                                      obs::TraceIdToHex(trace_id));
  // Only request traces are worth keeping; health probes and metric
  // scrapes would churn the bounded log into noise.
  if (request.target == "/summarize") trace_log_.Record(trace);
  return response;
}

net::HttpResponse SummaryHandler::Dispatch(const net::HttpRequest& request,
                                           obs::Trace* trace) {
  if (request.target == "/summarize") {
    if (request.method != "POST") {
      return JsonError(405, "/summarize requires POST");
    }
    return HandleSummarizeBody(request.body, trace);
  }
  if (request.target == "/stats") {
    if (request.method != "GET") return JsonError(405, "/stats requires GET");
    return HandleStats();
  }
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return JsonError(405, "/healthz requires GET");
    }
    return HandleHealthz();
  }
  if (request.target == "/readyz") {
    if (request.method != "GET") {
      return JsonError(405, "/readyz requires GET");
    }
    return HandleReadyz();
  }
  if (request.target == "/snapshot") {
    if (request.method != "POST") {
      return JsonError(405, "/snapshot requires POST");
    }
    return HandleSnapshot();
  }
  if (request.target == "/drain") {
    if (request.method != "POST") {
      return JsonError(405, "/drain requires POST");
    }
    return HandleDrain(request.body);
  }
  if (request.target == "/undrain") {
    if (request.method != "POST") {
      return JsonError(405, "/undrain requires POST");
    }
    return HandleUndrain();
  }
  if (request.target == "/chains") {
    if (request.method != "POST") {
      return JsonError(405, "/chains requires POST");
    }
    return HandleChains(request.body);
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return JsonError(405, "/metrics requires GET");
    }
    return HandleMetrics(/*json_form=*/false);
  }
  if (request.target == "/metrics.json") {
    if (request.method != "GET") {
      return JsonError(405, "/metrics.json requires GET");
    }
    return HandleMetrics(/*json_form=*/true);
  }
  if (request.target == "/evalstats") {
    if (request.method != "GET") {
      return JsonError(405, "/evalstats requires GET");
    }
    return HandleEvalStats();
  }
  if (request.target == "/traces") {
    if (request.method != "GET") {
      return JsonError(405, "/traces requires GET");
    }
    return HandleTraces();
  }
  return JsonError(404, "unknown endpoint: " + request.target);
}

net::HttpResponse SummaryHandler::HandleSummarizeBody(const std::string& body,
                                                      obs::Trace* trace) {
  auto json = net::ParseJson(body);
  if (!json.ok()) {
    return JsonError(400, json.status().message());
  }
  auto request = ParseSummaryRequest(*json);
  if (!request.ok()) {
    return JsonError(400, request.status().message());
  }
  return Summarize(*request, trace);
}

net::HttpResponse SummaryHandler::Summarize(const SummaryRequest& request,
                                            obs::Trace* trace) {
  const core::SummaryTask* task =
      catalog_->Find(request.scenario, request.unit, request.k);
  if (task == nullptr) {
    return JsonError(404, "no task for this (scenario, unit, k)");
  }
  // A stale or unknown predecessor hint is dropped, not an error: hints
  // are a reuse opportunity, never a correctness input (DESIGN.md §5.3).
  const core::SummaryTask* predecessor =
      request.prev_k > 0
          ? catalog_->Find(request.scenario, request.unit, request.prev_k)
          : nullptr;
  // The version must be the one the request was *pinned* to, not a
  // registry read racing a concurrent /snapshot publish.
  uint64_t version = 0;
  const auto result =
      service_->Summarize(*task, RequestOptions(request), predecessor,
                          &version, UnitFingerprint(request), trace);
  if (!result.ok()) {
    // No published snapshot is a *readiness* condition, not a server bug:
    // the process answers 503 so routers fail over instead of ejecting it
    // for an application error.
    if (result.status().IsFailedPrecondition()) {
      net::HttpResponse response =
          JsonError(503, result.status().ToString());
      response.extra_headers.emplace_back("Retry-After", "1");
      return response;
    }
    return JsonError(500, result.status().ToString());
  }
  if (eval_enabled()) {
    // Evaluate against the snapshot the request was pinned to. A
    // concurrent /snapshot publish can move the registry between the
    // compute and this read; evaluating a summary against a *different*
    // graph would poison the fleet-merge bit-identity, so a version
    // mismatch is counted as a skip instead (itself a mergeable stat).
    const GraphSnapshot snap = service_->CurrentSnapshot();
    if (snap.valid() && snap.version == version) {
      eval_stats_.RecordSummary(*snap.graph, **result);
    } else {
      eval_stats_.RecordSkipped();
    }
  }
  net::HttpResponse response;
  response.body = SummaryToJson(**result, version);
  return response;
}

net::HttpResponse SummaryHandler::HandleEvalStats() {
  net::HttpResponse response;
  response.body = EvalSnapshot().ToJson().Dump();
  return response;
}

net::HttpResponse SummaryHandler::HandleStats() {
  net::JsonValue json = ServiceStatsToJsonValue(service_->Stats());
  json.Set("draining", draining());
  if (extra_stats_) extra_stats_(&json);
  net::HttpResponse response;
  response.body = json.Dump();
  return response;
}

net::HttpResponse SummaryHandler::HandleMetrics(bool json_form) {
  const obs::MetricsSnapshot snapshot = service_->Metrics();
  net::HttpResponse response;
  if (json_form) {
    response.body = snapshot.ToJson().Dump();
  } else {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = snapshot.PrometheusText();
  }
  return response;
}

net::HttpResponse SummaryHandler::HandleTraces() {
  net::HttpResponse response;
  response.body = trace_log_.ToJson().Dump();
  return response;
}

net::HttpResponse SummaryHandler::HandleHealthz() {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("status", "ok");
  json.Set("snapshot_version", service_->serving_version());
  json.Set("catalog_tasks", catalog_->size());
  net::HttpResponse response;
  response.body = json.Dump();
  return response;
}

net::HttpResponse SummaryHandler::HandleReadyz() {
  const uint64_t version = service_->serving_version();
  net::JsonValue json = net::JsonValue::Object();
  json.Set("snapshot_version", version);
  json.Set("draining", draining());
  net::HttpResponse response;
  if (draining()) {
    json.Set("status", "draining");
    response.status = 503;
    response.extra_headers.emplace_back("Retry-After", "1");
  } else if (version == 0) {
    json.Set("status", "no snapshot published");
    response.status = 503;
    response.extra_headers.emplace_back("Retry-After", "1");
  } else {
    json.Set("status", "ready");
  }
  response.body = json.Dump();
  return response;
}

net::HttpResponse SummaryHandler::HandleDrain(const std::string& body) {
  int wait_ms = 2000;
  if (!body.empty()) {
    auto json = net::ParseJson(body);
    if (!json.ok()) return JsonError(400, json.status().message());
    if (const net::JsonValue* wait = json->Find("wait_ms")) {
      if (!wait->is_int() || wait->AsInt() < 0 || wait->AsInt() > 60000) {
        return JsonError(400, "wait_ms must be an integer in [0, 60000]");
      }
      wait_ms = static_cast<int>(wait->AsInt());
    }
  }
  // Flip readiness off first so the router (and its probes) stop sending
  // new work here, then wait out requests already inside the service.
  // The wait is bounded: a straggler past the budget still finishes and
  // answers correctly — it just races the export, and a checkpoint it
  // writes after the export is simply not handed off.
  set_draining(true);
  WallTimer timer;
  timer.Start();
  while (service_->in_flight() > 0 && timer.ElapsedMillis() < wait_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  net::JsonValue chains = net::JsonValue::Array();
  for (const SummaryCache::ChainExport& entry : service_->ExportChains()) {
    chains.Append(ChainCheckpointToJson(entry));
  }
  net::JsonValue json = net::JsonValue::Object();
  json.Set("draining", true);
  json.Set("in_flight", service_->in_flight());
  json.Set("chains", std::move(chains));
  net::HttpResponse response;
  response.body = json.Dump();
  return response;
}

net::HttpResponse SummaryHandler::HandleUndrain() {
  set_draining(false);
  net::JsonValue json = net::JsonValue::Object();
  json.Set("draining", false);
  net::HttpResponse response;
  response.body = json.Dump();
  return response;
}

net::HttpResponse SummaryHandler::HandleChains(const std::string& body) {
  auto json = net::ParseJson(body);
  if (!json.ok()) return JsonError(400, json.status().message());
  if (!json->is_object()) {
    return JsonError(400, "/chains body must be a JSON object");
  }
  const net::JsonValue* chains = json->Find("chains");
  if (chains == nullptr || !chains->is_array()) {
    return JsonError(400, "/chains requires a 'chains' array");
  }
  // Imports are best-effort per entry: a checkpoint recorded under a
  // different snapshot version (or malformed) is skipped, never fatal —
  // the unit it covered just computes from scratch on its first miss.
  int64_t imported = 0;
  int64_t skipped = 0;
  for (const net::JsonValue& entry : chains->items()) {
    auto checkpoint = ChainCheckpointFromJson(entry);
    if (!checkpoint.ok()) {
      ++skipped;
      continue;
    }
    const Status status =
        service_->ImportChain(checkpoint->key, checkpoint->route_key,
                              std::move(checkpoint->chain));
    if (status.ok()) {
      ++imported;
    } else {
      ++skipped;
    }
  }
  net::JsonValue out = net::JsonValue::Object();
  out.Set("imported", imported);
  out.Set("skipped", skipped);
  net::HttpResponse response;
  response.body = out.Dump();
  return response;
}

net::HttpResponse SummaryHandler::HandleSnapshot() {
  if (!publish_) {
    return JsonError(503, "no snapshot publisher configured");
  }
  const auto version = publish_();
  if (!version.ok()) {
    return JsonError(500, version.status().ToString());
  }
  net::JsonValue json = net::JsonValue::Object();
  json.Set("snapshot_version", *version);
  net::HttpResponse response;
  response.body = json.Dump();
  return response;
}

std::string SummaryToJson(const core::Summary& summary,
                          uint64_t snapshot_version) {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("snapshot_version", snapshot_version);
  json.Set("scenario", core::ScenarioToString(summary.scenario));
  json.Set("method", core::SummaryMethodToString(summary.method));
  json.Set("anchors", IdArray(summary.anchors));
  json.Set("terminals", IdArray(summary.terminals));
  json.Set("unreached_terminals", IdArray(summary.unreached_terminals));
  json.Set("num_nodes", summary.subgraph.num_nodes());
  json.Set("num_edges", summary.subgraph.num_edges());
  json.Set("nodes", IdArray(summary.subgraph.nodes()));
  json.Set("edges", IdArray(summary.subgraph.edges()));
  return json.Dump();
}

std::string ServiceStatsToJson(const ServiceStats& stats) {
  return ServiceStatsToJsonValue(stats).Dump();
}

net::JsonValue ServiceStatsToJsonValue(const ServiceStats& stats) {
  net::JsonValue json = net::JsonValue::Object();
  json.Set("requests", stats.requests);
  json.Set("computed", stats.computed);
  json.Set("incremental", stats.incremental);
  json.Set("coalesced", stats.coalesced);
  json.Set("errors", stats.errors);
  json.Set("snapshot_swaps", stats.snapshot_swaps);
  json.Set("snapshot_version", stats.snapshot_version);
  json.Set("chains_imported", stats.chains_imported);
  json.Set("in_flight", stats.in_flight);
  json.Set("uptime_seconds", stats.uptime_seconds);
  json.Set("qps", stats.qps);
  json.Set("mean_ms", stats.mean_ms);
  json.Set("p50_ms", stats.p50_ms);
  json.Set("p99_ms", stats.p99_ms);
  net::JsonValue cache = net::JsonValue::Object();
  cache.Set("hits", stats.cache.hits);
  cache.Set("misses", stats.cache.misses);
  cache.Set("hit_rate", stats.cache.HitRate());
  cache.Set("insertions", stats.cache.insertions);
  cache.Set("evictions", stats.cache.evictions);
  cache.Set("rejected", stats.cache.rejected);
  cache.Set("entries", stats.cache.entries);
  cache.Set("bytes", stats.cache.bytes);
  cache.Set("max_bytes", stats.cache.max_bytes);
  json.Set("cache", std::move(cache));
  return json;
}

}  // namespace xsum::service
