#include "service/chain_transfer.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

namespace xsum::service {

namespace {

std::string ToHex(uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  if (value == 0) return "0";
  char buffer[16];
  int i = 16;
  while (value != 0) {
    buffer[--i] = kDigits[value & 0xF];
    value >>= 4;
  }
  return std::string(buffer + i, buffer + 16);
}

Result<uint64_t> FromHex(const net::JsonValue* value, const char* what) {
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a hex string");
  }
  const std::string& s = value->AsString();
  if (s.empty() || s.size() > 16) {
    return Status::InvalidArgument(std::string(what) + " hex out of range");
  }
  uint64_t out = 0;
  for (char c : s) {
    uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return Status::InvalidArgument(std::string(what) +
                                     " has a non-hex digit");
    }
    out = (out << 4) | digit;
  }
  return out;
}

Result<int64_t> GetInt(const net::JsonValue& json, const char* key,
                       int64_t min_value, int64_t max_value) {
  const net::JsonValue* value = json.Find(key);
  if (value == nullptr || !value->is_int()) {
    return Status::InvalidArgument(std::string("chain checkpoint: '") + key +
                                   "' must be an integer");
  }
  const int64_t v = value->AsInt();
  if (v < min_value || v > max_value) {
    return Status::InvalidArgument(std::string("chain checkpoint: '") + key +
                                   "' out of range");
  }
  return v;
}

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

net::JsonValue ChainCheckpointToJson(const SummaryCache::ChainExport& entry) {
  const core::SummaryChain& chain = *entry.chain;
  net::JsonValue json = net::JsonValue::Object();
  json.Set("v", kChainWireVersion);
  json.Set("snapshot_version",
           static_cast<int64_t>(entry.key.snapshot_version));
  json.Set("fp_hi", ToHex(entry.key.fp_hi));
  json.Set("fp_lo", ToHex(entry.key.fp_lo));
  json.Set("route_key", ToHex(entry.route_key));
  json.Set("method", static_cast<int64_t>(chain.method));
  json.Set("variant", static_cast<int64_t>(chain.variant));
  json.Set("sig_kind", static_cast<int64_t>(chain.cost_sig.kind));
  json.Set("sig_mode", static_cast<int64_t>(chain.cost_sig.mode));
  net::JsonValue deviations = net::JsonValue::Array();
  for (const auto& [edge, bits] : chain.cost_sig.deviations) {
    net::JsonValue pair = net::JsonValue::Array();
    pair.Append(static_cast<int64_t>(edge));
    pair.Append(ToHex(bits));
    deviations.Append(std::move(pair));
  }
  json.Set("deviations", std::move(deviations));
  // The pair memo is an unordered map: sort by key so the wire bytes are
  // deterministic (two exports of the same checkpoint compare equal).
  std::vector<std::pair<uint64_t, core::KmbClosureStore::PairEntry>> pairs(
      chain.closure.pairs.begin(), chain.closure.pairs.end());
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  net::JsonValue pairs_json = net::JsonValue::Array();
  for (const auto& [pair_key, pair_entry] : pairs) {
    net::JsonValue row = net::JsonValue::Array();
    row.Append(ToHex(pair_key));
    row.Append(ToHex(DoubleBits(pair_entry.dist)));
    row.Append(static_cast<int64_t>(pair_entry.path_begin));
    row.Append(static_cast<int64_t>(pair_entry.path_end));
    pairs_json.Append(std::move(row));
  }
  json.Set("pairs", std::move(pairs_json));
  net::JsonValue arena = net::JsonValue::Array();
  for (const graph::EdgeId edge : chain.closure.arena) {
    arena.Append(static_cast<int64_t>(edge));
  }
  json.Set("arena", std::move(arena));
  json.Set("links", static_cast<int64_t>(chain.links));
  json.Set("resets", static_cast<int64_t>(chain.resets));
  return json;
}

Result<ChainCheckpoint> ChainCheckpointFromJson(const net::JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("chain checkpoint must be a JSON object");
  }
  const auto version = GetInt(json, "v", 1, kChainWireVersion);
  if (!version.ok()) return version.status();

  ChainCheckpoint out;
  const auto snapshot_version =
      GetInt(json, "snapshot_version", 1, INT64_MAX);
  if (!snapshot_version.ok()) return snapshot_version.status();
  out.key.snapshot_version = static_cast<uint64_t>(*snapshot_version);
  auto fp_hi = FromHex(json.Find("fp_hi"), "fp_hi");
  if (!fp_hi.ok()) return fp_hi.status();
  out.key.fp_hi = *fp_hi;
  auto fp_lo = FromHex(json.Find("fp_lo"), "fp_lo");
  if (!fp_lo.ok()) return fp_lo.status();
  out.key.fp_lo = *fp_lo;
  auto route_key = FromHex(json.Find("route_key"), "route_key");
  if (!route_key.ok()) return route_key.status();
  out.route_key = *route_key;

  const auto method = GetInt(json, "method", 0, 2);
  if (!method.ok()) return method.status();
  out.chain.method = static_cast<core::SummaryMethod>(*method);
  const auto variant = GetInt(json, "variant", 0, 1);
  if (!variant.ok()) return variant.status();
  out.chain.variant = static_cast<core::SteinerOptions::Variant>(*variant);
  const auto sig_kind = GetInt(json, "sig_kind", 0, 3);
  if (!sig_kind.ok()) return sig_kind.status();
  out.chain.cost_sig.kind =
      static_cast<core::CostSignature::Kind>(*sig_kind);
  const auto sig_mode = GetInt(json, "sig_mode", 0, 2);
  if (!sig_mode.ok()) return sig_mode.status();
  out.chain.cost_sig.mode = static_cast<core::CostMode>(*sig_mode);

  const net::JsonValue* deviations = json.Find("deviations");
  if (deviations == nullptr || !deviations->is_array()) {
    return Status::InvalidArgument(
        "chain checkpoint: 'deviations' must be an array");
  }
  out.chain.cost_sig.deviations.reserve(deviations->items().size());
  for (const net::JsonValue& row : deviations->items()) {
    if (!row.is_array() || row.items().size() != 2 ||
        !row.items()[0].is_int() || row.items()[0].AsInt() < 0) {
      return Status::InvalidArgument(
          "chain checkpoint: bad deviation entry");
    }
    auto bits = FromHex(&row.items()[1], "deviation bits");
    if (!bits.ok()) return bits.status();
    out.chain.cost_sig.deviations.emplace_back(
        static_cast<graph::EdgeId>(row.items()[0].AsInt()), *bits);
  }

  const net::JsonValue* arena = json.Find("arena");
  if (arena == nullptr || !arena->is_array()) {
    return Status::InvalidArgument(
        "chain checkpoint: 'arena' must be an array");
  }
  out.chain.closure.arena.reserve(arena->items().size());
  for (const net::JsonValue& edge : arena->items()) {
    if (!edge.is_int() || edge.AsInt() < 0 || edge.AsInt() > UINT32_MAX) {
      return Status::InvalidArgument(
          "chain checkpoint: bad arena edge id");
    }
    out.chain.closure.arena.push_back(
        static_cast<graph::EdgeId>(edge.AsInt()));
  }

  const net::JsonValue* pairs = json.Find("pairs");
  if (pairs == nullptr || !pairs->is_array()) {
    return Status::InvalidArgument(
        "chain checkpoint: 'pairs' must be an array");
  }
  const int64_t arena_size =
      static_cast<int64_t>(out.chain.closure.arena.size());
  out.chain.closure.pairs.reserve(pairs->items().size());
  for (const net::JsonValue& row : pairs->items()) {
    if (!row.is_array() || row.items().size() != 4) {
      return Status::InvalidArgument("chain checkpoint: bad pair entry");
    }
    auto pair_key = FromHex(&row.items()[0], "pair key");
    if (!pair_key.ok()) return pair_key.status();
    auto dist_bits = FromHex(&row.items()[1], "pair dist bits");
    if (!dist_bits.ok()) return dist_bits.status();
    const net::JsonValue& begin = row.items()[2];
    const net::JsonValue& end = row.items()[3];
    // Span bounds are validated here, not trusted: an out-of-range span
    // would index past the arena on reuse.
    if (!begin.is_int() || !end.is_int() || begin.AsInt() < 0 ||
        end.AsInt() < begin.AsInt() || end.AsInt() > arena_size) {
      return Status::InvalidArgument(
          "chain checkpoint: pair span outside arena");
    }
    core::KmbClosureStore::PairEntry pair_entry;
    pair_entry.dist = BitsToDouble(*dist_bits);
    pair_entry.path_begin = static_cast<uint32_t>(begin.AsInt());
    pair_entry.path_end = static_cast<uint32_t>(end.AsInt());
    out.chain.closure.pairs.emplace(*pair_key, pair_entry);
  }

  const auto links = GetInt(json, "links", 0, INT64_MAX);
  if (!links.ok()) return links.status();
  out.chain.links = static_cast<size_t>(*links);
  const auto resets = GetInt(json, "resets", 0, INT64_MAX);
  if (!resets.ok()) return resets.status();
  out.chain.resets = static_cast<size_t>(*resets);

  out.chain.has_state = true;
  out.chain.closure.retain_trees = false;
  out.chain.graph = nullptr;  // ImportChain re-anchors to the local graph
  return out;
}

}  // namespace xsum::service
