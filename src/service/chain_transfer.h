/// \file chain_transfer.h
/// \brief JSON wire form of a §5 chain checkpoint — what a draining shard
/// exports and the ring inheritor imports (DESIGN.md §7.4).
///
/// A checkpoint is the compact (no retained trees) `core::SummaryChain`:
/// the cost signature that guards reuse, the KMB pair memo, and its path
/// arena. The wire form is JSON so it travels over the same `/drain` →
/// `/chains` POST path as every other fleet message; u64 values
/// (fingerprints, double bit patterns) are hex *strings* because the JSON
/// integer lane is int64.
///
/// The format is deliberately version-tagged and strictly validated on
/// import: a malformed or out-of-bounds document is rejected with
/// InvalidArgument, never trusted — checkpoints are an optimization, and
/// a dropped one only costs a from-scratch compute.

#ifndef XSUM_SERVICE_CHAIN_TRANSFER_H_
#define XSUM_SERVICE_CHAIN_TRANSFER_H_

#include <cstdint>

#include "core/incremental.h"
#include "net/json.h"
#include "service/summary_cache.h"
#include "util/status.h"

namespace xsum::service {

/// Current chain wire-format version.
inline constexpr int kChainWireVersion = 1;

/// \brief One parsed chain checkpoint: cache key, routing fingerprint,
/// and the chain payload (graph pointer unset — `ImportChain` re-anchors
/// it to the importing process's snapshot).
struct ChainCheckpoint {
  CacheKey key;
  uint64_t route_key = 0;
  core::SummaryChain chain;
};

/// Serializes one exported checkpoint. Deterministic: pair entries are
/// emitted in ascending pair-key order regardless of hash-map iteration.
net::JsonValue ChainCheckpointToJson(const SummaryCache::ChainExport& entry);

/// Parses and validates one checkpoint document: wire version, enum
/// ranges, and arena span bounds are all checked.
Result<ChainCheckpoint> ChainCheckpointFromJson(const net::JsonValue& json);

}  // namespace xsum::service

#endif  // XSUM_SERVICE_CHAIN_TRANSFER_H_
