/// \file service.h
/// \brief `SummaryService` — the request-serving front end over the batch
/// summarization engine (DESIGN.md §3).
///
/// The batch engine (`core::BatchSummarizer`) answers task *batches* from
/// one driver thread; a serving deployment instead sees a concurrent
/// stream of independent requests with a heavily repeated (Zipf) task mix.
/// The service adds the three serving layers on top:
///
///  1. **Result cache** — a sharded task-keyed LRU (`SummaryCache`); a hit
///     answers without touching the graph.
///  2. **Single-flight deduplication** — concurrent identical misses are
///     coalesced: one leader computes, followers block on the in-flight
///     entry and share its result, so a hot key never computes twice.
///  3. **Snapshot routing** — requests run against the current
///     `GraphSnapshotRegistry` snapshot and pin it for their duration;
///     publishing a new graph hot-swaps the serving state without
///     disturbing in-flight requests, and implicitly invalidates all
///     older-version cache entries (version is part of the key).
///
/// Misses borrow one of `num_workers` `SummarizeContext` slots (blocking
/// when all are busy), so steady-state serving allocates nothing beyond
/// the cached summaries themselves. `Stats()` exposes QPS, hit rate, and
/// p50/p99 latency for dashboards and the service bench.

#ifndef XSUM_SERVICE_SERVICE_H_
#define XSUM_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/batch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/snapshot_registry.h"
#include "service/summary_cache.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/timer.h"

namespace xsum::service {

/// \brief Service configuration.
struct ServiceOptions {
  /// Concurrent summarization slots (one reusable `SummarizeContext`
  /// each). Requests beyond this block until a slot frees.
  size_t num_workers = 1;
  /// Serve results from the cache (false = every request computes; the
  /// control arm of the service bench).
  bool enable_cache = true;
  /// Record latency histograms in the obs registry (false = counters
  /// only, no percentile data; the metrics-off control arm of the
  /// service bench that prices the instrumentation).
  bool enable_metrics = true;
  /// Micro-batching window in microseconds (0 = off, the default). When
  /// set, a cache-miss leader whose request is wave-eligible (ST/KMB, no
  /// usable chain predecessor) waits up to this long for concurrent
  /// eligible misses on the same (snapshot, options) and answers the whole
  /// group through one multi-query kernel wave
  /// (`core::BatchSummarizer::RunWaveWith`) on a single worker slot.
  /// Responses are bit-identical to unbatched computes; the window only
  /// trades a bounded latency wait for amortized CSR traversal. Surfaced
  /// as `XSUM_BATCH_WINDOW_US` by the serving binary and benches.
  int64_t batch_window_us = 0;
  /// Requests per wave at which the window closes early (leader included).
  /// Surfaced as `XSUM_BATCH_MAX`.
  size_t batch_max = 8;
  SummaryCache::Options cache;
};

/// \brief One observable service counter snapshot.
struct ServiceStats {
  uint64_t requests = 0;        ///< Summarize calls answered
  uint64_t computed = 0;        ///< answered by running the engine
  /// Computes that actually reused a (task, k−1) chain's closure rows
  /// (hints that reset the chain and ran from scratch are not counted).
  uint64_t incremental = 0;
  uint64_t coalesced = 0;       ///< answered by joining an in-flight leader
  uint64_t errors = 0;          ///< non-OK responses
  uint64_t snapshot_swaps = 0;  ///< serving-state rebuilds observed
  uint64_t snapshot_version = 0;
  /// Chain checkpoints accepted from a draining peer (`ImportChain`).
  uint64_t chains_imported = 0;
  /// Multi-query waves run by the micro-batching window (each occupies
  /// one worker slot regardless of its member count).
  uint64_t batch_waves = 0;
  /// Requests answered through a wave (leaders + joined members; their
  /// achieved occupancy distribution is `service_batch_occupancy`).
  uint64_t batch_requests = 0;
  /// Requests currently inside `Summarize` (gauge, not a counter) — the
  /// drain sequence waits for this to reach zero before exporting.
  int64_t in_flight = 0;
  CacheStats cache;
  double uptime_seconds = 0.0;
  double qps = 0.0;     ///< requests / uptime
  double mean_ms = 0.0; ///< mean response latency over all requests
  /// Percentiles over the full request history, read from the obs-layer
  /// log-bucketed histogram (`service_latency_ms`) — mergeable across
  /// shards, unlike the reservoir window they replaced. Well-defined for
  /// every history size: 0 before any traffic, the single sample when
  /// only one request has been served.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// \brief The serving façade. All public methods are thread-safe.
class SummaryService {
 public:
  /// \p registry must outlive the service and have a published snapshot
  /// before the first Summarize call.
  SummaryService(GraphSnapshotRegistry* registry,
                 const ServiceOptions& options = {});
  ~SummaryService();

  SummaryService(const SummaryService&) = delete;
  SummaryService& operator=(const SummaryService&) = delete;

  /// Answers one request: cache hit, coalesced wait, or fresh compute on
  /// the current graph snapshot. The returned summary is shared and
  /// immutable; it stays valid independent of cache eviction or snapshot
  /// swaps.
  ///
  /// \p predecessor optionally names the chain-predecessor task (the same
  /// unit at k−1, built by the k-sweep callers). On a cache miss the
  /// service consults the predecessor's cache entry and, when it carries a
  /// chain checkpoint, summarizes *incrementally* from it — reusing its
  /// metric-closure rows where provably safe (core/incremental.h). The
  /// answer is bit-identical with or without the hint; a wrong or stale
  /// hint degrades to a fresh compute.
  ///
  /// \p served_version, when non-null, receives the version of the
  /// snapshot this request was actually pinned to — which a concurrent
  /// Publish can make different from `serving_version()` read before or
  /// after the call. Responses that report a version (the §6 handler)
  /// must use this, not a registry re-read.
  /// \p route_key optionally tags the resulting cache entry with the
  /// request's routing fingerprint (`UnitFingerprint`), which is what
  /// lets a later drain hand this unit's chain checkpoint to the ring
  /// inheritor. 0 = untagged.
  /// \p trace, when non-null, receives spans for the request's cache
  /// lookup, single-flight wait, worker-slot wait, and kernel time.
  Result<std::shared_ptr<const core::Summary>> Summarize(
      const core::SummaryTask& task, const core::SummarizerOptions& options,
      const core::SummaryTask* predecessor = nullptr,
      uint64_t* served_version = nullptr, uint64_t route_key = 0,
      obs::Trace* trace = nullptr);

  /// Accepts one chain checkpoint exported by a draining peer: the chain
  /// is re-anchored to *this* process's current graph snapshot (all fleet
  /// processes build bit-identical graphs from the same env knobs and
  /// publish versions in lockstep, so closure rows recorded there are
  /// valid here — DESIGN.md §7) and stored as a summary-less cache entry
  /// that the next (task, k+1) miss extends incrementally.
  /// FailedPrecondition when no snapshot is published; InvalidArgument
  /// when \p key names a different snapshot version than the current one
  /// (stale checkpoints never cross versions).
  Status ImportChain(const CacheKey& key, uint64_t route_key,
                     core::SummaryChain chain);

  /// Every cached chain checkpoint with a route key — the drain export.
  std::vector<SummaryCache::ChainExport> ExportChains() const {
    return cache_.ExportChains();
  }

  /// Requests currently inside `Summarize`.
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Current counters.
  ServiceStats Stats() const;

  /// The service's live metrics registry. The serving binary hands this
  /// to its `net::HttpServer` too, so one process exposes one registry.
  obs::Registry* metrics_registry() { return &metrics_; }

  /// Mergeable snapshot of everything this process observes: registry
  /// histograms plus the ServiceStats counters and cache counters,
  /// overlaid under `service_*` / `cache_*` names. The router `+=`s these
  /// across shards into the fleet-wide `/metrics` view.
  obs::MetricsSnapshot Metrics() const;

  /// Cache counters only — no latency-lock contention, for callers that
  /// poll a single number (the evaluation runner's accessors).
  CacheStats cache_stats() const { return cache_.stats(); }

  /// Version the next request will be served on (observes the registry).
  uint64_t serving_version() const { return registry_->current_version(); }

  /// The registry's current snapshot, pinned by the returned copy (the
  /// handler's eval accumulation evaluates served summaries against it —
  /// and skips when a concurrent Publish made the served version differ).
  GraphSnapshot CurrentSnapshot() const { return registry_->Current(); }

  const ServiceOptions& options() const { return options_; }

 private:
  /// Everything tied to one graph version: the pinned snapshot, its
  /// engine, and the free-list of engine worker slots.
  struct ServingState {
    /// Immutable after construction; read without the slot lock.
    GraphSnapshot snapshot;
    std::unique_ptr<core::BatchSummarizer> engine;
    sync::Mutex mutex;
    std::condition_variable slot_cv;
    std::vector<size_t> free_workers XSUM_GUARDED_BY(mutex);
  };

  /// One in-flight computation; followers block on `cv` until `done`.
  struct Flight {
    sync::Mutex mutex;
    std::condition_variable cv;
    bool done XSUM_GUARDED_BY(mutex) = false;
    Status status XSUM_GUARDED_BY(mutex);
    std::shared_ptr<const core::Summary> summary XSUM_GUARDED_BY(mutex);
  };

  /// One open micro-batching window: the rendezvous where wave-eligible
  /// single-flight leaders meet. The first leader to open the group waits
  /// out the window (or until `batch_max` requests gathered) and computes
  /// the whole group as one `RunWaveWith` wave; joiners park on their own
  /// Flight exactly like single-flight followers. Keyed by
  /// (snapshot version, options fingerprint) so only requests that would
  /// produce view-compatible kernel queries ever share a wave.
  struct BatchGroup {
    /// A joined request: the leader publishes its result through the
    /// regular flight/cache machinery on its behalf. The task pointer
    /// stays valid because the joiner blocks until its flight is done.
    struct Member {
      const core::SummaryTask* task;
      CacheKey key;
      uint64_t route_key;
      std::shared_ptr<Flight> flight;
    };
    sync::Mutex mutex;
    std::condition_variable leader_cv;  ///< woken when the group fills
    /// No more joins (window elapsed).
    bool closed XSUM_GUARDED_BY(mutex) = false;
    /// Joiners (group leader excluded).
    std::vector<Member> members XSUM_GUARDED_BY(mutex);
  };

  /// Returns the serving state for the registry's current version,
  /// building (and hot-swapping to) a new one when the version moved.
  std::shared_ptr<ServingState> CurrentState();

  /// Leases a worker slot and runs the engine. \p prev_chain (may be null)
  /// seeds the chained summarization; \p out_chain (may be null) receives
  /// the checkpoint the step produced, for caching alongside the summary.
  Result<std::shared_ptr<const core::Summary>> ComputeOn(
      ServingState& state, const core::SummaryTask& task,
      const core::SummarizerOptions& options,
      const core::SummaryChain* prev_chain,
      std::shared_ptr<core::SummaryChain>* out_chain, obs::Trace* trace);

  /// Wave leader path: runs the leader's \p task plus every joined
  /// \p members request as one `RunWaveWith` wave on a single worker
  /// slot, then inserts each member's summary into the cache and
  /// publishes its flight. Returns the leader's own result (cached and
  /// published by the caller's common path); members are answered as a
  /// side effect. Wave results carry no chain checkpoints (checkpoints
  /// only accelerate later computes — responses are unaffected).
  Result<std::shared_ptr<const core::Summary>> ComputeWaveOn(
      ServingState& state, const core::SummaryTask& task,
      std::vector<BatchGroup::Member> members,
      const core::SummarizerOptions& options, obs::Trace* trace);

  void RecordLatency(double ms, bool error);

  GraphSnapshotRegistry* registry_;
  ServiceOptions options_;
  SummaryCache cache_;

  /// Lock order within the service (DESIGN.md §9.3): every acquisition
  /// is leaf-like — no service mutex is ever taken while holding another
  /// — but the declared order pins the permitted direction should a
  /// future change need to nest: state → flights → batches → stats.
  mutable sync::Mutex state_mutex_
      XSUM_ACQUIRED_BEFORE(flights_mutex_, batches_mutex_, stats_mutex_);
  /// Guards the *pointer*; a ServingState returned from CurrentState()
  /// is pinned by the shared_ptr copy and used lock-free (§9.4), its own
  /// slot free-list guarded by its member mutex.
  std::shared_ptr<ServingState> state_ XSUM_GUARDED_BY(state_mutex_);
  uint64_t snapshot_swaps_ XSUM_GUARDED_BY(state_mutex_) = 0;

  sync::Mutex flights_mutex_
      XSUM_ACQUIRED_BEFORE(batches_mutex_, stats_mutex_);
  std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> flights_
      XSUM_GUARDED_BY(flights_mutex_);

  /// Open micro-batching windows, keyed by (snapshot version, options
  /// fingerprint) — the CacheKey of an *empty* task under the request's
  /// options, which is exactly the equivalence class of requests whose
  /// kernel queries share one cost view. Entries live only while their
  /// window is open; the leader deregisters on close.
  sync::Mutex batches_mutex_ XSUM_ACQUIRED_BEFORE(stats_mutex_);
  std::unordered_map<CacheKey, std::shared_ptr<BatchGroup>, CacheKeyHash>
      batches_ XSUM_GUARDED_BY(batches_mutex_);

  /// Live metrics. The latency histogram is the percentile source of
  /// truth (PR 7): log-bucketed, constant memory, and — unlike the
  /// reservoir window it replaced — exactly mergeable across shards.
  obs::Registry metrics_;
  obs::Histogram* latency_hist_;    // service_latency_ms
  obs::Histogram* compute_hist_;    // service_compute_ms
  obs::Histogram* slot_wait_hist_;  // service_slot_wait_ms
  /// Achieved window occupancy (requests gathered per closed window,
  /// recorded once per window; 1 = the window expired with no joiners and
  /// fell back to a plain chain-recording compute). The log2 buckets are
  /// unit-agnostic — occupancy counts land in the low integer buckets
  /// exactly — so the shared histogram type merges across the fleet like
  /// every other registry histogram.
  obs::Histogram* batch_occupancy_hist_;  // service_batch_occupancy

  mutable sync::Mutex stats_mutex_;
  uint64_t requests_ XSUM_GUARDED_BY(stats_mutex_) = 0;
  uint64_t computed_ XSUM_GUARDED_BY(stats_mutex_) = 0;
  uint64_t incremental_ XSUM_GUARDED_BY(stats_mutex_) = 0;
  uint64_t coalesced_ XSUM_GUARDED_BY(stats_mutex_) = 0;
  uint64_t errors_ XSUM_GUARDED_BY(stats_mutex_) = 0;
  uint64_t chains_imported_ XSUM_GUARDED_BY(stats_mutex_) = 0;
  uint64_t batch_waves_ XSUM_GUARDED_BY(stats_mutex_) = 0;
  uint64_t batch_requests_ XSUM_GUARDED_BY(stats_mutex_) = 0;
  /// Lock-free (§9.4): polled by the drain sequence while requests run;
  /// a single word with no cross-field invariant.
  std::atomic<int64_t> in_flight_{0};
  WallTimer uptime_;
};

}  // namespace xsum::service

#endif  // XSUM_SERVICE_SERVICE_H_
