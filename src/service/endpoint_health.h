/// \file endpoint_health.h
/// \brief `service::EndpointHealth` — the per-endpoint circuit-breaker
/// state machine of the shard router (DESIGN.md §7).
///
/// States and transitions:
///
///       success                failure            failures >= threshold
///   kHealthy <────────────── kSuspect ──────────────────> kEjected
///       ^  \────────────────────^                             │
///       │        (first failure)                              │
///       └──────── probe 200 after backoff ────────────────────┘
///                 (probe failure doubles the backoff)
///
/// A *failure* is a transport-level event: refused connect, reset,
/// timeout, or a failed `/readyz` probe. HTTP error statuses are answers,
/// not failures. Ejection removes the endpoint from replica selection
/// (`Selectable()` == false); reinstatement is driven by the router's
/// probe thread, which re-checks an ejected endpoint after an
/// exponentially backed-off quiet period — so a dead shard costs one
/// probe per backoff window instead of one timeout per request.
///
/// Draining is an orthogonal, operator-driven flag: a draining endpoint
/// is healthy but must receive no new traffic (and is not probed), until
/// `/undrain` clears it.
///
/// All methods take an explicit `now` where time matters, so the state
/// machine is unit-testable without sleeping.

#ifndef XSUM_SERVICE_ENDPOINT_HEALTH_H_
#define XSUM_SERVICE_ENDPOINT_HEALTH_H_

#include <atomic>
#include <chrono>

#include "util/sync.h"

namespace xsum::service {

/// \brief Health and load state of one routed endpoint. Thread-safe.
class EndpointHealth {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  enum class State { kHealthy, kSuspect, kEjected };

  struct Options {
    /// Consecutive failures that eject the endpoint.
    int failure_threshold = 3;
    /// First post-ejection probe delay; doubles on every failed probe.
    int base_backoff_ms = 500;
    /// Backoff ceiling.
    int max_backoff_ms = 30000;
    /// EWMA smoothing factor for the latency estimate (weight of the
    /// newest sample).
    double ewma_alpha = 0.3;
  };

  EndpointHealth() : EndpointHealth(Options()) {}
  explicit EndpointHealth(Options options) : options_(options) {}

  /// Eligible for replica selection: not draining and not ejected.
  bool Selectable() const;

  State state() const;
  bool draining() const;
  void set_draining(bool draining);

  /// Records a successful round trip of \p latency_ms. Any state resets
  /// to healthy; returns true when this call reinstated an ejected
  /// endpoint (a request raced the probe thread and won).
  bool RecordSuccess(double latency_ms);

  /// Records a transport failure at \p now. Returns true when this call
  /// crossed the threshold and ejected the endpoint.
  bool RecordFailure(TimePoint now);

  /// True when the endpoint is due a health probe at \p now: ejected and
  /// past its backoff window, or healthy/suspect but unprobed for
  /// \p liveness_interval_ms (0 = no periodic liveness probing).
  /// Draining endpoints are never probed.
  bool ShouldProbe(TimePoint now, int liveness_interval_ms) const;

  /// Outcome of a probe issued at \p now: success reinstates an ejected
  /// endpoint (returns true iff it did); failure counts like a transport
  /// failure and doubles the ejection backoff.
  bool OnProbeResult(bool ok, TimePoint now);

  /// Smoothed round-trip latency estimate (0 before any sample).
  double ewma_ms() const;

  int consecutive_failures() const;

  /// \brief Point-in-time view of the whole state machine, taken under
  /// one lock acquisition.
  ///
  /// Reporting surfaces (`/stats` endpoint rows) must use this instead
  /// of chaining `state()` + `draining()` + `ewma_ms()` +
  /// `consecutive_failures()`: each of those reacquires the lock, so the
  /// chained reads can interleave with a concurrent transition and
  /// report an impossible row (e.g. `state=healthy` with
  /// `failures > 0` — see tests/service/endpoint_health_test.cpp,
  /// SnapshotIsInternallyConsistentUnderConcurrency).
  struct Snapshot {
    State state = State::kHealthy;
    bool draining = false;
    int consecutive_failures = 0;
    double ewma_ms = 0.0;
  };

  /// The consistent multi-field read for reporting paths.
  Snapshot snapshot() const;

  /// In-flight request gauge; maintained by the router around each
  /// forwarded attempt and read by load-aware replica selection.
  /// Intentionally lock-free (DESIGN.md §9.4): a single word whose only
  /// consumer — load-aware replica ranking — wants "current depth,
  /// roughly", and taking mutex_ on every forwarded request would put
  /// the breaker lock on the hot path twice.
  std::atomic<int> in_flight{0};

  /// The class capability, exposed for cross-component lock-order
  /// annotations only (DESIGN.md §9.3); never lock it directly.
  sync::Mutex& mu() const XSUM_RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  /// Caller holds mutex_. Returns true when the transition ejected.
  bool RecordFailureLocked(TimePoint now) XSUM_REQUIRES(mutex_);

  const Options options_;
  mutable sync::Mutex mutex_;
  State state_ XSUM_GUARDED_BY(mutex_) = State::kHealthy;
  bool draining_ XSUM_GUARDED_BY(mutex_) = false;
  int failures_ XSUM_GUARDED_BY(mutex_) = 0;   ///< consecutive failures
  int backoff_ms_ XSUM_GUARDED_BY(mutex_) = 0; ///< current ejection backoff
  TimePoint ejected_until_ XSUM_GUARDED_BY(mutex_){};  ///< next probe gate
  TimePoint last_probe_ XSUM_GUARDED_BY(mutex_){};     ///< probe cadence
  double ewma_ms_ XSUM_GUARDED_BY(mutex_) = 0.0;
};

/// Display name of \p state ("healthy", "suspect", "ejected").
const char* EndpointStateName(EndpointHealth::State state);

}  // namespace xsum::service

#endif  // XSUM_SERVICE_ENDPOINT_HEALTH_H_
