/// \file snapshot_registry.h
/// \brief Versioned ownership of the serving graph (DESIGN.md §3.2).
///
/// A long-lived summary service cannot summarize over a graph that is
/// mutated underneath it, and it cannot stop the world to load a new one.
/// The registry resolves this with immutable *snapshots*: each `Publish`
/// installs a `RecGraph` under a fresh monotonically increasing version
/// and atomically becomes the current serving snapshot. In-flight requests
/// *pin* the snapshot they started on (a `shared_ptr` copy), so a swap
/// never pulls a graph out from under a running search; a superseded
/// snapshot is destroyed exactly when its last pin drops.
///
/// Cache interaction: `SummaryCache` keys embed the snapshot version, so a
/// swap implicitly invalidates every cached result of older versions —
/// their keys can no longer be constructed by any new request. Stale
/// entries are never scanned for; they age out of the LRU.
///
/// Each snapshot also carries the graph's prebuilt base cost views
/// (`core::SharedCostViews`, DESIGN.md §4): every engine serving the
/// snapshot consumes the same interleaved cost CSRs instead of rebuilding
/// them per request, and a swap atomically replaces views together with
/// the graph they were built over.

#ifndef XSUM_SERVICE_SNAPSHOT_REGISTRY_H_
#define XSUM_SERVICE_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <memory>

#include "core/cost_views.h"
#include "data/kg_builder.h"
#include "util/sync.h"

namespace xsum::service {

/// \brief One pinned graph version. Copying the struct keeps the graph
/// (and its prebuilt cost views) alive; the version is the cache-key
/// component.
struct GraphSnapshot {
  uint64_t version = 0;
  std::shared_ptr<const data::RecGraph> graph;
  /// Prebuilt base cost views over `graph` (never null when `valid()`;
  /// individual views materialize lazily on first use).
  std::shared_ptr<const core::SharedCostViews> views;

  bool valid() const { return graph != nullptr; }
};

/// \brief Thread-safe holder of the current serving snapshot.
class GraphSnapshotRegistry {
 public:
  GraphSnapshotRegistry() = default;
  GraphSnapshotRegistry(const GraphSnapshotRegistry&) = delete;
  GraphSnapshotRegistry& operator=(const GraphSnapshotRegistry&) = delete;

  /// Installs \p graph as the current snapshot; returns its version
  /// (1, 2, ...). The previous snapshot stays alive while pinned.
  uint64_t Publish(std::shared_ptr<const data::RecGraph> graph);

  /// Convenience overload: takes ownership of a freshly built graph.
  uint64_t Publish(data::RecGraph graph);

  /// The current snapshot (pinned by the returned copy); `valid()` is
  /// false before the first Publish.
  GraphSnapshot Current() const;

  /// Version of the current snapshot (0 before the first Publish).
  uint64_t current_version() const;

  /// Number of Publish calls so far.
  uint64_t num_published() const;

  /// Wraps a caller-owned graph in a non-owning snapshot pointer. The
  /// caller must guarantee \p graph outlives the registry and every pin —
  /// the embedding used by `ExperimentRunner`, whose graph is a member.
  static std::shared_ptr<const data::RecGraph> Alias(
      const data::RecGraph& graph) {
    return std::shared_ptr<const data::RecGraph>(&graph,
                                                 [](const data::RecGraph*) {});
  }

 private:
  // Reader/writer split: Publish is rare (data refresh), Current() is on
  // every request. Once returned, a snapshot needs no capability at all —
  // the shared_ptr copy pins an immutable graph (see §9.4 lock-free notes).
  mutable sync::SharedMutex mutex_;
  GraphSnapshot current_ XSUM_GUARDED_BY(mutex_);
  uint64_t next_version_ XSUM_GUARDED_BY(mutex_) = 1;
};

}  // namespace xsum::service

#endif  // XSUM_SERVICE_SNAPSHOT_REGISTRY_H_
