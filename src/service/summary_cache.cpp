#include "service/summary_cache.h"

#include <cstring>

#include "core/incremental.h"
#include "util/rng.h"

namespace xsum::service {

namespace {

/// Two-lane SplitMix64 chain; lanes start from distinct constants so the
/// 128-bit fingerprint is not just one 64-bit hash written twice.
struct Fp128 {
  uint64_t hi = 0x8E2B5C1D0F3A7E95ULL;
  uint64_t lo = 0x243F6A8885A308D3ULL;

  void Mix(uint64_t word) {
    hi ^= word + 0x9E3779B97F4A7C15ULL;
    hi = SplitMix64(&hi);
    lo ^= word + 0xBF58476D1CE4E5B9ULL;
    lo = SplitMix64(&lo);
  }

  void MixDouble(double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }

  template <typename T>
  void MixVector(const std::vector<T>& v) {
    Mix(v.size());
    for (const T& x : v) Mix(static_cast<uint64_t>(x));
  }
};

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void FingerprintTask(const core::SummaryTask& task,
                     const core::SummarizerOptions& options, uint64_t* fp_hi,
                     uint64_t* fp_lo) {
  Fp128 fp;
  // Task identity: scenario, anchors, terminal set, Eq. (1) inputs.
  fp.Mix(static_cast<uint64_t>(task.scenario));
  fp.MixVector(task.anchors);
  fp.MixVector(task.terminals);
  fp.Mix(task.s_size);
  fp.Mix(task.paths.size());
  for (const graph::Path& path : task.paths) {
    fp.MixVector(path.nodes);
    fp.MixVector(path.edges);
  }
  // Option fingerprint: every knob that can change the output bits.
  fp.Mix(static_cast<uint64_t>(options.method));
  fp.MixDouble(options.lambda);
  fp.Mix(static_cast<uint64_t>(options.cost_mode));
  fp.Mix(static_cast<uint64_t>(options.steiner.variant));
  fp.Mix(options.steiner.cleanup ? 1 : 0);
  fp.Mix(static_cast<uint64_t>(options.pcst.prize_policy));
  fp.Mix((options.pcst.use_edge_weights ? 2 : 0) |
         (options.pcst.strong_prune ? 1 : 0));
  fp.MixDouble(options.pcst.growth_slack);
  // A *forced* frontier can change tie-breaking (and thus the summary)
  // when growth keys collide; kAuto never can, but mixing the knob keeps
  // the key an injective image of the options either way.
  fp.Mix(static_cast<uint64_t>(options.pcst.frontier));
  *fp_hi = fp.hi;
  *fp_lo = fp.lo;
}

size_t SummaryFootprintBytes(const core::Summary& summary) {
  size_t bytes = sizeof(core::Summary);
  bytes += summary.subgraph.MemoryFootprintBytes();
  bytes += summary.anchors.capacity() * sizeof(graph::NodeId);
  bytes += summary.terminals.capacity() * sizeof(graph::NodeId);
  bytes += summary.unreached_terminals.capacity() * sizeof(graph::NodeId);
  for (const graph::Path& path : summary.input_paths) {
    bytes += sizeof(graph::Path);
    bytes += path.nodes.capacity() * sizeof(graph::NodeId);
    bytes += path.edges.capacity() * sizeof(graph::EdgeId);
  }
  return bytes;
}

SummaryCache::SummaryCache() : SummaryCache(Options()) {}

SummaryCache::SummaryCache(const Options& options)
    : max_bytes_(options.max_bytes) {
  const size_t shards =
      RoundUpPow2(options.num_shards == 0 ? 1 : options.num_shards);
  shard_mask_ = shards - 1;
  shard_budget_ = max_bytes_ / shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const core::Summary> SummaryCache::Lookup(
    const CacheKey& key) {
  Shard& shard = ShardFor(key);
  sync::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second->summary == nullptr) {
    // A chain-only placeholder (imported drain checkpoint) is a *miss*:
    // it holds reusable closure state, not an answer, and serving it
    // would break the byte-identity invariant.
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->summary;
}

std::shared_ptr<const core::SummaryChain> SummaryCache::LookupChain(
    const CacheKey& key) {
  Shard& shard = ShardFor(key);
  sync::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  return it->second->chain;
}

void SummaryCache::EmplaceLocked(Shard& shard, Entry entry) {
  const size_t bytes = entry.bytes;
  if (bytes > shard_budget_) {
    ++shard.rejected;
    return;
  }
  while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  const CacheKey key = entry.key;
  shard.lru.push_front(std::move(entry));
  shard.map[key] = shard.lru.begin();
  shard.bytes += bytes;
  ++shard.insertions;
}

void SummaryCache::Insert(const CacheKey& key,
                          std::shared_ptr<const core::Summary> summary,
                          std::shared_ptr<const core::SummaryChain> chain,
                          uint64_t route_key) {
  if (summary == nullptr) return;
  Shard& shard = ShardFor(key);
  sync::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    if (it->second->summary != nullptr) return;  // first full writer wins
    // Chain-only placeholder from a drain handoff: upgrade it. The
    // imported chain survives when the writer brings none (it may hold a
    // longer-reusable closure than this step produced).
    if (chain == nullptr) chain = it->second->chain;
    if (route_key == 0) route_key = it->second->route_key;
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  size_t bytes = SummaryFootprintBytes(*summary) + sizeof(Entry);
  if (chain != nullptr) bytes += chain->MemoryFootprintBytes();
  EmplaceLocked(shard, Entry{key, std::move(summary), std::move(chain),
                             route_key, bytes});
}

void SummaryCache::InsertChainOnly(
    const CacheKey& key, std::shared_ptr<const core::SummaryChain> chain,
    uint64_t route_key) {
  if (chain == nullptr) return;
  Shard& shard = ShardFor(key);
  sync::MutexLock lock(shard.mutex);
  std::shared_ptr<const core::Summary> summary;
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    if (it->second->chain != nullptr) return;  // resident checkpoint wins
    // The key holds a summary without a chain (e.g. a non-chainable
    // method landed first under fingerprint reuse is impossible — same
    // key means same options — but a budget-trimmed insert can): attach
    // the imported chain, keeping the summary.
    summary = it->second->summary;
    if (route_key == 0) route_key = it->second->route_key;
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  size_t bytes = sizeof(Entry) + chain->MemoryFootprintBytes();
  if (summary != nullptr) bytes += SummaryFootprintBytes(*summary);
  EmplaceLocked(shard, Entry{key, std::move(summary), std::move(chain),
                             route_key, bytes});
}

std::vector<SummaryCache::ChainExport> SummaryCache::ExportChains() const {
  std::vector<ChainExport> out;
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mutex);
    for (const Entry& entry : shard->lru) {
      if (entry.chain != nullptr && entry.route_key != 0) {
        out.push_back(ChainExport{entry.key, entry.route_key, entry.chain});
      }
    }
  }
  return out;
}

void SummaryCache::Clear() {
  for (auto& shard : shards_) {
    sync::MutexLock lock(shard->mutex);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

CacheStats SummaryCache::stats() const {
  CacheStats stats;
  stats.max_bytes = max_bytes_;
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.rejected += shard->rejected;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

}  // namespace xsum::service
