#include "service/shard_router.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace xsum::service {

namespace {

/// FNV-1a over a string, then one SplitMix64 scramble — the ring-point
/// seed for an endpoint label.
uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return SplitMix64(&h);
}

}  // namespace

uint64_t UnitFingerprint(const SummaryRequest& request) {
  // k and prev_k are intentionally absent: the fingerprint names the
  // chain, not the step (see file comment in shard_router.h).
  uint64_t state = 0x5851F42D4C957F2DULL;
  state ^= static_cast<uint64_t>(request.scenario);
  state = SplitMix64(&state);
  state ^= request.unit;
  state = SplitMix64(&state);
  state ^= static_cast<uint64_t>(request.method);
  state = SplitMix64(&state);
  uint64_t lambda_bits = 0;
  static_assert(sizeof(lambda_bits) == sizeof(request.lambda));
  std::memcpy(&lambda_bits, &request.lambda, sizeof(lambda_bits));
  state ^= lambda_bits;
  state = SplitMix64(&state);
  state ^= static_cast<uint64_t>(request.cost_mode);
  state = SplitMix64(&state);
  state ^= static_cast<uint64_t>(request.variant);
  return SplitMix64(&state);
}

Result<std::pair<std::string, uint16_t>> ParseEndpoint(
    const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument("endpoint must be host:port, got '" +
                                   endpoint + "'");
  }
  std::string host = Trim(endpoint.substr(0, colon));
  if (host.empty()) host = "127.0.0.1";
  const std::string port_str = Trim(endpoint.substr(colon + 1));
  uint32_t port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid port in endpoint '" + endpoint +
                                     "'");
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in endpoint '" +
                                     endpoint + "'");
    }
  }
  if (port == 0) {
    return Status::InvalidArgument("port 0 is not routable in endpoint '" +
                                   endpoint + "'");
  }
  return std::make_pair(std::move(host), static_cast<uint16_t>(port));
}

ShardRouter::ShardRouter(SummaryHandler* local, Options options)
    : local_(local), options_(std::move(options)) {
  for (const std::string& label : options_.endpoints) {
    auto parsed = ParseEndpoint(label);
    if (!parsed.ok()) {
      XSUM_LOG_WARN << "shard router: skipping endpoint: "
                    << parsed.status().ToString();
      continue;
    }
    auto endpoint = std::make_unique<Endpoint>();
    endpoint->host = parsed->first;
    endpoint->port = parsed->second;
    endpoint->label = label;
    endpoints_.push_back(std::move(endpoint));
  }
  const size_t points = options_.virtual_nodes == 0 ? 1 : options_.virtual_nodes;
  ring_.reserve(endpoints_.size() * points);
  for (size_t e = 0; e < endpoints_.size(); ++e) {
    uint64_t state = HashString(endpoints_[e]->label);
    for (size_t v = 0; v < points; ++v) {
      ring_.emplace_back(SplitMix64(&state), e);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  stats_.per_endpoint.assign(endpoints_.size(), 0);
}

std::vector<size_t> ShardRouter::RingOrder(uint64_t key) const {
  std::vector<size_t> order;
  if (ring_.empty()) return order;
  order.reserve(endpoints_.size());
  std::vector<bool> seen(endpoints_.size(), false);
  // First ring point at or after the key, wrapping.
  const auto start = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(key, size_t{0}));
  const size_t begin = static_cast<size_t>(start - ring_.begin());
  for (size_t i = 0; i < ring_.size() && order.size() < endpoints_.size();
       ++i) {
    const size_t e = ring_[(begin + i) % ring_.size()].second;
    if (!seen[e]) {
      seen[e] = true;
      order.push_back(e);
    }
  }
  return order;
}

size_t ShardRouter::EndpointFor(const SummaryRequest& request) const {
  const std::vector<size_t> order = RingOrder(UnitFingerprint(request));
  return order.empty() ? 0 : order.front();
}

std::unique_ptr<net::HttpClient> ShardRouter::Acquire(Endpoint& endpoint,
                                                      bool fresh) {
  if (!fresh) {
    std::lock_guard<std::mutex> lock(endpoint.mutex);
    if (!endpoint.idle.empty()) {
      auto client = std::move(endpoint.idle.back());
      endpoint.idle.pop_back();
      return client;
    }
  }
  net::HttpClient::Options client_options;
  client_options.timeout_ms = options_.timeout_ms;
  return std::make_unique<net::HttpClient>(endpoint.host, endpoint.port,
                                           client_options);
}

void ShardRouter::Release(Endpoint& endpoint,
                          std::unique_ptr<net::HttpClient> client) {
  std::lock_guard<std::mutex> lock(endpoint.mutex);
  if (endpoint.idle.size() < 8) {
    endpoint.idle.push_back(std::move(client));
  }
  // Beyond the pool bound the connection just closes with the client.
}

Result<net::HttpResponse> ShardRouter::Forward(size_t endpoint_index,
                                               const std::string& target,
                                               const std::string& body) {
  Endpoint& endpoint = *endpoints_[endpoint_index];
  // /snapshot is the one non-idempotent endpoint: it gets a *fresh*
  // connection (a pooled one the shard has idle-reaped would fail a
  // healthy broadcast) and no stale-retry (a resend over a maybe-seen
  // first copy could publish twice and skew the shard's version stream).
  const bool non_idempotent = target == "/snapshot";
  std::unique_ptr<net::HttpClient> client =
      Acquire(endpoint, /*fresh=*/non_idempotent);
  Result<net::HttpResponse> result =
      body.empty() ? client->Get(target)
                   : client->Post(target, body,
                                  /*retry_stale=*/!non_idempotent);
  if (result.ok()) {
    // Only healthy connections return to the pool.
    Release(endpoint, std::move(client));
  }
  return result;
}

net::HttpResponse ShardRouter::Summarize(const SummaryRequest& request) {
  const std::string body = SummaryRequestToJson(request).Dump();
  const std::vector<size_t> order = RingOrder(UnitFingerprint(request));
  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const size_t e = order[attempt];
    auto result = Forward(e, "/summarize", body);
    if (result.ok()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.routed;
      stats_.failovers += attempt;
      ++stats_.per_endpoint[e];
      return *std::move(result);
    }
    XSUM_LOG_WARN << "shard " << endpoints_[e]->label
                  << " unreachable: " << result.status().ToString();
  }
  if (local_ != nullptr && (options_.local_fallback || order.empty())) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.local;
      stats_.failovers += order.size();
    }
    return local_->Summarize(request);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.failovers += order.size();
  }
  return JsonError(502, "all shard endpoints unreachable");
}

net::HttpResponse ShardRouter::Handle(const net::HttpRequest& request) {
  if (request.target == "/summarize") {
    if (request.method != "POST") {
      return JsonError(405, "/summarize requires POST");
    }
    auto json = net::ParseJson(request.body);
    if (!json.ok()) return JsonError(400, json.status().message());
    auto parsed = ParseSummaryRequest(*json);
    if (!parsed.ok()) return JsonError(400, parsed.status().message());
    return Summarize(*parsed);
  }
  if (request.target == "/snapshot" && request.method == "POST") {
    // Broadcast the hot swap: every shard republishes, then the local
    // handler (when present). Per-shard outcomes are reported; a
    // partially reachable fleet is visible, not hidden.
    net::JsonValue shards = net::JsonValue::Array();
    for (size_t e = 0; e < endpoints_.size(); ++e) {
      net::JsonValue entry = net::JsonValue::Object();
      entry.Set("endpoint", endpoints_[e]->label);
      auto result = Forward(e, "/snapshot", request.body.empty()
                                                ? "{}"
                                                : request.body);
      if (result.ok()) {
        entry.Set("status", result->status);
      } else {
        entry.Set("status", 502);
        entry.Set("error", result.status().message());
      }
      shards.Append(std::move(entry));
    }
    net::JsonValue json = net::JsonValue::Object();
    json.Set("shards", std::move(shards));
    if (local_ != nullptr) {
      const net::HttpResponse local = local_->Handle(request);
      json.Set("local_status", local.status);
    }
    net::HttpResponse response;
    response.body = json.Dump();
    return response;
  }
  if (local_ != nullptr) {
    // /stats, /healthz, and anything else answer from the local handler:
    // the router-level service view (404s included).
    return local_->Handle(request);
  }
  if (request.target == "/healthz" && request.method == "GET") {
    net::JsonValue json = net::JsonValue::Object();
    json.Set("status", "ok");
    json.Set("role", "router");
    json.Set("endpoints", endpoints_.size());
    net::HttpResponse response;
    response.body = json.Dump();
    return response;
  }
  return JsonError(404, "unknown endpoint: " + request.target);
}

RouterStats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace xsum::service
